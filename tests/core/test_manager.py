"""PowerManager wiring tests."""

from repro.core.baselines import ASAPDPMController, ConvDPMController
from repro.core.fc_dpm import FCDPMController
from repro.core.manager import PowerManager
from repro.dpm.predictive import PredictiveShutdownPolicy
from repro.fuelcell.efficiency import ConstantSystemEfficiency


class TestFactories:
    def test_conv_dpm(self, camcorder_params):
        mgr = PowerManager.conv_dpm(camcorder_params)
        assert mgr.name == "conv-dpm"
        assert isinstance(mgr.controller, ConvDPMController)
        assert isinstance(mgr.policy, PredictiveShutdownPolicy)

    def test_asap_dpm(self, camcorder_params):
        mgr = PowerManager.asap_dpm(camcorder_params, recharge_threshold=0.4)
        assert isinstance(mgr.controller, ASAPDPMController)
        assert mgr.controller.recharge_threshold == 0.4

    def test_fc_dpm(self, camcorder_params):
        mgr = PowerManager.fc_dpm(camcorder_params)
        assert isinstance(mgr.controller, FCDPMController)

    def test_fc_dpm_shares_idle_predictor(self, camcorder_params):
        mgr = PowerManager.fc_dpm(camcorder_params)
        assert mgr.controller.idle_length_predictor is mgr.policy.predictor
        assert not mgr.controller.observes_idle

    def test_storage_configuration(self, camcorder_params):
        mgr = PowerManager.fc_dpm(
            camcorder_params, storage_capacity=10.0, storage_initial=4.0
        )
        assert mgr.source.storage.capacity == 10.0
        assert mgr.source.storage.charge == 4.0

    def test_custom_model_propagates(self, camcorder_params):
        model = ConstantSystemEfficiency(eta=0.33)
        mgr = PowerManager.asap_dpm(camcorder_params, model=model)
        assert mgr.controller.model is model
        assert mgr.source.fc.model is model

    def test_rho_propagates(self, camcorder_params):
        mgr = PowerManager.conv_dpm(camcorder_params, rho=0.7)
        assert mgr.policy.predictor.factor == 0.7

    def test_active_estimate_propagates(self, camcorder_params):
        mgr = PowerManager.fc_dpm(camcorder_params, active_current_estimate=1.2)
        assert mgr.controller.active_current_estimate == 1.2


class TestReset:
    def test_reset_restores_everything(self, camcorder_params):
        mgr = PowerManager.fc_dpm(camcorder_params, storage_initial=3.0)
        mgr.policy.on_idle_start()
        mgr.source.set_fc_output(1.0)
        mgr.source.step(0.5, 10.0)
        mgr.reset(storage_charge=3.0)
        assert mgr.policy.n_decisions == 0
        assert mgr.source.total_fuel == 0.0
        assert mgr.source.storage.charge == 3.0
