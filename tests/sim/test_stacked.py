"""Stacked 2D batch kernel: equivalence, routing, transport, fleet smoke.

The stacked route's contract is absolute: for every seed, every
``SimulationResult`` field and every manager/controller/policy end state
must equal the serial per-seed loop bit for bit -- including which
``SimulationError`` is raised, with which message, leaving which
committed state behind.  These tests pin that contract plus the new
batch plumbing: duplicate-seed rejection, stacked/loop routing and its
telemetry, the one-segment shared-memory transport, and the
``fleet_smoke`` scenario's golden aggregates.
"""

import dataclasses

import numpy as np
import pytest

import repro.sim.stacked as stacked_mod
import repro.sim.vectorized as vectorized
from repro.errors import ConfigurationError, SimulationError
from repro.obs import observing
from repro.runtime.shm import SharedArrayStore
from repro.scenario import get_scenario
from repro.sim.stacked import (
    stack_plans,
    stacked_batch_ineligibility,
)
from repro.sim.vectorized import (
    _policy_manager,
    _stack_plan_group,
    _stacked_plan_row,
    plan_trace_arrays,
    replay_policy,
    simulate_batch,
)

POLICIES = ["conv-dpm", "asap-dpm", "static:0.8", "fc-dpm"]


def _manager_state(mgr):
    """Every externally meaningful piece of post-run manager state."""
    source = mgr.source
    fc = source.fc
    storage = source.storage
    controller = mgr.controller
    policy = mgr.policy
    state = {
        "charge": storage.charge,
        "bled": storage.bled_charge,
        "deficit": storage.deficit_charge,
        "i_f": fc._i_f,
        "consumed": fc.tank.consumed,
        "total_fuel": source.total_fuel,
        "total_load": source.total_load_charge,
        "total_time": source.total_time,
        "total_delivered": source.total_delivered_charge,
        "controller": type(controller).__name__,
    }
    if hasattr(controller, "_recharging"):
        state["recharging"] = controller._recharging
    if type(controller).__name__ == "FCDPMController":
        idle_pred = controller.idle_length_predictor
        active_pred = controller.active_length_predictor
        state.update(
            n_solutions=len(controller.solutions),
            if_idle=controller._if_idle,
            if_active=controller._if_active,
            active_planned=controller._active_planned,
            active_sum=controller._active_current_sum,
            active_n=controller._active_current_n,
            guards=controller.n_guard_activations,
            idle_estimate=idle_pred._estimate,
            active_estimate=active_pred._estimate,
            idle_observed=idle_pred._n_observed,
            active_observed=active_pred._n_observed,
            idle_error=idle_pred._error_sum,
            active_error=active_pred._error_sum,
        )
    predictor = getattr(policy, "predictor", None)
    if predictor is not None:
        state.update(
            decisions=policy.n_decisions,
            sleep_decisions=policy.n_sleep_decisions,
            last_prediction=policy.last_prediction,
            last_slept=policy._last_slept,
            estimate=predictor._estimate,
            error_sum=predictor._error_sum,
            abs_error_sum=predictor._abs_error_sum,
            observed=predictor._n_observed,
        )
    return state


def _run_with_spy(scenario, seeds, policies, **kwargs):
    """Run a batch recording every built manager; may raise in results."""
    managers = {}
    original = vectorized._policy_manager

    def spy(sc, spec):
        mgr = original(sc, spec)
        managers.setdefault(spec, []).append(mgr)
        return mgr

    vectorized._policy_manager = spy
    error = None
    results = None
    try:
        results = simulate_batch(scenario, seeds, policies, **kwargs)
    except SimulationError as exc:
        error = (type(exc), str(exc))
    finally:
        vectorized._policy_manager = original
    return results, error, managers


def _assert_batches_equal(a, b):
    assert a.keys() == b.keys()
    for seed in a:
        assert list(a[seed]) == list(b[seed])
        for name in a[seed]:
            ra, rb = a[seed][name], b[seed][name]
            assert dataclasses.asdict(ra) == dataclasses.asdict(rb), (seed, name)


class TestStackedEquivalence:
    @pytest.mark.parametrize(
        "policies",
        [POLICIES, ["fc-dpm", "conv-dpm"], ["asap-dpm"], ["static:0.8"]],
    )
    def test_stacked_matches_loop_every_field(self, policies):
        sc = get_scenario("exp2-conv-dpm")
        seeds = list(range(6))
        a = simulate_batch(sc, seeds, policies, stacked=True)
        b = simulate_batch(sc, seeds, policies, stacked=False)
        _assert_batches_equal(a, b)

    def test_stacked_matches_scalar(self):
        sc = get_scenario("exp2-conv-dpm")
        seeds = [0, 1, 2]
        a = simulate_batch(sc, seeds, POLICIES, stacked=True)
        b = simulate_batch(sc, seeds, POLICIES, fast=False)
        _assert_batches_equal(a, b)

    def test_stacked_single_seed_matches_loop(self):
        a = simulate_batch("exp2-conv-dpm", [7], POLICIES, stacked=True)
        b = simulate_batch("exp2-conv-dpm", [7], POLICIES, stacked=False)
        _assert_batches_equal(a, b)

    def test_manager_end_state_matches_loop(self):
        sc = get_scenario("exp2-conv-dpm")
        seeds = list(range(5))
        _, _, stacked_mgrs = _run_with_spy(sc, seeds, POLICIES, stacked=True)
        _, _, loop_mgrs = _run_with_spy(sc, seeds, POLICIES, stacked=False)
        for spec in POLICIES:
            sa = _manager_state(stacked_mgrs[spec][0])
            sb = _manager_state(loop_mgrs[spec][0])
            assert sa == sb, spec

    def test_prebuilt_and_partial_traces_match_loop(self):
        sc = get_scenario("exp2-conv-dpm")
        seeds = [3, 4, 5, 6]
        traces = {s: sc.build_trace(s) for s in seeds[:2]}  # partial
        a = simulate_batch(sc, seeds, POLICIES, traces=traces, stacked=True)
        b = simulate_batch(sc, seeds, POLICIES, traces=traces, stacked=False)
        _assert_batches_equal(a, b)

    def test_obs_enabled_route_stays_exact(self):
        sc = get_scenario("exp2-conv-dpm")
        seeds = [0, 1, 2]
        with observing():
            a = simulate_batch(sc, seeds, POLICIES, stacked=True)
            b = simulate_batch(sc, seeds, POLICIES, stacked=False)
        _assert_batches_equal(a, b)


class TestStackedDeficitRaise:
    def _mid_batch_setup(self):
        """Seeds ordered so static:0.4 trips the guard mid-batch."""
        sc = get_scenario("exp2-conv-dpm")
        ratios = {}
        for seed in range(6):
            res = simulate_batch(
                sc, [seed], ["static:0.4"], max_deficit_fraction=1.0
            )[seed]["static:0.4"]
            ratios[seed] = res.deficit / res.load_charge
        order = sorted(ratios, key=ratios.get)
        threshold = (ratios[order[0]] + ratios[order[-1]]) / 2
        return sc, order, threshold

    @pytest.mark.parametrize(
        "policies",
        [
            ["conv-dpm", "static:0.4", "asap-dpm", "fc-dpm"],
            ["static:0.4", "conv-dpm"],
            ["fc-dpm", "static:0.4"],
        ],
    )
    def test_raise_and_committed_state_match_loop(self, policies):
        sc, order, threshold = self._mid_batch_setup()
        ra, ea, ma = _run_with_spy(
            sc, order, policies, max_deficit_fraction=threshold, stacked=True
        )
        rb, eb, mb = _run_with_spy(
            sc, order, policies, max_deficit_fraction=threshold, stacked=False
        )
        assert ra is None and rb is None
        assert ea == eb  # same exception type + message
        # The loop stops building managers at the raise; every manager
        # both routes built must hold identical committed state.
        for spec in set(ma) & set(mb):
            assert _manager_state(ma[spec][0]) == _manager_state(mb[spec][0])


class TestBatchRouting:
    def test_duplicate_seeds_raise(self):
        with pytest.raises(ConfigurationError, match="duplicate seeds"):
            simulate_batch("exp2-conv-dpm", [0, 1, 0], ["conv-dpm"])

    def test_duplicate_seeds_raise_after_int_coercion(self):
        # 1 and np.int64(1) are the same key: must still be rejected.
        with pytest.raises(ConfigurationError, match="duplicate seeds"):
            simulate_batch(
                "exp2-conv-dpm", [1, np.int64(1)], ["conv-dpm"]
            )

    def test_stacked_requires_fast(self):
        with pytest.raises(ConfigurationError, match="requires fast"):
            simulate_batch(
                "exp2-conv-dpm", [0, 1], ["conv-dpm"], stacked=True, fast=False
            )

    def test_stacked_true_rejects_ineligible_spec(self):
        with pytest.raises(ConfigurationError, match="not stacked-eligible"):
            simulate_batch("exp1-battery", [0, 1], stacked=True)

    def test_auto_mode_falls_back_to_loop(self):
        seeds = [0, 1]
        with observing() as obs:
            auto = simulate_batch("exp1-battery", seeds)
            snapshot = obs.metrics.snapshot()
        explicit = simulate_batch("exp1-battery", seeds, stacked=False)
        _assert_batches_equal(auto, explicit)
        assert snapshot["sim.batch_route{path=loop}"]["value"] == 1
        assert snapshot["sim.batch_fallback_rows"]["value"] == len(seeds)
        assert any(k.startswith("sim.batch_ineligible") for k in snapshot)

    def test_single_seed_auto_skips_stacked(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("stacked route taken for a single seed")

        monkeypatch.setattr(stacked_mod, "simulate_batch_stacked", boom)
        simulate_batch("exp2-conv-dpm", [0], ["conv-dpm"])

    def test_stacked_route_telemetry(self):
        seeds = [0, 1, 2]
        policies = ["conv-dpm", "asap-dpm"]
        with observing() as obs:
            simulate_batch("exp2-conv-dpm", seeds, policies)
            spans = obs.tracer.export()
            snapshot = obs.metrics.snapshot()
        (span,) = [s for s in spans if s["name"] == "sim.batch"]
        attrs = span["attrs"]
        assert attrs["route"] == "stacked"
        assert attrs["rows"] == len(seeds)
        assert attrs["fallback_rows"] == 0
        assert 0.0 <= attrs["padded_fraction"] < 1.0
        assert attrs["plan_stack_seconds"] > 0.0
        assert snapshot["sim.batch_route{path=stacked}"]["value"] == 1
        assert snapshot["sim.route{path=fast}"]["value"] == len(seeds) * len(
            policies
        )
        assert "sim.batch_plan_stack_s" in snapshot

    def test_stacked_eligibility_reasons(self):
        mgr = _policy_manager(get_scenario("exp2-conv-dpm"), "conv-dpm")
        assert stacked_batch_ineligibility(mgr) is None
        from repro.fuelcell import FuelTank, GibbsFuelModel

        finite = _policy_manager(get_scenario("exp2-conv-dpm"), "conv-dpm")
        finite.source.fc.tank = FuelTank(capacity=50.0, model=GibbsFuelModel())
        reason = stacked_batch_ineligibility(finite)
        assert reason is not None and "finite fuel tank" in reason


class TestStackedTransport:
    def _plans(self, seeds):
        sc = get_scenario("exp2-conv-dpm")
        mgr = _policy_manager(sc, "conv-dpm")
        initial = mgr.source.storage.charge
        plans = []
        for seed in seeds:
            mgr.reset(initial)
            trace = sc.build_trace(seed)
            plans.append(
                plan_trace_arrays(
                    mgr.device,
                    trace,
                    replay_policy(mgr.policy, trace),
                    phase_context=False,
                )
            )
        return plans

    def _assert_rows_equal(self, row, plan):
        for name in ("duration", "i_load", "kind", "slot_bounds",
                     "active_start", "slept", "aborted"):
            np.testing.assert_array_equal(
                getattr(row, name), getattr(plan, name), err_msg=name
            )

    def test_stack_plans_round_trip(self):
        seeds = [0, 1, 2, 3]
        plans = self._plans(seeds)
        sp = stack_plans(plans)
        assert sp.n_rows == len(plans)
        for row, plan in zip(sp.rows, plans):
            self._assert_rows_equal(row, plan)
        # Padded 2D columns must hold each row's segments verbatim.
        for r, plan in enumerate(plans):
            n = plan.n_segments
            np.testing.assert_array_equal(sp.duration[r, :n], plan.duration)
            assert not sp.duration[r, n:].any()

    def test_shm_group_round_trip(self):
        seeds = [4, 5, 6]
        plans = self._plans(seeds)
        group = _stack_plan_group(plans, seeds)
        store = SharedArrayStore.create({"stacked": group})
        try:
            payload = {}
            for seed, plan in zip(seeds, plans):
                row = _stacked_plan_row(payload, store.handles["stacked"], seed)
                self._assert_rows_equal(row, plan)
            # Attach happens once; later rows reuse the cached views.
            assert "_plan_stack" in payload
        finally:
            store.dispose()

    def test_parallel_workers_match_serial(self):
        sc = get_scenario("exp2-conv-dpm")
        seeds = list(range(6))
        serial = simulate_batch(sc, seeds, POLICIES, stacked=False)
        parallel = simulate_batch(sc, seeds, POLICIES, workers=2)
        _assert_batches_equal(parallel, serial)


class TestFleetSmoke:
    def test_registered_scenario(self):
        sc = get_scenario("fleet_smoke")
        assert sc.workload.kind == "fleet"
        assert sc.workload.jitter == 0.25
        assert sc.policy.kind == "conv-dpm"

    def test_fleet_is_heterogeneous(self):
        sc = get_scenario("fleet_smoke")
        seeds = list(range(16))
        results = simulate_batch(sc, seeds)
        loads = [results[s]["conv-dpm"].load_charge for s in seeds]
        assert np.std(loads) > 0.01 * np.mean(loads)

    def test_golden_aggregates_over_256_devices(self):
        sc = get_scenario("fleet_smoke")
        seeds = list(range(256))
        policies = ["conv-dpm", "asap-dpm", "static:0.8"]
        with observing() as obs:
            results = simulate_batch(sc, seeds, policies)
            snapshot = obs.metrics.snapshot()
        # The whole fleet must ride the stacked kernel, no fallbacks.
        assert snapshot["sim.batch_route{path=stacked}"]["value"] == 1
        fuel = {
            p: sum(results[s][p].fuel for s in seeds) for p in policies
        }
        assert fuel["conv-dpm"] == pytest.approx(671918.5535921464, rel=1e-12)
        assert fuel["asap-dpm"] == pytest.approx(315488.43087669404, rel=1e-12)
        assert fuel["static:0.8"] == pytest.approx(380624.3829597134, rel=1e-12)
        deficits = np.array([results[s]["static:0.8"].deficit for s in seeds])
        assert int((deficits > 0).sum()) == 63
        assert deficits.sum() == pytest.approx(164.12614309227126, rel=1e-12)
        assert deficits.max() == pytest.approx(10.624909700649187, rel=1e-12)
        assert np.all(
            np.array([results[s]["conv-dpm"].deficit for s in seeds]) == 0.0
        )
