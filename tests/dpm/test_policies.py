"""Device-side DPM policy tests."""

import pytest

from repro.devices.camcorder import camcorder_device_params, randomized_device_params
from repro.dpm.always import AlwaysOnPolicy, AlwaysSleepPolicy
from repro.dpm.breakeven import sleep_saving, worst_case_competitive_timeout
from repro.dpm.oracle import OraclePolicy
from repro.dpm.policy import IdleDecision
from repro.dpm.predictive import PredictiveShutdownPolicy
from repro.dpm.timeout import TimeoutPolicy
from repro.errors import ConfigurationError, RangeError
from repro.prediction.exponential import ExponentialAveragePredictor


@pytest.fixture
def params():
    return camcorder_device_params()


class TestIdleDecision:
    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            IdleDecision(sleep=True, sleep_after=-1.0)


class TestBreakEvenHelpers:
    def test_sleep_saving_positive_above_tbe(self, params):
        assert sleep_saving(params, 10.0) > 0

    def test_sleep_saving_negative_below_tbe(self):
        # Exp-2 overheads: sleeping a 5 s idle wastes charge (Tbe = 10 s).
        p = randomized_device_params()
        assert sleep_saving(p, 5.0) < 0

    def test_sleep_saving_zero_when_infeasible(self, params):
        assert sleep_saving(params, 0.5) == 0.0

    def test_sleep_saving_rejects_negative(self, params):
        with pytest.raises(RangeError):
            sleep_saving(params, -1.0)

    def test_competitive_timeout_is_break_even(self, params):
        assert worst_case_competitive_timeout(params) == params.break_even


class TestTimeoutPolicy:
    def test_defaults_to_break_even(self, params):
        policy = TimeoutPolicy(params)
        d = policy.on_idle_start()
        assert d.sleep and d.sleep_after == params.break_even

    def test_explicit_timeout(self, params):
        policy = TimeoutPolicy(params, timeout=5.0)
        assert policy.on_idle_start().sleep_after == 5.0

    def test_rejects_negative_timeout(self, params):
        with pytest.raises(ConfigurationError):
            TimeoutPolicy(params, timeout=-1.0)

    def test_counters(self, params):
        policy = TimeoutPolicy(params)
        for _ in range(3):
            policy.on_idle_start()
        assert policy.n_decisions == 3
        assert policy.sleep_rate == 1.0


class TestPredictiveShutdown:
    def test_sleeps_when_prediction_exceeds_threshold(self, params):
        pred = ExponentialAveragePredictor(factor=0.5, initial=10.0)
        policy = PredictiveShutdownPolicy(params, pred)
        d = policy.on_idle_start()
        assert d.sleep and d.sleep_after == 0.0

    def test_stays_when_prediction_below_threshold(self, params):
        pred = ExponentialAveragePredictor(factor=0.5, initial=0.2)
        policy = PredictiveShutdownPolicy(params, pred)
        assert not policy.on_idle_start().sleep

    def test_threshold_override(self, params):
        pred = ExponentialAveragePredictor(factor=0.5, initial=5.0)
        policy = PredictiveShutdownPolicy(params, pred, threshold=6.0)
        assert not policy.on_idle_start().sleep

    def test_learning_changes_decision(self, params):
        policy = PredictiveShutdownPolicy(
            params, ExponentialAveragePredictor(factor=0.5, initial=0.0)
        )
        assert not policy.on_idle_start().sleep  # prediction 0 < Tbe
        policy.on_idle_end(12.0)
        assert policy.on_idle_start().sleep      # prediction 6 > Tbe = 1

    def test_last_prediction_exposed(self, params):
        policy = PredictiveShutdownPolicy(
            params, ExponentialAveragePredictor(factor=0.5, initial=4.0)
        )
        policy.on_idle_start()
        assert policy.last_prediction == 4.0

    def test_default_predictor_is_paper_filter(self, params):
        policy = PredictiveShutdownPolicy(params)
        assert isinstance(policy.predictor, ExponentialAveragePredictor)
        assert policy.predictor.factor == 0.5

    def test_reset(self, params):
        policy = PredictiveShutdownPolicy(params)
        policy.on_idle_start()
        policy.on_idle_end(15.0)
        policy.reset()
        assert policy.n_decisions == 0
        assert policy.predictor.estimate == 0.0


class TestOracle:
    def test_sleeps_only_when_profitable(self, params):
        policy = OraclePolicy(params)
        policy.prime(20.0)
        assert policy.on_idle_start().sleep
        policy.prime(0.8)
        assert not policy.on_idle_start().sleep

    def test_requires_prime(self, params):
        with pytest.raises(ConfigurationError):
            OraclePolicy(params).on_idle_start()

    def test_prime_consumed(self, params):
        policy = OraclePolicy(params)
        policy.prime(20.0)
        policy.on_idle_start()
        with pytest.raises(ConfigurationError):
            policy.on_idle_start()


class TestDegenerate:
    def test_always_on(self, params):
        policy = AlwaysOnPolicy(params)
        assert not policy.on_idle_start().sleep
        assert policy.sleep_rate == 0.0

    def test_always_sleep(self, params):
        policy = AlwaysSleepPolicy(params)
        assert policy.on_idle_start().sleep
        assert policy.sleep_rate == 1.0

    def test_sleep_rate_empty(self, params):
        assert AlwaysOnPolicy(params).sleep_rate == 0.0
