"""Stochastic DPM: optimal stopping under a fitted idle-length model.

The stochastic-control DPM line (Benini et al., paper ref [4]; Rong &
Pedram, ref [5]) models idle lengths probabilistically and derives the
policy that minimizes *expected* charge.  We implement the classic
renewal-theory version:

* idle lengths are fitted with a **two-mode geometric mixture**
  (hyper-geometric) -- short "bursty" idles and long "quiet" idles.
  A single geometric is memoryless, making the optimal policy a
  degenerate sleep-now-or-never choice; the mixture makes *elapsed*
  idle time informative, which is where timeouts come from;
* surviving ``t`` seconds of idleness updates the posterior over the
  two modes (Bayes), giving the expected remaining idle length;
* the optimal stopping rule sleeps at the first ``t`` where the
  expected remaining idle exceeds the break-even time -- evaluated on a
  discrete grid, yielding a concrete timeout;
* :class:`StochasticDPMPolicy` refits the mixture online from observed
  idle lengths and plugs the derived timeout into the standard policy
  interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..devices.device import DeviceParams
from ..errors import ConfigurationError, RangeError
from .policy import DPMPolicy, IdleDecision


@dataclass(frozen=True)
class GeometricMixture:
    """Two-mode exponential/geometric idle-length model.

    ``P(T > t) = w * exp(-t / tau_short) + (1 - w) * exp(-t / tau_long)``

    Attributes
    ----------
    w:
        Weight of the short mode in [0, 1].
    tau_short, tau_long:
        Mean idle lengths of the two modes (s), ``tau_short <= tau_long``.
    """

    w: float
    tau_short: float
    tau_long: float

    def __post_init__(self) -> None:
        if not 0 <= self.w <= 1:
            raise ConfigurationError("mixture weight must be in [0, 1]")
        if not 0 < self.tau_short <= self.tau_long:
            raise ConfigurationError("need 0 < tau_short <= tau_long")

    # -- distribution ----------------------------------------------------------

    def survival(self, t: float) -> float:
        """``P(T > t)``."""
        if t < 0:
            raise RangeError("time cannot be negative")
        return self.w * math.exp(-t / self.tau_short) + (1 - self.w) * math.exp(
            -t / self.tau_long
        )

    def posterior_long(self, t: float) -> float:
        """``P(long mode | T > t)`` -- survival sharpens the belief.

        Computed from the mode-survival *ratio* rather than the two raw
        survivals: exact for ``tau_short == tau_long`` (constant
        ``1 - w``) and monotone in ``t``, where the naive quotient loses
        both to cancellation once the exponentials underflow.
        """
        if t < 0:
            raise RangeError("time cannot be negative")
        ratio = math.exp(-t * (1.0 / self.tau_short - 1.0 / self.tau_long))
        denom = self.w * ratio + (1 - self.w)
        if denom == 0:
            return 1.0
        return (1 - self.w) / denom

    def expected_remaining(self, t: float) -> float:
        """``E[T - t | T > t]`` -- memoryless within each mode."""
        p_long = self.posterior_long(t)
        return p_long * self.tau_long + (1 - p_long) * self.tau_short

    def mean(self) -> float:
        """Unconditional mean idle length."""
        return self.w * self.tau_short + (1 - self.w) * self.tau_long

    # -- fitting -----------------------------------------------------------------

    @classmethod
    def fit(cls, idle_lengths, n_iterations: int = 50) -> "GeometricMixture":
        """Fit by a small EM loop on observed idle lengths.

        Degenerates gracefully: near-homogeneous samples produce two
        nearly equal modes (the policy then behaves like the simple
        expected-value rule).
        """
        x = np.asarray(list(idle_lengths), dtype=float)
        if x.size < 2:
            raise ConfigurationError("need at least two idle samples to fit")
        if np.any(x < 0):
            raise ConfigurationError("idle lengths cannot be negative")
        x = np.maximum(x, 1e-6)
        # Moment-based initialization: split at the median.
        median = float(np.median(x))
        short = x[x <= median]
        long_ = x[x > median]
        tau_s = max(float(short.mean()), 1e-3) if short.size else median
        tau_l = max(float(long_.mean()), tau_s) if long_.size else tau_s
        w = 0.5
        for _ in range(n_iterations):
            # E step: responsibility of the short mode per sample.
            p_s = w / tau_s * np.exp(-x / tau_s)
            p_l = (1 - w) / tau_l * np.exp(-x / tau_l)
            total = p_s + p_l
            total[total == 0] = 1e-300
            r = p_s / total
            # M step.
            w = float(np.clip(r.mean(), 1e-6, 1 - 1e-6))
            tau_s = max(float((r * x).sum() / max(r.sum(), 1e-12)), 1e-3)
            tau_l = max(
                float(((1 - r) * x).sum() / max((1 - r).sum(), 1e-12)), tau_s
            )
        return cls(w=w, tau_short=tau_s, tau_long=tau_l)


def optimal_timeout(
    mixture: GeometricMixture,
    break_even: float,
    horizon: float | None = None,
    resolution: float = 0.1,
) -> float | None:
    """First elapsed time where sleeping becomes profitable in expectation.

    Scans a grid and returns the first ``t`` with
    ``E[remaining | survived t] >= break_even``, or ``None`` when no such
    point exists within the horizon (never sleep).  ``t = 0`` means
    sleep immediately -- the posterior mean already clears break-even.
    """
    if break_even < 0:
        raise ConfigurationError("break-even time cannot be negative")
    if resolution <= 0:
        raise ConfigurationError("resolution must be positive")
    top = horizon if horizon is not None else 4 * mixture.tau_long
    t = 0.0
    while t <= top:
        if mixture.expected_remaining(t) >= break_even:
            return t
        t += resolution
    return None


class StochasticDPMPolicy(DPMPolicy):
    """Online stochastic DPM: refit the mixture, derive the timeout.

    Parameters
    ----------
    params:
        Device parameters (break-even threshold).
    refit_every:
        Refit the mixture after this many observed idle periods.
    warmup:
        Before enough samples exist, fall back to a plain break-even
        timeout (the 2-competitive choice).
    """

    def __init__(
        self,
        params: DeviceParams,
        refit_every: int = 8,
        warmup: int = 4,
        resolution: float = 0.1,
    ) -> None:
        super().__init__(params)
        if refit_every < 1 or warmup < 2:
            raise ConfigurationError("refit_every >= 1 and warmup >= 2 required")
        self.refit_every = refit_every
        self.warmup = warmup
        self.resolution = resolution
        self._samples: list[float] = []
        self._mixture: GeometricMixture | None = None
        self._timeout: float | None = params.break_even

    @property
    def mixture(self) -> GeometricMixture | None:
        """The current fitted idle-length model (None during warm-up)."""
        return self._mixture

    @property
    def current_timeout(self) -> float | None:
        """The timeout now in force (None = never sleep)."""
        return self._timeout

    def on_idle_start(self) -> IdleDecision:
        if self._timeout is None:
            return self._count(IdleDecision(sleep=False))
        return self._count(IdleDecision(sleep=True, sleep_after=self._timeout))

    def on_idle_end(self, t_idle: float) -> None:
        self._samples.append(t_idle)
        n = len(self._samples)
        if n >= self.warmup and n % self.refit_every == 0:
            self._mixture = GeometricMixture.fit(self._samples)
            self._timeout = optimal_timeout(
                self._mixture, self.params.break_even, resolution=self.resolution
            )

    def reset(self) -> None:
        super().reset()
        self._samples.clear()
        self._mixture = None
        self._timeout = self.params.break_even
