"""TaskSlot / LoadTrace container tests."""

import pytest

from repro.errors import TraceError
from repro.workload.trace import LoadTrace, TaskSlot


@pytest.fixture
def trace() -> LoadTrace:
    return LoadTrace(
        [
            TaskSlot(10.0, 3.0, 1.2),
            TaskSlot(20.0, 3.0, 1.0),
            TaskSlot(15.0, 4.0, 1.1),
        ],
        name="t3",
    )


class TestTaskSlot:
    def test_length(self):
        assert TaskSlot(10.0, 3.0, 1.2).length == 13.0

    def test_active_charge(self):
        assert TaskSlot(10.0, 3.0, 1.2).active_charge == pytest.approx(3.6)

    def test_rejects_negative_idle(self):
        with pytest.raises(TraceError):
            TaskSlot(-1.0, 3.0, 1.2)

    def test_rejects_zero_active(self):
        with pytest.raises(TraceError):
            TaskSlot(10.0, 0.0, 1.2)

    def test_rejects_negative_current(self):
        with pytest.raises(TraceError):
            TaskSlot(10.0, 3.0, -0.1)

    def test_zero_idle_allowed(self):
        assert TaskSlot(0.0, 3.0, 1.2).t_idle == 0.0


class TestLoadTrace:
    def test_sequence_protocol(self, trace):
        assert len(trace) == 3
        assert trace[1].t_idle == 20.0
        assert [s.t_active for s in trace] == [3.0, 3.0, 4.0]

    def test_slice_returns_trace(self, trace):
        sub = trace[:2]
        assert isinstance(sub, LoadTrace)
        assert len(sub) == 2

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            LoadTrace([])

    def test_duration(self, trace):
        assert trace.duration == pytest.approx(55.0)

    def test_idle_active_split(self, trace):
        assert trace.idle_time == 45.0
        assert trace.active_time == 10.0
        assert trace.duty_cycle == pytest.approx(10 / 55)

    def test_means(self, trace):
        assert trace.mean_idle() == pytest.approx(15.0)
        assert trace.mean_active() == pytest.approx(10 / 3)

    def test_mean_active_current_weighted(self, trace):
        expected = (1.2 * 3 + 1.0 * 3 + 1.1 * 4) / 10
        assert trace.mean_active_current() == pytest.approx(expected)

    def test_peak_current(self, trace):
        assert trace.peak_current == 1.2

    def test_average_current(self, trace):
        q = 1.2 * 3 + 1.0 * 3 + 1.1 * 4 + 0.2 * 45
        assert trace.average_current(0.2) == pytest.approx(q / 55)

    def test_average_current_rejects_negative_idle(self, trace):
        with pytest.raises(TraceError):
            trace.average_current(-0.1)

    def test_equality_and_hash(self, trace):
        same = LoadTrace(list(trace), name="other-name")
        assert trace == same
        assert hash(trace) == hash(same)

    def test_truncate(self, trace):
        cut = trace.truncate(40.0)
        assert len(cut) == 2
        assert cut.duration <= 40.0

    def test_truncate_too_small_rejected(self, trace):
        with pytest.raises(TraceError):
            trace.truncate(5.0)

    def test_scaled(self, trace):
        doubled = trace.scaled(idle=2.0)
        assert doubled.idle_time == pytest.approx(90.0)
        assert doubled.active_time == pytest.approx(10.0)

    def test_scaled_rejects_nonpositive(self, trace):
        with pytest.raises(TraceError):
            trace.scaled(idle=0.0)


class TestSerialization:
    def test_csv_roundtrip(self, trace):
        back = LoadTrace.from_csv(trace.to_csv())
        assert back == trace

    def test_csv_bad_header_rejected(self):
        with pytest.raises(TraceError):
            LoadTrace.from_csv("a,b,c\n1,2,3\n")

    def test_csv_bad_row_rejected(self, trace):
        text = trace.to_csv() + "not,a,number\n"
        with pytest.raises(TraceError):
            LoadTrace.from_csv(text)

    def test_json_roundtrip(self, trace):
        back = LoadTrace.from_json(trace.to_json())
        assert back == trace
        assert back.name == "t3"

    def test_json_malformed_rejected(self):
        with pytest.raises(TraceError):
            LoadTrace.from_json("{\"slots\": [{\"bad\": 1}]}")
        with pytest.raises(TraceError):
            LoadTrace.from_json("not json at all")

    def test_repr(self, trace):
        assert "t3" in repr(trace)
        assert "3 slots" in repr(trace)
