"""DC-DC converter model tests."""

import pytest

from repro.errors import ConfigurationError, RangeError
from repro.power.converter import (
    IdealConverter,
    PFMConverter,
    PWMConverter,
    PWMPFMConverter,
)


class TestIdeal:
    def test_lossless(self):
        c = IdealConverter()
        assert c.input_power(10.0) == 10.0
        assert c.efficiency(10.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(RangeError):
            IdealConverter().input_power(-1.0)


class TestPWM:
    def test_fixed_loss_dominates_light_load(self):
        c = PWMConverter(eta_conduction=0.96, p_fixed=0.3)
        assert c.efficiency(0.5) < 0.65

    def test_heavy_load_near_conduction_efficiency(self):
        c = PWMConverter(eta_conduction=0.96, p_fixed=0.3)
        assert c.efficiency(20.0) == pytest.approx(0.96 * 20 / 20.3, rel=1e-9)

    def test_zero_load_still_draws(self):
        c = PWMConverter(p_fixed=0.3)
        assert c.input_power(0.0) > 0

    def test_efficiency_zero_at_zero_load(self):
        assert PWMConverter().efficiency(0.0) == 0.0

    def test_rejects_bad_conduction(self):
        with pytest.raises(ConfigurationError):
            PWMConverter(eta_conduction=0.0)

    def test_rejects_negative_fixed(self):
        with pytest.raises(ConfigurationError):
            PWMConverter(p_fixed=-0.1)


class TestPFM:
    def test_flat_efficiency(self):
        c = PFMConverter(eta_flat=0.94)
        assert c.efficiency(0.5) == pytest.approx(0.94)
        assert c.efficiency(15.0) == pytest.approx(0.94)

    def test_rejects_bad_eta(self):
        with pytest.raises(ConfigurationError):
            PFMConverter(eta_flat=1.5)


class TestPWMPFM:
    def test_takes_the_better_mode(self):
        c = PWMPFMConverter()
        for p in (0.5, 2.0, 10.0, 18.0):
            assert c.input_power(p) == min(
                c.pwm.input_power(p), c.pfm.input_power(p)
            )

    def test_pfm_at_light_load(self):
        assert PWMPFMConverter().mode(1.0) == "pfm"

    def test_pwm_at_heavy_load(self):
        assert PWMPFMConverter().mode(18.0) == "pwm"

    def test_high_efficiency_over_whole_range(self):
        # Paper: "very high efficiency (~85%) for the entire load range".
        c = PWMPFMConverter()
        for p in (0.5, 1.0, 5.0, 10.0, 18.0):
            assert c.efficiency(p) >= 0.85

    def test_efficiency_continuity_at_crossover(self):
        c = PWMPFMConverter()
        # Find crossover by scanning; efficiency must not jump.
        prev = c.efficiency(0.2)
        p = 0.3
        while p < 20.0:
            cur = c.efficiency(p)
            assert abs(cur - prev) < 0.05
            prev = cur
            p += 0.1
