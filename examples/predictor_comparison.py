#!/usr/bin/env python3
"""Predictor bake-off: how much does better idle prediction buy FC-DPM?

The paper builds on the simplest exponential-average predictor [ref 1]
and notes any DPM policy plugs in.  This example races four predictors
(exponential, last-value, AR regression, learning tree) on two
workloads -- the scene-correlated MPEG trace and a heavy-tailed Pareto
workload -- reporting both prediction accuracy and the fuel it costs.

Run:  python examples/predictor_comparison.py
"""

from repro import PowerManager, camcorder_device_params
from repro.analysis.report import format_table
from repro.core.fc_dpm import FCDPMController
from repro.dpm.predictive import PredictiveShutdownPolicy
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.prediction import (
    ExponentialAveragePredictor,
    LastValuePredictor,
    LearningTreePredictor,
    RegressionPredictor,
)
from repro.sim import SlotSimulator
from repro.workload import generate_mpeg_trace, pareto_slots

PREDICTORS = {
    "exponential(0.5)": lambda: ExponentialAveragePredictor(factor=0.5),
    "last-value": lambda: LastValuePredictor(initial=10.0),
    "regression(AR2)": lambda: RegressionPredictor(order=2, window=24),
    "learning-tree": lambda: LearningTreePredictor(
        bin_edges=[6.0, 9.0, 12.0, 15.0, 18.0, 24.0], depth=2, initial=12.0
    ),
}


def build_manager(name: str, factory) -> PowerManager:
    dev = camcorder_device_params()
    model = LinearSystemEfficiency()
    predictor = factory()
    mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
    mgr.name = name
    mgr.policy = PredictiveShutdownPolicy(dev, predictor)
    controller = FCDPMController(
        model,
        active_length_predictor=ExponentialAveragePredictor(factor=0.5),
        idle_length_predictor=predictor,
        device=dev,
    )
    controller.observes_idle = False
    mgr.controller = controller
    return mgr


def race(trace, label: str) -> None:
    rows = [["predictor", "fuel (A-s)", "idle MAE (s)", "sleep rate"]]
    for name, factory in PREDICTORS.items():
        mgr = build_manager(name, factory)
        result = SlotSimulator(mgr).run(trace)
        mae = mgr.policy.predictor.mean_absolute_error
        rows.append(
            [
                name,
                f"{result.fuel:.1f}",
                f"{mae:.2f}",
                f"{mgr.policy.sleep_rate:.2f}",
            ]
        )
    print(format_table(rows, title=f"workload: {label}"))
    print()


def main() -> None:
    race(generate_mpeg_trace(), "28-min MPEG trace (scene-correlated idles)")
    race(
        pareto_slots(
            n_slots=150, idle_scale=6.0, idle_shape=1.6, t_active=3.0,
            i_active=1.2, idle_cap=120.0, seed=42,
        ),
        "heavy-tailed Pareto idles (stresses the filter)",
    )
    print("reading: on the smooth MPEG workload the predictor barely matters;")
    print("heavy tails reward pattern-aware predictors -- but the fuel gap")
    print("stays small because FC-DPM re-plans at every active-period start.")


if __name__ == "__main__":
    main()
