"""CLI entry-point tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "conv-dpm" in out and "fc-dpm" in out
        assert "lifetime" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "max power point" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "13.45" in out

    def test_sweep_beta(self, capsys):
        assert main(["sweep", "beta"]) == 0
        assert "sweep: beta" in capsys.readouterr().out

    def test_sweep_unknown(self, capsys):
        assert main(["sweep", "nope"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seed_flag(self, capsys):
        assert main(["--seed", "3", "table2"]) == 0

    def test_export(self, capsys, tmp_path):
        target = tmp_path / "artifacts"
        assert main(["export", str(target)]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 5
        assert (target / "tables_2_3.csv").exists()

    def test_lifetime(self, capsys):
        assert main(["lifetime"]) == 0
        out = capsys.readouterr().out
        assert "run-to-empty" in out
        assert "fc-dpm" in out


class TestRuntimeFlags:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FCDPM_CACHE_DIR", str(tmp_path / "cache"))

    def test_workers_flag_output_identical(self, capsys):
        assert main(["--no-cache", "sweep", "beta"]) == 0
        serial = capsys.readouterr().out
        assert main(["--no-cache", "--workers", "2", "sweep", "beta"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_round_trip(self, capsys, tmp_path):
        assert main(["table2"]) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "cache").exists()
        assert main(["table2"]) == 0
        assert capsys.readouterr().out == first

    def test_no_cache_writes_nothing(self, capsys, tmp_path):
        assert main(["--no-cache", "table2"]) == 0
        assert not (tmp_path / "cache").exists()

    def test_workers_zero_means_all_cores(self, capsys):
        assert main(["--no-cache", "--workers", "0", "sweep", "recharge"]) == 0
        assert "sweep: recharge" in capsys.readouterr().out
