"""Headline acceptance tests: every number the paper states, in one place.

Closed-form numbers must match to ~3 significant digits; trace-driven
numbers must match in shape (ordering, rough magnitude) because the real
camcorder trace is substituted by a calibrated synthetic one.
"""

import pytest

from repro.analysis.figures import fig4_motivational
from repro.analysis.tables import table2, table3
from repro.core.optimizer import optimal_flat_current, solve_horizon, solve_slot
from repro.core.setting import SlotProblem
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.fuelcell.stack import FCStack


@pytest.fixture(scope="module")
def model():
    return LinearSystemEfficiency()


@pytest.fixture(scope="module")
def t2():
    return table2()


@pytest.fixture(scope="module")
def t3():
    return table3()


class TestSection2Characterization:
    def test_stack_open_circuit_18_2V(self):
        assert FCStack.bcs_20w().open_circuit_voltage == pytest.approx(18.2)

    def test_stack_capacity_about_20W(self):
        assert FCStack.bcs_20w().power_capacity == pytest.approx(20, abs=1.0)

    def test_eq4_coefficient(self, model):
        # Ifc = 0.32 * IF / (0.45 - 0.13 IF).
        assert model.k_fuel == pytest.approx(0.32)
        assert model.fc_current(1.0) == pytest.approx(0.32 / 0.32)


class TestSection32Motivational:
    def test_setting_b_16_As(self, model):
        r = fig4_motivational()
        assert r.fuel["asap-dpm"] == pytest.approx(16.0, abs=0.1)

    def test_setting_c_13_45_As(self, model):
        r = fig4_motivational()
        assert r.fuel["fc-dpm"] == pytest.approx(13.45, abs=0.01)

    def test_if_0_53_ifc_0_448(self, model):
        p = SlotProblem(20, 10, 0.2, 1.2, c_max=200.0)
        s = solve_slot(p, model)
        assert s.if_idle == pytest.approx(0.533, abs=0.001)
        assert s.ifc_idle == pytest.approx(0.448, abs=0.001)

    def test_62_6_percent_vs_conv(self, model):
        r = fig4_motivational(conv_uses_paper_ifc=True)
        assert r.fc_vs_conv_saving == pytest.approx(0.626, abs=0.005)

    def test_15_9_percent_vs_asap(self, model):
        r = fig4_motivational()
        assert r.fc_vs_asap_saving == pytest.approx(0.159, abs=0.005)

    def test_delivered_energy_identical_b_and_c(self, model):
        # Paper: both deliver VF*(IF,i*Ti + IF,a*Ta) = 192 J.
        r = fig4_motivational()
        for key in ("asap-dpm", "fc-dpm"):
            assert 12.0 * r.plans[key].delivered_charge() == pytest.approx(192.0)


class TestSection5Tables:
    def test_table2_shape(self, t2):
        n = t2.normalized
        assert n["fc-dpm"] < n["asap-dpm"] < 0.55
        assert n["asap-dpm"] == pytest.approx(0.408, abs=0.06)
        assert n["fc-dpm"] == pytest.approx(0.308, abs=0.06)

    def test_table3_shape(self, t3):
        n = t3.normalized
        assert n["fc-dpm"] < n["asap-dpm"]
        assert n["asap-dpm"] == pytest.approx(0.491, abs=0.08)
        assert n["fc-dpm"] == pytest.approx(0.415, abs=0.08)

    def test_headline_lifetime_extension(self, t2):
        # Paper: "up to 32% more system lifetime" = 1.32x vs ASAP.  Our
        # synthetic trace yields a somewhat smaller but clearly >1 factor.
        assert t2.fc_vs_asap_lifetime > 1.12

    def test_exp2_saving_smaller_than_exp1(self, t2, t3):
        assert 0 < t3.fc_vs_asap_saving < t2.fc_vs_asap_saving


class TestOfflineBound:
    def test_fc_dpm_within_10pct_of_flat_lower_bound(self, t2, model):
        """FC-DPM (online, predictive) must be near the offline optimum.

        Dropping the capacity and range constraints can only lower the
        optimum, so the globally flat schedule at the trace's average
        load current is a rigorous lower bound on any policy's fuel.
        FC-DPM has to land within 10 % of it -- far stronger than the
        paper's baseline comparison.
        """
        fc = t2.results["fc-dpm"]
        avg_load = fc.load_charge / fc.duration
        lower_bound = model.fc_current(avg_load) * fc.duration
        assert fc.fuel <= lower_bound * 1.10

    def test_horizon_solver_agrees_on_coarse_slots(self, model):
        """Sanity: the convex horizon solve reproduces the flat bound
        when storage is effectively unconstrained."""
        durations = [17.0, 20.0, 15.0, 22.0]
        demands = [8.0, 9.5, 7.0, 10.0]
        outputs, fuel = solve_horizon(
            durations, demands, model, c_ini=50.0, c_max=1e4
        )
        flat = sum(demands) / sum(durations)
        assert fuel == pytest.approx(
            model.fc_current(flat) * sum(durations), rel=1e-6
        )


class TestEquationConsistency:
    def test_eq11_equals_eq13_when_balanced(self, model):
        p_eq11 = SlotProblem(20, 10, 0.2, 1.2, c_max=200.0)
        p_eq13 = SlotProblem(20, 10, 0.2, 1.2, c_ini=4.0, c_end=4.0, c_max=200.0)
        assert optimal_flat_current(p_eq11) == pytest.approx(
            optimal_flat_current(p_eq13)
        )
