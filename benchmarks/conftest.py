"""Benchmark-harness configuration.

Every bench regenerates one table or figure of the paper, prints the
rows/series the paper reports (visible with ``pytest benchmarks/ -s``,
and always written to ``benchmarks/out/``), and times the underlying
computation with pytest-benchmark.
"""

from __future__ import annotations

import json
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    """Directory where benches drop their regenerated tables/series."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(out_dir):
    """Print a report block and mirror it to benchmarks/out/<name>.txt.

    Pass ``data=`` (any JSON-serializable mapping) to also drop a
    machine-readable ``<name>.json`` next to the text -- CI uploads
    those as artifacts so speedup numbers are diffable across runs.
    """

    def _emit(name: str, text: str, data: dict | None = None) -> None:
        print(f"\n{text}\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (out_dir / f"{name}.json").write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n"
            )

    return _emit
