"""Table 2 / Table 3 reproduction tests (paper-number acceptance bands)."""

import pytest

from repro.analysis.tables import PAPER_TABLE2, PAPER_TABLE3, table2, table3


@pytest.fixture(scope="module")
def t2():
    return table2()


@pytest.fixture(scope="module")
def t3():
    return table3()


class TestTable2:
    def test_ordering(self, t2):
        n = t2.normalized
        assert n["conv-dpm"] == 1.0
        assert n["fc-dpm"] < n["asap-dpm"] < n["conv-dpm"]

    def test_asap_close_to_paper(self, t2):
        # Paper: 40.8 %.  Accept +-6 points (synthetic trace substitution).
        assert t2.normalized["asap-dpm"] == pytest.approx(0.408, abs=0.06)

    def test_fc_close_to_paper(self, t2):
        # Paper: 30.8 %.
        assert t2.normalized["fc-dpm"] == pytest.approx(0.308, abs=0.06)

    def test_fc_saving_vs_asap_positive_double_digit(self, t2):
        # Paper: 24.4 %.  The shape requirement: double-digit saving.
        assert 0.10 <= t2.fc_vs_asap_saving <= 0.35

    def test_lifetime_extension_above_1_1(self, t2):
        # Paper: 1.32x.
        assert t2.fc_vs_asap_lifetime > 1.1

    def test_no_deficit(self, t2):
        for r in t2.results.values():
            assert r.deficit < 0.05 * r.load_charge

    def test_rows_format(self, t2):
        rows = t2.rows()
        assert rows[0][0] == "DPM policy"
        assert len(rows) == 4

    def test_paper_reference_values_included(self, t2):
        assert t2.paper == PAPER_TABLE2


class TestTable3:
    def test_ordering(self, t3):
        n = t3.normalized
        assert n["fc-dpm"] < n["asap-dpm"] < n["conv-dpm"] == 1.0

    def test_asap_close_to_paper(self, t3):
        # Paper: 49.1 %.
        assert t3.normalized["asap-dpm"] == pytest.approx(0.491, abs=0.08)

    def test_fc_close_to_paper(self, t3):
        # Paper: 41.5 %.
        assert t3.normalized["fc-dpm"] == pytest.approx(0.415, abs=0.08)

    def test_paper_reference_values_included(self, t3):
        assert t3.paper == PAPER_TABLE3


class TestCrossExperiment:
    def test_exp2_saving_smaller_than_exp1(self, t2, t3):
        # Paper Section 5.2 explains why the Exp-2 saving (15.5 %) is
        # smaller than Exp-1's (24.4 %): less idle-current contrast and
        # higher average currents.  The reproduction must preserve that.
        assert t3.fc_vs_asap_saving < t2.fc_vs_asap_saving

    def test_exp2_normalized_fuel_higher(self, t2, t3):
        # Both non-conv policies burn relatively more fuel in Exp 2.
        assert t3.normalized["asap-dpm"] > t2.normalized["asap-dpm"]
        assert t3.normalized["fc-dpm"] > t2.normalized["fc-dpm"]

    def test_seed_robustness(self):
        # The qualitative result must not depend on the trace seed.
        for seed in (1, 99):
            r = table2(seed=seed)
            assert r.normalized["fc-dpm"] < r.normalized["asap-dpm"]
