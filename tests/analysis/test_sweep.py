"""Ablation-sweep tests (the DESIGN.md design-choice studies)."""

import pytest

from repro.analysis.sweep import (
    efficiency_slope_sweep,
    predictor_sweep,
    recharge_threshold_sweep,
    storage_capacity_sweep,
)
from repro.errors import ConfigurationError


class TestStorageSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return storage_capacity_sweep(capacities=(2.0, 6.0, 24.0))

    def test_fc_dpm_improves_with_capacity(self, sweep):
        fc = [sweep[c]["fc-dpm"] for c in (2.0, 6.0, 24.0)]
        assert fc[-1] <= fc[0] + 1e-6

    def test_fc_beats_asap_at_every_capacity(self, sweep):
        for c, row in sweep.items():
            assert row["fc-dpm"] < row["asap-dpm"], f"capacity {c}"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            storage_capacity_sweep(capacities=(0.0,))


class TestPredictorSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return predictor_sweep()

    def test_all_predictors_present(self, sweep):
        assert set(sweep) == {
            "fc-exponential",
            "fc-lastvalue",
            "fc-regression",
            "fc-learningtree",
        }

    def test_all_beat_half_of_conv(self, sweep):
        # Any sane predictor keeps FC-DPM far below Conv-DPM.
        for name, value in sweep.items():
            assert value < 0.5, name

    def test_spread_is_small(self, sweep):
        # Predictor choice is a second-order effect on this workload.
        values = list(sweep.values())
        assert max(values) - min(values) < 0.05


class TestEfficiencySlopeSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return efficiency_slope_sweep(betas=(0.0, 0.13, 0.24))

    def test_no_saving_without_slope(self, sweep):
        # beta = 0: linear fuel map, flattening buys (almost) nothing.
        assert abs(sweep[0.0]) < 0.02

    def test_saving_grows_with_slope(self, sweep):
        assert sweep[0.0] < sweep[0.13] < sweep[0.24]

    def test_paper_beta_gives_double_digit_saving(self, sweep):
        assert sweep[0.13] > 0.10


class TestRechargeSweep:
    def test_threshold_effect_is_mild(self):
        sweep = recharge_threshold_sweep(thresholds=(0.1, 0.5, 0.9))
        values = list(sweep.values())
        assert max(values) - min(values) < 0.10
        # All remain far below Conv-DPM.
        assert all(v < 0.7 for v in values)
