"""Battery-only source: the degenerate no-generator plant."""

from __future__ import annotations

import pytest

from repro.power.battery_only import BatteryOnlySource
from repro.power.storage import LiIonBattery, SuperCapacitor


def _source(capacity: float = 100.0) -> BatteryOnlySource:
    return BatteryOnlySource(
        SuperCapacitor(capacity=capacity, initial_charge=capacity)
    )


class TestBatteryOnly:
    def test_no_fuel_is_ever_consumed(self):
        src = _source()
        for _ in range(10):
            src.step(0.5, 5.0)
        assert src.total_fuel == 0.0
        assert src.average_fuel_rate == 0.0

    def test_load_drains_storage_coulomb_for_coulomb(self):
        src = _source(100.0)
        step = src.step(1.0, 10.0)
        assert step.i_f == 0.0
        assert step.storage_delta == pytest.approx(-10.0)
        assert src.storage.charge == pytest.approx(90.0)
        assert src.total_load_charge == pytest.approx(10.0)

    def test_output_commands_are_ignored(self):
        src = _source()
        assert src.set_fc_output(1.2) == 0.0
        step = src.step(0.5, 2.0)
        assert step.i_f == 0.0
        assert step.stack_currents == ()

    def test_overdraw_lands_in_deficit_ledger(self):
        src = _source(5.0)
        step = src.step(1.0, 10.0)  # needs 10 A-s from a 5 A-s store
        assert step.deficit == pytest.approx(5.0)
        assert src.storage.charge == 0.0

    def test_source_kind_tag(self):
        assert _source().kind == "battery"
        assert _source().step(0.1, 1.0).source_kind == "battery"

    def test_works_with_liion_nonlinearity(self):
        src = BatteryOnlySource(
            LiIonBattery(capacity=100.0, initial_charge=100.0, rated_current=0.5,
                         peukert=1.2)
        )
        src.step(1.0, 10.0)  # above rated current: Peukert waste applies
        drawn = 100.0 - src.storage.charge
        assert drawn > 10.0

    def test_custom_rail_voltage_scales_delivered_energy(self):
        src = BatteryOnlySource(
            SuperCapacitor(capacity=100.0, initial_charge=100.0), v_out=5.0
        )
        src.step(1.0, 10.0)
        assert src.v_out == 5.0
        assert src.delivered_energy == pytest.approx(5.0 * 10.0)
