"""Fuel-cell substrate: stack physics, efficiency models, fuel accounting.

The paper characterizes a BCS 20 W, 20-cell room-temperature hydrogen PEM
stack (Fig. 2 / Fig. 3) and reduces its *system* efficiency to a linear
law ``eta_s = alpha - beta * IF`` used by the optimization framework.
This subpackage provides both layers:

* a physics-based polarization model calibrated to the paper's anchor
  points, used to regenerate Fig. 2 and Fig. 3, and
* the calibrated linear efficiency law plus the ``Ifc(IF)`` fuel map
  (Eq. 3/4) that the FC-DPM policy math builds on.
"""

from .polarization import PolarizationCurve, PolarizationParams, BCS_20W_CELL
from .stack import FCStack
from .efficiency import (
    SystemEfficiencyModel,
    LinearSystemEfficiency,
    ConstantSystemEfficiency,
    TabulatedSystemEfficiency,
    ComposedSystemEfficiency,
    StackEfficiency,
)
from .fuel import FuelTank, GibbsFuelModel
from .controller import FanController, OnOffFanController, ProportionalFanController
from .system import FCSystem
from .thermal import StackThermalModel, ThermalParams, THERMONEUTRAL_CELL_VOLTAGE
from .purge import PurgeModel, PurgedFuelModel, calibrated_purge_model, ideal_zeta
from .sizing import SizingResult, required_fc_output, downsizing_curve

__all__ = [
    "PolarizationCurve",
    "PolarizationParams",
    "BCS_20W_CELL",
    "FCStack",
    "SystemEfficiencyModel",
    "LinearSystemEfficiency",
    "ConstantSystemEfficiency",
    "TabulatedSystemEfficiency",
    "ComposedSystemEfficiency",
    "StackEfficiency",
    "FuelTank",
    "GibbsFuelModel",
    "FanController",
    "OnOffFanController",
    "ProportionalFanController",
    "FCSystem",
    "StackThermalModel",
    "ThermalParams",
    "THERMONEUTRAL_CELL_VOLTAGE",
    "PurgeModel",
    "PurgedFuelModel",
    "calibrated_purge_model",
    "ideal_zeta",
    "SizingResult",
    "required_fc_output",
    "downsizing_curve",
]
