"""Property-based bit-exactness gates for the stacked 2D batch kernel.

Three layers of the stacked route carry their own exactness contract:
the batched clamp recurrence must equal the 1D recurrence per row, the
batched predictor scan must equal the 1D scan per row, and the whole
``simulate_batch`` stacked route must equal the serial per-seed loop on
every result field.  Hypothesis drives ragged shapes, clamp-dense
deltas, and degenerate rescan budgets at each layer; ``==`` is the only
comparison -- a single differing bit fails.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction.exponential import (
    exponential_average_scan,
    exponential_average_scan_batch,
)
from repro.scenario import get_scenario
from repro.sim.stacked import clamped_cumsum_batch
from repro.sim.vectorized import clamped_cumsum, simulate_batch
from repro.workload.trace import LoadTrace, TaskSlot

ragged_rows = st.lists(
    st.lists(
        st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        min_size=0,
        max_size=15,
    ),
    min_size=1,
    max_size=5,
)


def _pad(rows):
    width = max((len(r) for r in rows), default=0)
    deltas = np.zeros((len(rows), width), dtype=float)
    for i, r in enumerate(rows):
        deltas[i, : len(r)] = r
    n_valid = np.array([len(r) for r in rows], dtype=np.intp)
    return deltas, n_valid


@given(
    rows=ragged_rows,
    initial=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    # Small capacities make clamp events dense, exercising the rescan
    # budget and the sequential tail; large ones leave rows clamp-free.
    capacity=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
    max_rescans=st.sampled_from([0, 1, 2, 8]),
)
@settings(max_examples=200, deadline=None)
def test_clamped_cumsum_batch_matches_per_row_1d(
    rows, initial, capacity, max_rescans
):
    initial = min(initial, capacity)
    deltas, n_valid = _pad(rows)
    charges, bled, deficit = clamped_cumsum_batch(
        deltas, n_valid, initial, capacity, max_rescans=max_rescans
    )
    for r, row in enumerate(rows):
        c1, b1, d1 = clamped_cumsum(
            np.asarray(row, dtype=float),
            initial,
            capacity,
            max_rescans=max_rescans,
        )
        n = len(row)
        # Bit-exact: compare the raw float64 bits, not values, so that
        # even a -0.0 vs +0.0 drift would fail.
        assert (
            charges[r, : n + 1].view(np.uint64).tolist()
            == c1.view(np.uint64).tolist()
        )
        assert bled[r].view(np.uint64) == np.float64(b1).view(np.uint64)
        assert deficit[r].view(np.uint64) == np.float64(d1).view(np.uint64)


@given(
    rows=st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
            min_size=0,
            max_size=12,
        ),
        min_size=1,
        max_size=5,
    ),
    factor=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
    initial=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_scan_batch_matches_per_row_1d(rows, factor, initial):
    obs, n_valid = _pad(rows)
    preds, finals = exponential_average_scan_batch(factor, initial, obs, n_valid)
    for r, row in enumerate(rows):
        p1, f1 = exponential_average_scan(factor, initial, row)
        n = len(row)
        assert preds[r, :n].tolist() == p1.tolist()
        assert finals[r] == f1


slot_lists = st.lists(
    st.builds(
        TaskSlot,
        t_idle=st.floats(min_value=2.0, max_value=60.0, allow_nan=False),
        t_active=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
        i_active=st.floats(min_value=0.1, max_value=1.3, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
)


@given(traces=st.lists(slot_lists, min_size=2, max_size=4))
@settings(max_examples=10, deadline=None)
def test_stacked_batch_matches_serial_loop(traces):
    """Stacked vs loop on adversarial ragged traces, every field exact."""
    sc = get_scenario("exp2-conv-dpm")
    seeds = list(range(len(traces)))
    built = {s: LoadTrace(t) for s, t in zip(seeds, traces)}
    policies = ["conv-dpm", "asap-dpm", "static:0.8", "fc-dpm"]
    # Adversarial traces may overwhelm the storage; accounting is under
    # test, not sizing, so the deficit guard is disabled.
    a = simulate_batch(
        sc, seeds, policies, traces=built, stacked=True,
        max_deficit_fraction=1.0,
    )
    b = simulate_batch(
        sc, seeds, policies, traces=built, stacked=False,
        max_deficit_fraction=1.0,
    )
    assert a.keys() == b.keys()
    for seed in seeds:
        for name in policies:
            ra, rb = a[seed][name], b[seed][name]
            assert dataclasses.asdict(ra) == dataclasses.asdict(rb), (seed, name)
