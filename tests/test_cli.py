"""CLI entry-point tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "conv-dpm" in out and "fc-dpm" in out
        assert "lifetime" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "max power point" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "13.45" in out

    def test_sweep_beta(self, capsys):
        assert main(["sweep", "beta"]) == 0
        assert "sweep: beta" in capsys.readouterr().out

    def test_sweep_unknown(self, capsys):
        assert main(["sweep", "nope"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seed_flag(self, capsys):
        assert main(["--seed", "3", "table2"]) == 0

    def test_export(self, capsys, tmp_path):
        target = tmp_path / "artifacts"
        assert main(["export", str(target)]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 6
        assert (target / "tables_2_3.csv").exists()
        assert (target / "manifest.json").exists()

    def test_lifetime(self, capsys):
        assert main(["lifetime"]) == 0
        out = capsys.readouterr().out
        assert "run-to-empty" in out
        assert "fc-dpm" in out


class TestRunCommand:
    def test_run_list_shows_registered_scenarios(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "exp1-fc-dpm" in out
        assert "exp2-conv-dpm" in out
        assert "exp1-fc-dpm-multistack" in out

    def test_run_without_scenario_lists_and_hints(self, capsys):
        assert main(["run"]) == 0
        out = capsys.readouterr().out
        assert "exp1-fc-dpm" in out
        assert "--scenario" in out

    def test_run_scenario_prints_metrics(self, capsys):
        assert main(["--no-cache", "run", "--scenario", "exp1-fc-dpm"]) == 0
        out = capsys.readouterr().out
        assert "exp1-fc-dpm" in out
        assert "fuel" in out and "deficit" in out

    def test_run_unknown_scenario_raises_with_known_names(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="exp1-fc-dpm"):
            main(["--no-cache", "run", "--scenario", "nope"])

    def test_run_results_are_cached(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("FCDPM_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["run", "--scenario", "exp2-fc-dpm"]) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "cache").exists()
        assert main(["run", "--scenario", "exp2-fc-dpm"]) == 0
        assert capsys.readouterr().out == first


class TestTraceCommand:
    def test_run_list_prints_spec_columns(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        header = next(
            ln for ln in out.splitlines() if ln.startswith("scenario")
        )
        for column in ("policy", "workload", "source", "description"):
            assert column in header
        names = [
            ln.split()[0]
            for ln in out.splitlines()
            if ln.strip().startswith("exp")
        ]
        assert names == sorted(names)

    def test_table2_alias_resolves(self, capsys):
        assert main(["--no-cache", "run", "--scenario", "table2"]) == 0
        out = capsys.readouterr().out
        assert "exp1-fc-dpm" in out

    def test_run_trace_writes_validated_bundle(self, capsys, tmp_path):
        from repro.obs import validate_trace_dir

        target = tmp_path / "trace-out"
        assert (
            main(["run", "--scenario", "exp1-conv-dpm", "--trace", str(target)])
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("wrote") == 3
        assert validate_trace_dir(target) == []
        # The bundle carries real simulation spans plus the run manifest.
        import json

        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["name"] == "run:exp1-conv-dpm"
        assert manifest["route"] in ("fast", "scalar")
        assert manifest["scenario"]["name"] == "exp1-conv-dpm"
        spans = [
            json.loads(line)
            for line in (target / "spans.jsonl").read_text().splitlines()
        ]
        names = {s["name"] for s in spans if s.get("type") == "span"}
        # The default (non --fast) traced run drives the scalar
        # simulator, which emits per-slot spans under the run root.
        assert "run" in names and "sim.slot" in names

    def test_trace_check_and_summary(self, capsys, tmp_path):
        target = tmp_path / "trace-out"
        assert (
            main(["run", "--scenario", "exp1-conv-dpm", "--trace", str(target)])
            == 0
        )
        capsys.readouterr()
        assert main(["trace", "check", str(target)]) == 0
        assert "ok" in capsys.readouterr().out
        assert main(["trace", "summary", str(target)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "metrics" in out

    def test_trace_check_fails_on_bad_directory(self, capsys, tmp_path):
        assert main(["trace", "check", str(tmp_path / "missing")]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestWorkersValidation:
    def test_negative_workers_rejected_with_clear_message(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--workers", "-1", "table2"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "workers must be >= 0" in err

    def test_non_integer_workers_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--workers", "two", "table2"])
        assert exc.value.code == 2
        assert "workers must be an integer" in capsys.readouterr().err


class TestRuntimeFlags:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FCDPM_CACHE_DIR", str(tmp_path / "cache"))

    def test_workers_flag_output_identical(self, capsys):
        assert main(["--no-cache", "sweep", "beta"]) == 0
        serial = capsys.readouterr().out
        assert main(["--no-cache", "--workers", "2", "sweep", "beta"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_round_trip(self, capsys, tmp_path):
        assert main(["table2"]) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "cache").exists()
        assert main(["table2"]) == 0
        assert capsys.readouterr().out == first

    def test_no_cache_writes_nothing(self, capsys, tmp_path):
        assert main(["--no-cache", "table2"]) == 0
        assert not (tmp_path / "cache").exists()

    def test_workers_zero_means_all_cores(self, capsys):
        assert main(["--no-cache", "--workers", "0", "sweep", "recharge"]) == 0
        assert "sweep: recharge" in capsys.readouterr().out


class TestExpCommand:
    def _define(self, tmp_path, capsys):
        state_dir = str(tmp_path / "experiments")
        assert main([
            "exp", "define", "demo", "--scenario", "exp2-fc-dpm",
            "--seeds", "0:2", "--policies", "conv-dpm,fc-dpm",
            "--fast", "--state-dir", state_dir,
        ]) == 0
        capsys.readouterr()
        return state_dir

    def test_define_run_status_report(self, tmp_path, capsys):
        state_dir = self._define(tmp_path, capsys)
        assert main(["exp", "run", "demo", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "executed 4" in out
        assert main(["exp", "status", "demo", "--state-dir", state_dir]) == 0
        assert "done" in capsys.readouterr().out
        assert main(["exp", "report", "demo", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "t00000" in out and "fuel" in out

    def test_abort_exits_3_and_resume_finishes(
        self, tmp_path, capsys, monkeypatch
    ):
        state_dir = self._define(tmp_path, capsys)
        monkeypatch.setenv("FCDPM_EXP_ABORT_AFTER", "2")
        assert main(["exp", "run", "demo", "--state-dir", state_dir]) == 3
        monkeypatch.delenv("FCDPM_EXP_ABORT_AFTER")
        capsys.readouterr()
        assert main(["exp", "resume", "demo", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "resumed 2" in out and "executed 2" in out

    def test_sharded_runs_then_merge(self, tmp_path, capsys):
        state_dir = self._define(tmp_path, capsys)
        for shard in ("1/2", "2/2"):
            assert main([
                "exp", "run", "demo", "--shard", shard,
                "--state-dir", state_dir,
            ]) == 0
        assert main(["exp", "merge", "demo", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard files" in out

    def test_define_with_ablation(self, tmp_path, capsys):
        state_dir = str(tmp_path / "experiments")
        assert main([
            "exp", "define", "sweep", "--kind", "sweep.beta",
            "--seeds", "3", "--ablate", "beta=0.0,0.13",
            "--state-dir", state_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "2 tasks" in out

    def test_define_accepts_sweep_shorthand_and_runs(self, tmp_path, capsys):
        # "--kind storage" is the analysis-layer shorthand for
        # "sweep.storage"; it must define runnable tasks, not a spec
        # whose every task fails with an unknown-kind error.
        state_dir = str(tmp_path / "experiments")
        assert main([
            "exp", "define", "short", "--kind", "storage",
            "--scenario", "exp2-fc-dpm", "--seeds", "4",
            "--ablate", "capacity=3,6", "--fast",
            "--state-dir", state_dir,
        ]) == 0
        assert "sweep.storage" in capsys.readouterr().out
        assert main(["exp", "run", "short", "--state-dir", state_dir]) == 0
        assert "executed 2, resumed 0, failed 0" in capsys.readouterr().out

    def test_define_unknown_kind_is_a_config_error(self, tmp_path, capsys):
        assert main([
            "exp", "define", "bogus", "--kind", "nope",
            "--state-dir", str(tmp_path / "experiments"),
        ]) == 2
        out = capsys.readouterr().out
        assert "unknown task kind" in out and "sweep.storage" in out

    def test_status_without_name_lists(self, tmp_path, capsys):
        state_dir = self._define(tmp_path, capsys)
        assert main(["exp", "status", "--state-dir", state_dir]) == 0
        assert "demo" in capsys.readouterr().out

    def test_missing_experiment_is_a_config_error(self, tmp_path, capsys):
        assert main([
            "exp", "run", "ghost", "--state-dir", str(tmp_path / "x"),
        ]) == 2
        assert "error:" in capsys.readouterr().out


class TestCacheCommand:
    def test_stats_and_selective_clear(self, tmp_path, capsys):
        state_dir = str(tmp_path / "experiments")
        main([
            "exp", "define", "c", "--scenario", "exp2-fc-dpm",
            "--seeds", "0:2", "--fast", "--state-dir", state_dir,
        ])
        main(["exp", "run", "c", "--state-dir", state_dir])
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "exp/scenario" in out
        assert main(["cache", "clear", "--namespace", "exp/scenario"]) == 0
        out = capsys.readouterr().out
        assert "removed 2 entries" in out
        assert main(["cache", "clear"]) == 0
        assert "all namespaces" in capsys.readouterr().out


class TestLiveWatchCommands:
    """exp run --live, exp watch, exp status --json, top."""

    def _define_and_run_live(self, tmp_path, capsys, shard=None):
        state_dir = str(tmp_path / "experiments")
        assert main([
            "exp", "define", "live", "--scenario", "exp2-fc-dpm",
            "--seeds", "0:2", "--policies", "conv-dpm,fc-dpm",
            "--fast", "--state-dir", state_dir,
        ]) == 0
        argv = [
            "exp", "run", "live", "--live", "--live-interval", "0.2",
            "--state-dir", state_dir,
        ]
        if shard:
            argv += ["--shard", shard]
        assert main(argv) == 0
        capsys.readouterr()
        return state_dir

    def test_live_run_then_watch_once(self, tmp_path, capsys):
        state_dir = self._define_and_run_live(tmp_path, capsys)
        assert main([
            "exp", "watch", "live", "--once", "--state-dir", state_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "final" in out and "4" in out

    def test_watch_once_json_payload(self, tmp_path, capsys):
        import json

        state_dir = self._define_and_run_live(tmp_path, capsys, shard="1/2")
        assert main([
            "exp", "watch", "live", "--once", "--json",
            "--state-dir", state_dir,
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "live"
        assert payload["stalled"] is False
        (beat,) = payload["heartbeats"]
        assert beat["shard"] == "1/2"
        assert beat["tasks_done"] == 2 and beat["final"] is True

    def test_watch_detects_injected_stall(self, tmp_path, capsys):
        import json

        from repro.obs.live import heartbeat_path

        state_dir = self._define_and_run_live(tmp_path, capsys)
        hb_path = heartbeat_path(f"{state_dir}/live")
        data = json.loads(hb_path.read_text())
        # Simulate a crashed writer: non-final heartbeat, stale clock.
        data["final"] = False
        data["updated"] -= 60.0
        hb_path.write_text(json.dumps(data))
        assert main([
            "exp", "watch", "live", "--once", "--state-dir", state_dir,
        ]) == 4
        assert "STALLED" in capsys.readouterr().out
        # A generous stall factor un-flags it.
        assert main([
            "exp", "watch", "live", "--once", "--stall-factor", "1000",
            "--state-dir", state_dir,
        ]) == 0

    def test_status_json_without_heartbeats(self, tmp_path, capsys):
        import json

        state_dir = str(tmp_path / "experiments")
        assert main([
            "exp", "define", "bare", "--scenario", "exp2-fc-dpm",
            "--seeds", "0:2", "--policies", "conv-dpm",
            "--fast", "--state-dir", state_dir,
        ]) == 0
        capsys.readouterr()
        assert main([
            "exp", "status", "bare", "--json", "--state-dir", state_dir,
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "defined"
        assert payload["tasks"]["total"] == 2
        assert payload["heartbeats"] == []

    def test_status_json_lists_all_without_name(self, tmp_path, capsys):
        import json

        state_dir = self._define_and_run_live(tmp_path, capsys)
        assert main([
            "exp", "status", "--json", "--state-dir", state_dir,
        ]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert isinstance(payloads, list)
        assert payloads[0]["name"] == "live"

    def test_top_once_renders_every_experiment(self, tmp_path, capsys):
        state_dir = self._define_and_run_live(tmp_path, capsys)
        assert main(["top", "--once", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "live" in out and "final" in out

    def test_top_once_json(self, tmp_path, capsys):
        import json

        state_dir = self._define_and_run_live(tmp_path, capsys)
        assert main([
            "top", "--once", "--json", "--state-dir", state_dir,
        ]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert len(payloads) == 1 and payloads[0]["name"] == "live"
