"""Figure data-series tests (Fig. 2/3/4/7 shapes)."""

import numpy as np
import pytest

from repro.analysis.figures import (
    fig2_stack_iv_curve,
    fig3_efficiency_curves,
    fig4_motivational,
    fig7_current_profiles,
)


class TestFig2:
    def test_anchor_points(self):
        data = fig2_stack_iv_curve()
        assert data["voltage"][0] == pytest.approx(18.2)
        assert float(data["p_mpp"]) == pytest.approx(20.0, abs=1.0)

    def test_voltage_decreases_power_peaks(self):
        data = fig2_stack_iv_curve()
        v = data["voltage"]
        p = data["power"]
        assert np.all(np.diff(v) < 0)
        k = int(np.argmax(p))
        assert 0 < k < len(p) - 1  # interior maximum = load-following limit


class TestFig3:
    def test_stack_above_system_curves(self):
        data = fig3_efficiency_curves()
        # Stack-only efficiency dominates both system curves (Fig. 3(a)
        # is the top curve).
        i = data["current"]
        mask = i >= 0.1
        assert np.all(data["stack"][mask] >= data["proportional"][mask])
        assert np.all(data["stack"][mask] >= data["onoff"][mask])

    def test_proportional_beats_onoff_at_light_load(self):
        data = fig3_efficiency_curves()
        light = data["current"] < 0.4
        assert np.all(data["proportional"][light] > data["onoff"][light])

    def test_linear_fit_tracks_proportional(self):
        data = fig3_efficiency_curves()
        in_range = (data["current"] >= 0.1) & (data["current"] <= 1.2)
        err = np.abs(data["proportional"][in_range] - data["linear_fit"][in_range])
        assert err.max() < 0.05

    def test_proportional_decreasing_in_range(self):
        data = fig3_efficiency_curves()
        in_range = (data["current"] >= 0.1) & (data["current"] <= 1.2)
        eta = data["proportional"][in_range]
        assert np.all(np.diff(eta) < 0.002)  # monotone down (tolerating noise)


class TestFig4:
    def test_paper_fuel_values(self):
        r = fig4_motivational()
        assert r.fuel["asap-dpm"] == pytest.approx(16.08, abs=0.02)
        assert r.fuel["fc-dpm"] == pytest.approx(13.45, abs=0.01)
        # Eq. 4 reading of Conv (the paper's text says 36).
        assert r.fuel["conv-dpm"] == pytest.approx(39.18, abs=0.05)

    def test_paper_ifc_reading(self):
        r = fig4_motivational(conv_uses_paper_ifc=True)
        assert r.fuel["conv-dpm"] == pytest.approx(36.0)
        assert r.fc_vs_conv_saving == pytest.approx(0.626, abs=0.005)

    def test_savings_vs_asap(self):
        r = fig4_motivational()
        assert r.fc_vs_asap_saving == pytest.approx(0.159, abs=0.01)

    def test_plans_balance_storage(self):
        r = fig4_motivational()
        fc_levels = r.plans["fc-dpm"].storage_trajectory(0.0)
        assert fc_levels[-1] == pytest.approx(0.0, abs=1e-9)

    def test_fc_plan_is_flat(self):
        r = fig4_motivational()
        outputs = [s.i_f for s in r.plans["fc-dpm"]]
        assert outputs[0] == pytest.approx(outputs[1])


class TestFig7:
    @pytest.fixture(scope="class")
    def profiles(self):
        return fig7_current_profiles(seed=2007, t_max=300.0)

    def test_series_truncated_to_300s(self, profiles):
        for key in ("load", "asap-dpm", "fc-dpm"):
            times, _ = profiles[key]
            assert times[-1] <= 310.0

    def test_asap_follows_load(self, profiles):
        # ASAP output correlates strongly with the load profile.
        t_l, load = profiles["load"]
        t_a, asap = profiles["asap-dpm"]
        n = min(len(load), len(asap))
        r = np.corrcoef(load[:n], asap[:n])[0, 1]
        assert r > 0.7

    def test_fc_dpm_flatter_than_asap(self, profiles):
        # The paper's visual point: FC-DPM's output is "quite flat".
        _, asap = profiles["asap-dpm"]
        _, fc = profiles["fc-dpm"]
        assert np.std(fc) < 0.5 * np.std(asap)

    def test_outputs_respect_load_following_range(self, profiles):
        for key in ("asap-dpm", "fc-dpm"):
            _, i_f = profiles[key]
            assert i_f.min() >= 0.1 - 1e-9
            assert i_f.max() <= 1.2 + 1e-9
