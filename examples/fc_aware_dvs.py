#!/usr/bin/env python3
"""FC-aware DVS: the prior work the paper builds on (refs [10], [11]).

Races four speed policies over an MPEG frame workload on the hybrid
source, then shows the one regime where minimizing *device* energy and
minimizing *fuel* genuinely disagree: a leakage-dominated CPU whose
race-to-idle schedule exceeds what the FC plus a tiny buffer can carry.

Run:  python examples/fc_aware_dvs.py
"""

from repro.analysis.report import format_table
from repro.core.multilevel import default_levels
from repro.dvs import (
    CPULevel,
    CPUModel,
    DVSSimulator,
    EnergyMinimalDVS,
    FuelAwareDVS,
    JointLevelDVS,
    NoDVSPolicy,
)
from repro.dvs.tasks import Frame, FrameTaskSet, mpeg_frames
from repro.fuelcell.efficiency import LinearSystemEfficiency


def race_policies() -> None:
    cpu = CPUModel.xscale_like()
    model = LinearSystemEfficiency()
    frames = mpeg_frames(n_frames=150, seed=7)

    rows = [["policy", "fuel (A-s)", "device charge (A-s)", "mean f (GHz)"]]
    for name, policy in (
        ("no-dvs (race-to-idle)", NoDVSPolicy(cpu)),
        ("energy-minimal dvs", EnergyMinimalDVS(cpu)),
        ("fuel-aware dvs [10]", FuelAwareDVS(cpu, model)),
        ("joint 8-level dvs [11]", JointLevelDVS(cpu, model,
                                                 default_levels(model, 8))),
    ):
        r = DVSSimulator(policy, model, name=name).run(frames)
        rows.append([name, f"{r.fuel:.2f}", f"{r.device_charge:.2f}",
                     f"{r.mean_frequency:.2f}"])
    print(format_table(rows, title="DVS policies on the FC hybrid source"))
    print()


def show_divergence() -> None:
    """Energy-min picks race-to-idle; fuel-aware must back off."""
    model = LinearSystemEfficiency()
    leaky_cpu = CPUModel(
        levels=[CPULevel(0.4, 1.0), CPULevel(1.0, 1.8)],
        c_eff=2.8,
        leakage_per_volt=7.0,   # leakage-dominated: fast-then-idle wins
        p_platform=2.0,
        p_idle=0.5,
    )
    frame = Frame(cycles=0.4, deadline=1.0)
    frames = FrameTaskSet([frame] * 50, name="leaky")

    rows = [["policy", "chosen f (GHz)", "fuel (A-s)", "device charge (A-s)"]]
    for name, policy in (
        ("energy-minimal", EnergyMinimalDVS(leaky_cpu)),
        ("fuel-aware", FuelAwareDVS(leaky_cpu, model)),
    ):
        sim = DVSSimulator(policy, model, storage_capacity=0.2,
                           storage_initial=0.1, name=name)
        try:
            r = sim.run(frames)
            rows.append([name, f"{r.mean_frequency:.2f}", f"{r.fuel:.2f}",
                         f"{r.device_charge:.2f}"])
        except Exception as exc:
            rows.append([name, "-", f"FAILS: {type(exc).__name__}", "-"])
    print(format_table(
        rows,
        title="leakage-dominated CPU + 0.2 A-s buffer: energy-min vs fuel-min",
    ))
    print("\nreading: the ~2 A race-to-idle peak exceeds IF_max + buffer, so")
    print("the device-energy winner browns the system out; the fuel-aware")
    print("policy backs off to 0.4 GHz -- the prior work's core message that")
    print("minimum device energy is NOT minimum fuel.")


def main() -> None:
    race_policies()
    show_divergence()


if __name__ == "__main__":
    main()
