"""Ensemble predictor tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.prediction.base import ConstantPredictor, LastValuePredictor
from repro.prediction.ensemble import EnsemblePredictor
from repro.prediction.exponential import ExponentialAveragePredictor


def make() -> EnsemblePredictor:
    return EnsemblePredictor(
        [ConstantPredictor(10.0), LastValuePredictor(initial=10.0)],
        learning_rate=1.0,
    )


class TestConstruction:
    def test_needs_two_experts(self):
        with pytest.raises(ConfigurationError):
            EnsemblePredictor([ConstantPredictor(1.0)])

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            EnsemblePredictor(
                [ConstantPredictor(1.0), ConstantPredictor(2.0)],
                learning_rate=0.0,
            )

    def test_initial_weights_uniform(self):
        e = make()
        assert e.weights == (0.5, 0.5)


class TestPrediction:
    def test_weighted_average(self):
        e = EnsemblePredictor(
            [ConstantPredictor(0.0), ConstantPredictor(10.0)]
        )
        assert e.predict() == pytest.approx(5.0)

    def test_weights_shift_to_better_expert(self):
        # Expert 0 predicts a constant 10; the data is a constant 3, so
        # the last-value expert becomes exact after one observation.
        e = EnsemblePredictor(
            [ConstantPredictor(10.0), LastValuePredictor(initial=10.0)],
            learning_rate=1.0,
        )
        for _ in range(20):
            e.predict()
            e.observe(3.0)
        weights = e.weights
        assert weights[1] > 0.95
        assert isinstance(e.best_expert, LastValuePredictor)

    def test_converges_toward_best_expert_prediction(self):
        e = EnsemblePredictor(
            [ConstantPredictor(10.0), LastValuePredictor(initial=10.0)],
            learning_rate=1.0,
        )
        for _ in range(30):
            e.predict()
            e.observe(3.0)
        assert e.predict() == pytest.approx(3.0, abs=0.5)

    def test_tracks_regime_change(self):
        rng = np.random.default_rng(0)
        exp_expert = ExponentialAveragePredictor(factor=0.5)
        const_expert = ConstantPredictor(50.0)
        e = EnsemblePredictor([exp_expert, const_expert], learning_rate=0.8)
        # Regime 1: values near 8 -> exponential expert dominates.
        for _ in range(40):
            e.predict()
            e.observe(float(rng.normal(8.0, 0.5)))
        assert e.weights[0] > 0.9
        # Regime 2: values near 50 -> the constant expert recovers weight.
        for _ in range(60):
            e.predict()
            e.observe(float(rng.normal(50.0, 0.5)))
        assert e.weights[1] > 0.3

    def test_experts_keep_learning(self):
        inner = LastValuePredictor(initial=0.0)
        e = EnsemblePredictor([inner, ConstantPredictor(5.0)])
        e.predict()
        e.observe(7.0)
        assert inner.predict() == 7.0

    def test_error_accounting_scores_ensemble(self):
        e = make()
        e.predict()
        e.observe(4.0)
        assert e.n_scored == 1
        assert e.mean_absolute_error > 0

    def test_reset(self):
        e = make()
        e.predict()
        e.observe(3.0)
        e.reset()
        assert e.weights == (0.5, 0.5)
        assert e.n_scored == 0

    def test_long_run_numerically_stable(self):
        e = EnsemblePredictor(
            [ConstantPredictor(1.0), ConstantPredictor(100.0)],
            learning_rate=2.0,
        )
        for _ in range(2000):
            e.predict()
            e.observe(1.0)
        assert all(np.isfinite(w) for w in e.weights)
        assert e.weights[0] > 0.99
