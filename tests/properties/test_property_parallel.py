"""Property: parallel execution is bit-identical to serial execution.

This is the contract the whole runtime subsystem stands on -- the
``workers=`` knob may only change *where* work runs, never a single
bit of any result.  CI runs this file explicitly as the
parallel-vs-serial equivalence gate (see .github/workflows/ci.yml).
"""

import dataclasses

import pytest

from repro.devices.camcorder import camcorder_device_params
from repro.fuelcell.sizing import downsizing_curve
from repro.sim.montecarlo import run_seeds, table2_metrics
from repro.workload.mpeg import generate_mpeg_trace

WORKER_COUNTS = (2, 3)


def _summary_bits(summaries):
    """Exact float tuple per metric -- equality here is bit-identity."""
    return {
        name: (s.n, s.mean, s.stdev, s.minimum, s.maximum)
        for name, s in summaries.items()
    }


class TestRunSeedsEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_seeds(table2_metrics, range(6))

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_summaries(self, serial, workers):
        parallel = run_seeds(table2_metrics, range(6), workers=workers)
        assert _summary_bits(parallel) == _summary_bits(serial)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_metric_order_preserved(self, serial, workers):
        parallel = run_seeds(table2_metrics, range(6), workers=workers)
        assert list(parallel) == list(serial)

    def test_all_cores_spelling(self, serial):
        parallel = run_seeds(table2_metrics, range(6), workers=0)
        assert _summary_bits(parallel) == _summary_bits(serial)


class TestDownsizingCurveEquivalence:
    @pytest.fixture(scope="class")
    def inputs(self):
        return generate_mpeg_trace(duration_s=300.0, seed=11), camcorder_device_params()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_curve(self, inputs, workers):
        trace, dev = inputs
        caps = (0.0, 2.0, 6.0, 24.0)
        serial = downsizing_curve(trace, dev, capacities=caps)
        parallel = downsizing_curve(trace, dev, capacities=caps, workers=workers)
        assert list(parallel) == list(serial)
        for cap in caps:
            assert dataclasses.asdict(parallel[cap]) == dataclasses.asdict(
                serial[cap]
            )


class TestSweepEquivalence:
    def test_efficiency_slope_sweep(self):
        from repro.analysis.sweep import efficiency_slope_sweep

        betas = (0.0, 0.13)
        serial = efficiency_slope_sweep(betas=betas, seed=5)
        parallel = efficiency_slope_sweep(betas=betas, seed=5, workers=2)
        assert parallel == serial
