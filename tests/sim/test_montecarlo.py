"""Monte-Carlo runner tests."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.montecarlo import SeedSummary, _t95, run_seeds, summarize

#: The hand-coded critical-value table `_t95` replaced, df 1..30.  The
#: scipy-backed values must keep agreeing with it to 1e-3 so historical
#: confidence intervals stay reproducible.
_OLD_T95_TABLE = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


class TestT95:
    @pytest.mark.parametrize(
        "df,expected", list(enumerate(_OLD_T95_TABLE, start=1))
    )
    def test_matches_old_table(self, df, expected):
        assert _t95(df) == pytest.approx(expected, abs=1e-3)

    def test_beyond_table_exceeds_normal_quantile(self):
        assert 1.96 < _t95(200) < 1.98


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize("x", [1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.n == 3
        assert s.stdev == pytest.approx(1.0)

    def test_single_sample(self):
        s = summarize("x", [5.0])
        assert s.stdev == 0.0
        assert s.ci95_halfwidth == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize("x", [])

    def test_ci_uses_t_distribution(self):
        s = summarize("x", [1.0, 2.0, 3.0])
        # n=3 -> df=2 -> t=4.303; halfwidth = 4.303 * 1 / sqrt(3).
        assert s.ci95_halfwidth == pytest.approx(4.303 / 3**0.5, rel=1e-3)
        lo, hi = s.ci95
        assert lo < s.mean < hi

    def test_large_n_approaches_normal(self):
        # The scipy-backed critical value is exact for every df (the
        # old hand-coded table snapped to 1.96 beyond df=30); for
        # n=100 it sits just above the normal quantile.
        s = summarize("x", [float(k % 7) for k in range(100)])
        assert s.ci95_halfwidth == pytest.approx(
            1.9842 * s.stdev / 10.0, rel=1e-4
        )
        assert s.ci95_halfwidth > 1.96 * s.stdev / 10.0


class TestRunSeeds:
    def test_collects_metrics_across_seeds(self):
        def experiment(seed: int) -> dict[str, float]:
            return {"a": float(seed), "b": 2.0 * seed}

        out = run_seeds(experiment, [1, 2, 3])
        assert out["a"].mean == pytest.approx(2.0)
        assert out["b"].mean == pytest.approx(4.0)
        assert isinstance(out["a"], SeedSummary)

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            run_seeds(lambda s: {"a": 1.0}, [])

    def test_rejects_inconsistent_metrics(self):
        def experiment(seed: int) -> dict[str, float]:
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ConfigurationError):
            run_seeds(experiment, [0, 1])

    def test_metric_order_follows_first_run(self):
        """Summaries come back in the first run's insertion order."""

        def experiment(seed: int) -> dict[str, float]:
            return {"zeta": 1.0, "alpha": 2.0, "mid": float(seed)}

        out = run_seeds(experiment, [3, 1, 2])
        assert list(out) == ["zeta", "alpha", "mid"]

    def test_same_keys_in_different_order_accepted(self):
        def experiment(seed: int) -> dict[str, float]:
            if seed % 2:
                return {"b": 1.0, "a": 0.0}
            return {"a": 0.0, "b": 1.0}

        out = run_seeds(experiment, [0, 1, 2])
        assert list(out) == ["a", "b"]
        assert out["b"].n == 3


class TestTable2Stability:
    def test_headline_stable_across_seeds(self):
        """The key ordering must hold with tight spread over seeds."""
        from repro.sim.montecarlo import table2_metrics

        out = run_seeds(table2_metrics, range(4))
        assert out["fc-dpm"].maximum < out["asap-dpm"].minimum
        assert out["fc-dpm"].stdev < 0.02
        assert out["fc_saving_vs_asap"].minimum > 0.08
