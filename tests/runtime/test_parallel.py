"""Unit tests for the ParallelMap executor."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.parallel import (
    BrokenPoolError,
    MapStats,
    ParallelMap,
    _chunk_slices,
    parallel_map,
    resolve_workers,
)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"bad item {x}")


def _die(x):
    # Kill the worker process outright -- the pool sees a vanished
    # worker and raises BrokenProcessPool, never a task exception.
    import os

    os._exit(13)


class TestResolveWorkers:
    def test_one_is_one(self):
        assert resolve_workers(1) == 1

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_capped_to_available(self):
        assert resolve_workers(10_000) <= resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)


class TestChunking:
    def test_covers_all_items_in_order(self):
        slices = _chunk_slices(10, 3)
        flat = [i for lo, hi in slices for i in range(lo, hi)]
        assert flat == list(range(10))

    def test_near_equal_sizes(self):
        sizes = [hi - lo for lo, hi in _chunk_slices(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        slices = _chunk_slices(2, 8)
        assert len(slices) == 2

    def test_deterministic(self):
        assert _chunk_slices(97, 12) == _chunk_slices(97, 12)


class TestSerial:
    def test_matches_list_comprehension(self):
        pm = ParallelMap(workers=1)
        assert pm.map(_square, range(7)) == [x * x for x in range(7)]
        assert pm.stats.mode == "serial"
        assert pm.stats.n_tasks == 7
        assert len(pm.stats.task_durations) == 7

    def test_empty_items(self):
        pm = ParallelMap(workers=1)
        assert pm.map(_square, []) == []
        assert pm.stats.n_tasks == 0

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="bad item"):
            ParallelMap(workers=1).map(_boom, [3])


class TestProcess:
    def test_ordered_and_identical_to_serial(self):
        items = list(range(23))
        serial = ParallelMap(workers=1).map(_square, items)
        pm = ParallelMap(workers=2)
        assert pm.map(_square, items) == serial
        assert pm.stats.fallback_reason is None

    def test_lambda_falls_back_to_serial(self):
        pm = ParallelMap(workers=2)
        # Lambdas don't pickle; the pool failure must degrade gracefully
        # (workers=2 forces a pool even on a 1-core host).
        if pm.workers < 2:
            pm.workers = 2
        assert pm.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert pm.stats.mode == "serial"
        assert pm.stats.fallback_reason is not None

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="bad item"):
            ParallelMap(workers=2).map(_boom, list(range(4)))

    def test_one_shot_wrapper(self):
        assert parallel_map(_square, [2, 3], workers=2) == [4, 9]


class TestStats:
    def test_summary_renders(self):
        pm = ParallelMap(workers=1)
        pm.map(_square, range(3))
        text = pm.stats.summary()
        assert "3 tasks" in text and "serial" in text

    def test_efficiency_bounds(self):
        pm = ParallelMap(workers=1)
        pm.map(_square, range(50))
        assert 0.0 <= pm.stats.parallel_efficiency <= 1.5

    def test_defaults(self):
        stats = MapStats()
        assert stats.mean_task_time == 0.0
        assert stats.total_task_time == 0.0
        assert stats.parallel_efficiency == 0.0

    def test_invalid_chunks_per_worker(self):
        with pytest.raises(ConfigurationError):
            ParallelMap(workers=1, chunks_per_worker=0)


@pytest.mark.skipif(
    resolve_workers(2) < 2,
    reason="needs >= 2 usable cores: with one core ParallelMap(workers=2) "
    "resolves to serial and never attempts the pool",
)
class TestBrokenPool:
    def test_fallback_recovers_and_counts(self):
        from repro.obs import observing

        # A map that dies in the pool but succeeds serially is
        # impossible to build from one function; instead verify the
        # counter + error shape with fallback disabled, and the default
        # fallback path with a healthy function.
        with observing() as obs:
            pm = ParallelMap(workers=2, serial_fallback=False)
            with pytest.raises(BrokenPoolError) as excinfo:
                pm.map(_die, list(range(8)))
            snapshot = obs.metrics.snapshot()
        err = excinfo.value
        assert err.chunk_index == 0
        lo, hi = err.item_range
        assert (lo, hi) == (0, 1)
        assert err.items_preview == ["0"]
        assert "chunk 0" in str(err) and "0:1" in str(err)
        broken = [k for k in snapshot if k.startswith("runtime.parallel.broken_pool")]
        assert broken and snapshot[broken[0]]["value"] == 1

    def test_fallback_enabled_still_returns_results(self):
        # Default serial_fallback=True: a dead pool retries serially.
        # _die would also kill the serial path, so exercise the fallback
        # with an unpicklable callable instead (PicklingError route).
        pm = ParallelMap(workers=2)
        results = pm.map(lambda x: x + 1, [1, 2, 3])
        assert results == [2, 3, 4]
        assert pm.stats.mode == "serial"
        assert pm.stats.fallback_reason is not None

    def test_no_fallback_propagates_pickling_errors(self):
        pm = ParallelMap(workers=2, serial_fallback=False)
        with pytest.raises(Exception):
            pm.map(lambda x: x + 1, [1, 2, 3])
