"""Counters, gauges and histograms behind one process-local registry.

The instrument set is deliberately small and canonical -- hot paths
emit a fixed vocabulary (catalogued in ``docs/observability.md``) so
dashboards and tests can rely on names:

=========================================  =====================================
``runtime.cache.{hit,miss,invalidated}``   on-disk result cache traffic
``runtime.memo.{hit,miss,uncacheable}``    slot-solver memoization
``runtime.parallel.chunk_seconds``         per-chunk wall time (histogram)
``sim.route``                              fast vs scalar routing (labelled)
``sim.fast_ineligible``                    why the kernel was skipped (labelled)
``dpm.decisions`` / ``dpm.aborted_sleeps`` sleep/wake decisions, mispredictions
``power.storage.{bleed,deficit}_events``   storage clamp events
``power.delivered_charge``                 cumulative delivered charge (A-s)
=========================================  =====================================

Instruments are keyed by ``name`` plus an optional label mapping
(``counter("sim.route", path="fast")``); the label set is folded into
the key (``sim.route{path=fast}``) so a snapshot is a flat, JSON-able
dict.  Everything is process-local: parallel workers count into their
own registry, and whoever needs a cross-process view merges snapshots
(:meth:`MetricsRegistry.merge`).
"""

from __future__ import annotations

import math
import threading
from typing import Any

#: Schema version stamped on metric snapshot exports.
METRICS_SCHEMA_VERSION = 1

#: Histograms keep at most this many raw samples for percentiles; the
#: running count/sum/min/max stay exact beyond it.
_HISTOGRAM_RESERVOIR = 8192


class Counter:
    """Monotonically increasing value (ints or float quantities)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self.value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. a configuration or end-state reading)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self.value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution summary: exact count/sum/min/max plus percentiles.

    Raw samples are kept up to a bounded reservoir (the experiment
    workloads stay well inside it); past the bound, percentiles are
    computed over the retained prefix while count/sum/min/max remain
    exact.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_samples", "_lock")

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: list[float] = []
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            if len(self._samples) < _HISTOGRAM_RESERVOIR:
                self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples (p in [0, 100])."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


def _key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create instrument store with a flat snapshot export.

    Registry-created instruments share the registry's lock: every
    mutation (``inc``/``set``/``observe``) and the whole of
    :meth:`snapshot` acquire it, so a live flusher thread snapshotting
    mid-run can never observe a torn instrument (e.g. a histogram whose
    ``count`` was bumped but whose ``sum`` wasn't yet).  The lock is
    uncontended single-threaded and only ever paid on the *enabled*
    path -- disabled hot paths never reach an instrument at all.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            with self._lock:
                inst = self._instruments.setdefault(key, cls(self._lock))
        if not isinstance(inst, cls):
            raise TypeError(
                f"instrument {key!r} is a {type(inst).__name__}, "
                f"not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Flat ``{key: instrument-dict}`` view, sorted by key.

        The entire export is built while holding the registry lock, so
        concurrent mutators (which take the same lock) can never be
        caught mid-update -- every instrument dict in the snapshot is
        internally consistent, and the snapshot as a whole is a single
        point-in-time cut.
        """
        with self._lock:
            return {
                key: inst.to_dict()
                for key, inst in sorted(self._instruments.items())
            }

    def merge(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a foreign snapshot in (worker registries after a fan-out).

        Counters add, gauges take the incoming value, histograms merge
        count/sum/min/max (percentiles of merged histograms are
        approximate: the local reservoir keeps only local samples).
        """
        for key, data in snapshot.items():
            kind = data.get("type")
            name, _, _ = key.partition("{")
            labels = {}
            if "{" in key:
                inner = key[key.index("{") + 1 : -1]
                labels = dict(part.split("=", 1) for part in inner.split(",") if part)
            if kind == "counter":
                self.counter(name, **labels).inc(data.get("value", 0.0))
            elif kind == "gauge":
                self.gauge(name, **labels).set(data.get("value", 0.0))
            elif kind == "histogram":
                hist = self.histogram(name, **labels)
                with hist._lock:
                    hist.count += int(data.get("count", 0))
                    hist.total += float(data.get("sum", 0.0))
                    if data.get("count"):
                        hist.minimum = min(
                            hist.minimum, float(data.get("min", math.inf))
                        )
                        hist.maximum = max(
                            hist.maximum, float(data.get("max", -math.inf))
                        )

    def reset(self) -> None:
        """Drop every instrument (tests and fresh runs)."""
        with self._lock:
            self._instruments.clear()
