"""Property: both simulators agree for every PowerSource implementation.

The slot-level and event-driven simulators schedule work completely
differently; their fuel/charge ledgers agreeing on identical traces is
the repository's strongest internal cross-check.  The pluggable-source
refactor must preserve that property for *every* plant -- the paper's
single-stack hybrid, multi-stack gangs under both sharing rules, and
the battery-only contrast source -- on randomized traces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FCSystemConstants
from repro.core.manager import PowerManager
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.fuelcell.fuel import FuelTank, GibbsFuelModel
from repro.fuelcell.system import FCSystem
from repro.power.battery_only import BatteryOnlySource
from repro.power.multistack import (
    EfficiencyProportional,
    EqualShare,
    MultiStackHybrid,
)
from repro.power.storage import SuperCapacitor
from repro.sim.eventsim import EventDrivenSimulator
from repro.sim.slotsim import SlotSimulator
from repro.workload.trace import LoadTrace, TaskSlot

SOURCE_KINDS = ("hybrid", "multi-stack-2-equal", "multi-stack-3-eff", "battery")


def _fc_system() -> FCSystem:
    model = LinearSystemEfficiency.from_constants(FCSystemConstants())
    return FCSystem(model, tank=FuelTank(model=GibbsFuelModel(zeta=model.zeta)))


def _build_source(kind: str):
    if kind == "hybrid":
        # PowerManager's factory builds the paper's hybrid; returning
        # None keeps that path.
        return None
    if kind == "multi-stack-2-equal":
        return MultiStackHybrid(
            [_fc_system() for _ in range(2)],
            storage=SuperCapacitor(capacity=6.0, initial_charge=3.0),
            sharing=EqualShare(),
        )
    if kind == "multi-stack-3-eff":
        return MultiStackHybrid(
            [_fc_system() for _ in range(3)],
            storage=SuperCapacitor(capacity=6.0, initial_charge=3.0),
            sharing=EfficiencyProportional(),
        )
    # Battery large enough that the short random traces never blow the
    # deficit guard.
    return BatteryOnlySource(SuperCapacitor(capacity=500.0, initial_charge=500.0))


def _manager(kind: str) -> PowerManager:
    from repro.devices.camcorder import camcorder_device_params

    mgr = PowerManager.fc_dpm(
        camcorder_device_params(), storage_capacity=6.0, storage_initial=3.0
    )
    source = _build_source(kind)
    if source is not None:
        mgr.source = source
    return mgr


def _trace(slots) -> LoadTrace:
    return LoadTrace(
        [
            TaskSlot(t_idle=idle, t_active=active, i_active=current)
            for idle, active, current in slots
        ],
        name="property",
    )


slot_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
        st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
        st.floats(min_value=0.2, max_value=1.3, allow_nan=False),
    ),
    min_size=2,
    max_size=6,
)


class TestSimulatorAgreement:
    @pytest.mark.parametrize("kind", SOURCE_KINDS)
    @given(slots=slot_lists)
    @settings(max_examples=15, deadline=None)
    def test_fuel_ledgers_agree_for_every_source(self, kind, slots):
        trace = _trace(slots)
        # Fresh manager per simulator: both must see identical state.
        slot_result = SlotSimulator(
            _manager(kind), max_deficit_fraction=1e9
        ).run(trace)
        event_result = EventDrivenSimulator(_manager(kind)).run(trace)

        assert event_result.fuel == pytest.approx(slot_result.fuel, rel=1e-12)
        assert event_result.load_charge == pytest.approx(
            slot_result.load_charge, rel=1e-12
        )
        assert event_result.bled == pytest.approx(
            slot_result.bled, rel=1e-12, abs=1e-12
        )
        assert event_result.deficit == pytest.approx(
            slot_result.deficit, rel=1e-12, abs=1e-12
        )
        assert event_result.n_sleeps == slot_result.n_sleeps
        assert event_result.duration == pytest.approx(slot_result.duration)
