"""Battery-only source: the no-fuel-cell contrast plant.

The paper's Section-1 argument ("battery-aware DPM policies cannot be
applied to FC systems") compares load shaping on a battery against load
shaping on the FC fuel map.  :class:`BatteryOnlySource` gives that
comparison a first-class plant: the entire load is served from the
charge-storage element, there is no generator, and the fuel ledger stays
at zero.  It implements the same
:class:`~repro.power.source.PowerSource` protocol as the hybrids, so
both simulators, the recorder, and every metric run unchanged -- the
deficit ledger becomes the battery's depth-of-discharge overdraw.

Output-current commands are accepted and ignored (there is nothing to
command); this is the degenerate ``IF = 0`` corner of the hybrid design
space, useful for sizing the storage a stand-alone battery would need to
survive a workload the hybrid serves with a 6 A-s supercap.
"""

from __future__ import annotations

from .source import PowerSource
from .storage import ChargeStorage


class BatteryOnlySource(PowerSource):
    """Charge storage serving the whole load; no generator, no fuel.

    Parameters
    ----------
    storage:
        The battery (or supercap) that serves every coulomb of load.
        Start it charged: there is nothing to recharge it mid-run.
    v_out:
        Regulated rail voltage (V) used for energy accounting.
    """

    kind = "battery"

    def __init__(self, storage: ChargeStorage, v_out: float = 12.0) -> None:
        self._v_out = v_out
        super().__init__(storage)

    @property
    def v_out(self) -> float:
        """Regulated rail voltage (V)."""
        return self._v_out

    def set_fc_output(self, i_f: float, *, clamp: bool = True) -> float:
        """There is no generator to command; always realises 0 A."""
        return 0.0

    def _generate(
        self, dt: float, strict_fuel: bool
    ) -> tuple[float, float, float, tuple[float, ...]]:
        return 0.0, 0.0, 0.0, ()
