#!/usr/bin/env python3
"""Validate live-telemetry artifacts: heartbeats + OpenMetrics expositions.

Thin CLI over :func:`repro.obs.live.validate_heartbeat` and
:func:`repro.obs.openmetrics.validate_exposition`, used by
``make live-smoke`` and CI to assert that every ``heartbeat*.json`` and
``metrics*.prom`` under an experiment directory is structurally sound:
heartbeat schema/consistency, exposition terminator + naming rules, and
(optionally) that specific metric families actually got flushed.

Accepts experiment directories (searched recursively).  Flags:

``--require-final``
    every heartbeat must be marked ``final`` (a completed run).
``--require-sample NAME`` (repeatable)
    at least one exposition must contain a sample with this exact
    OpenMetrics name (e.g. ``exp_tasks_done_total``).
``--inject-stall``
    instead of validating, rewrite every heartbeat non-final with a
    stale ``updated`` timestamp -- the smoke test's crash simulator for
    exercising ``fcdpm exp watch`` stall detection.

Exit status: 0 when every file validates, 1 with one problem per line
otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def inject_stall(targets: list[Path], age_s: float) -> int:
    """Rewrite every heartbeat under ``targets`` as a stale non-final one."""
    rewritten = 0
    for target in targets:
        for path in sorted(target.rglob("heartbeat*.json")):
            data = json.loads(path.read_text())
            data["final"] = False
            data["updated"] = data.get("updated", 0.0) - age_s
            path.write_text(json.dumps(data, indent=2, sort_keys=True))
            rewritten += 1
    if not rewritten:
        print("FAIL --inject-stall found no heartbeat files")
        return 1
    print(f"injected stall into {rewritten} heartbeat(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="+", help="experiment directories")
    parser.add_argument("--require-final", action="store_true")
    parser.add_argument(
        "--require-sample", action="append", default=[], metavar="NAME"
    )
    parser.add_argument("--inject-stall", action="store_true")
    parser.add_argument(
        "--stall-age", type=float, default=3600.0, metavar="SECONDS",
        help="how far back --inject-stall moves the updated timestamp",
    )
    args = parser.parse_args(argv)

    from repro.obs.live import validate_heartbeat
    from repro.obs.openmetrics import parse_openmetrics, validate_exposition

    targets = [Path(t) for t in args.targets]
    if args.inject_stall:
        return inject_stall(targets, args.stall_age)

    failures = 0
    heartbeats = 0
    expositions = 0
    seen_samples: set[str] = set()
    for target in targets:
        if not target.is_dir():
            print(f"FAIL {target}: not a directory")
            failures += 1
            continue
        for path in sorted(target.rglob("heartbeat*.json")):
            heartbeats += 1
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(f"FAIL {path}: unreadable ({exc})")
                failures += 1
                continue
            problems = validate_heartbeat(data)
            if args.require_final and not problems and not data.get("final"):
                problems = problems + ["heartbeat is not final"]
            for problem in problems:
                print(f"FAIL {path}: {problem}")
            failures += len(problems)
        for path in sorted(target.rglob("metrics*.prom")):
            expositions += 1
            try:
                text = path.read_text()
            except OSError as exc:
                print(f"FAIL {path}: unreadable ({exc})")
                failures += 1
                continue
            problems = validate_exposition(text)
            for problem in problems:
                print(f"FAIL {path}: {problem}")
            failures += len(problems)
            if not problems:
                _, samples = parse_openmetrics(text)
                seen_samples.update(name for name, _, _ in samples)

    if not heartbeats:
        print("FAIL no heartbeat*.json files found")
        failures += 1
    if not expositions:
        print("FAIL no metrics*.prom files found")
        failures += 1
    for name in args.require_sample:
        if name not in seen_samples:
            print(f"FAIL no exposition contains a {name!r} sample")
            failures += 1
    if failures:
        return 1
    print(
        f"ok {heartbeats} heartbeat(s), {expositions} exposition(s)"
        + (f", {len(args.require_sample)} required sample(s)"
           if args.require_sample else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
