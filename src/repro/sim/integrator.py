"""Shared per-segment integration core for both trace simulators.

The slot-level simulator (:mod:`repro.sim.slotsim`) and the event-driven
simulator (:mod:`repro.sim.eventsim`) schedule work completely
differently -- closed-form slot iteration vs a calendar-queue engine --
and that independence is deliberate: their agreeing fuel totals is the
repository's strongest internal cross-check.  What they must *not* do is
re-implement the ledger math.  This module owns the single copy of

* the segment layout rules (how an idle period decomposes into
  standby / power-down / sleep / wake-up segments, and how STANDBY<->RUN
  overheads are absorbed into the active period -- the timeline
  convention documented in DESIGN.md), and
* the per-segment integration step (build the
  :class:`~repro.core.baselines.SegmentContext`, ask the controller for
  an output current, command the :class:`~repro.power.source.PowerSource`,
  integrate one interval, feed the recorder).

Each simulator decides *when* a segment executes; the
:class:`SegmentIntegrator` decides what executing it means.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, NamedTuple

from ..core.baselines import SegmentContext
from .recorder import Recorder, Sample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.manager import PowerManager
    from ..devices.device import DeviceParams
    from ..power.source import SourceStep
    from ..workload.trace import TaskSlot


class Segment(NamedTuple):
    """One constant-load interval of the simulated timeline.

    A ``NamedTuple`` rather than a frozen dataclass: simulators create
    one per planned segment (hundreds per trace), and tuple construction
    is several times cheaper than ``object.__setattr__``-based frozen
    init -- it is the planners' hottest allocation.
    """

    #: Segment length (s).
    duration: float
    #: Load current during the segment (A).
    i_load: float
    #: 'standby' | 'pd' | 'sleep' | 'wu' | 'run'.
    kind: str


# -- segment layout ---------------------------------------------------------


def plan_idle_segments(
    device: "DeviceParams", t_idle: float, sleep: bool, sleep_after: float
) -> tuple[list[Segment], bool, bool]:
    """Lay out one idle period; returns ``(segments, slept, aborted)``.

    A sleeping idle period is ``[standby dwell][power-down][sleep]
    [wake-up]`` summing to ``t_idle``; an idle period too short to host
    the committed sleep stays in STANDBY and counts as an aborted sleep.
    """
    if not sleep:
        return [Segment(t_idle, device.i_sdb, "standby")], False, False
    overhead = sleep_after + device.t_pd + device.t_wu
    if t_idle < overhead:
        # The idle period cannot host the committed sleep: the device
        # stays in STANDBY (counted as an aborted sleep).
        return [Segment(t_idle, device.i_sdb, "standby")], False, True
    segments = []
    if sleep_after > 0:
        segments.append(Segment(sleep_after, device.i_sdb, "standby"))
    segments.append(Segment(device.t_pd, device.i_pd, "pd"))
    dwell = t_idle - overhead
    if dwell > 0:
        segments.append(Segment(dwell, device.i_slp, "sleep"))
    segments.append(Segment(device.t_wu, device.i_wu, "wu"))
    return segments, True, False


def plan_active_segments(device: "DeviceParams", slot: "TaskSlot") -> list[Segment]:
    """The active period with STANDBY<->RUN overheads absorbed.

    The transitions run at the slot's active current, as the paper does
    (Section 3.3.2, assumption 2).
    """
    duration = device.t_sdb_to_run + slot.t_active + device.t_run_to_sdb
    return [Segment(duration, slot.i_active, "run")]


def chunk_segments(
    segments: list[Segment],
    max_segment: float | None,
    rel_tol: float = 1e-12,
) -> list[Segment]:
    """Split long segments into equal re-decision chunks (if configured).

    A duration within ``rel_tol`` (relative) of ``max_segment`` passes
    through unsplit: a duration a few ULP above the limit -- e.g. one
    produced by accumulated float arithmetic on a nominally equal slot
    -- would otherwise split into two chunks, one of them re-deciding
    after ~nothing.  No emitted chunk ever exceeds
    ``max_segment * (1 + rel_tol)``.
    """
    if max_segment is None:
        return segments
    limit = max_segment * (1.0 + rel_tol)
    out: list[Segment] = []
    for seg in segments:
        if seg.duration <= limit:
            out.append(seg)
            continue
        n = math.ceil(seg.duration / max_segment)
        chunk = seg.duration / n
        out.extend(Segment(chunk, seg.i_load, seg.kind) for _ in range(n))
    return out


def phase_totals(segments: list[Segment]) -> tuple[float, float]:
    """``(duration, load charge)`` of a phase -- the controller's lookahead."""
    return (
        sum(s.duration for s in segments),
        sum(s.duration * s.i_load for s in segments),
    )


# -- integration ------------------------------------------------------------


class SegmentIntegrator:
    """Executes segments against one manager's controller + power source.

    Owns the simulation clock (``t_now``), the optional
    :class:`~repro.sim.recorder.Recorder`, and the one copy of the
    controller-query / source-step sequence.  Simulators call
    :meth:`integrate` per segment in whatever order their scheduling
    produces; :meth:`run_phase` is the convenience loop for schedulers
    that execute a whole phase back to back.
    """

    def __init__(self, manager: "PowerManager", recorder: Recorder | None = None) -> None:
        self.manager = manager
        self.recorder = recorder
        self.t_now = 0.0

    def start_run(self) -> None:
        """Announce the run to the controller (records ``Cini(1)``)."""
        source = self.manager.source
        self.manager.controller.start_run(
            source.storage.charge, source.storage.capacity
        )

    def integrate(
        self,
        slot_index: int,
        phase: str,
        segment: Segment,
        phase_duration: float,
        phase_demand: float,
    ) -> "SourceStep":
        """Execute one segment: query the controller, step the source.

        ``phase_duration`` / ``phase_demand`` are the remaining time and
        load charge of the current phase *including* this segment.
        """
        mgr = self.manager
        source = mgr.source
        ctx = SegmentContext(
            slot_index=slot_index,
            phase=phase,
            kind=segment.kind,
            duration=segment.duration,
            i_load=segment.i_load,
            storage_charge=source.storage.charge,
            storage_capacity=source.storage.capacity,
            phase_duration=phase_duration,
            phase_demand=phase_demand,
        )
        source.set_fc_output(mgr.controller.output(ctx))
        step = source.step(segment.i_load, segment.duration)
        if self.recorder is not None:
            self.recorder.add(
                Sample(
                    t=self.t_now,
                    dt=segment.duration,
                    i_load=segment.i_load,
                    i_f=step.i_f,
                    i_fc=step.i_fc,
                    storage_charge=source.storage.charge,
                    fuel_cumulative=source.total_fuel,
                    kind=segment.kind,
                    source_kind=step.source_kind,
                    stack_currents=step.stack_currents,
                )
            )
        self.t_now += segment.duration
        return step

    def run_phase(
        self, slot_index: int, phase: str, segments: list[Segment]
    ) -> list["SourceStep"]:
        """Execute a whole phase back to back; returns the step records."""
        remaining, demand = phase_totals(segments)
        steps = []
        for seg in segments:
            steps.append(self.integrate(slot_index, phase, seg, remaining, demand))
            remaining -= seg.duration
            demand -= seg.i_load * seg.duration
        return steps
