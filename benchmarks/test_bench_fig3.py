"""Fig. 3 bench: stack & system efficiency versus system output current."""

import numpy as np

from repro.analysis.figures import fig3_efficiency_curves
from repro.analysis.report import ascii_plot, format_series


def test_bench_fig3_efficiency_curves(benchmark, emit):
    data = benchmark(fig3_efficiency_curves)

    i = data["current"]
    in_range = (i >= 0.1) & (i <= 1.2)
    fit_err = float(
        np.max(np.abs(data["proportional"][in_range] - data["linear_fit"][in_range]))
    )
    report = "\n".join(
        [
            "FIG 3 -- efficiency vs FC system output current IF",
            "paper: (a) stack > (b) variable-speed fan > (c) on-off fan at light load;",
            "       (b) calibrates to eta_s = 0.45 - 0.13*IF over [0.1, 1.2] A",
            format_series("(a) stack", i, data["stack"]),
            format_series("(b) proportional fan (PWM-PFM)", i, data["proportional"]),
            format_series("(c) on-off fan (PWM)", i, data["onoff"]),
            format_series("paper linear fit", i, data["linear_fit"]),
            f"max |(b) - linear fit| over the load-following range: {fit_err:.4f}",
            ascii_plot(i, data["proportional"],
                       title="(b) system efficiency, variable-speed fan"),
        ]
    )
    emit("fig3", report)

    assert fit_err < 0.05
    light = i < 0.4
    assert np.all(data["proportional"][light] > data["onoff"][light])
