"""Synthetic slot generators: Experiment 2 and extra workload families.

Experiment 2 (paper Section 5.2) randomizes the camcorder profile:
idle ~ U[5, 25] s, active ~ U[2, 4] s, active power ~ U[12, 16] W.
The additional exponential / Pareto / bursty families are used by the
ablation and robustness studies (they stress the predictor in ways the
uniform workload cannot).
"""

from __future__ import annotations

import numpy as np

from ..config import Experiment2Constants
from ..errors import ConfigurationError
from .trace import LoadTrace, TaskSlot


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def uniform_slots(
    n_slots: int,
    idle_range: tuple[float, float],
    active_range: tuple[float, float],
    current_range: tuple[float, float],
    seed=0,
    name: str = "uniform",
) -> LoadTrace:
    """Slots with independently uniform idle/active lengths and currents."""
    if n_slots < 1:
        raise ConfigurationError("need at least one slot")
    for lo, hi in (idle_range, active_range, current_range):
        if not 0 <= lo <= hi:
            raise ConfigurationError("ranges must satisfy 0 <= low <= high")
    rng = _rng(seed)
    slots = [
        TaskSlot(
            t_idle=float(rng.uniform(*idle_range)),
            t_active=float(rng.uniform(*active_range)),
            i_active=float(rng.uniform(*current_range)),
        )
        for _ in range(n_slots)
    ]
    return LoadTrace(slots, name=name)


def experiment2_trace(
    constants: Experiment2Constants | None = None,
    seed: int = 2007,
    n_slots: int | None = None,
    v_rail: float = 12.0,
) -> LoadTrace:
    """The paper's Experiment-2 randomized workload.

    Idle U[5, 25] s, active U[2, 4] s, active power U[12, 16] W on the
    12 V rail (currents 1.0-1.333 A).
    """
    e = constants if constants is not None else Experiment2Constants()
    n = e.n_slots if n_slots is None else n_slots
    return uniform_slots(
        n_slots=n,
        idle_range=(e.idle_low, e.idle_high),
        active_range=(e.active_low, e.active_high),
        current_range=(e.p_active_low / v_rail, e.p_active_high / v_rail),
        seed=seed,
        name="experiment2",
    )


def exponential_slots(
    n_slots: int,
    mean_idle: float,
    mean_active: float,
    i_active: float,
    min_active: float = 0.1,
    seed=0,
    name: str = "exponential",
) -> LoadTrace:
    """Memoryless (Poisson-arrival-like) idle and active periods.

    The exponential-average predictor is unbiased but high-variance on
    this family -- a classic DPM stress case.
    """
    if min(mean_idle, mean_active, i_active) <= 0:
        raise ConfigurationError("means and current must be positive")
    rng = _rng(seed)
    slots = [
        TaskSlot(
            t_idle=float(rng.exponential(mean_idle)),
            t_active=float(max(rng.exponential(mean_active), min_active)),
            i_active=i_active,
        )
        for _ in range(n_slots)
    ]
    return LoadTrace(slots, name=name)


def pareto_slots(
    n_slots: int,
    idle_scale: float,
    idle_shape: float,
    t_active: float,
    i_active: float,
    idle_cap: float | None = None,
    seed=0,
    name: str = "pareto",
) -> LoadTrace:
    """Heavy-tailed idle periods (Pareto), fixed active periods.

    Heavy tails reward aggressive sleeping on the long idles while
    punishing mispredicted short ones.
    """
    if idle_shape <= 0 or idle_scale <= 0:
        raise ConfigurationError("Pareto scale and shape must be positive")
    if t_active <= 0 or i_active < 0:
        raise ConfigurationError("bad active parameters")
    rng = _rng(seed)
    slots = []
    for _ in range(n_slots):
        t_idle = idle_scale * float(1.0 + rng.pareto(idle_shape))
        if idle_cap is not None:
            t_idle = min(t_idle, idle_cap)
        slots.append(TaskSlot(t_idle, t_active, i_active))
    return LoadTrace(slots, name=name)


def bursty_slots(
    n_bursts: int,
    burst_length: int,
    idle_in_burst: float,
    idle_between_bursts: float,
    t_active: float,
    i_active: float,
    jitter: float = 0.1,
    seed=0,
    name: str = "bursty",
) -> LoadTrace:
    """Alternating dense bursts and long quiet gaps.

    Models interactive devices: rapid task arrivals during use, long
    idle stretches between sessions.  Exercises the aggregation
    argument of DPM refs [6, 7].
    """
    if n_bursts < 1 or burst_length < 1:
        raise ConfigurationError("need at least one burst with one slot")
    if min(idle_in_burst, idle_between_bursts, t_active) <= 0 or i_active < 0:
        raise ConfigurationError("bad burst parameters")
    if not 0 <= jitter < 1:
        raise ConfigurationError("jitter must be in [0, 1)")
    rng = _rng(seed)

    def jittered(x: float) -> float:
        return float(x * (1.0 + rng.uniform(-jitter, jitter)))

    slots = []
    for b in range(n_bursts):
        for k in range(burst_length):
            first = b > 0 and k == 0
            base = idle_between_bursts if first else idle_in_burst
            slots.append(TaskSlot(jittered(base), jittered(t_active), i_active))
    return LoadTrace(slots, name=name)
