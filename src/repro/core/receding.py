"""Receding-horizon FC output control (a future-work extension).

FC-DPM (Section 4) plans one slot at a time and pins the storage back to
``Cini(1)`` at every slot boundary -- simple, but conservative: charge
cannot be carried across slots even when the predictor foresees a heavy
slot coming.  This controller generalizes the idea with model-predictive
control: at each idle start it lays out the next ``horizon`` predicted
slots (the upcoming slot from the live predictions, the rest from the
predictors' stationary estimates), solves the convex multi-period
problem of :func:`repro.core.optimizer.solve_horizon`, applies the first
period's output, and re-plans at the next boundary.

With ``horizon = 1`` it degenerates to FC-DPM's per-slot behaviour; the
ablation bench sweeps the horizon length and shows the (modest) fuel
headroom the paper's per-slot stability constraint leaves on the table.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, InfeasibleError
from ..fuelcell.efficiency import SystemEfficiencyModel
from ..prediction.base import Predictor
from ..prediction.exponential import ExponentialAveragePredictor
from .baselines import SegmentContext, SlotActuals, SlotStart, SourceController
from .optimizer import solve_horizon


class RecedingHorizonController(SourceController):
    """MPC-style FC output controller over predicted future slots.

    Parameters
    ----------
    model:
        System-efficiency model.
    horizon:
        Number of future task slots in each plan (>= 1).
    idle_length_predictor, active_length_predictor:
        Period-length predictors (paper's exponential filters by
        default).
    active_current_estimate:
        Fixed estimate of future active currents; None uses the running
        mean of observations.
    terminal_weight:
        How strongly the plan is pulled back to the run-start storage
        level at the horizon end (1.0 = hard equality, matching the
        FC-DPM stability idea at the *horizon* boundary instead of
        every slot boundary).
    """

    def __init__(
        self,
        model: SystemEfficiencyModel,
        horizon: int = 4,
        idle_length_predictor: Predictor | None = None,
        active_length_predictor: Predictor | None = None,
        active_current_estimate: float | None = None,
        i_idle_estimate: float = 0.2,
    ) -> None:
        super().__init__(model)
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        self.horizon = horizon
        self.idle_length_predictor = (
            idle_length_predictor
            if idle_length_predictor is not None
            else ExponentialAveragePredictor(factor=0.5)
        )
        self.active_length_predictor = (
            active_length_predictor
            if active_length_predictor is not None
            else ExponentialAveragePredictor(factor=0.5)
        )
        self.active_current_estimate = active_current_estimate
        self.i_idle_estimate = i_idle_estimate
        #: Whether on_slot_end feeds the idle predictor (see FCDPMController).
        self.observes_idle = True

        self._c_target = 0.0
        self._c_max = float("inf")
        self._if_idle = model.if_min
        self._if_active = model.if_min
        self._active_planned = False
        self._i_active_sum = 0.0
        self._i_active_n = 0
        self.n_plans = 0
        self.n_fallbacks = 0

    # -- helpers -------------------------------------------------------------

    def _i_active(self) -> float:
        if self.active_current_estimate is not None:
            return self.active_current_estimate
        if self._i_active_n == 0:
            return self.model.if_max
        return self._i_active_sum / self._i_active_n

    def _build_horizon(self, t_i: float, i_idle: float):
        """Period durations/demands: the next slot plus stationary tail."""
        t_a = max(self.active_length_predictor.predict(), 1e-3)
        i_a = self._i_active()
        durations = [max(t_i, 1e-3), t_a]
        demands = [i_idle * max(t_i, 1e-3), i_a * t_a]
        tail_idle = max(self.idle_length_predictor.predict(), 1e-3)
        for _ in range(self.horizon - 1):
            durations += [tail_idle, t_a]
            demands += [self.i_idle_estimate * tail_idle, i_a * t_a]
        return np.asarray(durations), np.asarray(demands)

    def _plan(self, t_i: float, i_idle: float, c_now: float) -> None:
        durations, demands = self._build_horizon(t_i, i_idle)
        self.n_plans += 1
        try:
            outputs, _ = solve_horizon(
                durations,
                demands,
                self.model,
                c_ini=c_now,
                c_end=self._c_target,
                c_max=self._c_max,
            )
            self._if_idle = float(outputs[0])
            self._if_active = float(outputs[1])
        except InfeasibleError:
            # Fall back to the single-slot flat value (always realizable
            # after clamping) -- counted so tests can watch for it.
            self.n_fallbacks += 1
            flat = (demands[:2].sum() + self._c_target - c_now) / durations[
                :2
            ].sum()
            self._if_idle = self.model.clamp(flat)
            self._if_active = self._if_idle

    # -- SourceController protocol ------------------------------------------

    def start_run(self, storage_charge: float, storage_capacity: float) -> None:
        self._c_target = storage_charge
        self._c_max = storage_capacity

    def on_idle_start(self, start: SlotStart) -> None:
        t_i = self.idle_length_predictor.predict()
        self._plan(t_i, start.i_idle, start.storage_charge)
        self._active_planned = False

    def output(self, ctx: SegmentContext) -> float:
        if ctx.phase == "idle":
            return self._if_idle
        if not self._active_planned:
            # Re-anchor the active output on actuals, as FC-DPM does.
            if_a = (
                ctx.phase_demand + self._c_target - ctx.storage_charge
            ) / ctx.phase_duration
            blended = 0.5 * self._if_active + 0.5 * if_a
            self._if_active = self.model.clamp(blended)
            self._active_planned = True
        return self._if_active

    def on_slot_end(self, actuals: SlotActuals) -> None:
        if self.observes_idle:
            self.idle_length_predictor.observe(actuals.t_idle)
        self.active_length_predictor.observe(actuals.t_active)
        self._i_active_sum += actuals.i_active
        self._i_active_n += 1

    def reset(self) -> None:
        self.idle_length_predictor.reset()
        self.active_length_predictor.reset()
        self._i_active_sum = 0.0
        self._i_active_n = 0
        self._active_planned = False
        self.n_plans = 0
        self.n_fallbacks = 0
