"""Run-to-empty lifetime tests: the paper's headline metric, measured."""

import pytest

from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params
from repro.errors import ConfigurationError
from repro.sim.lifetime import lifetime_comparison, run_until_empty
from repro.workload.mpeg import generate_mpeg_trace


@pytest.fixture(scope="module")
def trace():
    return generate_mpeg_trace(duration_s=300.0, seed=5)


@pytest.fixture(scope="module")
def results(trace):
    dev = camcorder_device_params()
    managers = [
        PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
    ]
    return lifetime_comparison(managers, trace, tank_capacity=2000.0)


class TestRunUntilEmpty:
    def test_ordering_matches_fuel_rates(self, results):
        assert (
            results["fc-dpm"].lifetime
            > results["asap-dpm"].lifetime
            > results["conv-dpm"].lifetime
        )

    def test_conv_lifetime_is_tank_over_1_3A(self, results):
        # Conv-DPM burns a constant Ifc ~ 1.306 A: lifetime ~ 2000/1.306.
        assert results["conv-dpm"].lifetime == pytest.approx(
            2000.0 / 1.306, rel=0.02
        )

    def test_measured_matches_inferred_lifetime_ratio(self, results, trace):
        """The paper's equivalence: measured run-to-empty ratio equals
        the inverse fuel-rate ratio (within one-cycle quantization)."""
        dev = camcorder_device_params()
        from repro.sim.slotsim import simulate_policies

        managers = [
            PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
            PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        ]
        fuel = simulate_policies(trace, managers)
        inferred = fuel["asap-dpm"].fuel / fuel["fc-dpm"].fuel
        measured = results["fc-dpm"].lifetime / results["asap-dpm"].lifetime
        assert measured == pytest.approx(inferred, rel=0.06)

    def test_average_rate_reconstructs_tank(self, results):
        r = results["fc-dpm"]
        assert r.average_fuel_rate * r.lifetime == pytest.approx(
            r.tank_capacity, rel=0.02
        )

    def test_served_charge_positive(self, results):
        for r in results.values():
            assert r.served_charge > 0
            assert r.full_cycles >= 1

    def test_rejects_bad_tank(self, trace):
        dev = camcorder_device_params()
        mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        with pytest.raises(ConfigurationError):
            run_until_empty(mgr, trace, tank_capacity=0.0)

    def test_oversized_tank_rejected(self, trace):
        dev = camcorder_device_params()
        mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        with pytest.raises(ConfigurationError):
            run_until_empty(mgr, trace, tank_capacity=1e9, max_cycles=3)
