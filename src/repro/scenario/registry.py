"""Registry of named scenarios: the paper's canonical configurations.

The six ``exp{1,2}-{conv,asap,fc}-dpm`` entries are exactly the runs
behind Tables 2 and 3 (asserted bit-identical by the golden tests); the
extra entries exercise the pluggable power-source seam -- a two-stack
hybrid and a battery-only contrast plant on the Experiment-1 workload.

``register`` accepts user-defined scenarios too, so downstream studies
can name their configurations once and reach them from the CLI, the
sweeps and the cache alike.
"""

from __future__ import annotations

from ..config import Experiment1Constants, Experiment2Constants
from ..errors import ConfigurationError
from .spec import DeviceSpec, PolicySpec, Scenario, SourceSpec, WorkloadSpec

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario, *, overwrite: bool = False) -> Scenario:
    """Add a scenario to the registry (its ``name`` is the key)."""
    if scenario.name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def experiment_scenarios(experiment: str) -> list[Scenario]:
    """The three policy scenarios of one experiment ('exp1' or 'exp2')."""
    if experiment not in ("exp1", "exp2"):
        raise ConfigurationError("experiment must be 'exp1' or 'exp2'")
    return [get_scenario(f"{experiment}-{p}") for p in ("conv-dpm", "asap-dpm", "fc-dpm")]


def _build_canonical() -> None:
    c1 = Experiment1Constants()
    e2 = Experiment2Constants()

    # Experiment 1: 28-min MPEG camcorder trace, 1 F supercap started
    # half full, rho = 0.5 (table2() uses rho for sigma too -- the
    # active period is constant so the filter pins immediately).
    exp1_source = SourceSpec(
        storage_capacity=c1.storage_capacity,
        storage_initial=c1.storage_capacity / 2,
    )
    for policy, desc in (
        ("conv-dpm", "FC pinned at IF_max"),
        ("asap-dpm", "load-following FC output"),
        ("fc-dpm", "fuel-optimal FC setting"),
    ):
        register(
            Scenario(
                name=f"exp1-{policy}",
                description=f"Table 2 MPEG camcorder run, {desc}",
                workload=WorkloadSpec(kind="mpeg"),
                device=DeviceSpec(kind="camcorder"),
                policy=PolicySpec(kind=policy, rho=c1.rho, sigma=c1.rho),
                source=exp1_source,
            )
        )

    # Experiment 2: randomized synthetic workload, heavier SLEEP
    # overheads, constant 1.2 A active-current estimate (Section 5.2).
    exp2_source = SourceSpec(storage_capacity=6.0, storage_initial=3.0)
    for policy, desc in (
        ("conv-dpm", "FC pinned at IF_max"),
        ("asap-dpm", "load-following FC output"),
        ("fc-dpm", "fuel-optimal FC setting"),
    ):
        register(
            Scenario(
                name=f"exp2-{policy}",
                description=f"Table 3 randomized run, {desc}",
                workload=WorkloadSpec(kind="experiment2"),
                device=DeviceSpec(kind="randomized"),
                policy=PolicySpec(
                    kind=policy,
                    rho=e2.rho,
                    sigma=e2.sigma,
                    active_current_estimate=e2.i_active_estimate,
                ),
                source=exp2_source,
            )
        )

    # Fleet smoke: the Experiment-2 plant replicated across a
    # heterogeneous device fleet.  Each seed's workload ranges are
    # jittered +/-25% by a seed-keyed side stream, so a multi-seed batch
    # models hundreds of non-identical devices; the workload has a
    # batched array synthesizer, and the conv-dpm plant is
    # stacked-eligible, so fleet-scale sweeps ride the stacked 2D
    # kernel end to end.
    register(
        Scenario(
            name="fleet_smoke",
            description=(
                "Fleet-scale smoke sweep: Experiment-2 plant, conv-dpm, "
                "per-seed +/-25% workload jitter across the batch"
            ),
            workload=WorkloadSpec(kind="fleet", jitter=0.25),
            device=DeviceSpec(kind="randomized"),
            policy=PolicySpec(
                kind="conv-dpm",
                rho=e2.rho,
                sigma=e2.sigma,
                active_current_estimate=e2.i_active_estimate,
            ),
            source=exp2_source,
        )
    )

    # Pluggable-source variants on the Experiment-1 workload.
    register(
        Scenario(
            name="exp1-fc-dpm-multistack",
            description="Table 2 FC-DPM run served by two ganged half-load stacks",
            workload=WorkloadSpec(kind="mpeg"),
            device=DeviceSpec(kind="camcorder"),
            policy=PolicySpec(kind="fc-dpm", rho=c1.rho, sigma=c1.rho),
            source=SourceSpec(
                kind="multi-stack",
                storage_capacity=c1.storage_capacity,
                storage_initial=c1.storage_capacity / 2,
                n_stacks=2,
                sharing="equal",
            ),
        )
    )
    register(
        Scenario(
            name="exp1-battery",
            description=(
                "Table 2 workload served from a stand-alone Li-ion battery "
                "(no fuel cell) -- the paper's Section-1 contrast case"
            ),
            workload=WorkloadSpec(kind="mpeg"),
            device=DeviceSpec(kind="camcorder"),
            policy=PolicySpec(kind="conv-dpm", rho=c1.rho),
            source=SourceSpec(
                kind="battery",
                storage_kind="liion",
                storage_capacity=2000.0,
                storage_initial=2000.0,
            ),
        )
    )


_build_canonical()
