"""Slot-level trace simulator -- the paper's evaluation methodology.

Executes a :class:`~repro.workload.trace.LoadTrace` against a
:class:`~repro.core.manager.PowerManager`: for every task slot the
device-side DPM policy commits a sleep decision, the FC controller sets
the output current, and the power source integrates fuel and storage.

Timeline convention (documented in DESIGN.md): the trace's ``Ti`` is the
request-free interval.  A sleeping idle period is laid out as
``[standby dwell][power-down][sleep][wake-up]`` summing to ``Ti`` (the
device wakes exactly at the next request; the paper instead extends the
active period by ``tau_WU`` -- the charge accounting is identical, and
keeping slots equal-length lets all policies run the same wall clock).
The STANDBY<->RUN transitions are absorbed into the active period at the
slot's active current, as the paper does (Section 3.3.2, assumption 2).

The segment layout and integration math live in
:mod:`repro.sim.integrator`, shared with the event-driven simulator;
this module only owns the closed-form slot scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from ..core.baselines import SlotActuals, SlotStart
from ..core.manager import PowerManager
from ..errors import SimulationError
from ..obs import OBS
from ..workload.trace import LoadTrace
from .integrator import (
    SegmentIntegrator,
    chunk_segments,
    plan_active_segments,
    plan_idle_segments,
)
from .metrics import RunMetrics
from .recorder import Recorder


class SlotResult(NamedTuple):
    """Outcome of one simulated task slot.

    A ``NamedTuple`` (not a frozen dataclass) because one is created per
    task slot on every run; tuple construction keeps the per-slot
    bookkeeping cheap for both the scalar and the vectorized simulator.
    """

    index: int
    slept: bool
    aborted_sleep: bool
    fuel: float
    load_charge: float
    if_idle: float
    if_active: float
    storage_end: float


@dataclass
class SimulationResult:
    """Full outcome of one simulated trace."""

    name: str
    fuel: float
    load_charge: float
    delivered_charge: float
    duration: float
    bled: float
    deficit: float
    n_slots: int
    n_sleeps: int
    n_aborted_sleeps: int
    #: Total task-start delay from wake-up transitions (s).  Each slept
    #: idle period ends with a wake-on-request, so the task waits
    #: ``tau_WU``; DPM's energy/latency trade-off made explicit (the
    #: paper accounts the charge but not the delay).
    wakeup_latency: float = 0.0
    slots: list[SlotResult] = field(default_factory=list)
    recorder: Recorder | None = None

    @property
    def mean_latency_per_request(self) -> float:
        """Average wake-up delay per task slot (s)."""
        if self.n_slots == 0:
            return 0.0
        return self.wakeup_latency / self.n_slots

    @property
    def metrics(self) -> RunMetrics:
        """Reduce to the comparison metrics used by Tables 2/3."""
        return RunMetrics(
            name=self.name,
            fuel=self.fuel,
            load_charge=self.load_charge,
            duration=self.duration,
            bled=self.bled,
            deficit=self.deficit,
        )

    @property
    def average_system_efficiency(self) -> float:
        """Delivered FC energy over Gibbs energy for the whole run."""
        if self.fuel == 0:
            return 0.0
        return self.delivered_charge / self.fuel  # both at 12 V & zeta folded


class SlotSimulator:
    """Runs task-slot traces against a power-manager configuration.

    Parameters
    ----------
    manager:
        Device parameters + DPM policy + FC controller + power source.
    record:
        Keep a :class:`~repro.sim.recorder.Recorder` time series
        (needed for Fig. 7; off by default to keep long sweeps cheap).
    max_deficit_fraction:
        Guardrail: raise :class:`~repro.errors.SimulationError` when the
        unserved load charge exceeds this fraction of the total load --
        it means the source is undersized for the workload and the
        resulting fuel numbers would be meaningless.
    max_segment:
        Optional re-decision period (s): segments longer than this are
        split into equal chunks, so the FC controller sees fresh storage
        state periodically *within* a long period.  ``None`` (default)
        is the paper-faithful behaviour -- the FC output only changes at
        power-state transitions; a finite value lets controllers guard
        against storage saturation on heavy-tailed idle periods the
        paper's workloads never produce.
    """

    def __init__(
        self,
        manager: PowerManager,
        record: bool = False,
        max_deficit_fraction: float = 0.05,
        max_segment: float | None = None,
    ) -> None:
        if max_deficit_fraction < 0:
            raise SimulationError("max_deficit_fraction cannot be negative")
        if max_segment is not None and max_segment <= 0:
            raise SimulationError("max_segment must be positive")
        self.manager = manager
        self.record = record
        self.max_deficit_fraction = max_deficit_fraction
        self.max_segment = max_segment

    # -- execution ---------------------------------------------------------

    def run(self, trace: LoadTrace) -> SimulationResult:
        """Simulate the whole trace; returns the aggregated result."""
        mgr = self.manager
        source = mgr.source
        recorder = Recorder() if self.record else None
        if recorder is not None:
            # The recorder replays SourceStep entries into its time
            # series; history is otherwise off (see PowerSource).
            source.record_history = True
        integrator = SegmentIntegrator(mgr, recorder=recorder)

        integrator.start_run()

        n_sleeps = 0
        n_aborted = 0
        slot_results: list[SlotResult] = []
        # Hoisted once: enable state cannot change mid-run, and the
        # per-slot loop is the scalar path's hot loop.
        obs_on = OBS.enabled

        for index, slot in enumerate(trace):
            slot_span = (
                OBS.span("sim.slot", slot=index) if obs_on else None
            )
            t_sim_start = integrator.t_now
            decision = mgr.policy.on_idle_start()
            idle_segments, slept, aborted = plan_idle_segments(
                mgr.device, slot.t_idle, decision.sleep, decision.sleep_after
            )
            n_sleeps += slept
            n_aborted += aborted
            if obs_on:
                OBS.metrics.counter(
                    "dpm.decisions", slept="yes" if slept else "no"
                ).inc()
                if aborted:
                    OBS.metrics.counter("dpm.aborted_sleeps").inc()

            i_idle_nominal = mgr.device.i_slp if slept else mgr.device.i_sdb
            mgr.controller.on_idle_start(
                SlotStart(
                    slot_index=index,
                    sleeping=slept,
                    i_idle=i_idle_nominal,
                    storage_charge=source.storage.charge,
                )
            )

            slot_fuel = 0.0
            slot_load = 0.0
            if_idle_used = 0.0
            if_active_used = 0.0

            for phase, segments in (
                ("idle", chunk_segments(idle_segments, self.max_segment)),
                (
                    "active",
                    chunk_segments(
                        plan_active_segments(mgr.device, slot), self.max_segment
                    ),
                ),
            ):
                steps = integrator.run_phase(index, phase, segments)
                for step in steps:
                    slot_fuel += step.fuel
                    slot_load += step.i_load * step.dt
                if steps:
                    if phase == "idle":
                        if_idle_used = steps[-1].i_f
                    else:
                        if_active_used = steps[-1].i_f

            mgr.policy.on_idle_end(slot.t_idle)
            mgr.controller.on_slot_end(
                SlotActuals(
                    slot_index=index,
                    t_idle=slot.t_idle,
                    t_active=slot.t_active,
                    i_active=slot.i_active,
                )
            )
            slot_results.append(
                SlotResult(
                    index=index,
                    slept=slept,
                    aborted_sleep=aborted,
                    fuel=slot_fuel,
                    load_charge=slot_load,
                    if_idle=if_idle_used,
                    if_active=if_active_used,
                    storage_end=source.storage.charge,
                )
            )
            if slot_span is not None:
                slot_span.set(
                    t_sim_start=t_sim_start,
                    t_sim_end=integrator.t_now,
                    slept=slept,
                    aborted=aborted,
                )
                slot_span.finish()

        threshold = source.total_load_charge * self.max_deficit_fraction
        if source.storage.deficit_charge > threshold:
            raise SimulationError(
                f"{mgr.name}: storage deficit "
                f"{source.storage.deficit_charge:.2f} A-s exceeds "
                f"{100 * self.max_deficit_fraction:.0f}% of load -- "
                "the source is undersized for this workload"
            )

        return SimulationResult(
            name=mgr.name,
            fuel=source.total_fuel,
            load_charge=source.total_load_charge,
            delivered_charge=source.total_delivered_charge,
            duration=integrator.t_now,
            bled=source.storage.bled_charge,
            deficit=source.storage.deficit_charge,
            n_slots=len(trace),
            n_sleeps=n_sleeps,
            n_aborted_sleeps=n_aborted,
            wakeup_latency=n_sleeps * mgr.device.t_wu,
            slots=slot_results,
            recorder=recorder,
        )


def simulate_policies(
    trace: LoadTrace,
    managers: list[PowerManager],
    record: bool = False,
    fast: bool = False,
) -> dict[str, SimulationResult]:
    """Run several manager configurations over the same trace.

    With ``fast=True`` each manager goes through
    :func:`repro.sim.vectorized.simulate_fast`, which uses the array
    kernel when the configuration is eligible and silently falls back
    to this scalar simulator otherwise -- the results are identical
    either way.
    """
    results: dict[str, SimulationResult] = {}
    if fast:
        from .vectorized import simulate_fast

        for mgr in managers:
            results[mgr.name] = simulate_fast(mgr, trace, record=record)
        return results
    for mgr in managers:
        results[mgr.name] = SlotSimulator(mgr, record=record).run(trace)
    return results
