"""Tracer: span nesting, error status, export/import, adoption."""

import os
import threading

import pytest

from repro.obs import NULL_TRACER, Span, Tracer
from repro.obs.tracer import NULL_SPAN


def test_span_nesting_parents():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current_span_id == inner.span_id
        assert tracer.current_span_id == outer.span_id
    assert tracer.current_span_id is None
    spans = {s.name: s for s in tracer.finished}
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["outer"].parent_id is None
    # Children finish before parents.
    assert [s.name for s in tracer.finished] == ["inner", "outer"]


def test_span_records_timing_and_attrs():
    tracer = Tracer()
    with tracer.span("op", seed=7) as handle:
        handle.set(extra="x")
    span = tracer.finished[0]
    assert span.duration is not None and span.duration >= 0
    assert span.t_wall > 0
    assert span.pid == os.getpid()
    assert span.attrs == {"seed": 7, "extra": "x"}
    assert span.status == "ok"


def test_span_error_status():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("bad"):
            raise ValueError("boom")
    assert tracer.finished[0].status == "error:ValueError"


def test_span_ids_unique_across_tracer_instances():
    # Pooled workers build a fresh Tracer per chunk in the same process;
    # ids draw from a process-global counter so they never collide.
    ids = set()
    for _ in range(3):
        tracer = Tracer()
        with tracer.span("chunk"):
            pass
        ids.add(tracer.finished[0].span_id)
    assert len(ids) == 3


def test_export_import_roundtrip():
    tracer = Tracer()
    with tracer.span("a", k=1):
        with tracer.span("b"):
            pass
    exported = tracer.export()
    rebuilt = [Span.from_dict(d) for d in exported]
    assert [s.name for s in rebuilt] == ["b", "a"]
    assert rebuilt[1].attrs == {"k": 1}
    assert rebuilt[0].parent_id == rebuilt[1].span_id


def test_adopt_reparents_foreign_roots():
    worker = Tracer()
    with worker.span("worker-root"):
        with worker.span("worker-child"):
            pass
    shipped = worker.export()

    coordinator = Tracer()
    with coordinator.span("map") as handle:
        coordinator.adopt(shipped)
        map_id = handle.span_id
    spans = {s.name: s for s in coordinator.finished}
    # The foreign root now hangs off the coordinator's active span; the
    # child keeps its original parent.
    assert spans["worker-root"].parent_id == map_id
    assert spans["worker-child"].parent_id == spans["worker-root"].span_id


def test_adopt_explicit_parent():
    worker = Tracer()
    with worker.span("job"):
        pass
    coordinator = Tracer()
    coordinator.adopt(worker.export(), parent_id="custom-parent")
    assert coordinator.finished[0].parent_id == "custom-parent"


def test_thread_local_stacks():
    tracer = Tracer()
    seen = {}

    def worker():
        with tracer.span("thread-root") as handle:
            seen["id"] = handle.span_id

    with tracer.span("main-root"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    spans = {s.name: s for s in tracer.finished}
    # The other thread's stack is independent: its span is a root, not a
    # child of main-root.
    assert spans["thread-root"].parent_id is None
    assert spans["main-root"].parent_id is None


def test_null_tracer_is_inert():
    span = NULL_TRACER.span("anything", k=1)
    assert span is NULL_SPAN
    with span as s:
        assert s.set(x=2) is s
    s.finish()
    assert NULL_TRACER.export() == []
    assert NULL_TRACER.current_span_id is None
    assert NULL_TRACER.adopt([{"span_id": "x"}]) is None
