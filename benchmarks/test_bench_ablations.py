"""Ablation benches for the design choices called out in DESIGN.md.

Not figures of the paper -- these quantify *why* FC-DPM works:

* the efficiency slope ``beta`` is the entire source of the win;
* storage capacity trades directly against fuel;
* the predictor choice is second order on the MPEG workload;
* ASAP-DPM's recharge threshold barely matters.
"""

from repro.analysis.report import format_table
from repro.analysis.sweep import (
    efficiency_slope_sweep,
    predictor_sweep,
    recharge_threshold_sweep,
    storage_capacity_sweep,
)


def test_bench_ablation_efficiency_slope(benchmark, emit):
    sweep = benchmark.pedantic(efficiency_slope_sweep, rounds=1, iterations=1)
    rows = [["beta", "FC-DPM saving vs ASAP-DPM (%)"]]
    for beta, saving in sweep.items():
        rows.append([f"{beta:.2f}", f"{100 * saving:.1f}"])
    emit(
        "ablation_beta",
        "ABLATION -- fuel saving vs efficiency slope (paper beta = 0.13)\n"
        + format_table(rows),
    )
    assert abs(sweep[0.0]) < 0.02        # no slope, no win
    assert sweep[0.13] > 0.10            # paper slope: double-digit saving
    values = list(sweep.values())
    assert values == sorted(values)      # monotone in beta


def test_bench_ablation_storage_capacity(benchmark, emit):
    sweep = benchmark.pedantic(storage_capacity_sweep, rounds=1, iterations=1)
    rows = [["Cmax (A-s)", "conv", "asap", "fc-dpm"]]
    for cap, row in sweep.items():
        rows.append(
            [
                f"{cap:g}",
                f"{row['conv-dpm']:.3f}",
                f"{row['asap-dpm']:.3f}",
                f"{row['fc-dpm']:.3f}",
            ]
        )
    emit(
        "ablation_storage",
        "ABLATION -- normalized fuel vs storage capacity "
        "(paper uses 6 A-s)\n" + format_table(rows),
    )
    caps = sorted(sweep)
    assert sweep[caps[-1]]["fc-dpm"] <= sweep[caps[0]]["fc-dpm"] + 1e-6


def test_bench_ablation_predictor(benchmark, emit):
    sweep = benchmark.pedantic(predictor_sweep, rounds=1, iterations=1)
    rows = [["idle predictor", "FC-DPM fuel / Conv-DPM"]]
    for name, value in sorted(sweep.items(), key=lambda kv: kv[1]):
        rows.append([name, f"{value:.3f}"])
    emit(
        "ablation_predictor",
        "ABLATION -- FC-DPM vs idle-period predictor "
        "(paper uses the rho=0.5 exponential filter)\n" + format_table(rows),
    )
    assert max(sweep.values()) - min(sweep.values()) < 0.05


def test_bench_ablation_recharge_threshold(benchmark, emit):
    sweep = benchmark.pedantic(recharge_threshold_sweep, rounds=1, iterations=1)
    rows = [["threshold", "ASAP fuel / Conv-DPM"]]
    for th, value in sweep.items():
        rows.append([f"{th:.2f}", f"{value:.3f}"])
    emit(
        "ablation_recharge",
        "ABLATION -- ASAP-DPM recharge threshold "
        "(paper uses half capacity)\n" + format_table(rows),
    )
    assert max(sweep.values()) - min(sweep.values()) < 0.10
