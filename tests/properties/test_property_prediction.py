"""Property-based tests across the predictor family."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction.base import ConstantPredictor, LastValuePredictor
from repro.prediction.ensemble import EnsemblePredictor
from repro.prediction.exponential import (
    ExponentialAveragePredictor,
    exponential_average_scan,
)
from repro.prediction.learning_tree import LearningTreePredictor
from repro.prediction.regression import RegressionPredictor

observations = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=60,
)

FACTORIES = [
    lambda: ExponentialAveragePredictor(factor=0.5),
    lambda: LastValuePredictor(initial=1.0),
    lambda: RegressionPredictor(order=2, window=16),
    lambda: LearningTreePredictor(bin_edges=[5.0, 20.0, 100.0], depth=2),
    lambda: EnsemblePredictor(
        [ExponentialAveragePredictor(factor=0.5), ConstantPredictor(10.0)]
    ),
]


class TestPredictorInvariants:
    @pytest.mark.parametrize("factory", FACTORIES)
    @given(data=observations)
    @settings(max_examples=60, deadline=None)
    def test_predictions_never_negative(self, factory, data):
        p = factory()
        for value in data:
            assert p.predict() >= 0.0
            p.observe(value)
        assert p.predict() >= 0.0

    @pytest.mark.parametrize("factory", FACTORIES)
    @given(data=observations)
    @settings(max_examples=60, deadline=None)
    def test_predictions_bounded_by_history_envelope(self, factory, data):
        """No predictor extrapolates beyond ~2x the largest observation
        (plus its initial estimate)."""
        p = factory()
        initial = p.predict()
        bound = max(max(data), initial, 1.0) * 2.0
        for value in data:
            p.predict()
            p.observe(value)
        assert p.predict() <= bound + 1e-9

    @pytest.mark.parametrize("factory", FACTORIES)
    @given(data=observations)
    @settings(max_examples=40, deadline=None)
    def test_reset_restores_initial_prediction(self, factory, data):
        p = factory()
        first = p.predict()
        for value in data:
            p.observe(value)
        p.reset()
        assert p.predict() == pytest.approx(first)

    @pytest.mark.parametrize("factory", FACTORIES)
    @given(data=observations)
    @settings(max_examples=40, deadline=None)
    def test_error_accounting_consistency(self, factory, data):
        p = factory()
        for value in data:
            p.predict()
            p.observe(value)
        assert p.n_scored == len(data)
        assert p.mean_absolute_error >= abs(p.bias) - 1e-9

    @given(
        data=st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=5,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_constant_sequences_learned_by_all(self, data):
        """Feeding the same value k times: every predictor converges."""
        value = data[0]
        for factory in FACTORIES:
            p = factory()
            for _ in range(30):
                p.predict()
                p.observe(value)
            assert p.predict() == pytest.approx(value, rel=0.25, abs=0.5)


#: Smoothing factors for the scan-equivalence gate, hitting both edges
#: the kernel relies on: ``factor=0`` degenerates to last-value
#: prediction, and a factor ULPs below 1 is an almost-frozen estimate
#: (1.0 itself is rejected by the constructor).
scan_factors = st.one_of(
    st.just(0.0),
    st.just(1.0 - 2.0**-52),
    st.floats(min_value=0.0, max_value=1.0, exclude_max=True,
              allow_nan=False),
)


class TestExponentialScanEquivalence:
    """``exponential_average_scan`` is the vectorized kernel's stand-in
    for a sequential predict/observe loop; the contract is bit-for-bit
    equality, not approximation."""

    @given(
        factor=scan_factors,
        initial=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        data=observations,
    )
    @settings(max_examples=200, deadline=None)
    def test_scan_matches_sequential_bit_for_bit(self, factor, initial, data):
        preds, final = exponential_average_scan(factor, initial, data)
        p = ExponentialAveragePredictor(factor=factor, initial=initial)
        expected = []
        for value in data:
            expected.append(p.predict())
            p.observe(value)
        assert preds.tolist() == expected  # == on every float
        assert final == p.estimate

    @given(
        factor=scan_factors,
        initial=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        data=observations,
    )
    @settings(max_examples=100, deadline=None)
    def test_commit_scan_restores_sequential_state(self, factor, initial, data):
        sequential = ExponentialAveragePredictor(factor=factor, initial=initial)
        for value in data:
            sequential.predict()
            sequential.observe(value)

        committed = ExponentialAveragePredictor(factor=factor, initial=initial)
        preds, final = exponential_average_scan(factor, initial, data)
        committed.commit_scan(data, preds, final)

        # Full state equality: estimate, accuracy ledgers, remembered
        # prediction -- everything a later consumer could observe.
        assert committed.__dict__ == sequential.__dict__

    @given(data=observations)
    @settings(max_examples=50, deadline=None)
    def test_factor_zero_is_last_value(self, data):
        preds, final = exponential_average_scan(0.0, 7.0, data)
        assert preds[0] == 7.0
        assert preds.tolist()[1:] == data[:-1]
        assert final == data[-1]
