"""FC *system* efficiency models (paper Section 2.3, Fig. 3).

The paper defines the system efficiency as

    eta_s = (VF * IF) / dE_Gibbs,      dE_Gibbs = zeta * Ifc        (Eq. 1)

and, for the PWM-PFM converter + proportional-fan configuration,
calibrates the linear law

    eta_s ~= alpha - beta * IF,        alpha = 0.45, beta = 0.13    (Eq. 2)

over the load-following range ``IF in [0.1, 1.2] A``.  Inverting Eq. 1
gives the *fuel map* -- the stack current (proportional to fuel flow)
required to source a system output current:

    Ifc = (VF * IF) / (zeta * eta_s(IF))                            (Eq. 3)
        = 0.32 * IF / (alpha - beta * IF)    for the linear law     (Eq. 4)

Every policy in :mod:`repro.core` minimizes integrals of this map.  The
map is strictly convex and increasing for the linear law, which is what
makes the paper's "flat output" optimum (Section 3.3) hold.

This module provides the linear law, a constant law (the on-off-fan
configuration of refs [10, 11]), a tabulated law (from measured points),
and a physically composed law (stack x converter x controller) used to
regenerate Fig. 3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache

import numpy as np

from ..config import FCSystemConstants
from ..errors import ConfigurationError, RangeError
from ..power.converter import ConverterModel, PWMPFMConverter
from .controller import FanController, ProportionalFanController
from .stack import FCStack


class SystemEfficiencyModel(ABC):
    """Common interface: efficiency and fuel map over the load-following range.

    Parameters
    ----------
    v_out:
        Regulated system output voltage ``VF`` (V).
    zeta:
        Gibbs-power coefficient ``dE_Gibbs = zeta * Ifc`` (W/A).
    if_min, if_max:
        Load-following range bounds (A).
    """

    def __init__(
        self,
        v_out: float = 12.0,
        zeta: float = 37.5,
        if_min: float = 0.1,
        if_max: float = 1.2,
    ) -> None:
        if v_out <= 0 or zeta <= 0:
            raise ConfigurationError("v_out and zeta must be positive")
        if not 0 <= if_min < if_max:
            raise ConfigurationError("need 0 <= if_min < if_max")
        self.v_out = v_out
        self.zeta = zeta
        self.if_min = if_min
        self.if_max = if_max

    # -- caching ------------------------------------------------------------

    @property
    def cache_token(self):
        """Value-semantics identity for memoization, or ``None``.

        Models whose fuel map is a pure function of a few scalar
        coefficients return a hashable tuple of them; two instances with
        equal tokens are interchangeable, which lets
        :mod:`repro.runtime.memo` share solver results across instances.
        Stateful / composed models return ``None`` (not cacheable).
        """
        return None

    # -- interface ----------------------------------------------------------

    @abstractmethod
    def efficiency(self, i_f: float) -> float:
        """System efficiency ``eta_s`` at system output current ``IF`` (A)."""

    def fc_current(self, i_f: float) -> float:
        """Fuel map: stack current ``Ifc`` (A) to source ``IF`` (Eq. 3)."""
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        if i_f == 0:
            return 0.0
        eta = self.efficiency(i_f)
        if eta <= 0:
            raise RangeError(f"efficiency is non-positive at IF={i_f:.3f} A")
        return self.v_out * i_f / (self.zeta * eta)

    def fc_current_derivative(self, i_f: float, h: float = 1e-6) -> float:
        """``d Ifc / d IF`` -- central difference unless overridden."""
        lo = max(i_f - h, 0.0)
        return (self.fc_current(i_f + h) - self.fc_current(lo)) / (i_f + h - lo)

    def fuel_charge(self, i_f: float, duration: float) -> float:
        """Fuel consumed (stack A-s) holding output ``IF`` for ``duration``."""
        if duration < 0:
            raise RangeError("duration cannot be negative")
        return self.fc_current(i_f) * duration

    def fuel_map_array(self, i_f: np.ndarray) -> np.ndarray:
        """Vectorized fuel map: ``Ifc`` for an array of output currents.

        The generic implementation evaluates :meth:`fc_current` per
        element, so any model is array-capable; subclasses with a
        closed-form law override it with real array arithmetic.  Each
        returned element is **bit-identical** to the scalar call -- the
        vectorized simulator (:mod:`repro.sim.vectorized`) relies on
        that to stay exactly equivalent to the scalar path.
        """
        arr = np.asarray(i_f, dtype=float)
        out = np.empty(arr.shape, dtype=float)
        flat_in = arr.reshape(-1)
        flat_out = out.reshape(-1)
        for j in range(flat_in.size):
            flat_out[j] = self.fc_current(float(flat_in[j]))
        return out

    # -- range helpers --------------------------------------------------------

    def clamp(self, i_f: float) -> float:
        """Clamp ``IF`` into the load-following range (paper Section 3.3.1)."""
        return min(max(i_f, self.if_min), self.if_max)

    def in_range(self, i_f: float, tol: float = 1e-12) -> bool:
        """True if ``IF`` lies within the load-following range."""
        return self.if_min - tol <= i_f <= self.if_max + tol

    def sweep(self, n_points: int = 200, i_max: float | None = None):
        """``(IF, eta_s)`` arrays for plotting Fig. 3 style curves."""
        top = self.if_max if i_max is None else i_max
        i = np.linspace(max(self.if_min * 0.1, 1e-4), top, n_points)
        eta = np.array([self.efficiency(float(x)) for x in i])
        return i, eta


#: Bound on distinct ``(coefficients, IF)`` fuel-map entries; large
#: enough for every sweep in the repo, small enough to be invisible.
FUEL_MAP_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=FUEL_MAP_CACHE_SIZE)
def _linear_fuel_map(k_fuel: float, alpha: float, beta: float, i_f: float) -> float:
    """Eq. 4 with the coefficients in the key: shared across instances.

    Module-level so the table survives model re-construction (sweeps
    build fresh ``LinearSystemEfficiency`` objects per point) and so
    instances stay picklable for process-pool dispatch.
    """
    denom = alpha - beta * i_f
    if denom <= 0:
        raise RangeError(
            f"IF={i_f:.3f} A is at/beyond the efficiency pole "
            f"alpha/beta={alpha / beta if beta else float('inf'):.3f} A"
        )
    return k_fuel * i_f / denom


class LinearSystemEfficiency(SystemEfficiencyModel):
    """``eta_s = alpha - beta * IF`` -- the paper's calibrated model (Eq. 2).

    With this law the fuel map (Eq. 4) has the closed form
    ``Ifc = k * IF / (alpha - beta * IF)`` with ``k = VF / zeta`` (= 0.32
    for the paper's numbers), which is strictly convex and increasing on
    ``[0, alpha/beta)``.
    """

    def __init__(
        self,
        alpha: float = 0.45,
        beta: float = 0.13,
        v_out: float = 12.0,
        zeta: float = 37.5,
        if_min: float = 0.1,
        if_max: float = 1.2,
    ) -> None:
        super().__init__(v_out=v_out, zeta=zeta, if_min=if_min, if_max=if_max)
        if alpha <= 0 or beta < 0:
            raise ConfigurationError("need alpha > 0 and beta >= 0")
        if alpha - beta * if_max <= 0:
            raise ConfigurationError(
                "alpha - beta * if_max must stay positive over the range"
            )
        self.alpha = alpha
        self.beta = beta
        # Pre-bound coefficient key so the cached fuel map is a single
        # tuple-splat call (the k_fuel property would recompute per call).
        self._fuel_coeffs = (v_out / zeta, alpha, beta)

    @classmethod
    def from_constants(cls, constants: FCSystemConstants) -> "LinearSystemEfficiency":
        """Build from a :class:`~repro.config.FCSystemConstants` bundle."""
        return cls(
            alpha=constants.alpha,
            beta=constants.beta,
            v_out=constants.v_out,
            zeta=constants.zeta,
            if_min=constants.if_min,
            if_max=constants.if_max,
        )

    @property
    def k_fuel(self) -> float:
        """``VF / zeta`` -- 0.32 for the paper's numbers."""
        return self.v_out / self.zeta

    def efficiency(self, i_f: float) -> float:
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        return self.alpha - self.beta * i_f

    @property
    def cache_token(self):
        """See :attr:`SystemEfficiencyModel.cache_token`."""
        return (
            "linear",
            self.alpha,
            self.beta,
            self.v_out,
            self.zeta,
            self.if_min,
            self.if_max,
        )

    def fc_current(self, i_f: float) -> float:
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        k_fuel, alpha, beta = self._fuel_coeffs
        return _linear_fuel_map(k_fuel, alpha, beta, i_f)

    def fc_current_derivative(self, i_f: float, h: float = 1e-6) -> float:
        """Analytic ``d Ifc / d IF = k * alpha / (alpha - beta IF)^2``."""
        denom = self.alpha - self.beta * i_f
        if denom <= 0:
            raise RangeError("IF at/beyond the efficiency pole")
        return self.k_fuel * self.alpha / (denom * denom)

    def fuel_map_array(self, i_f: np.ndarray) -> np.ndarray:
        """Closed-form Eq. 4 over an array, bit-identical per element.

        ``k * IF / (alpha - beta * IF)`` evaluates each element with the
        same IEEE-754 operation sequence as :func:`_linear_fuel_map`, so
        every entry equals the scalar :meth:`fc_current` result exactly.
        Subclasses that disable :attr:`cache_token` fall back to the
        per-element base implementation (they may have overridden the
        scalar law).
        """
        if self.cache_token is None:
            return super().fuel_map_array(i_f)
        arr = np.asarray(i_f, dtype=float)
        if arr.size and float(arr.min()) < 0:
            raise RangeError("system output current cannot be negative")
        k_fuel, alpha, beta = self._fuel_coeffs
        denom = alpha - beta * arr
        if arr.size and float(denom.min()) <= 0:
            worst = float(arr[int(np.argmin(denom))])
            raise RangeError(
                f"IF={worst:.3f} A is at/beyond the efficiency pole "
                f"alpha/beta={alpha / beta if beta else float('inf'):.3f} A"
            )
        return k_fuel * arr / denom

    def inverse_fc_current(self, i_fc: float) -> float:
        """Invert the fuel map: the ``IF`` whose stack current is ``i_fc``."""
        if i_fc < 0:
            raise RangeError("stack current cannot be negative")
        # i_fc = k*IF/(alpha - beta*IF)  =>  IF = alpha*i_fc / (k + beta*i_fc)
        return self.alpha * i_fc / (self.k_fuel + self.beta * i_fc)


class ConstantSystemEfficiency(SystemEfficiencyModel):
    """Flat ``eta_s`` -- the on-off-fan configuration of refs [10, 11].

    Within +-3 % the measured Fig. 3(c) curve is constant over the
    load-following range; with a constant efficiency the fuel map is
    *linear* in ``IF`` and flattening the output buys nothing -- a key
    ablation contrast for the paper's contribution.
    """

    def __init__(
        self,
        eta: float = 0.33,
        v_out: float = 12.0,
        zeta: float = 37.5,
        if_min: float = 0.1,
        if_max: float = 1.2,
    ) -> None:
        super().__init__(v_out=v_out, zeta=zeta, if_min=if_min, if_max=if_max)
        if not 0 < eta < 1:
            raise ConfigurationError("eta must be in (0, 1)")
        self.eta = eta

    @property
    def cache_token(self):
        """See :attr:`SystemEfficiencyModel.cache_token`."""
        return ("constant", self.eta, self.v_out, self.zeta, self.if_min, self.if_max)

    def efficiency(self, i_f: float) -> float:
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        return self.eta

    def fuel_map_array(self, i_f: np.ndarray) -> np.ndarray:
        """Linear fuel map over an array, bit-identical per element.

        ``VF * IF / (zeta * eta)`` with the scalar's operation order;
        zero inputs yield exactly 0.0 as in the scalar shortcut.
        """
        if self.cache_token is None:
            return super().fuel_map_array(i_f)
        arr = np.asarray(i_f, dtype=float)
        if arr.size and float(arr.min()) < 0:
            raise RangeError("system output current cannot be negative")
        return self.v_out * arr / (self.zeta * self.eta)


class TabulatedSystemEfficiency(SystemEfficiencyModel):
    """Piecewise-linear interpolation of measured ``(IF, eta_s)`` samples."""

    def __init__(
        self,
        currents,
        efficiencies,
        v_out: float = 12.0,
        zeta: float = 37.5,
        if_min: float | None = None,
        if_max: float | None = None,
    ) -> None:
        i = np.asarray(currents, dtype=float)
        e = np.asarray(efficiencies, dtype=float)
        if i.ndim != 1 or i.shape != e.shape or i.size < 2:
            raise ConfigurationError("need matching 1-D sample arrays (>= 2 points)")
        if np.any(np.diff(i) <= 0):
            raise ConfigurationError("sample currents must be strictly increasing")
        if np.any(e <= 0) or np.any(e >= 1):
            raise ConfigurationError("sampled efficiencies must lie in (0, 1)")
        super().__init__(
            v_out=v_out,
            zeta=zeta,
            if_min=float(i[0]) if if_min is None else if_min,
            if_max=float(i[-1]) if if_max is None else if_max,
        )
        self._i = i
        self._eta = e

    def efficiency(self, i_f: float) -> float:
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        return float(np.interp(i_f, self._i, self._eta))


class ComposedSystemEfficiency(SystemEfficiencyModel):
    """Physically composed efficiency: stack x DC-DC x controller.

    Power balance at system output ``IF``:

    * the converter must deliver ``Vdc * (IF + Ictrl(IF))`` at its output
      (system load plus controller overhead, paper Section 2.1);
    * the stack must supply the converter's input power, fixing ``Ifc``
      through the polarization curve: ``Vfc(Ifc) * Ifc = P_in``;
    * ``eta_s = VF * IF / (zeta * Ifc)`` (Eq. 1).

    This regenerates Fig. 3(b)/(c) depending on converter/fan choice.
    """

    def __init__(
        self,
        stack: FCStack | None = None,
        converter: ConverterModel | None = None,
        controller: FanController | None = None,
        v_out: float = 12.0,
        zeta: float = 37.5,
        if_min: float = 0.1,
        if_max: float = 1.2,
    ) -> None:
        super().__init__(v_out=v_out, zeta=zeta, if_min=if_min, if_max=if_max)
        self.stack = stack if stack is not None else FCStack.bcs_20w()
        self.converter = converter if converter is not None else PWMPFMConverter()
        self.controller = (
            controller if controller is not None else ProportionalFanController()
        )

    def fc_current(self, i_f: float) -> float:
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        if i_f == 0 and self.controller.current(0.0) == 0:
            return 0.0
        p_out = self.v_out * (i_f + self.controller.current(i_f))
        p_in = self.converter.input_power(p_out)
        return self.stack.current_for_power(p_in)

    def efficiency(self, i_f: float) -> float:
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        if i_f == 0:
            return 0.0
        i_fc = self.fc_current(i_f)
        if i_fc <= 0:
            return 0.0
        return self.v_out * i_f / (self.zeta * i_fc)

    def fit_linear_coefficients(self, n_points: int = 60) -> tuple[float, float]:
        """Least-squares ``(alpha, beta)`` of ``eta ~= alpha - beta*IF``.

        ``beta`` may come out negative for configurations whose
        efficiency *rises* with load (e.g. the on-off fan at light
        load); use :meth:`fit_linear` only when a proper decreasing law
        is expected.
        """
        i = np.linspace(self.if_min, self.if_max, n_points)
        eta = np.array([self.efficiency(float(x)) for x in i])
        slope, intercept = np.polyfit(i, eta, 1)
        return float(intercept), float(-slope)

    def fit_linear(self, n_points: int = 60) -> LinearSystemEfficiency:
        """Least-squares linear fit over the load-following range.

        This is the calibration step the paper performs on its measured
        Fig. 3(b) curve to obtain ``alpha = 0.45, beta = 0.13``.
        Raises :class:`~repro.errors.ConfigurationError` when the curve
        is not decreasing (``beta < 0``).
        """
        alpha, beta = self.fit_linear_coefficients(n_points)
        return LinearSystemEfficiency(
            alpha=alpha,
            beta=beta,
            v_out=self.v_out,
            zeta=self.zeta,
            if_min=self.if_min,
            if_max=self.if_max,
        )


class StackEfficiency:
    """Stack-only efficiency vs *system output* current, for Fig. 3(a).

    Fig. 3 plots all three curves against the FC **system output**
    current ``IF``; the stack curve is obtained by first mapping ``IF``
    to the stack current through the composed power balance, then taking
    ``Vfc / zeta``.
    """

    def __init__(self, composed: ComposedSystemEfficiency) -> None:
        self.composed = composed

    def efficiency(self, i_f: float) -> float:
        i_fc = self.composed.fc_current(i_f)
        if i_fc <= 0:
            return float(
                self.composed.stack.voltage(0.0) / self.composed.zeta
            )
        return float(self.composed.stack.voltage(i_fc) / self.composed.zeta)

    def sweep(self, n_points: int = 200, i_max: float | None = None):
        top = self.composed.if_max if i_max is None else i_max
        i = np.linspace(1e-4, top, n_points)
        eta = np.array([self.efficiency(float(x)) for x in i])
        return i, eta
