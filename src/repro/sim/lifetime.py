"""Run-to-empty lifetime simulation.

The paper *infers* lifetime extension from fuel rates (lifetime is
inversely proportional to consumption for a fixed tank).  This module
measures it directly: loop the workload against a finite fuel tank until
the tank runs dry, and report the wall-clock survival time.  The test
suite closes the loop by asserting the measured lifetime ratio matches
the inferred inverse-fuel ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.manager import PowerManager
from ..errors import ConfigurationError, DepletedError
from ..fuelcell.fuel import FuelTank, GibbsFuelModel
from ..workload.trace import LoadTrace
from .slotsim import SlotSimulator


@dataclass(frozen=True)
class LifetimeResult:
    """Outcome of one run-to-empty simulation."""

    name: str
    #: Survival time until the tank ran dry (s).
    lifetime: float
    #: Fuel capacity the run started with (stack A-s).
    tank_capacity: float
    #: Complete passes of the workload trace.
    full_cycles: int
    #: Load charge served before depletion (A-s).
    served_charge: float

    @property
    def average_fuel_rate(self) -> float:
        """Mean stack current over the whole life (A)."""
        if self.lifetime == 0:
            return float("inf")
        return self.tank_capacity / self.lifetime


def run_until_empty(
    manager: PowerManager,
    trace: LoadTrace,
    tank_capacity: float,
    max_cycles: int = 10_000,
) -> LifetimeResult:
    """Loop ``trace`` against ``manager`` until the fuel tank empties.

    The manager's FC is refitted with a finite tank; policies keep their
    learned state across trace repetitions (the workload is treated as
    stationary).  Raises :class:`ConfigurationError` if the tank outlasts
    ``max_cycles`` repetitions (tank too large for a meaningful test).
    """
    if tank_capacity <= 0:
        raise ConfigurationError("tank capacity must be positive")
    source = manager.source
    source.fc.tank = FuelTank(
        capacity=tank_capacity,
        model=GibbsFuelModel(zeta=source.fc.model.zeta),
    )
    source.record_history = False
    simulator = SlotSimulator(manager, record=False)

    elapsed = 0.0
    served = 0.0
    for cycle in range(max_cycles):
        fuel_before = source.fc.tank.consumed
        time_before = source.total_time
        charge_before = source.total_load_charge
        try:
            simulator.run(trace)
        except DepletedError:
            # Died mid-cycle: everything the ledgers accumulated before
            # the failing draw still counts.
            elapsed += source.total_time - time_before
            served += source.total_load_charge - charge_before
            return LifetimeResult(
                name=manager.name,
                lifetime=elapsed,
                tank_capacity=tank_capacity,
                full_cycles=cycle,
                served_charge=served,
            )
        elapsed += source.total_time - time_before
        served += source.total_load_charge - charge_before
        if source.fc.tank.consumed == fuel_before:
            raise ConfigurationError(
                "the run consumed no fuel; lifetime would be infinite"
            )
    raise ConfigurationError(
        f"tank outlasted {max_cycles} workload repetitions; "
        "use a smaller tank for lifetime tests"
    )


def lifetime_comparison(
    managers: list[PowerManager],
    trace: LoadTrace,
    tank_capacity: float,
) -> dict[str, LifetimeResult]:
    """Run-to-empty for several managers on the same workload/tank."""
    return {
        mgr.name: run_until_empty(mgr, trace, tank_capacity)
        for mgr in managers
    }
