"""Parameter sweeps for the ablation studies called out in DESIGN.md.

Each sweep runs the full Experiment-1 style simulation while varying a
single design knob, returning plain result dictionaries the ablation
benches print.
"""

from __future__ import annotations

from ..core.fc_dpm import FCDPMController
from ..core.manager import PowerManager
from ..devices.camcorder import camcorder_device_params
from ..dpm.predictive import PredictiveShutdownPolicy
from ..errors import ConfigurationError
from ..fuelcell.efficiency import LinearSystemEfficiency
from ..prediction.base import LastValuePredictor
from ..prediction.exponential import ExponentialAveragePredictor
from ..prediction.learning_tree import LearningTreePredictor
from ..prediction.regression import RegressionPredictor
from ..sim.slotsim import simulate_policies
from ..workload.mpeg import generate_mpeg_trace
from ..workload.trace import LoadTrace


def _exp1_trace(seed: int) -> LoadTrace:
    return generate_mpeg_trace(seed=seed)


def storage_capacity_sweep(
    capacities=(1.0, 2.0, 4.0, 6.0, 12.0, 24.0, 60.0),
    seed: int = 2007,
) -> dict[float, dict[str, float]]:
    """Normalized fuel vs storage capacity ``Cmax``.

    As ``Cmax -> 0`` the FC loses its freedom to time-shift charge and
    FC-DPM degenerates toward ASAP-DPM; large ``Cmax`` lets FC-DPM hold
    the globally flat optimum.  Returns
    ``{capacity: {policy: fuel_normalized_to_conv}}``.
    """
    trace = _exp1_trace(seed)
    dev = camcorder_device_params()
    out: dict[float, dict[str, float]] = {}
    for cap in capacities:
        if cap <= 0:
            raise ConfigurationError("capacity must be positive")
        managers = [
            PowerManager.conv_dpm(dev, storage_capacity=cap, storage_initial=cap / 2),
            PowerManager.asap_dpm(dev, storage_capacity=cap, storage_initial=cap / 2),
            PowerManager.fc_dpm(dev, storage_capacity=cap, storage_initial=cap / 2),
        ]
        results = simulate_policies(trace, managers)
        conv = results["conv-dpm"].fuel
        out[cap] = {name: r.fuel / conv for name, r in results.items()}
    return out


def predictor_sweep(seed: int = 2007) -> dict[str, float]:
    """FC-DPM fuel (normalized to Conv-DPM) per idle-period predictor.

    Exercises the exponential filter the paper uses against last-value,
    regression, and learning-tree predictors, plus a 'perfect' variant
    fed the true lengths -- quantifying how much headroom better
    prediction buys.
    """
    trace = _exp1_trace(seed)
    dev = camcorder_device_params()
    model = LinearSystemEfficiency()

    def build(name: str, predictor_factory) -> PowerManager:
        idle_predictor = predictor_factory()
        policy = PredictiveShutdownPolicy(dev, idle_predictor)
        controller = FCDPMController(
            model,
            active_length_predictor=ExponentialAveragePredictor(factor=0.5),
            idle_length_predictor=idle_predictor,
            device=dev,
        )
        controller.observes_idle = False
        mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        mgr.name = name
        mgr.policy = policy
        mgr.controller = controller
        return mgr

    managers = [
        PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        build("fc-exponential", lambda: ExponentialAveragePredictor(factor=0.5)),
        build("fc-lastvalue", lambda: LastValuePredictor(initial=10.0)),
        build("fc-regression", lambda: RegressionPredictor(order=2, window=24)),
        build(
            "fc-learningtree",
            lambda: LearningTreePredictor(
                bin_edges=[9.0, 11.0, 13.0, 15.0, 17.0], depth=2, initial=12.0
            ),
        ),
    ]
    results = simulate_policies(trace, managers)
    conv = results["conv-dpm"].fuel
    return {name: r.fuel / conv for name, r in results.items() if name != "conv-dpm"}


def efficiency_slope_sweep(
    betas=(0.0, 0.04, 0.08, 0.13, 0.18, 0.24),
    seed: int = 2007,
) -> dict[float, float]:
    """FC-DPM's fuel saving over ASAP-DPM versus the efficiency slope.

    The paper's whole advantage comes from the *slope* of the efficiency
    law (convexity of the fuel map): at ``beta = 0`` the fuel map is
    linear and flattening the output saves nothing.  Returns
    ``{beta: fractional_saving_vs_asap}``.
    """
    trace = _exp1_trace(seed)
    dev = camcorder_device_params()
    out: dict[float, float] = {}
    for beta in betas:
        model = LinearSystemEfficiency(alpha=0.45, beta=beta)
        managers = [
            PowerManager.asap_dpm(
                dev, model=model, storage_capacity=6.0, storage_initial=3.0
            ),
            PowerManager.fc_dpm(
                dev, model=model, storage_capacity=6.0, storage_initial=3.0
            ),
        ]
        results = simulate_policies(trace, managers)
        out[beta] = 1.0 - results["fc-dpm"].fuel / results["asap-dpm"].fuel
    return out


def recharge_threshold_sweep(
    thresholds=(0.1, 0.25, 0.5, 0.75, 0.9),
    seed: int = 2007,
) -> dict[float, float]:
    """ASAP-DPM fuel (normalized to Conv-DPM) vs recharge threshold.

    The half-capacity rule is a design choice of the paper's baseline;
    this sweep shows its (mild) sensitivity.
    """
    trace = _exp1_trace(seed)
    dev = camcorder_device_params()
    out: dict[float, float] = {}
    for th in thresholds:
        managers = [
            PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
            PowerManager.asap_dpm(
                dev,
                storage_capacity=6.0,
                storage_initial=3.0,
                recharge_threshold=th,
            ),
        ]
        results = simulate_policies(trace, managers)
        out[th] = results["asap-dpm"].fuel / results["conv-dpm"].fuel
    return out
