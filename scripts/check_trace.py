#!/usr/bin/env python3
"""Validate a ``fcdpm run --trace`` output directory.

Thin CLI over :func:`repro.obs.schema.validate_trace_dir`, used by
``make trace-smoke`` and CI to assert that a trace bundle (manifest.json
+ spans.jsonl + trace.json) is structurally sound: schema versions
compatible, span tree connected, Chrome trace loadable.

Exit status: 0 when valid, 1 with one problem per line otherwise.
"""

from __future__ import annotations

import sys


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} <trace-directory>", file=sys.stderr)
        return 2
    from repro.obs.schema import validate_trace_dir

    problems = validate_trace_dir(argv[1])
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        return 1
    print(f"ok {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
