"""Battery-aware vs FC-aware load shaping (the paper's Section-1 claim).

The paper motivates FC-specific DPM with two observations: FC efficiency
varies much more strongly with load than battery efficiency, and *FCs
have no recovery effect* -- so battery-aware policies (which shape the
load into bursts with rest periods to exploit recovery, refs [5, 8]) "
cannot be applied to FC systems".

This module quantifies the claim.  The same average load is delivered
two ways:

* **flat** -- constant current (what the FC's convex fuel map rewards);
* **pulsed** -- bursts at ``duty``-fraction of the time with rests in
  between (what battery recovery rewards).

For a Li-ion store the figure of merit is the charge drawn from the
store per coulomb delivered (rate-capacity waste minus recovery); for
the FC it is stack charge per coulomb delivered (the fuel map).  The
bench asserts the preference *flips* between the two sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..fuelcell.efficiency import LinearSystemEfficiency, SystemEfficiencyModel
from ..power.battery_only import BatteryOnlySource
from ..power.storage import LiIonBattery


@dataclass(frozen=True)
class ShapingCost:
    """Source charge spent per coulomb delivered, for both shapes."""

    flat: float
    pulsed: float

    @property
    def prefers_pulsed(self) -> bool:
        """True when the bursty schedule is cheaper for this source."""
        return self.pulsed < self.flat


def battery_shaping_cost(
    avg_current: float,
    duty: float = 0.5,
    cycle: float = 10.0,
    n_cycles: int = 50,
    battery: LiIonBattery | None = None,
) -> ShapingCost:
    """Charge drawn per coulomb delivered, flat vs pulsed, on a battery.

    Pulsed delivery: ``avg_current / duty`` for ``duty * cycle`` seconds
    followed by a rest -- the rest is where the recovery effect returns
    part of the rate-capacity waste.
    """
    if not 0 < duty < 1:
        raise ConfigurationError("duty must be in (0, 1)")
    if avg_current <= 0 or cycle <= 0 or n_cycles < 1:
        raise ConfigurationError("bad shaping parameters")

    def fresh() -> BatteryOnlySource:
        if battery is not None:
            store = LiIonBattery(
                capacity=battery.capacity,
                initial_charge=battery.capacity,
                rated_current=battery.rated_current,
                peukert=battery.peukert,
                recovery_fraction=battery.recovery_fraction,
                recovery_tau=battery.recovery_tau,
            )
        else:
            # Recovery-dominant chemistry (the refs [5, 8] premise): most
            # of the rate-capacity waste is recoverable during rests.
            store = LiIonBattery(
                capacity=1e6,
                initial_charge=1e6,
                rated_current=0.4,
                peukert=1.3,
                recovery_fraction=0.85,
                recovery_tau=5.0,
            )
        return BatteryOnlySource(store)

    delivered = avg_current * cycle * n_cycles

    flat = fresh()
    for _ in range(n_cycles):
        flat.step(avg_current, cycle)
    flat_drawn = flat.storage.capacity - flat.storage.charge

    pulsed = fresh()
    burst = avg_current / duty
    for _ in range(n_cycles):
        pulsed.step(burst, duty * cycle)
        pulsed.step(0.0, (1 - duty) * cycle)
    # Let the final rest complete so recovery is fully credited.
    pulsed.step(0.0, 10 * pulsed.storage.recovery_tau)
    pulsed_drawn = pulsed.storage.capacity - pulsed.storage.charge

    return ShapingCost(flat=flat_drawn / delivered, pulsed=pulsed_drawn / delivered)


def fc_shaping_cost(
    avg_current: float,
    duty: float = 0.5,
    model: SystemEfficiencyModel | None = None,
) -> ShapingCost:
    """Stack charge per coulomb delivered, flat vs pulsed, on the FC.

    The FC has no recovery and a strictly convex fuel map: Jensen says
    the pulsed schedule always costs at least as much fuel.  The burst
    current is clamped into the load-following range -- if the burst
    exceeds ``IF_max`` the schedule is infeasible for a stand-alone FC
    anyway (the paper's argument for hybridization).
    """
    if not 0 < duty < 1:
        raise ConfigurationError("duty must be in (0, 1)")
    if avg_current <= 0:
        raise ConfigurationError("average current must be positive")
    m = model if model is not None else LinearSystemEfficiency()

    flat_fuel = m.fc_current(m.clamp(avg_current))
    burst = m.clamp(avg_current / duty)
    pulsed_fuel = duty * m.fc_current(burst) + (1 - duty) * m.fc_current(m.if_min)
    pulsed_delivered = duty * burst + (1 - duty) * m.if_min
    return ShapingCost(
        flat=flat_fuel / m.clamp(avg_current),
        pulsed=pulsed_fuel / pulsed_delivered,
    )


def shaping_contrast(avg_current: float = 0.6, duty: float = 0.4) -> dict:
    """The headline comparison: does each source prefer flat or pulsed?

    Returns ``{"battery": ShapingCost, "fc": ShapingCost}``.  With the
    default parameters the battery prefers pulsed (recovery outweighs
    rate-capacity waste) while the FC prefers flat -- the quantified
    version of "battery-aware DPM policies cannot be applied to FC
    systems".
    """
    return {
        "battery": battery_shaping_cost(avg_current, duty),
        "fc": fc_shaping_cost(avg_current, duty),
    }
