"""Anode purge losses: why the measured zeta exceeds thermodynamics.

Small PEM stacks run dead-ended anodes: hydrogen enters, nothing
leaves -- until inert gas and water accumulate and a purge valve vents
the anode volume (the "purge valve solenoid" in the paper's controller,
Section 2.1).  Each purge throws away unreacted H2, so the *effective*
fuel cost per coulomb exceeds the electrochemical minimum:

    zeta_effective = zeta_ideal / utilization,
    utilization    = charge_between_purges /
                     (charge_between_purges + purge_equivalent_charge)

The thermodynamic floor for a 20-cell stack is
``20 * dG / (2F) ~= 24.6 W/A``; the paper measures ``zeta ~= 37.5``.
This module closes that gap with a calibrated purge/utilization model
and provides a purge-aware fuel model usable anywhere a
:class:`~repro.fuelcell.fuel.GibbsFuelModel` is.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..errors import ConfigurationError, RangeError
from .fuel import GibbsFuelModel


def ideal_zeta(n_cells: int = 20) -> float:
    """Thermodynamic Gibbs power per ampere for an ``n_cells`` stack (W/A).

    One ampere of stack current consumes ``1 / 2F`` mol/s of H2 per
    cell-series (the same H2 flows through all series cells), each mole
    carrying ``dG`` of Gibbs energy *per cell*... equivalently:
    ``zeta = n_cells * dG / (2F)``.
    """
    if n_cells < 1:
        raise ConfigurationError("need at least one cell")
    return n_cells * units.GIBBS_ENERGY_H2_HHV / (2 * units.FARADAY)


@dataclass(frozen=True)
class PurgeModel:
    """Dead-ended anode purge schedule.

    Attributes
    ----------
    purge_interval_charge:
        Stack charge between purges (A-s) -- purging is triggered by
        accumulated crossover/inerts, which scale with reacted charge.
    purge_loss_charge:
        H2 vented per purge, expressed as the stack charge it could
        have produced (A-s).
    crossover_fraction:
        Continuous H2 loss through the membrane (fraction of flow).
    """

    purge_interval_charge: float = 60.0
    purge_loss_charge: float = 20.0
    crossover_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.purge_interval_charge <= 0 or self.purge_loss_charge < 0:
            raise ConfigurationError("bad purge schedule")
        if not 0 <= self.crossover_fraction < 1:
            raise ConfigurationError("crossover fraction must be in [0, 1)")

    @property
    def utilization(self) -> float:
        """Fraction of fed H2 that produces current."""
        purge_util = self.purge_interval_charge / (
            self.purge_interval_charge + self.purge_loss_charge
        )
        return purge_util * (1 - self.crossover_fraction)

    def effective_zeta(self, n_cells: int = 20) -> float:
        """Measured-equivalent zeta (W/A) including purge + crossover."""
        return ideal_zeta(n_cells) / self.utilization

    def purges_for(self, stack_charge: float) -> int:
        """Number of purge events over ``stack_charge`` A-s of operation."""
        if stack_charge < 0:
            raise RangeError("stack charge cannot be negative")
        return int(stack_charge // self.purge_interval_charge)


def calibrated_purge_model(
    zeta_measured: float = 37.5,
    n_cells: int = 20,
    purge_interval_charge: float = 60.0,
    crossover_fraction: float = 0.02,
) -> PurgeModel:
    """Back out the purge loss that explains a measured zeta.

    Solves ``effective_zeta == zeta_measured`` for the per-purge vent
    charge.  For the paper's 37.5 W/A the implied utilization is ~66 %,
    typical for an uncontrolled small dead-ended stack.
    """
    floor = ideal_zeta(n_cells)
    if zeta_measured <= floor:
        raise ConfigurationError(
            f"measured zeta {zeta_measured} is at/below the thermodynamic "
            f"floor {floor:.2f} W/A"
        )
    utilization = floor / zeta_measured
    purge_util = utilization / (1 - crossover_fraction)
    if purge_util >= 1:
        raise ConfigurationError(
            "crossover alone already explains the measured zeta"
        )
    loss = purge_interval_charge * (1 - purge_util) / purge_util
    return PurgeModel(
        purge_interval_charge=purge_interval_charge,
        purge_loss_charge=loss,
        crossover_fraction=crossover_fraction,
    )


class PurgedFuelModel(GibbsFuelModel):
    """A :class:`GibbsFuelModel` whose zeta comes from purge physics.

    Drop-in replacement: ``PurgedFuelModel(purge, n_cells)`` reports
    physical H2 quantities *including* the vented fuel.
    """

    def __init__(self, purge: PurgeModel | None = None, n_cells: int = 20) -> None:
        p = purge if purge is not None else calibrated_purge_model()
        super().__init__(zeta=p.effective_zeta(n_cells))
        self.purge = p
        self.n_cells = n_cells

    def vented_moles_h2(self, stack_charge: float) -> float:
        """H2 vented (mol) over ``stack_charge`` A-s -- the purge waste."""
        total = self.moles_h2(stack_charge)
        return total * (1 - self.purge.utilization)
