"""WLAN interface workload: the other classic DPM target.

DPM research (the paper's refs [1-5]) is evaluated on two device
families: storage/multimedia (the camcorder here) and *network
interfaces*.  A WLAN card serving interactive traffic sees
session-structured load: bursts of packet exchanges (pages, syncs)
separated by think times, with rare long reading gaps -- a markedly
heavier-tailed idle distribution than the MPEG trace's 8-20 s band.
This generator provides that contrast workload for policy robustness
studies.

Model: sessions arrive as a Poisson process; each session holds a
geometric number of request/response exchanges; think times within a
session are lognormal; the active (transfer) period length follows the
transfer size over a fixed link rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .trace import LoadTrace, TaskSlot


@dataclass(frozen=True)
class WlanModel:
    """Traffic-model parameters.

    Attributes
    ----------
    session_gap_mean:
        Mean idle between sessions (s) -- the long, sleepable gaps.
    exchanges_per_session:
        Mean exchanges per session (geometric).
    think_median, think_sigma:
        Lognormal think-time parameters within a session (s).
    transfer_mean:
        Mean transfer duration (s).
    i_active:
        Radio current while transferring (A) on the 12 V rail.
    """

    session_gap_mean: float = 90.0
    exchanges_per_session: float = 8.0
    think_median: float = 3.0
    think_sigma: float = 0.8
    transfer_mean: float = 1.2
    i_active: float = 0.95

    def __post_init__(self) -> None:
        if min(self.session_gap_mean, self.exchanges_per_session,
               self.think_median, self.transfer_mean, self.i_active) <= 0:
            raise ConfigurationError("WLAN model parameters must be positive")
        if self.think_sigma < 0:
            raise ConfigurationError("think sigma cannot be negative")


def generate_wlan_trace(
    duration_s: float = 1800.0,
    seed: int = 80211,
    model: WlanModel | None = None,
    min_active: float = 0.05,
    name: str = "wlan",
) -> LoadTrace:
    """Generate a session-structured WLAN trace of ``duration_s`` seconds."""
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    m = model if model is not None else WlanModel()
    rng = np.random.default_rng(seed)

    slots: list[TaskSlot] = []
    elapsed = 0.0
    while elapsed < duration_s:
        # Inter-session gap opens the first slot of the session.
        gap = float(rng.exponential(m.session_gap_mean))
        n_exchanges = 1 + int(rng.geometric(1.0 / m.exchanges_per_session))
        idle = gap
        for _ in range(n_exchanges):
            t_active = max(float(rng.exponential(m.transfer_mean)), min_active)
            slots.append(TaskSlot(idle, t_active, m.i_active))
            elapsed += idle + t_active
            idle = float(
                m.think_median * np.exp(rng.normal(0.0, m.think_sigma))
            )
            if elapsed >= duration_s:
                break
    return LoadTrace(slots, name=name)
