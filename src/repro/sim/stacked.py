"""Stacked batch kernel: one 2D sweep across a whole multi-seed batch.

``simulate_batch``'s serial loop runs the 1D array kernel once per
(seed, policy).  For fleet-scale sweeps the per-seed work is itself
mostly vectorizable *across seeds*: every row of the batch shares the
device, the plant, and the policy configuration, differing only in its
trace.  This module packs the per-seed plans into padded 2D arrays
(``seeds x segments``, zero padding for ragged rows) and runs the
trace-functional policies in single vectorized sweeps:

- :func:`clamped_cumsum_batch` replays the
  :meth:`~repro.power.storage.ChargeStorage` clamp / bleed / deficit
  recurrence along axis 1 of every row at once, bit-identically to
  :func:`~repro.sim.vectorized.clamped_cumsum` per row;
- conv-dpm and static controllers reduce to one constant realized
  output per batch (:func:`_run_const_stacked`);
- ASAP-DPM's storage-coupled hysteresis runs as one column loop over
  all rows (:func:`_run_asap_stacked`) instead of a Python loop per
  segment per seed;
- FC-DPM's Eq. 14/15 predictor scans batch across rows
  (:func:`~repro.prediction.exponential.exponential_average_scan_batch`);
  only its storage-coupled per-slot solves stay sequential, one row at
  a time through the shared :func:`~repro.sim.vectorized._run_fc` pass.

Planning is batched too: all rows' slots concatenate into one
:func:`~repro.sim.integrator.plan_slot_arrays` call (every layout rule
is slot-local, so the concatenated plan equals the per-seed plans row
for row), and the device-side sleep decisions come from one batched
predictor scan replicating ``PredictiveShutdownPolicy.decisions_array``.

Exactness contract: for every seed, every ``SimulationResult`` field
and the manager / controller / policy end state equal the serial loop's
bit for bit.  Intermediate per-row manager states are unobservable from
``simulate_batch``'s API, so end-state commits are deferred to the exit
point -- the last row on success, or the exact raising row when the
deficit guard fires (specs at or before the raising spec hold the
raising row's state; later specs hold the previous row's).

Telemetry: the stacked route runs with or without ``OBS`` enabled and
reports batch-level attributes (rows, padded fraction, plan-stack
seconds) on the ``sim.batch`` span plus ``sim.batch_*`` metrics.  The
per-slot ``dpm.*`` counters of the sequential policy replay are *not*
emitted on this route -- the batched decision scan never visits slots
individually (see docs/observability.md).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from itertools import repeat as _repeat
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.baselines import ASAPDPMController, ConvDPMController, StaticController
from ..core.fc_dpm import FCDPMController
from ..dpm.predictive import PredictiveShutdownPolicy
from ..errors import SimulationError
from ..obs import OBS
from ..prediction.exponential import (
    ExponentialAveragePredictor,
    exponential_average_scan_batch,
)
from .integrator import plan_slot_arrays
from .slotsim import SimulationResult, SlotResult
from .vectorized import (
    _MAX_RESCANS,
    TraceArrays,
    _assemble_result,
    _fc_scan_seeds,
    _fuel_currents,
    _realize_commands,
    _reason_key,
    _run_fc,
    _storage_deltas,
    fast_path_ineligibility,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.manager import PowerManager
    from ..scenario.spec import Scenario
    from ..workload.trace import LoadTrace

#: Controller types with a stacked (2D) kernel pass.  Exact types on
#: purpose, like the 1D eligibility checks: a subclass may override any
#: semantics the pass replicates.
_STACKED_CONTROLLERS = (
    ConvDPMController,
    StaticController,
    ASAPDPMController,
    FCDPMController,
)

#: Ineligibility reason prefixes specific to the stacked route, mapped
#: to the ``sim.batch_ineligible{reason=...}`` metric labels.  Reasons
#: inherited from the 1D fast path keep their ``sim.fast_ineligible``
#: slugs (see ``vectorized._REASON_KEYS``).
_STACKED_REASON_KEYS = (
    ("finite fuel tank", "stacked-finite-tank"),
    ("controller", "stacked-controller"),
    ("policy", "stacked-policy"),
)


def _stacked_reason_key(reason: str) -> str:
    """Metric-label slug for a stacked-route ineligibility reason."""
    for prefix, key in _STACKED_REASON_KEYS:
        if reason.startswith(prefix):
            return key
    return _reason_key(reason)


def stacked_batch_ineligibility(manager: "PowerManager") -> str | None:
    """Why this spec cannot ride the stacked batch kernel (None = it can).

    Strictly stronger than :func:`~repro.sim.vectorized
    .fast_path_ineligibility`: the stacked passes additionally require a
    bottomless fuel tank (there is no per-row mid-run depletion
    fallback), a controller with a 2D pass, and a device policy whose
    sleep decisions compile to the batched predictor scan.
    """
    reason = fast_path_ineligibility(manager)
    if reason is not None:
        return reason
    tank = manager.source.fc.tank
    if math.isfinite(tank.capacity):
        return (
            "finite fuel tank (stacked passes have no per-row "
            "depletion fallback)"
        )
    if type(manager.controller) not in _STACKED_CONTROLLERS:
        return (
            f"controller {type(manager.controller).__name__} has no "
            "stacked batch pass"
        )
    policy = manager.policy
    if type(policy) is not PredictiveShutdownPolicy or type(
        getattr(policy, "predictor", None)
    ) is not ExponentialAveragePredictor:
        return (
            f"policy type {type(policy).__name__} has no batched "
            "decision scan"
        )
    return None


# -- batched slot synthesis ---------------------------------------------------


@dataclass(frozen=True)
class _BatchSlots:
    """All rows' task slots, flat (concatenated) and padded-2D."""

    counts: np.ndarray  #: (R,) slots per row
    offsets: np.ndarray  #: (R+1,) flat slot offsets
    t_idle: np.ndarray  #: flat, row-major
    t_active: np.ndarray
    i_active: np.ndarray
    t_idle2d: np.ndarray  #: (R, W) zero-padded
    t_active2d: np.ndarray
    valid: np.ndarray  #: (R, W) bool


def _pad_rows(flat: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Scatter a row-major flat column into a zero-padded 2D array."""
    out = np.zeros(valid.shape, dtype=float)
    out[valid] = flat
    return out


def _gather_batch_slots(
    scenario: "Scenario", seed_list: list[int], traces: dict | None
) -> _BatchSlots:
    """Every seed's slot columns, via the batched synthesizer when possible.

    ``Scenario.build_slot_arrays`` produces the whole batch in one RNG
    pass per seed (bit-identical to per-seed ``build_trace`` slots);
    workloads without an array builder -- or pre-built ``traces`` --
    extract columns per trace instead.
    """
    arrays = None if traces else scenario.build_slot_arrays(seed_list)
    if arrays is not None:
        t_idle2d, t_active2d, i_active2d = arrays
        rows, width = t_idle2d.shape
        counts = np.full(rows, width, dtype=np.intp)
        valid = np.ones((rows, width), dtype=bool)
        return _BatchSlots(
            counts=counts,
            offsets=np.arange(rows + 1, dtype=np.intp) * width,
            t_idle=t_idle2d.ravel(),
            t_active=t_active2d.ravel(),
            i_active=i_active2d.ravel(),
            t_idle2d=t_idle2d,
            t_active2d=t_active2d,
            valid=valid,
        )
    cols_i: list[np.ndarray] = []
    cols_a: list[np.ndarray] = []
    cols_c: list[np.ndarray] = []
    for seed in seed_list:
        trace = None if traces is None else traces.get(seed)
        if trace is None:
            trace = scenario.build_trace(seed)
        slots = list(trace)
        cols_i.append(np.array([s.t_idle for s in slots], dtype=float))
        cols_a.append(np.array([s.t_active for s in slots], dtype=float))
        cols_c.append(np.array([s.i_active for s in slots], dtype=float))
    counts = np.array([c.shape[0] for c in cols_i], dtype=np.intp)
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    t_idle = np.concatenate(cols_i)
    t_active = np.concatenate(cols_a)
    i_active = np.concatenate(cols_c)
    width = int(counts.max()) if counts.size else 0
    valid = np.arange(width)[None, :] < counts[:, None]
    return _BatchSlots(
        counts=counts,
        offsets=offsets,
        t_idle=t_idle,
        t_active=t_active,
        i_active=i_active,
        t_idle2d=_pad_rows(t_idle, valid),
        t_active2d=_pad_rows(t_active, valid),
        valid=valid,
    )


# -- stacked plans ------------------------------------------------------------


@dataclass(frozen=True)
class StackedPlans:
    """Per-seed :class:`~repro.sim.vectorized.TraceArrays` stacked on axis 0.

    ``flat`` is the whole batch as one plan over the concatenated slot
    sequence (its ``slot_bounds`` / ``active_start`` hold *global*
    segment indices); ``rows[r]`` is row ``r``'s plan with row-local
    indices -- views into the flat columns, bit-identical to planning
    that row alone.  ``duration`` / ``i_load`` are the zero-padded 2D
    forms the stacked kernels sweep (zero padding is bit-neutral in
    every reduction the kernels perform).
    """

    flat: TraceArrays
    rows: list[TraceArrays]
    seg_offsets: np.ndarray  #: (R+1,) flat segment offset per row
    slot_offsets: np.ndarray  #: (R+1,) flat slot offset per row
    n_seg: np.ndarray  #: (R,) segments per row
    duration: np.ndarray  #: (R, S) zero-padded
    i_load: np.ndarray  #: (R, S) zero-padded
    valid_seg: np.ndarray  #: (R, S) bool

    @property
    def n_rows(self) -> int:
        return self.n_seg.shape[0]

    @property
    def width(self) -> int:
        return self.duration.shape[1]


def _stack_from_flat(flat: TraceArrays, counts: np.ndarray) -> StackedPlans:
    """Carve one concatenated plan into per-row views + padded 2D columns."""
    slot_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    g_bounds = flat.slot_bounds
    seg_offsets = g_bounds[slot_offsets]
    rows: list[TraceArrays] = []
    for r in range(counts.shape[0]):
        slo = int(slot_offsets[r])
        shi = int(slot_offsets[r + 1])
        lo = int(seg_offsets[r])
        hi = int(seg_offsets[r + 1])
        rows.append(
            TraceArrays(
                duration=flat.duration[lo:hi],
                i_load=flat.i_load[lo:hi],
                kind=flat.kind[lo:hi],
                phase_duration=None,
                phase_demand=None,
                slot_bounds=g_bounds[slo : shi + 1] - lo,
                active_start=flat.active_start[slo:shi] - lo,
                slept=flat.slept[slo:shi],
                aborted=flat.aborted[slo:shi],
            )
        )
    n_seg = np.diff(seg_offsets)
    width = int(n_seg.max()) if n_seg.size else 0
    valid = np.arange(width)[None, :] < n_seg[:, None]
    return StackedPlans(
        flat=flat,
        rows=rows,
        seg_offsets=seg_offsets,
        slot_offsets=slot_offsets,
        n_seg=n_seg,
        duration=_pad_rows(flat.duration, valid),
        i_load=_pad_rows(flat.i_load, valid),
        valid_seg=valid,
    )


def stack_plans(plans: Sequence[TraceArrays]) -> StackedPlans:
    """Stack already-compiled per-seed plans into one :class:`StackedPlans`.

    The concatenated ``flat`` plan is rebuilt by offsetting each row's
    index columns -- exact integer arithmetic, so carving it back up
    (or padding it) reproduces the inputs bit for bit.  Used by the
    equivalence tests and the shared-memory transport; the batch driver
    plans the concatenation directly instead.
    """
    counts = np.array([p.n_slots for p in plans], dtype=np.intp)
    seg_counts = np.array([p.n_segments for p in plans], dtype=np.intp)
    seg_off = np.concatenate(([0], np.cumsum(seg_counts))).astype(np.intp)
    flat = TraceArrays(
        duration=np.concatenate([p.duration for p in plans]),
        i_load=np.concatenate([p.i_load for p in plans]),
        kind=np.concatenate([p.kind for p in plans]),
        phase_duration=None,
        phase_demand=None,
        slot_bounds=np.concatenate(
            [np.zeros(1, dtype=np.intp)]
            + [p.slot_bounds[1:] + off for p, off in zip(plans, seg_off[:-1])]
        ),
        active_start=np.concatenate(
            [p.active_start + off for p, off in zip(plans, seg_off[:-1])]
        ),
        slept=np.concatenate([p.slept for p in plans]),
        aborted=np.concatenate([p.aborted for p in plans]),
    )
    return _stack_from_flat(flat, counts)


# -- batched storage recurrence ----------------------------------------------


def clamped_cumsum_batch(
    deltas: np.ndarray,
    n_valid: np.ndarray,
    initial: float,
    capacity: float,
    bled: float = 0.0,
    deficit: float = 0.0,
    max_rescans: int = _MAX_RESCANS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-stacked :func:`~repro.sim.vectorized.clamped_cumsum`.

    ``deltas`` is ``(rows, segments)`` with ragged rows zero-padded past
    ``n_valid[row]``; every row starts from the same ``initial`` level
    and clamp ledgers (a batch of freshly reset storages).  Returns
    ``(charges, bled, deficit)`` where ``charges[r, :n_valid[r] + 1]``
    and the per-row ledgers are bit-identical to the 1D recurrence on
    row ``r``'s valid prefix.  Charge columns past ``n_valid[row]`` are
    unspecified.

    Strategy mirrors the 1D kernel: whole-row seeded cumsums between
    clamp events (``axis=1`` cumsum is strictly sequential per row, and
    the zero prefix before each row's resume column is bit-neutral),
    the scalar clamp arithmetic applied at each row's first violation,
    and a density heuristic -- rows whose unclamped trajectory violates
    the bounds more times than the rescan budget, or that exhaust it,
    finish in a column-sequential tail vectorized *across* rows.  The
    heuristic only changes speed, never values.
    """
    deltas = np.asarray(deltas, dtype=float)
    rows, width = deltas.shape
    n_valid = np.asarray(n_valid, dtype=np.intp)
    charges = np.empty((rows, width + 1), dtype=float)
    charges[:, 0] = initial
    cur = np.full(rows, float(initial))
    bled_a = np.full(rows, float(bled))
    deficit_a = np.full(rows, float(deficit))
    start = np.zeros(rows, dtype=np.intp)
    pending = n_valid > 0
    cols = np.arange(width)
    rescans = 0
    while rescans < max_rescans:
        idx = np.flatnonzero(pending)
        if not idx.size:
            break
        st = start[idx]
        nv = n_valid[idx]
        live = (cols[None, :] >= st[:, None]) & (cols[None, :] < nv[:, None])
        work = np.where(live, deltas[idx], 0.0)
        # Seed each row's resume column with its carried level: the
        # zero prefix then contributes exact +0.0 terms, so the row
        # cumsum replays the scalar += sequence bit for bit.
        work[np.arange(idx.size), st] += cur[idx]
        np.cumsum(work, axis=1, out=work)
        bad = ((work > capacity) | (work < 0.0)) & live
        has_bad = bad.any(axis=1)
        nbad = np.count_nonzero(bad, axis=1)
        # First violating column per row (nv for clean rows): commit
        # the clean prefix [st, k) for every row in one masked store.
        k = np.where(has_bad, np.argmax(bad, axis=1), nv)
        ch = charges[idx]
        ch1 = ch[:, 1:]
        commit = live & (cols[None, :] < k[:, None])
        ch1[commit] = work[commit]
        if np.any(has_bad):
            sub = np.flatnonzero(has_bad)
            kb = k[sub]
            newv = work[sub, kb]
            over = newv > capacity
            # The scalar applies exactly one branch; the masked adds
            # contribute exact +0.0 on the other (ledgers are >= 0).
            bled_a[idx[sub]] += np.where(over, newv - capacity, 0.0)
            deficit_a[idx[sub]] += np.where(over, 0.0, -newv)
            pinned = np.where(over, capacity, 0.0)
            cur[idx[sub]] = pinned
            ch1[sub, kb] = pinned
            start[idx[sub]] = kb + 1
        charges[idx] = ch
        done = idx[~has_bad]
        pending[done] = False
        pending[idx] &= start[idx] < n_valid[idx]
        # Clamp-dense rows (more violations left than rescan budget)
        # drop straight to the sequential tail, as the 1D kernel does.
        dense = nbad > max_rescans - rescans
        pending_now = pending[idx] & ~dense
        if not np.any(pending_now):
            pending[idx] = pending[idx] & dense & (start[idx] < n_valid[idx])
            if np.any(dense):
                break
        rescans += 1
    idx = np.flatnonzero(pending & (start < n_valid))
    if idx.size:
        st = start[idx]
        nv = n_valid[idx]
        d_sub = deltas[idx]
        ch = charges[idx]
        cur_t = cur[idx]
        bl = bled_a[idx]
        df = deficit_a[idx]
        for j in range(int(st.min()), int(nv.max())):
            act = (j >= st) & (j < nv)
            new = cur_t + d_sub[:, j]
            over = act & (new > capacity)
            under = act & (new < 0.0)
            ok = act & ~over & ~under
            bl += np.where(over, new - capacity, 0.0)
            df += np.where(under, -new, 0.0)
            cur_t = np.where(
                over, capacity, np.where(under, 0.0, np.where(ok, new, cur_t))
            )
            ch[:, j + 1] = np.where(act, cur_t, ch[:, j + 1])
        charges[idx] = ch
        bled_a[idx] = bl
        deficit_a[idx] = df
    return charges, bled_a, deficit_a


# -- stacked kernel passes ----------------------------------------------------


@dataclass(frozen=True)
class _StackedRun:
    """Raw outputs of one stacked pass, flat + per-row reductions."""

    fuel_flat: np.ndarray  #: per-segment fuel, row-major flat
    delivered_flat: np.ndarray  #: per-segment delivered charge, flat
    i_f_flat: np.ndarray | None  #: realized output per segment (None = const)
    charges: np.ndarray  #: (R, S+1), padded past each row's last segment
    bled: np.ndarray  #: (R,)
    deficit: np.ndarray  #: (R,)
    recharging: np.ndarray | None  #: (R,) final ASAP mode, or None
    const_i_f: float | None = None


def _run_const_stacked(
    manager: "PowerManager", sp: StackedPlans, cmd0: float
) -> _StackedRun:
    """Stacked pass for constant-command controllers (conv-dpm, static).

    Exactly ``_run_from_plan``'s constant branch, broadcast across rows:
    one realize + fuel-map evaluation, elementwise deltas, and the
    batched storage recurrence.
    """
    source = manager.source
    fc = source.fc
    storage = source.storage
    model = fc.model
    if fc.allow_zero_output and cmd0 == 0.0:
        r0 = 0.0
    else:
        r0 = min(max(cmd0, model.if_min), model.if_max)
    i_fc = 0.0 if r0 == 0.0 else model.fc_current(r0)
    fuel_flat = i_fc * sp.flat.duration
    delivered_flat = r0 * sp.flat.duration
    deltas = _storage_deltas(storage, r0, sp.i_load, sp.duration)
    charges, bled, deficit = clamped_cumsum_batch(
        deltas,
        sp.n_seg,
        storage.charge,
        storage.capacity,
        bled=storage.bled_charge,
        deficit=storage.deficit_charge,
    )
    return _StackedRun(
        fuel_flat=fuel_flat,
        delivered_flat=delivered_flat,
        i_f_flat=None,
        charges=charges,
        bled=bled,
        deficit=deficit,
        recharging=None,
        const_i_f=r0,
    )


def _run_asap_stacked(manager: "PowerManager", sp: StackedPlans) -> _StackedRun:
    """Stacked pass for ASAP-DPM's storage-coupled recharge hysteresis.

    Both candidate modes precompute elementwise (on the flat columns for
    assembly, padded 2D for integration); one column loop then plays the
    per-segment hysteresis and the storage clamp for every row at once
    -- the same ``soc``-before-integration ordering and clamp arithmetic
    as the scalar controller, with ``np.where`` selecting each row's
    branch.  Requires a bottomless tank (stacked eligibility).
    """
    controller = manager.controller
    source = manager.source
    fc = source.fc
    storage = source.storage
    model = fc.model
    flat = sp.flat

    cmd_follow = np.minimum(np.maximum(flat.i_load, model.if_min), model.if_max)
    real_follow = _realize_commands(fc, cmd_follow)
    ifc_follow = _fuel_currents(fc, real_follow)
    fuel_follow = ifc_follow * flat.duration
    real_follow2d = _pad_rows(real_follow, sp.valid_seg)
    delta_follow2d = _storage_deltas(storage, real_follow2d, sp.i_load, sp.duration)

    cmd_re = model.if_max
    if cmd_re == 0.0 and fc.allow_zero_output:
        real_re = 0.0
    else:
        real_re = min(max(cmd_re, model.if_min), model.if_max)
    ifc_re = 0.0 if real_re == 0.0 else model.fc_current(real_re)
    fuel_re = ifc_re * flat.duration
    delta_re2d = _storage_deltas(storage, real_re, sp.i_load, sp.duration)

    rows, width = sp.duration.shape
    threshold = controller.recharge_threshold
    full_level = controller.full_level
    cap = storage.capacity
    has_cap = cap > 0
    recharging = np.full(rows, controller.recharging, dtype=bool)
    cur = np.full(rows, storage.charge)
    bled = np.full(rows, storage.bled_charge)
    deficit = np.full(rows, storage.deficit_charge)
    charges = np.empty((rows, width + 1), dtype=float)
    charges[:, 0] = cur
    mode2d = np.empty((rows, width), dtype=bool)
    valid = sp.valid_seg

    for j in range(width):
        act = valid[:, j]
        if has_cap:
            # Hysteresis *before* the segment integrates, exactly as
            # ASAPDPMController.output reads the pre-step soc.
            soc = cur / cap
            rech = np.where(soc < threshold, True, np.where(soc >= full_level, False, recharging))
            recharging = np.where(act, rech, recharging)
        delta = np.where(recharging, delta_re2d[:, j], delta_follow2d[:, j])
        new = cur + delta
        over = act & (new > cap)
        under = act & (new < 0.0)
        ok = act & ~over & ~under
        bled += np.where(over, new - cap, 0.0)
        deficit += np.where(under, -new, 0.0)
        cur = np.where(over, cap, np.where(under, 0.0, np.where(ok, new, cur)))
        charges[:, j + 1] = cur
        mode2d[:, j] = recharging

    mode_flat = mode2d[valid]
    i_f_flat = np.where(mode_flat, real_re, real_follow)
    fuel_flat = np.where(mode_flat, fuel_re, fuel_follow)
    delivered_flat = i_f_flat * flat.duration
    return _StackedRun(
        fuel_flat=fuel_flat,
        delivered_flat=delivered_flat,
        i_f_flat=i_f_flat,
        charges=charges,
        bled=bled,
        deficit=deficit,
        recharging=recharging,
    )


# -- batch driver -------------------------------------------------------------


def _row_totals(flat_values: np.ndarray, sp: StackedPlans) -> np.ndarray:
    """Per-row sequential totals of a flat per-segment column.

    Pads into the 2D layout and cumsums along axis 1: the zero padding
    contributes exact ``+0.0`` terms (all integrated quantities are
    non-negative), so each row total equals the 1D seeded cumsum.
    """
    if not sp.width:
        return np.zeros(sp.n_rows)
    return np.cumsum(_pad_rows(flat_values, sp.valid_seg), axis=1)[:, -1]


def _slot_sums_flat(sp: StackedPlans, values_flat: np.ndarray) -> np.ndarray:
    """Per-slot sums across the whole batch, in scalar accumulation order."""
    out = np.zeros(sp.flat.n_slots)
    if out.shape[0] and values_flat.shape[0]:
        np.add.at(out, sp.flat.slot_index, values_flat)
    return out


def simulate_batch_stacked(
    scenario: "Scenario",
    seed_list: list[int],
    specs: list[str],
    managers: dict[str, "PowerManager"],
    *,
    max_deficit_fraction: float,
    traces: dict | None,
    span,
) -> dict[int, dict[str, SimulationResult]]:
    """Run a whole (seeds x policies) batch through the stacked kernel.

    Every spec in ``managers`` must already have passed
    :func:`stacked_batch_ineligibility`.  Results, raised errors, and
    manager end state are bit-identical to ``simulate_batch``'s serial
    loop over the same seeds and specs.
    """
    t_plan0 = time.perf_counter()
    rows_n = len(seed_list)
    slots = _gather_batch_slots(scenario, seed_list, traces)

    # Device-side sleep decisions: one batched predictor scan, exactly
    # PredictiveShutdownPolicy.decisions_array per row.  As in the
    # serial loop, the first spec's (fresh) policy is the probe whose
    # decisions every spec shares; its end-state commit is deferred to
    # the batch exit row.
    probe = managers[specs[0]]
    policy = probe.policy
    predictor = policy.predictor
    preds2d, idle_finals = exponential_average_scan_batch(
        predictor.factor, predictor.estimate, slots.t_idle2d, slots.counts
    )
    fit_threshold = policy.params.t_pd + policy.params.t_wu
    sleep2d = (preds2d >= policy.threshold) & (preds2d >= fit_threshold)
    sleep_flat = sleep2d[slots.valid]

    # One planner call over the concatenated slots: every layout rule in
    # plan_slot_arrays is slot-local, so carving the result back into
    # rows reproduces per-seed planning bit for bit.
    flat = TraceArrays(
        **plan_slot_arrays(
            probe.device,
            slots.t_idle,
            slots.t_active,
            slots.i_active,
            sleep_flat,
            np.zeros(sleep_flat.shape[0]),
            phase_context=False,
        )
    )
    sp = _stack_from_flat(flat, slots.counts)
    plan_seconds = time.perf_counter() - t_plan0

    # Shared per-row reductions (policy-independent, zero-seeded --
    # fresh managers start every ledger at 0.0).
    dur_rows = _row_totals(flat.duration, sp)
    load_seg = flat.load_charge_seg
    load_rows = _row_totals(load_seg, sp)
    slot_loads = _slot_sums_flat(sp, load_seg)
    slot_row_idx = np.repeat(np.arange(rows_n), slots.counts)
    sleeps_rows = np.bincount(
        slot_row_idx, weights=flat.slept, minlength=rows_n
    ).astype(np.intp)
    aborted_rows = np.bincount(
        slot_row_idx, weights=flat.aborted, minlength=rows_n
    ).astype(np.intp)
    # Flat gather indices: each slot's last charge column per row.
    g_bounds = flat.slot_bounds
    seg_base = np.repeat(sp.seg_offsets[:-1], slots.counts)
    ends_local = g_bounds[1:] - seg_base
    astart_local = flat.active_start - seg_base
    charge_cols = sp.width + 1
    flat_end_idx = slot_row_idx * charge_cols + ends_local

    # Whole-batch Python lists, converted once: per-row list slices are
    # pointer copies, far cheaper than one ndarray.tolist() per row.
    counts_l = slots.counts.tolist()
    n_seg_l = sp.n_seg.tolist()
    slot_off_l = sp.slot_offsets.tolist()
    slept_l = flat.slept.tolist()
    aborted_l = flat.aborted.tolist()
    slot_loads_l = slot_loads.tolist()
    sleeps_l = sleeps_rows.tolist()
    aborted_rows_l = aborted_rows.tolist()

    # Per-spec stacked passes.  FC-DPM only batches its predictor scans
    # here; its storage-coupled slot solves run per row below.
    runs: dict[str, _StackedRun] = {}
    fc_specs: dict[str, dict] = {}
    initial_charge: dict[str, float] = {}
    for spec in specs:
        mgr = managers[spec]
        controller = mgr.controller
        initial_charge[spec] = mgr.source.storage.charge
        ctype = type(controller)
        if ctype is ASAPDPMController:
            runs[spec] = _run_asap_stacked(mgr, sp)
        elif ctype is FCDPMController:
            seeds0 = _fc_scan_seeds(mgr)
            feeds = getattr(mgr.policy, "predictor", None) is (
                controller.idle_length_predictor
            )
            idle_scan = None
            if controller.observes_idle or feeds:
                ipred = controller.idle_length_predictor
                if (
                    ipred.factor == predictor.factor
                    and ipred.estimate == predictor.estimate
                ):
                    # Standard wiring shares the probe policy's filter
                    # configuration -- reuse the decision scan rows.
                    idle_scan = (preds2d, idle_finals)
                else:
                    idle_scan = exponential_average_scan_batch(
                        ipred.factor, ipred.estimate, slots.t_idle2d, slots.counts
                    )
            apred = controller.active_length_predictor
            active_scan = exponential_average_scan_batch(
                apred.factor, seeds0[1], slots.t_active2d, slots.counts
            )
            fc_specs[spec] = {
                "seeds": seeds0,
                "idle_scan": idle_scan,
                "active_scan": active_scan,
            }
        else:
            cmd0 = (
                controller.model.if_max
                if ctype is ConvDPMController
                else controller.i_f
            )
            runs[spec] = _run_const_stacked(mgr, sp, float(cmd0))

    # Finish each non-FC run's assembly columns (totals + slot gathers,
    # per-slot columns converted to Python lists whole).
    finals: dict[str, dict] = {}
    for spec, run in runs.items():
        entry = {
            "fuel_rows": _row_totals(run.fuel_flat, sp),
            "delivered_rows": _row_totals(run.delivered_flat, sp),
            "slot_fuel": _slot_sums_flat(sp, run.fuel_flat).tolist(),
            "storage_end": run.charges.ravel()[flat_end_idx].tolist(),
        }
        if run.i_f_flat is not None:
            g_starts = g_bounds[:-1] - seg_base
            entry["if_idle"] = np.where(
                astart_local > g_starts,
                run.i_f_flat[np.maximum(flat.active_start - 1, 0)],
                0.0,
            ).tolist()
            entry["if_active"] = np.where(
                ends_local > astart_local, run.i_f_flat[g_bounds[1:] - 1], 0.0
            ).tolist()
        finals[spec] = entry

    if fc_specs:
        # The FC pass and _assemble_result read these per-row plan
        # invariants; seed them from the batch columns up front.
        seg_off_l = sp.seg_offsets.tolist()
        for r, plan in enumerate(sp.rows):
            slo = slot_off_l[r]
            shi = slot_off_l[r + 1]
            d = plan.__dict__
            d["duration_total"] = float(dur_rows[r])
            d["load_charge_total"] = float(load_rows[r])
            d["load_charge_seg"] = load_seg[seg_off_l[r] : seg_off_l[r + 1]]
            d["slot_load_charge"] = slot_loads[slo:shi]
            d["slot_load_list"] = slot_loads_l[slo:shi]
            d["slept_list"] = slept_l[slo:shi]
            d["aborted_list"] = aborted_l[slo:shi]
            d["n_sleeps"] = sleeps_l[r]
            d["n_aborted"] = aborted_rows_l[r]

    if OBS.enabled:
        OBS.metrics.counter("sim.route", path="fast").inc(rows_n * len(specs))
    if span is not None:
        total_cells = rows_n * sp.width if sp.width else 0
        padded = 1.0 - (int(sp.n_seg.sum()) / total_cells) if total_cells else 0.0
        span.set(
            route="stacked",
            rows=rows_n,
            padded_fraction=round(padded, 4),
            plan_stack_seconds=round(plan_seconds, 6),
            fallback_rows=0,
        )
        if OBS.enabled:
            OBS.metrics.counter("sim.batch_route", path="stacked").inc()
            OBS.metrics.gauge("sim.batch_padded_fraction").set(padded)
            OBS.metrics.histogram("sim.batch_plan_stack_s").observe(plan_seconds)

    def commit_probe_policy(row: int) -> None:
        """Leave the probe policy exactly as replaying ``row`` would."""
        n = counts_l[row]
        lo = int(slots.offsets[row])
        obs_row = slots.t_idle[lo : lo + n]
        preds_row = preds2d[row, :n]
        policy.predictor.commit_scan(obs_row, preds_row, float(idle_finals[row]))
        policy.last_prediction = float(preds_row[-1])
        policy._last_slept = bool(sleep2d[row, n - 1])
        policy.n_decisions += n
        policy.n_sleep_decisions += int(np.count_nonzero(sleep2d[row, :n]))

    def commit_manager(spec: str, row: int) -> None:
        """Commit one spec's manager to its state after ``row``."""
        mgr = managers[spec]
        run = runs[spec]
        entry = finals[spec]
        source = mgr.source
        fc = source.fc
        storage = source.storage
        n = n_seg_l[row]
        if n:
            if run.const_i_f is not None:
                fc._i_f = run.const_i_f
            else:
                last = int(sp.seg_offsets[row]) + n - 1
                fc._i_f = float(run.i_f_flat[last])
        total_fuel = float(entry["fuel_rows"][row])
        fc.tank._consumed = total_fuel
        storage._charge = float(run.charges[row, n])
        storage.bled_charge = float(run.bled[row])
        storage.deficit_charge = float(run.deficit[row])
        source.total_fuel = total_fuel
        source.total_load_charge = float(load_rows[row])
        source.total_time = float(dur_rows[row])
        source.total_delivered_charge = float(entry["delivered_rows"][row])
        if run.recharging is not None:
            mgr.controller._recharging = bool(run.recharging[row])

    def commit_exit(row: int, raising_index: int | None) -> None:
        """Deferred end-state commits at the batch exit point.

        On success (``raising_index`` None) every spec gets ``row``.  On
        a deficit raise at (row, spec j), the serial loop had already
        run specs ``<= j`` on that row and specs ``> j`` only up to the
        previous one; FC specs commit per row in their own pass and are
        skipped here.
        """
        for i, spec in enumerate(specs):
            if spec in fc_specs:
                continue
            target = row if raising_index is None or i <= raising_index else row - 1
            if target < 0:
                continue  # fresh manager, untouched so far
            commit_manager(spec, target)
        commit_probe_policy(row)

    mdf = max_deficit_fraction
    results: dict[int, dict[str, SimulationResult]] = {}
    for r, seed in enumerate(seed_list):
        per_policy: dict[str, SimulationResult] = {}
        plan = sp.rows[r]
        n_slots_r = counts_l[r]
        slo = slot_off_l[r]
        shi = slo + n_slots_r
        for i, spec in enumerate(specs):
            mgr = managers[spec]
            if spec in fc_specs:
                info = fc_specs[spec]
                mgr.reset(initial_charge[spec])
                mgr.controller.start_run(
                    mgr.source.storage.charge, mgr.source.storage.capacity
                )
                idle_scan = info["idle_scan"]
                ap2d, a_fin = info["active_scan"]
                scans = (
                    None if idle_scan is None else idle_scan[0][r, :n_slots_r],
                    None if idle_scan is None else float(idle_scan[1][r]),
                    ap2d[r, :n_slots_r],
                    float(a_fin[r]),
                )
                run1d = _run_fc(
                    mgr,
                    plan,
                    None,
                    info["seeds"],
                    slots=(
                        slots.t_idle[slo:shi].tolist(),
                        slots.t_active[slo:shi].tolist(),
                        slots.i_active[slo:shi].tolist(),
                    ),
                    scans=scans,
                )
                assert run1d is not None  # bottomless tank: cannot deplete
                try:
                    per_policy[mgr.name] = _assemble_result(mgr, plan, run1d, mdf)
                except SimulationError:
                    # _assemble_result committed this manager already.
                    commit_exit(r, i)
                    raise
                continue
            run = runs[spec]
            entry = finals[spec]
            deficit_r = float(run.deficit[r])
            load_r = float(load_rows[r])
            if deficit_r > load_r * mdf:
                commit_exit(r, i)
                raise SimulationError(
                    f"{mgr.name}: storage deficit "
                    f"{deficit_r:.2f} A-s exceeds "
                    f"{100 * mdf:.0f}% of load -- "
                    "the source is undersized for this workload"
                )
            if run.const_i_f is not None:
                if_idle_l = [run.const_i_f] * n_slots_r
                if_active_l = if_idle_l
            else:
                if_idle_l = entry["if_idle"][slo:shi]
                if_active_l = entry["if_active"][slo:shi]
            slot_results = list(
                map(
                    tuple.__new__,
                    _repeat(SlotResult),
                    zip(
                        range(n_slots_r),
                        slept_l[slo:shi],
                        aborted_l[slo:shi],
                        entry["slot_fuel"][slo:shi],
                        slot_loads_l[slo:shi],
                        if_idle_l,
                        if_active_l,
                        entry["storage_end"][slo:shi],
                    ),
                )
            )
            per_policy[mgr.name] = SimulationResult(
                name=mgr.name,
                fuel=float(entry["fuel_rows"][r]),
                load_charge=load_r,
                delivered_charge=float(entry["delivered_rows"][r]),
                duration=float(dur_rows[r]),
                bled=float(run.bled[r]),
                deficit=deficit_r,
                n_slots=n_slots_r,
                n_sleeps=sleeps_l[r],
                n_aborted_sleeps=aborted_rows_l[r],
                wakeup_latency=sleeps_l[r] * mgr.device.t_wu,
                slots=slot_results,
                recorder=None,
            )
        results[seed] = per_policy
    commit_exit(rows_n - 1, None)
    return results
