#!/usr/bin/env python3
"""Experiment 1: the DVD camcorder MPEG encode/write session (Table 2, Fig 7).

Generates the 28-minute synthetic MPEG trace, runs the three power
managers over the paper's hybrid source (BCS 20 W stack model + 1 F
supercap), prints the Table-2 comparison, and renders the Fig-7 current
profiles as ASCII art.

Run:  python examples/camcorder_experiment.py [seed]
"""

import sys

import numpy as np

from repro import PowerManager, camcorder_device_params, generate_mpeg_trace
from repro.analysis.report import ascii_plot, format_table
from repro.sim import SlotSimulator, compare


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2007
    trace = generate_mpeg_trace(seed=seed)
    idles = [s.t_idle for s in trace]
    print(f"trace: {len(trace)} task slots over {trace.duration / 60:.1f} min, "
          f"idle {min(idles):.1f}-{max(idles):.1f} s "
          f"(paper: 8-20 s), active {trace.mean_active():.2f} s")

    dev = camcorder_device_params()
    managers = [
        PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
    ]
    results = {
        mgr.name: SlotSimulator(mgr, record=True).run(trace) for mgr in managers
    }

    # --- Table 2 ----------------------------------------------------------
    table = compare([r.metrics for r in results.values()])
    paper = {"conv-dpm": 1.0, "asap-dpm": 0.408, "fc-dpm": 0.308}
    rows = [["policy", "fuel (A-s)", "normalized", "paper"]]
    for name, r in results.items():
        rows.append(
            [name, f"{r.fuel:.1f}", f"{100 * table[name]:.1f}%",
             f"{100 * paper[name]:.1f}%"]
        )
    print()
    print(format_table(rows, title="Table 2 -- normalized fuel consumption"))

    saving = 1 - results["fc-dpm"].fuel / results["asap-dpm"].fuel
    lifetime = results["asap-dpm"].fuel / results["fc-dpm"].fuel
    print(f"\nfc-dpm saves {100 * saving:.1f}% fuel vs asap-dpm "
          f"-> lifetime x{lifetime:.2f} (paper: 24.4% / x1.32)")

    # --- Fig 7 ------------------------------------------------------------
    print("\nFig 7 -- current profiles, first 300 s")
    for key, field, title in (
        ("asap-dpm", "i_load", "(a) load current Ild (A)"),
        ("asap-dpm", "i_f", "(b) FC output IF under asap-dpm (A)"),
        ("fc-dpm", "i_f", "(c) FC output IF under fc-dpm (A)"),
    ):
        grid, values = results[key].recorder.resample(field, dt=1.0, t_max=300.0)
        print()
        print(ascii_plot(grid, values, title=title, height=10))

    flat_asap = np.std(results["asap-dpm"].recorder.resample("i_f", 1.0)[1])
    flat_fc = np.std(results["fc-dpm"].recorder.resample("i_f", 1.0)[1])
    print(f"\nstd(IF): asap-dpm {flat_asap:.3f} A vs fc-dpm {flat_fc:.3f} A "
          "-- the flat profile is what saves the fuel")


if __name__ == "__main__":
    main()
