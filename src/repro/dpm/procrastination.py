"""Idle-period aggregation by task procrastination (paper refs [6, 7]).

Small idle slots defeat DPM: each is too short to amortize the sleep
transitions.  The procrastination line (Jejurikar & Gupta [6]; Lu,
Benini & De Micheli [7]) defers task execution within its slack so that
several small idle gaps merge into one long one, which *can* host a
profitable sleep.

We implement the trace-level transformation: each task slot carries a
deferral budget (how late its active period may start); consecutive
slots whose budgets allow it are coalesced -- their active periods run
back-to-back at the end, and their idle time pools at the front.

The transformation preserves total active time, active charge, and
total trace duration; only the *arrangement* changes.  The bench shows
the resulting fuel win on a bursty workload where per-slot idles sit
below the Experiment-2 break-even time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..workload.trace import LoadTrace, TaskSlot


@dataclass(frozen=True)
class ProcrastinationReport:
    """What the transformation did."""

    original_slots: int
    merged_slots: int
    original_mean_idle: float
    merged_mean_idle: float

    @property
    def aggregation_factor(self) -> float:
        """Mean idle-length gain (>= 1)."""
        if self.original_mean_idle == 0:
            return 1.0
        return self.merged_mean_idle / self.original_mean_idle


def procrastinate(
    trace: LoadTrace,
    max_defer: float,
    name: str | None = None,
) -> tuple[LoadTrace, ProcrastinationReport]:
    """Merge consecutive task slots whose work can be deferred.

    Parameters
    ----------
    trace:
        The original slot sequence.
    max_defer:
        Uniform deferral budget (s): a slot's active period may start at
        most this much later than in the original schedule.  Greedy
        left-to-right merging: slot ``k+1`` is absorbed into the current
        group while the accumulated delay of every deferred active
        period stays within the budget.
    """
    if max_defer < 0:
        raise ConfigurationError("deferral budget cannot be negative")

    merged: list[TaskSlot] = []
    group: list[TaskSlot] = []
    group_delay = 0.0  # delay the *first* deferred active has accumulated

    def flush() -> None:
        if not group:
            return
        total_idle = sum(s.t_idle for s in group)
        total_active = sum(s.t_active for s in group)
        charge = sum(s.active_charge for s in group)
        merged.append(
            TaskSlot(
                t_idle=total_idle,
                t_active=total_active,
                i_active=charge / total_active,
            )
        )
        group.clear()

    for slot in trace:
        if not group:
            group.append(slot)
            group_delay = 0.0
            continue
        # Absorbing this slot defers every queued active period by the
        # slot's idle gap; the earliest (first) one accumulates the most.
        extra = slot.t_idle
        if group_delay + extra <= max_defer:
            group.append(slot)
            group_delay += extra
        else:
            flush()
            group.append(slot)
            group_delay = 0.0
    flush()

    out = LoadTrace(
        merged, name=name if name is not None else f"{trace.name}|procrastinated"
    )
    report = ProcrastinationReport(
        original_slots=len(trace),
        merged_slots=len(out),
        original_mean_idle=trace.mean_idle(),
        merged_mean_idle=out.mean_idle(),
    )
    return out, report
