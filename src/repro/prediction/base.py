"""Predictor interface and trivial reference predictors.

A predictor estimates the length of the *next* period (idle or active --
the same machinery serves both, per paper Eq. 14/15) from the history of
observed lengths.  The protocol is two calls per period:

* :meth:`Predictor.predict` -- estimate before the period starts;
* :meth:`Predictor.observe` -- feed back the actual length afterwards.

Predictors also track their own accuracy so experiments can report
prediction quality alongside fuel numbers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigurationError, RangeError


class Predictor(ABC):
    """Base class: history feeding, prediction, and error accounting."""

    def __init__(self) -> None:
        self._n_observed = 0
        self._abs_error_sum = 0.0
        self._error_sum = 0.0
        self._last_prediction: float | None = None

    # -- protocol ---------------------------------------------------------

    @abstractmethod
    def predict(self) -> float:
        """Estimated length (s) of the next period."""

    def observe(self, actual: float) -> None:
        """Record the actual length of the period just finished."""
        if actual < 0:
            raise RangeError("observed length cannot be negative")
        if self._last_prediction is not None:
            err = self._last_prediction - actual
            self._error_sum += err
            self._abs_error_sum += abs(err)
            self._n_observed += 1
        self._update(actual)

    @abstractmethod
    def _update(self, actual: float) -> None:
        """Model-specific history update."""

    def reset(self) -> None:
        """Forget all history and accuracy counters."""
        self._n_observed = 0
        self._abs_error_sum = 0.0
        self._error_sum = 0.0
        self._last_prediction = None

    # -- bookkeeping helper for subclasses --------------------------------

    def _remember(self, prediction: float) -> float:
        self._last_prediction = prediction
        return prediction

    # -- accuracy reporting -------------------------------------------------

    @property
    def n_scored(self) -> int:
        """Number of predict/observe pairs scored."""
        return self._n_observed

    @property
    def mean_absolute_error(self) -> float:
        """Mean |prediction - actual| over scored periods (s)."""
        if self._n_observed == 0:
            return 0.0
        return self._abs_error_sum / self._n_observed

    @property
    def bias(self) -> float:
        """Mean signed error; positive means over-prediction (s)."""
        if self._n_observed == 0:
            return 0.0
        return self._error_sum / self._n_observed


class ConstantPredictor(Predictor):
    """Always predicts a fixed value.

    The paper's Experiment 2 estimates the future active current as the
    constant 1.2 A -- this class is that idea applied to lengths, and it
    doubles as the degenerate baseline in predictor ablations.
    """

    def __init__(self, value: float) -> None:
        super().__init__()
        if value < 0:
            raise ConfigurationError("constant prediction cannot be negative")
        self.value = value

    def predict(self) -> float:
        return self._remember(self.value)

    def _update(self, actual: float) -> None:
        pass


class LastValuePredictor(Predictor):
    """Predicts the previous observation (a 1-step martingale)."""

    def __init__(self, initial: float = 0.0) -> None:
        super().__init__()
        if initial < 0:
            raise ConfigurationError("initial prediction cannot be negative")
        self._value = initial
        self._initial = initial

    def predict(self) -> float:
        return self._remember(self._value)

    def _update(self, actual: float) -> None:
        self._value = actual

    def reset(self) -> None:
        super().reset()
        self._value = self._initial


class PerfectPredictor(Predictor):
    """Oracle: told the future via :meth:`prime`, then predicts it exactly.

    Used to upper-bound what any online policy could achieve (the
    offline-optimal comparisons in the ablation benches).
    """

    def __init__(self) -> None:
        super().__init__()
        self._next: float | None = None

    def prime(self, next_value: float) -> None:
        """Reveal the next period's true length to the oracle."""
        if next_value < 0:
            raise RangeError("length cannot be negative")
        self._next = next_value

    def predict(self) -> float:
        if self._next is None:
            raise ConfigurationError("PerfectPredictor.predict before prime()")
        return self._remember(self._next)

    def _update(self, actual: float) -> None:
        self._next = None
