"""Public API surface tests."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        # The README quickstart must work verbatim.
        model = repro.LinearSystemEfficiency()
        problem = repro.SlotProblem(
            t_idle=20, t_active=10, i_idle=0.2, i_active=1.2, c_max=200.0
        )
        solution = repro.solve_slot(problem, model)
        assert solution.fuel < 14.0

    def test_paper_constants_exposed(self):
        assert repro.PAPER.fc.alpha == 0.45

    def test_errors_inherit_from_repro_error(self):
        from repro import errors

        for name in (
            "ConfigurationError",
            "RangeError",
            "InfeasibleError",
            "StorageError",
            "TraceError",
            "SimulationError",
            "DepletedError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)
