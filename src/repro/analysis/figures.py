"""Data series for the paper's figures (2, 3, 4 and 7).

Each function returns plain arrays/dataclasses so callers can plot with
any tool; :mod:`repro.analysis.report` renders them as ASCII for the
terminal-only benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.optimizer import solve_slot
from ..core.setting import FCOutputPlan, SlotProblem
from ..fuelcell.efficiency import (
    ComposedSystemEfficiency,
    LinearSystemEfficiency,
    StackEfficiency,
    SystemEfficiencyModel,
)
from ..fuelcell.controller import OnOffFanController, ProportionalFanController
from ..fuelcell.stack import FCStack
from ..power.converter import PWMConverter, PWMPFMConverter
from .tables import table2


def fig2_stack_iv_curve(n_points: int = 200) -> dict[str, np.ndarray]:
    """Fig. 2: stack voltage and power versus stack current.

    Returns arrays ``current`` (A), ``voltage`` (V), ``power`` (W) plus
    the maximum-power point under keys ``i_mpp`` / ``p_mpp``.
    """
    stack = FCStack.bcs_20w()
    i, v, p = stack.sweep(n_points=n_points, i_max=1.75)
    i_mpp, p_mpp = stack.max_power_point
    return {
        "current": i,
        "voltage": v,
        "power": p,
        "i_mpp": np.asarray(i_mpp),
        "p_mpp": np.asarray(p_mpp),
    }


def fig3_efficiency_curves(n_points: int = 120) -> dict[str, np.ndarray]:
    """Fig. 3: the three efficiency curves versus system output current.

    * ``stack`` -- (a) stack-only efficiency;
    * ``proportional`` -- (b) system efficiency, PWM-PFM converter +
      variable-speed fan (this paper's configuration);
    * ``onoff`` -- (c) system efficiency, PWM converter + on-off fan
      (the configuration of refs [10, 11]);
    * ``linear_fit`` -- the paper's calibrated ``alpha - beta * IF``.
    """
    proportional = ComposedSystemEfficiency(
        converter=PWMPFMConverter(), controller=ProportionalFanController()
    )
    onoff = ComposedSystemEfficiency(
        converter=PWMConverter(), controller=OnOffFanController()
    )
    linear = LinearSystemEfficiency()

    i, eta_prop = proportional.sweep(n_points=n_points)
    _, eta_onoff = onoff.sweep(n_points=n_points)
    _, eta_stack = StackEfficiency(proportional).sweep(n_points=n_points, i_max=1.2)
    eta_lin = np.array([linear.efficiency(float(x)) for x in i])
    return {
        "current": i,
        "stack": eta_stack,
        "proportional": eta_prop,
        "onoff": eta_onoff,
        "linear_fit": eta_lin,
    }


@dataclass(frozen=True)
class MotivationalResult:
    """Fig. 4 reproduction: the three FC settings on one task slot."""

    plans: dict[str, FCOutputPlan]
    fuel: dict[str, float]

    @property
    def fc_vs_conv_saving(self) -> float:
        """Paper: 62.6 % lower than setting (a) with the paper's 36 A-s."""
        return 1.0 - self.fuel["fc-dpm"] / self.fuel["conv-dpm"]

    @property
    def fc_vs_asap_saving(self) -> float:
        """Paper: 15.9 % lower than setting (b)."""
        return 1.0 - self.fuel["fc-dpm"] / self.fuel["asap-dpm"]


def fig4_motivational(
    model: SystemEfficiencyModel | None = None,
    t_idle: float = 20.0,
    t_active: float = 10.0,
    i_idle: float = 0.2,
    i_active: float = 1.2,
    c_max: float = 200.0,
    conv_uses_paper_ifc: bool = False,
) -> MotivationalResult:
    """Fig. 4 / Section 3.2: three FC output settings for one slot.

    Returns the three schedules and their fuel.  Analytic expectations:
    ASAP = 16.08 A-s, FC-DPM = 13.45 A-s (both match the paper), and
    Conv = 39.18 A-s by Eq. (4) -- the paper's quoted 36 A-s follows
    only if ``Ifc`` is taken as 1.2 A instead of Eq. (4)'s 1.306 A; pass
    ``conv_uses_paper_ifc=True`` to reproduce that reading.
    """
    m = model if model is not None else LinearSystemEfficiency()

    conv = FCOutputPlan()
    conv.append(t_idle, m.if_max, i_idle, "idle")
    conv.append(t_active, m.if_max, i_active, "active")

    asap = FCOutputPlan()
    asap.append(t_idle, m.clamp(i_idle), i_idle, "idle")
    asap.append(t_active, m.clamp(i_active), i_active, "active")

    problem = SlotProblem(
        t_idle=t_idle,
        t_active=t_active,
        i_idle=i_idle,
        i_active=i_active,
        c_max=c_max,
    )
    solution = solve_slot(problem, m)
    fc = FCOutputPlan()
    fc.append(t_idle, solution.if_idle, i_idle, "idle")
    fc.append(t_active, solution.if_active, i_active, "active")

    fuel_conv = (
        m.if_max * (t_idle + t_active)  # the paper's Ifc = IF = 1.2 A reading
        if conv_uses_paper_ifc
        else conv.fuel(m)
    )
    return MotivationalResult(
        plans={"conv-dpm": conv, "asap-dpm": asap, "fc-dpm": fc},
        fuel={"conv-dpm": fuel_conv, "asap-dpm": asap.fuel(m), "fc-dpm": fc.fuel(m)},
    )


def fig7_current_profiles(seed: int = 2007, t_max: float = 300.0):
    """Fig. 7: load / ASAP-DPM / FC-DPM current profiles over ``t_max`` s.

    Runs the full Experiment-1 configuration with recording enabled and
    extracts step series.  Returns a dict with, per policy, the tuple
    ``(times, i_f)`` plus the shared load profile under ``"load"``.
    """
    result = table2(seed=seed, record=True)
    out = {}
    asap = result.results["asap-dpm"].recorder
    fc = result.results["fc-dpm"].recorder
    out["load"] = asap.step_series("i_load", t_max=t_max)
    out["asap-dpm"] = asap.step_series("i_f", t_max=t_max)
    out["fc-dpm"] = fc.step_series("i_f", t_max=t_max)
    return out
