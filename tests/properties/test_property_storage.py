"""Property-based tests for charge-storage bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.storage import LiIonBattery, SuperCapacitor

steps = st.lists(
    st.tuples(
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),  # current
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),  # dt
    ),
    min_size=1,
    max_size=40,
)


class TestSuperCapacitorProperties:
    @given(steps)
    @settings(max_examples=200, deadline=None)
    def test_charge_always_within_bounds(self, sequence):
        sc = SuperCapacitor(capacity=6.0, initial_charge=3.0)
        for current, dt in sequence:
            sc.step(current, dt)
            assert 0.0 <= sc.charge <= sc.capacity

    @given(steps)
    @settings(max_examples=200, deadline=None)
    def test_counters_never_negative(self, sequence):
        sc = SuperCapacitor(capacity=6.0, initial_charge=3.0)
        for current, dt in sequence:
            sc.step(current, dt)
        assert sc.bled_charge >= 0.0
        assert sc.deficit_charge >= 0.0

    @given(steps)
    @settings(max_examples=200, deadline=None)
    def test_charge_conservation_ledger(self, sequence):
        """initial + absorbed == final for the ideal capacitor."""
        sc = SuperCapacitor(capacity=6.0, initial_charge=3.0)
        absorbed = 0.0
        for current, dt in sequence:
            absorbed += sc.step(current, dt)
        assert sc.charge == pytest.approx(3.0 + absorbed, abs=1e-9)

    @given(
        st.floats(min_value=0.1, max_value=1.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_coulombic_loss_is_one_way(self, current, dt):
        lossy = SuperCapacitor(capacity=100.0, coulombic_efficiency=0.9)
        lossless = SuperCapacitor(capacity=100.0)
        lossy.step(current, dt)
        lossless.step(current, dt)
        assert lossy.charge <= lossless.charge + 1e-12


class TestLiIonProperties:
    @given(steps)
    @settings(max_examples=150, deadline=None)
    def test_bounds_hold_with_nonlinearities(self, sequence):
        b = LiIonBattery(capacity=10.0, initial_charge=5.0)
        for current, dt in sequence:
            b.step(current, dt)
            assert 0.0 <= b.charge <= b.capacity
            assert b.recoverable_charge >= 0.0

    @given(
        st.floats(min_value=0.6, max_value=3.0),
        st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_high_rate_discharge_never_cheaper(self, rate, dt):
        """Rate-capacity effect: fast discharge drains at least the demand."""
        b = LiIonBattery(capacity=1000.0, initial_charge=500.0,
                         rated_current=0.5, peukert=1.15)
        before = b.charge
        b.step(-rate, dt)
        drained = before - b.charge
        assert drained >= rate * dt - 1e-9
