"""DeviceParams and DPMDevice tests."""

import pytest

from repro.devices.device import DeviceParams, DPMDevice
from repro.devices.states import PowerState
from repro.errors import ConfigurationError


@pytest.fixture
def params() -> DeviceParams:
    return DeviceParams.from_powers(
        p_run=14.65,
        p_sdb=4.84,
        p_slp=2.40,
        t_pd=0.5,
        t_wu=0.5,
        i_pd=0.4,
        i_wu=0.4,
        t_sdb_to_run=1.5,
        t_run_to_sdb=0.5,
        t_be=1.0,
    )


class TestDeviceParams:
    def test_from_powers(self, params):
        assert params.i_run == pytest.approx(14.65 / 12)
        assert params.i_sdb == pytest.approx(4.84 / 12)
        assert params.i_slp == pytest.approx(0.2)

    def test_break_even_explicit(self, params):
        assert params.break_even == 1.0

    def test_break_even_derived_equal_currents(self):
        p = DeviceParams(i_run=1.2, i_sdb=0.4, i_slp=0.4, t_pd=0.5, t_wu=0.5)
        assert p.break_even == pytest.approx(1.0)

    def test_break_even_derived_energy_bound(self):
        p = DeviceParams(
            i_run=1.2, i_sdb=0.403, i_slp=0.2, t_pd=1.0, t_wu=1.0,
            i_pd=1.2, i_wu=1.2,
        )
        assert p.break_even == pytest.approx(9.85, abs=0.1)

    def test_sleep_overhead_charge(self, params):
        assert params.sleep_overhead_charge == pytest.approx(0.4)

    def test_idle_charge_standby(self, params):
        assert params.idle_charge(10.0, sleep=False) == pytest.approx(
            params.i_sdb * 10
        )

    def test_idle_charge_sleep(self, params):
        # 0.5 s PD + 0.5 s WU at 0.4 A, 9 s at 0.2 A.
        assert params.idle_charge(10.0, sleep=True) == pytest.approx(0.4 + 1.8)

    def test_idle_charge_sleep_saves_above_breakeven(self, params):
        t = 5.0
        assert params.idle_charge(t, sleep=True) < params.idle_charge(t, sleep=False)

    def test_idle_charge_too_short_to_sleep(self, params):
        with pytest.raises(ConfigurationError):
            params.idle_charge(0.5, sleep=True)

    def test_rejects_sleep_above_standby(self):
        with pytest.raises(ConfigurationError):
            DeviceParams(i_run=1.0, i_sdb=0.2, i_slp=0.4)

    def test_rejects_negative_current(self):
        with pytest.raises(ConfigurationError):
            DeviceParams(i_run=-1.0, i_sdb=0.4, i_slp=0.2)

    def test_state_machine_construction(self, params):
        m = params.state_machine()
        assert m.state is PowerState.STANDBY
        assert m.current_of(PowerState.RUN) == params.i_run
        assert m.transition(PowerState.STANDBY, PowerState.SLEEP).delay == 0.5


class TestDPMDevice:
    def test_dwell_accumulates(self, params):
        dev = DPMDevice(params)
        charge = dev.dwell(10.0)
        assert charge == pytest.approx(params.i_sdb * 10)
        assert dev.time_in_state[PowerState.STANDBY] == 10.0

    def test_dwell_with_override_current(self, params):
        dev = DPMDevice(params)
        dev.machine.state = PowerState.RUN
        assert dev.dwell(3.0, current=1.3) == pytest.approx(3.9)

    def test_sleep_roundtrip_counts(self, params):
        dev = DPMDevice(params)
        dev.move_to(PowerState.SLEEP)
        dev.dwell(9.0)
        dev.move_to(PowerState.STANDBY)
        assert dev.n_sleeps == 1
        assert dev.transition_charge == pytest.approx(0.4)
        assert dev.transition_time == pytest.approx(1.0)

    def test_total_charge(self, params):
        dev = DPMDevice(params)
        dev.dwell(10.0)
        dev.move_to(PowerState.SLEEP)
        dev.dwell(5.0)
        expected = params.i_sdb * 10 + 0.2 + params.i_slp * 5
        assert dev.total_charge == pytest.approx(expected)

    def test_reset(self, params):
        dev = DPMDevice(params)
        dev.dwell(10.0)
        dev.move_to(PowerState.SLEEP)
        dev.reset()
        assert dev.state is PowerState.STANDBY
        assert dev.total_charge == 0.0
        assert dev.n_sleeps == 0
