"""PEM fuel-cell polarization (I-V) physics.

A proton-exchange-membrane cell under load sees three loss mechanisms on
top of its open-circuit voltage (Larminie & Dicks, paper ref [12]):

* **activation** loss  -- Tafel kinetics at the electrodes,
  ``A * ln(1 + i / i0)``;
* **ohmic** loss       -- membrane + contact resistance, ``R * i``;
* **concentration** loss -- reactant starvation near the limiting
  current, ``m * (exp(n * i) - 1)``.

The stack in the paper (BCS 20 W, 20 cells, room-temperature hydrogen at
2 psig) is only published as a measured curve (Fig. 2).  We substitute a
physics model whose parameters are calibrated so the *anchor points* the
paper actually uses survive: open-circuit voltage 18.2 V, a maximum power
of ~20 W near 1.4-1.5 A, and a monotonically falling V(I) over the
load-following range.  Everything downstream (efficiency shape, the
linear ``eta_s`` fit) follows from those anchors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, RangeError


@dataclass(frozen=True)
class PolarizationParams:
    """Per-cell polarization parameters.

    Attributes
    ----------
    e0:
        Open-circuit cell voltage (V).
    tafel_a:
        Tafel slope ``A`` (V).
    i0:
        Exchange current (A) -- sets where activation loss saturates.
    r_ohm:
        Area-lumped ohmic resistance (ohm).
    m, n:
        Concentration-loss coefficients: ``m * (exp(n * i) - 1)`` (V, 1/A).
    i_limit:
        Hard limiting current (A); the model is undefined beyond it.
    """

    e0: float
    tafel_a: float
    i0: float
    r_ohm: float
    m: float
    n: float
    i_limit: float

    def __post_init__(self) -> None:
        if self.e0 <= 0:
            raise ConfigurationError("open-circuit voltage must be positive")
        if min(self.tafel_a, self.i0, self.r_ohm, self.m, self.n) < 0:
            raise ConfigurationError("loss coefficients must be non-negative")
        if self.i_limit <= 0:
            raise ConfigurationError("limiting current must be positive")


class PolarizationCurve:
    """Evaluate cell/stack voltage and power as a function of current.

    Parameters
    ----------
    params:
        Per-cell loss parameters.
    n_cells:
        Number of series cells in the stack.
    """

    def __init__(self, params: PolarizationParams, n_cells: int = 1) -> None:
        if n_cells < 1:
            raise ConfigurationError("a stack needs at least one cell")
        self.params = params
        self.n_cells = n_cells

    # -- scalar / vector evaluation ---------------------------------------

    def cell_voltage(self, current: float | np.ndarray) -> float | np.ndarray:
        """Single-cell voltage (V) at ``current`` (A).

        Raises :class:`RangeError` for negative currents or currents at or
        beyond the limiting current.
        """
        i = np.asarray(current, dtype=float)
        if np.any(i < 0):
            raise RangeError("fuel-cell current cannot be negative")
        if np.any(i >= self.params.i_limit):
            raise RangeError(
                f"current {float(np.max(i)):.3f} A reaches the limiting "
                f"current {self.params.i_limit:.3f} A"
            )
        p = self.params
        activation = p.tafel_a * np.log1p(i / p.i0)
        ohmic = p.r_ohm * i
        concentration = p.m * np.expm1(p.n * i)
        v = p.e0 - activation - ohmic - concentration
        v = np.maximum(v, 0.0)
        return float(v) if np.isscalar(current) else v

    def stack_voltage(self, current: float | np.ndarray) -> float | np.ndarray:
        """Stack voltage (V): ``n_cells`` series cells at ``current`` (A)."""
        return self.cell_voltage(current) * self.n_cells

    def stack_power(self, current: float | np.ndarray) -> float | np.ndarray:
        """Stack output power (W) at ``current`` (A)."""
        return self.stack_voltage(current) * np.asarray(current, dtype=float)

    # -- derived characteristics -------------------------------------------

    def max_power_point(self, resolution: int = 20_001) -> tuple[float, float]:
        """Locate the maximum power point.

        Returns ``(current_A, power_W)``.  Uses a dense grid search over
        ``[0, i_limit)`` followed by a parabolic refinement; the curve is
        smooth and unimodal in practice so this is robust and fast.
        """
        grid = np.linspace(0.0, self.params.i_limit * (1 - 1e-6), resolution)
        power = self.stack_power(grid)
        k = int(np.argmax(power))
        if 0 < k < resolution - 1:
            # Parabolic interpolation through the three best samples.
            x0, x1, x2 = grid[k - 1 : k + 2]
            y0, y1, y2 = power[k - 1 : k + 2]
            denom = (x0 - x1) * (x0 - x2) * (x1 - x2)
            if denom != 0:
                a = (x2 * (y1 - y0) + x1 * (y0 - y2) + x0 * (y2 - y1)) / denom
                b = (
                    x2 * x2 * (y0 - y1)
                    + x1 * x1 * (y2 - y0)
                    + x0 * x0 * (y1 - y2)
                ) / denom
                if a < 0:
                    x_star = -b / (2 * a)
                    if x0 <= x_star <= x2:
                        return x_star, float(self.stack_power(x_star))
        return float(grid[k]), float(power[k])

    def current_for_power(self, power_w: float, tol: float = 1e-9) -> float:
        """Smallest stack current that delivers ``power_w`` (W).

        The stack power rises from 0 to its maximum-power point; on that
        rising branch the map is invertible by bisection.  Demands above
        the maximum power raise :class:`RangeError`.
        """
        if power_w < 0:
            raise RangeError("power demand cannot be negative")
        if power_w == 0:
            return 0.0
        i_mpp, p_max = self.max_power_point()
        if power_w > p_max:
            raise RangeError(
                f"demand {power_w:.2f} W exceeds stack capacity {p_max:.2f} W"
            )
        lo, hi = 0.0, i_mpp
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if self.stack_power(mid) < power_w:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def sweep(self, n_points: int = 200, i_max: float | None = None):
        """Sample the curve for plotting (regenerates paper Fig. 2).

        Returns ``(current, voltage, power)`` arrays.
        """
        top = self.params.i_limit * (1 - 1e-6) if i_max is None else i_max
        i = np.linspace(0.0, top, n_points)
        v = self.stack_voltage(i)
        return i, v, v * i


# ---------------------------------------------------------------------------
# BCS 20 W calibration
# ---------------------------------------------------------------------------

#: Per-cell parameters calibrated against the paper's Fig. 2 anchors:
#: open-circuit 18.2 V (0.91 V/cell), ~20 W maximum power near 1.45 A,
#: and a gently falling voltage over the 0.1-1.2 A load-following range.
BCS_20W_CELL = PolarizationParams(
    e0=0.91,
    tafel_a=0.022,
    i0=0.015,
    r_ohm=0.045,
    m=3.0e-5,
    n=5.2,
    i_limit=1.9,
)
