"""RunMetrics and comparison-arithmetic tests (Tables 2/3 math)."""

import pytest

from repro.errors import RangeError
from repro.sim.metrics import (
    RunMetrics,
    compare,
    fuel_saving,
    lifetime_extension,
    normalized_fuel,
)


def metrics(name, fuel, duration=1800.0):
    return RunMetrics(name=name, fuel=fuel, load_charge=900.0, duration=duration)


class TestRunMetrics:
    def test_average_rates(self):
        m = metrics("x", fuel=900.0, duration=1800.0)
        assert m.average_fuel_rate == pytest.approx(0.5)
        assert m.average_load == pytest.approx(0.5)

    def test_zero_duration(self):
        m = RunMetrics("x", fuel=0.0, load_charge=0.0, duration=0.0)
        assert m.average_fuel_rate == 0.0

    def test_lifetime(self):
        m = metrics("x", fuel=900.0, duration=1800.0)
        # Tank of 450 A-s at 0.5 A average -> 900 s.
        assert m.lifetime(450.0) == pytest.approx(900.0)

    def test_lifetime_rejects_bad_tank(self):
        with pytest.raises(RangeError):
            metrics("x", 900.0).lifetime(0.0)

    def test_lifetime_infinite_without_fuel(self):
        m = RunMetrics("x", fuel=0.0, load_charge=0.0, duration=10.0)
        assert m.lifetime(10.0) == float("inf")


class TestComparisons:
    def test_normalized_fuel(self):
        conv = metrics("conv-dpm", 1000.0)
        fc = metrics("fc-dpm", 308.0)
        assert normalized_fuel(fc, conv) == pytest.approx(0.308)

    def test_fuel_saving_matches_paper_arithmetic(self):
        # Paper: FC-DPM saves 24.4 % over ASAP (40.8 % -> 30.8 %).
        asap = metrics("asap-dpm", 408.0)
        fc = metrics("fc-dpm", 308.0)
        assert fuel_saving(fc, asap) == pytest.approx(0.245, abs=0.001)

    def test_lifetime_extension_is_1_32(self):
        # Paper: 40.8 / 30.8 = 1.32.
        asap = metrics("asap-dpm", 408.0)
        fc = metrics("fc-dpm", 308.0)
        assert lifetime_extension(fc, asap) == pytest.approx(1.32, abs=0.01)

    def test_compare_table(self):
        runs = [
            metrics("conv-dpm", 1000.0),
            metrics("asap-dpm", 408.0),
            metrics("fc-dpm", 308.0),
        ]
        table = compare(runs)
        assert table["conv-dpm"] == 1.0
        assert table["asap-dpm"] == pytest.approx(0.408)
        assert table["fc-dpm"] == pytest.approx(0.308)

    def test_compare_missing_reference(self):
        with pytest.raises(RangeError):
            compare([metrics("fc-dpm", 10.0)])

    def test_zero_reference_rejected(self):
        zero = RunMetrics("conv-dpm", fuel=0.0, load_charge=0.0, duration=1.0)
        with pytest.raises(RangeError):
            normalized_fuel(metrics("x", 1.0), zero)
        with pytest.raises(RangeError):
            fuel_saving(metrics("x", 1.0), zero)
        with pytest.raises(RangeError):
            lifetime_extension(zero, metrics("x", 1.0))
