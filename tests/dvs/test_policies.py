"""DVS policy tests, including the energy-vs-fuel divergence regimes."""

import pytest

from repro.core.multilevel import default_levels
from repro.dvs.cpu import CPULevel, CPUModel
from repro.dvs.policies import (
    EnergyMinimalDVS,
    FuelAwareDVS,
    JointLevelDVS,
    NoDVSPolicy,
)
from repro.dvs.tasks import Frame
from repro.errors import ConfigurationError, InfeasibleError
from repro.fuelcell.efficiency import LinearSystemEfficiency


@pytest.fixture
def cpu() -> CPUModel:
    return CPUModel.xscale_like()


@pytest.fixture
def model() -> LinearSystemEfficiency:
    return LinearSystemEfficiency()


FRAME = Frame(cycles=0.3, deadline=1.0)


class TestNoDVS:
    def test_always_full_speed(self, cpu):
        d = NoDVSPolicy(cpu).decide(FRAME, 3.0, 3.0, 6.0)
        assert d.level.frequency == cpu.f_max
        assert d.t_run == pytest.approx(0.3)
        assert d.t_idle == pytest.approx(0.7)

    def test_infeasible_frame_raises(self, cpu):
        with pytest.raises(InfeasibleError):
            NoDVSPolicy(cpu).decide(Frame(cycles=2.0, deadline=1.0), 3, 3, 6)


class TestEnergyMinimal:
    def test_picks_slowest_feasible_under_convex_power(self, cpu):
        d = EnergyMinimalDVS(cpu).decide(FRAME, 3.0, 3.0, 6.0)
        feasible = cpu.feasible_levels(FRAME.cycles, FRAME.deadline)
        assert d.level == feasible[0]

    def test_charge_lower_than_no_dvs(self, cpu):
        em = EnergyMinimalDVS(cpu).decide(FRAME, 3.0, 3.0, 6.0)
        nd = NoDVSPolicy(cpu).decide(FRAME, 3.0, 3.0, 6.0)
        charge_em = em.i_run * em.t_run + em.i_idle * em.t_idle
        charge_nd = nd.i_run * nd.t_run + nd.i_idle * nd.t_idle
        assert charge_em < charge_nd


class TestFuelAware:
    def test_matches_energy_minimal_with_ample_storage(self, cpu, model):
        """Jensen equality: with a big buffer the FC flattens any
        schedule perfectly, so fuel-min == charge-min."""
        fa = FuelAwareDVS(cpu, model).decide(FRAME, 100.0, 100.0, 1e6)
        em = EnergyMinimalDVS(cpu).decide(FRAME, 100.0, 100.0, 1e6)
        assert fa.level == em.level

    def test_plan_attached(self, cpu, model):
        d = FuelAwareDVS(cpu, model).decide(FRAME, 3.0, 3.0, 6.0)
        assert d.fc_plan is not None
        assert d.fc_plan.deficit == 0.0

    def test_diverges_when_energy_min_overloads_the_source(self, model):
        """The prior-work claim: minimum device energy != minimum fuel.

        A leakage-dominated CPU makes race-to-idle the *device*-energy
        winner, but its run current exceeds what the FC plus a small
        buffer can deliver -- the fuel-aware policy must back off to the
        slower level.
        """
        cpu = CPUModel(
            levels=[CPULevel(0.4, 1.0), CPULevel(1.0, 1.8)],
            c_eff=2.8,
            leakage_per_volt=7.0,   # leakage dominates -> race-to-idle
            p_platform=2.0,
            p_idle=0.5,
        )
        frame = Frame(cycles=0.4, deadline=1.0)
        em = EnergyMinimalDVS(cpu).decide(frame, 0.1, 0.1, 0.2)
        assert em.level.frequency == 1.0  # device-energy winner is fast

        # The fast level's ~2 A run current cannot be carried by IF_max
        # plus a 0.2 A-s buffer: the fuel-aware policy must back off.
        fa = FuelAwareDVS(cpu, model).decide(frame, 0.1, 0.1, 0.2)
        assert fa.level.frequency == 0.4  # fuel winner is slow & flat
        assert fa.fc_plan.deficit == 0.0

    def test_raises_when_nothing_feasible(self, model):
        cpu = CPUModel(levels=[CPULevel(1.0, 1.8)], c_eff=20.0)
        # Run current ~ (20*3.24 + ...) / 12 > 5 A: no storage can help.
        with pytest.raises(InfeasibleError):
            FuelAwareDVS(cpu, model).decide(
                Frame(cycles=0.9, deadline=1.0), 0.1, 0.1, 0.2
            )


class TestJointLevel:
    def test_uses_lattice_levels(self, cpu, model):
        levels = default_levels(model, 6)
        d = JointLevelDVS(cpu, model, levels).decide(FRAME, 3.0, 3.0, 6.0)
        assert d.fc_plan.if_idle in levels
        assert d.fc_plan.if_active in levels

    def test_never_cheaper_than_continuous_for_same_level(self, cpu, model):
        levels = default_levels(model, 4)
        joint = JointLevelDVS(cpu, model, levels)
        cont = FuelAwareDVS(cpu, model)
        dj = joint.decide(FRAME, 3.0, 3.0, 6.0)
        dc = cont.decide(FRAME, 3.0, 3.0, 6.0)
        if dj.level == dc.level:
            assert dj.fc_plan.fuel >= dc.fc_plan.fuel - 1e-9

    def test_rejects_degenerate_lattice(self, cpu, model):
        with pytest.raises(ConfigurationError):
            JointLevelDVS(cpu, model, (0.5,))
