"""The process-wide telemetry switchboard: ``OBS``.

Instrumented call sites all over the runtime/sim/power stack reach
telemetry through one module-level singleton::

    from ..obs import OBS

    if OBS.enabled:                       # hot paths: one attr test
        OBS.metrics.counter("x").inc()

    with OBS.span("sweep", name="beta"):  # cold paths: null span when off
        ...

Telemetry is **off by default**: ``OBS.enabled`` is False, ``OBS.tracer``
is the :data:`~repro.obs.tracer.NULL_TRACER` and ``OBS.span`` returns the
shared no-op span.  ``enable()`` swaps in a live tracer and a fresh
registry; :func:`observing` scopes that to a ``with`` block (used by the
CLI's ``--trace`` and by tests).  The disabled fast path is benchmarked:
``benchmarks/test_bench_microbench.py`` gates its projected overhead on
the vectorized batch bench below 2%.
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import MetricsRegistry
from .tracer import NULL_TRACER, NullTracer, Tracer


class Observability:
    """Mutable holder for the process's tracer + metrics registry."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer | NullTracer = NULL_TRACER
        self.metrics = MetricsRegistry()

    def span(self, name: str, **attrs):
        """Open a span on the active tracer (no-op span when disabled)."""
        return self.tracer.span(name, **attrs)


#: The one switchboard instance every instrumented module imports.
OBS = Observability()


def enable(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> Observability:
    """Turn telemetry on; returns :data:`OBS` for chaining.

    A fresh :class:`~repro.obs.tracer.Tracer` and
    :class:`~repro.obs.metrics.MetricsRegistry` are installed unless
    existing ones are passed in (e.g. to accumulate across runs).
    """
    OBS.tracer = tracer if tracer is not None else Tracer()
    OBS.metrics = metrics if metrics is not None else MetricsRegistry()
    OBS.enabled = True
    return OBS


def disable() -> Observability:
    """Turn telemetry off and restore the null tracer.

    The metrics registry is left in place so a caller can still read
    the snapshot of the run that just finished; ``enable()`` installs a
    fresh one.
    """
    OBS.enabled = False
    OBS.tracer = NULL_TRACER
    return OBS


@contextmanager
def observing(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
):
    """``with observing() as obs:`` -- telemetry on for the block only.

    Restores the previous tracer/registry/enabled state on exit, so
    nested scopes and test isolation both work.
    """
    prev = (OBS.enabled, OBS.tracer, OBS.metrics)
    try:
        yield enable(tracer=tracer, metrics=metrics)
    finally:
        OBS.enabled, OBS.tracer, OBS.metrics = prev
