"""Predictive shutdown (Hwang-Wu, paper ref [1]) -- the policy FC-DPM builds on.

At each idle-period start the predictor estimates ``T'_i``; if the
estimate exceeds the break-even time the device powers down
*immediately* (no timeout dwell).  The paper's Eq. 14 filter is the
default predictor, but any :class:`~repro.prediction.base.Predictor`
plugs in -- that is the predictor-ablation axis of the benchmarks.
"""

from __future__ import annotations

from ..devices.device import DeviceParams
from ..prediction.base import Predictor
from ..prediction.exponential import ExponentialAveragePredictor
from .policy import DPMPolicy, IdleDecision, SLEEP_NOW, STAY_AWAKE


class PredictiveShutdownPolicy(DPMPolicy):
    """Sleep immediately iff the predicted idle length exceeds ``Tbe``.

    Parameters
    ----------
    params:
        Device parameters (supplies the break-even threshold).
    predictor:
        Idle-length predictor; defaults to the paper's exponential
        average with ``rho = 0.5``.
    threshold:
        Override of the sleep threshold (defaults to ``params.break_even``).
    """

    def __init__(
        self,
        params: DeviceParams,
        predictor: Predictor | None = None,
        threshold: float | None = None,
    ) -> None:
        super().__init__(params)
        self.predictor = (
            predictor
            if predictor is not None
            else ExponentialAveragePredictor(factor=0.5)
        )
        self.threshold = params.break_even if threshold is None else threshold
        self.last_prediction: float | None = None

    def on_idle_start(self) -> IdleDecision:
        predicted = self.predictor.predict()
        self.last_prediction = predicted
        # A sleep also needs to physically fit the transitions.
        fits = predicted >= self.params.t_pd + self.params.t_wu
        sleep = predicted >= self.threshold and fits
        return self._count(SLEEP_NOW if sleep else STAY_AWAKE)

    def on_idle_end(self, t_idle: float) -> None:
        self.predictor.observe(t_idle)

    def reset(self) -> None:
        super().reset()
        self.predictor.reset()
        self.last_prediction = None
