"""ExperimentSpec: validation, identity, deterministic expansion."""

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentSpec,
    scenario_batch_spec,
    seed_study_spec,
    sweep_spec,
)
from repro.scenario import get_scenario


class TestValidation:
    def test_needs_name_and_kind(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(name="", kind="scenario")
        with pytest.raises(ConfigurationError):
            ExperimentSpec(name="x", kind="")

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(ConfigurationError, match="duplicate seeds"):
            ExperimentSpec(name="x", kind="scenario", seeds=(1, 2, 1))

    def test_rejects_duplicate_policies(self):
        with pytest.raises(ConfigurationError, match="duplicate policies"):
            ExperimentSpec(
                name="x", kind="scenario", policies=("fc-dpm", "fc-dpm")
            )

    def test_rejects_duplicate_knobs(self):
        with pytest.raises(ConfigurationError, match="duplicate ablation"):
            ExperimentSpec(
                name="x",
                kind="sweep.storage",
                ablations=(("capacity", (1.0,)), ("capacity", (2.0,))),
            )

    def test_rejects_empty_ablation_values(self):
        with pytest.raises(ConfigurationError, match="no values"):
            ExperimentSpec(name="x", kind="sweep.storage",
                           ablations=(("capacity", ()),))

    def test_needs_a_seed(self):
        with pytest.raises(ConfigurationError, match="at least one seed"):
            ExperimentSpec(name="x", kind="scenario", seeds=())


class TestIdentity:
    def test_round_trip_preserves_hash(self):
        spec = ExperimentSpec(
            name="rt",
            kind="scenario",
            scenario="exp2-fc-dpm",
            seeds=(0, 1, 2),
            policies=("conv-dpm", "fc-dpm"),
            ablations=(("capacity", (2.0, 6.0)),),
            fast=True,
        )
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.content_hash == spec.content_hash

    def test_hash_ignores_code_version(self, monkeypatch):
        # The content hash names the *experiment*, not the code: it must
        # not move when the package fingerprint does.
        spec = ExperimentSpec(name="x", kind="scenario", scenario="exp1-fc-dpm")
        before = spec.content_hash
        import repro.runtime.cache as cache_mod

        monkeypatch.setattr(cache_mod, "_FINGERPRINT", "f" * 16)
        assert spec.content_hash == before

    def test_hash_distinguishes_content(self):
        a = ExperimentSpec(name="x", kind="scenario", seeds=(0,))
        b = ExperimentSpec(name="x", kind="scenario", seeds=(1,))
        assert a.content_hash != b.content_hash


class TestExpansion:
    def test_order_is_ablations_then_seeds_then_policies(self):
        spec = ExperimentSpec(
            name="x",
            kind="scenario",
            scenario="exp2-fc-dpm",
            seeds=(7, 8),
            policies=("conv-dpm", "fc-dpm"),
            ablations=(("capacity", (1.0, 2.0)),),
        )
        tasks = spec.expand()
        assert len(tasks) == spec.n_tasks == 8
        assert [t.task_id for t in tasks[:3]] == ["t00000", "t00001", "t00002"]
        # Slowest axis: capacity; then seed; then policy.
        assert [(t.param("capacity"), t.seed, t.policy) for t in tasks[:4]] == [
            (1.0, 7, "conv-dpm"),
            (1.0, 7, "fc-dpm"),
            (1.0, 8, "conv-dpm"),
            (1.0, 8, "fc-dpm"),
        ]
        assert tasks[4].param("capacity") == 2.0

    def test_expansion_is_deterministic(self):
        spec = sweep_spec("storage", [1.0, 2.0, 4.0], seed=3)
        assert spec.expand() == spec.expand()

    def test_cache_identity_excludes_position(self):
        # Two experiments sharing a cell share the cache entry: the
        # task's cache params must not leak its index or id.
        a = ExperimentSpec(name="a", kind="scenario", scenario="exp1-fc-dpm",
                           seeds=(5,), policies=("fc-dpm",))
        b = ExperimentSpec(name="b", kind="scenario", scenario="exp1-fc-dpm",
                           seeds=(4, 5), policies=("fc-dpm",))
        cell_a = a.expand()[0]
        cell_b = b.expand()[1]
        assert cell_a.task_id != cell_b.task_id
        assert cell_a.cache_params() == cell_b.cache_params()
        assert cell_a.cache_key() == cell_b.cache_key()


class TestHelpers:
    def test_sweep_spec_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown sweep"):
            sweep_spec("voltage", [1.0])

    def test_sweep_spec_shape(self):
        spec = sweep_spec("beta", [0.0, 0.13], seed=11)
        assert spec.kind == "sweep.beta"
        assert spec.ablations == (("beta", (0.0, 0.13)),)
        assert spec.seeds == (11,)

    def test_scenario_object_is_serialized(self):
        sc = get_scenario("exp1-fc-dpm")
        spec = scenario_batch_spec("s", sc, [0])
        assert isinstance(spec.scenario, dict)
        assert spec.scenario == sc.to_dict()

    def test_seed_study_spec(self):
        spec = seed_study_spec("table2-metrics", range(3))
        assert spec.seeds == (0, 1, 2)
        assert spec.kind == "table2-metrics"
