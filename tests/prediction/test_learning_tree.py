"""Adaptive learning-tree predictor tests (paper ref [3] family)."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.learning_tree import LearningTreePredictor


def make(depth=2, **kwargs) -> LearningTreePredictor:
    return LearningTreePredictor(bin_edges=[5.0, 10.0, 15.0], depth=depth, **kwargs)


class TestQuantization:
    def test_symbol_of(self):
        p = make()
        assert p.symbol_of(2.0) == 0
        assert p.symbol_of(7.0) == 1
        assert p.symbol_of(12.0) == 2
        assert p.symbol_of(99.0) == 3

    def test_n_symbols(self):
        assert make().n_symbols == 4

    def test_representative_defaults(self):
        p = make()
        assert p.representative(0) == pytest.approx(2.5)   # midpoint of (0, 5]
        assert p.representative(1) == pytest.approx(7.5)
        assert p.representative(3) == pytest.approx(15.0)  # open last bin

    def test_representative_running_mean(self):
        p = make()
        p.observe(6.0)
        p.observe(8.0)
        assert p.representative(1) == pytest.approx(7.0)

    def test_representative_rejects_bad_symbol(self):
        with pytest.raises(ConfigurationError):
            make().representative(9)


class TestLearning:
    def test_initial_prediction(self):
        assert make(initial=12.0).predict() == 12.0

    def test_learns_periodic_pattern(self):
        # Sequence with period 3: 2, 7, 12, 2, 7, 12, ...
        p = make(depth=2)
        pattern = [2.0, 7.0, 12.0]
        for k in range(60):
            p.observe(pattern[k % 3])
        # Context is the last two symbols; after (7, 12) comes 2.
        predicted = p.predict()
        assert predicted == pytest.approx(2.0, abs=1.0)

    def test_grows_leaves(self):
        p = make(depth=1)
        for v in (2.0, 7.0, 12.0, 2.0, 7.0):
            p.observe(v)
        assert p.n_leaves >= 2

    def test_unseen_context_falls_back_to_global_mode(self):
        p = make(depth=2, initial=9.0)
        # Mostly symbol-1 values; finish on a context (0, 2) never seen
        # before so the predictor must fall back to the global mode.
        for v in (7.0, 7.0, 7.0, 7.0, 2.0, 12.0):
            p.observe(v)
        value = p.predict()
        assert value == pytest.approx(7.0, abs=1.5)

    def test_confidence_penalty_on_miss(self):
        p = make(depth=1, reward=1.0, penalty=1.0)
        # Alternate so the same context sees different successors.
        for v in (7.0, 2.0, 7.0, 12.0, 7.0, 2.0, 7.0, 12.0):
            p.predict()
            p.observe(v)
        # Still functional and bounded.
        assert 0.0 <= p.predict() <= 20.0

    def test_reset(self):
        p = make(initial=4.0)
        for v in (7.0, 2.0, 7.0):
            p.observe(v)
        p.reset()
        assert p.n_leaves == 0
        assert p.predict() == 4.0


class TestValidation:
    def test_rejects_unsorted_edges(self):
        with pytest.raises(ConfigurationError):
            LearningTreePredictor(bin_edges=[10.0, 5.0])

    def test_rejects_nonpositive_edges(self):
        with pytest.raises(ConfigurationError):
            LearningTreePredictor(bin_edges=[0.0, 5.0])

    def test_rejects_empty_edges(self):
        with pytest.raises(ConfigurationError):
            LearningTreePredictor(bin_edges=[])

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            LearningTreePredictor(bin_edges=[5.0], depth=0)

    def test_rejects_bad_reward(self):
        with pytest.raises(ConfigurationError):
            LearningTreePredictor(bin_edges=[5.0], reward=0.0)
