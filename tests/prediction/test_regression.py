"""Regression predictor tests (paper ref [2] family)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.prediction.regression import RegressionPredictor


class TestRegression:
    def test_initial_before_history(self):
        p = RegressionPredictor(order=2, window=8, initial=7.0)
        assert p.predict() == 7.0

    def test_mean_fallback_with_thin_history(self):
        p = RegressionPredictor(order=3, window=10, initial=0.0)
        p.observe(4.0)
        p.observe(6.0)
        assert p.predict() == pytest.approx(5.0)

    def test_learns_constant_sequence(self):
        p = RegressionPredictor(order=2, window=16)
        for _ in range(12):
            p.observe(9.0)
        assert p.predict() == pytest.approx(9.0, abs=0.05)

    def test_learns_linear_trend(self):
        p = RegressionPredictor(order=2, window=16, ridge=1e-9)
        for k in range(14):
            p.observe(2.0 + 0.5 * k)  # ends at 8.5
        assert p.predict() == pytest.approx(9.0, abs=0.2)

    def test_learns_alternating_pattern(self):
        # AR(2) captures period-2 oscillation that exponential averaging
        # cannot: history ... 4, 10, 4, 10 -> next is 4.
        p = RegressionPredictor(order=2, window=24, ridge=1e-9)
        for k in range(20):
            p.observe(10.0 if k % 2 else 4.0)
        # Last observation was k=19 -> 10.0, so next should be ~4.
        assert p.predict() == pytest.approx(4.0, abs=0.5)

    def test_never_negative(self):
        p = RegressionPredictor(order=1, window=8)
        for v in (10.0, 5.0, 1.0, 0.1, 0.0, 0.0):
            p.observe(v)
        assert p.predict() >= 0.0

    def test_window_bounds_history(self):
        p = RegressionPredictor(order=1, window=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            p.observe(v)
        assert len(p.history) == 4
        assert p.history[0] == 3.0

    def test_reset(self):
        p = RegressionPredictor(order=1, window=4, initial=2.0)
        p.observe(9.0)
        p.reset()
        assert p.history == ()
        assert p.predict() == 2.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RegressionPredictor(order=0)
        with pytest.raises(ConfigurationError):
            RegressionPredictor(order=3, window=4)
        with pytest.raises(ConfigurationError):
            RegressionPredictor(ridge=-1.0)
        with pytest.raises(ConfigurationError):
            RegressionPredictor(initial=-1.0)

    def test_stable_on_noisy_data(self):
        rng = np.random.default_rng(0)
        p = RegressionPredictor(order=2, window=32)
        for _ in range(100):
            p.observe(float(rng.uniform(5, 25)))
        value = p.predict()
        assert 0.0 <= value <= 40.0
