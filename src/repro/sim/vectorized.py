"""Vectorized trace simulation: ``simulate_fast`` / ``simulate_batch``.

The scalar simulators execute one Python call chain per segment
(``SegmentIntegrator.integrate`` -> ``PowerSource.step`` ->
``ChargeStorage.step``), allocating a frozen ``SourceStep`` each time.
For the paper's piecewise-constant traces the whole run is really three
array computations -- the fuel integral ``sum Ifc(IF) * T`` over
segments (Eqs. 3-4), a clamped cumulative sum for the storage, and
per-slot reductions -- which is what this module does:

1. :func:`plan_trace_arrays` compiles a trace into structure-of-arrays
   form, reusing :func:`~repro.sim.integrator.plan_idle_segments` /
   :func:`~repro.sim.integrator.plan_active_segments` so the timeline
   convention stays single-sourced;
2. :meth:`~repro.fuelcell.efficiency.SystemEfficiencyModel.fuel_map_array`
   evaluates the fuel map over the whole command array at once;
3. :func:`clamped_cumsum` reproduces the
   :meth:`~repro.power.storage.ChargeStorage.step` saturation / bleed /
   deficit semantics with O(#clamp-events) array rescans;
4. :func:`simulate_fast` assembles a
   :class:`~repro.sim.slotsim.SimulationResult` **bit-identical** to
   ``SlotSimulator.run`` -- every arithmetic step replicates the
   scalar's IEEE-754 operation sequence exactly (seeded ``cumsum`` for
   running ledgers, elementwise closed forms for the fuel map, a
   sequential tail for clamp-heavy storage stretches), so equality is
   ``==``, not ``approx``.

Eligibility is conservative: the kernel runs only for the reference
hybrid plant (``HybridPowerSource`` + ``FCSystem`` + supercap/ideal
storage) under a *trace-functional* controller
(:attr:`~repro.core.baselines.SourceController.is_trace_functional`).
ASAP-DPM's storage-coupled recharge hysteresis is handled natively by a
dedicated sequential pass over precomputed per-mode arrays.  Everything
else -- adaptive controllers (FC-DPM, stochastic, receding), exotic
plants, recording runs, manual ``record_history`` -- falls back to the
scalar :class:`~repro.sim.slotsim.SlotSimulator`: never a wrong answer,
only a slower one.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.baselines import (
    ASAPDPMController,
    SegmentContext,
    SlotActuals,
    SlotStart,
    StaticController,
)
from ..errors import ConfigurationError, SimulationError
from ..fuelcell.efficiency import SystemEfficiencyModel
from ..fuelcell.fuel import FuelTank
from ..fuelcell.system import FCSystem
from ..obs import OBS
from ..power.hybrid import HybridPowerSource
from ..power.storage import IdealStorage, SuperCapacitor
from .integrator import (
    chunk_segments,
    plan_active_segments,
    plan_idle_segments,
)
from .slotsim import SimulationResult, SlotResult, SlotSimulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.manager import PowerManager
    from ..dpm.policy import DPMPolicy, IdleDecision
    from ..scenario.spec import Scenario
    from ..workload.trace import LoadTrace

#: Segment-kind encoding for the int8 ``TraceArrays.kind`` column.
_KIND_CODES = {"standby": 0, "pd": 1, "sleep": 2, "wu": 3, "run": 4}
_KIND_NAMES = ("standby", "pd", "sleep", "wu", "run")

#: After this many storage clamp events the kernel stops rescanning
#: arrays and finishes the stretch with a compiled-float sequential
#: loop -- cheaper than per-event numpy work on clamp-heavy runs
#: (conv-dpm saturates the storage on a large fraction of segments).
_MAX_RESCANS = 8


# -- trace compilation -------------------------------------------------------


@dataclass(frozen=True)
class TraceArrays:
    """A whole trace compiled to structure-of-arrays form.

    One row per executed segment, in execution order; slot boundaries
    and the idle/active split are kept as index arrays so per-slot
    reductions and the generic controller replay can address segments
    without re-planning.
    """

    #: Segment length (s), one per segment.
    duration: np.ndarray
    #: Load current (A), one per segment.
    i_load: np.ndarray
    #: Kind code per segment (see ``_KIND_CODES``), int8.
    kind: np.ndarray
    #: Remaining phase duration *including* the segment (s) -- the
    #: scalar ``SegmentContext.phase_duration`` lookahead.  ``None``
    #: when compiled with ``phase_context=False`` (the fast path does
    #: this: closed-form controllers never read it, and the generic
    #: replay derives the exact values from ``duration`` on demand).
    phase_duration: np.ndarray | None
    #: Remaining phase load charge including the segment (A-s), or
    #: ``None`` (see ``phase_duration``).
    phase_demand: np.ndarray | None
    #: Segment index where each slot starts; length ``n_slots + 1``.
    slot_bounds: np.ndarray
    #: Segment index where each slot's active phase starts.
    active_start: np.ndarray
    #: Per-slot sleep decision outcome (bool).
    slept: np.ndarray
    #: Per-slot aborted-sleep flag (bool).
    aborted: np.ndarray

    @property
    def n_segments(self) -> int:
        return self.duration.shape[0]

    @property
    def n_slots(self) -> int:
        return self.slot_bounds.shape[0] - 1


def replay_policy(policy: "DPMPolicy", trace: "LoadTrace") -> list["IdleDecision"]:
    """Collect the per-slot sleep decisions by replaying the policy.

    Device-side DPM policies are pure functions of the observed idle
    history (they never see the power source), so firing
    ``on_idle_start`` / ``on_idle_end`` in slot order yields exactly the
    decisions -- and the same policy end state -- the scalar simulator
    produces while interleaving integration in between.
    """
    decisions = []
    for slot in trace:
        decisions.append(policy.on_idle_start())
        policy.on_idle_end(slot.t_idle)
    return decisions


def plan_trace_arrays(
    device,
    trace: "LoadTrace",
    decisions,
    max_segment: float | None = None,
    *,
    phase_context: bool = True,
) -> TraceArrays:
    """Compile ``trace`` + per-slot ``decisions`` into :class:`TraceArrays`.

    Reuses :func:`plan_idle_segments` / :func:`plan_active_segments` /
    :func:`chunk_segments`, so the segment layout is the scalar
    simulator's, row for row.  ``phase_context=False`` skips the
    remaining-phase lookahead columns (``phase_duration`` /
    ``phase_demand`` come back ``None``) -- the fast path uses this
    because its closed-form controllers never read them and the generic
    replay derives them on demand; the per-segment bookkeeping is a
    measurable share of compile time.
    """
    slots = list(trace)
    decisions = list(decisions)
    if len(decisions) != len(slots):
        raise ConfigurationError(
            f"got {len(decisions)} decisions for {len(slots)} slots"
        )
    durations: list[float] = []
    loads: list[float] = []
    kinds: list[int] = []
    phase_dur: list[float] = []
    phase_dem: list[float] = []
    slot_bounds = [0]
    active_start: list[int] = []
    slept_l: list[bool] = []
    aborted_l: list[bool] = []
    dur_append = durations.append
    load_append = loads.append
    kind_append = kinds.append
    pdur_append = phase_dur.append
    pdem_append = phase_dem.append
    astart_append = active_start.append
    bounds_append = slot_bounds.append
    codes = _KIND_CODES

    for slot, decision in zip(slots, decisions):
        idle_segments, slept, aborted = plan_idle_segments(
            device, slot.t_idle, decision.sleep, decision.sleep_after
        )
        slept_l.append(slept)
        aborted_l.append(aborted)
        active_segments = plan_active_segments(device, slot)
        if max_segment is not None:
            idle_segments = chunk_segments(idle_segments, max_segment)
            active_segments = chunk_segments(active_segments, max_segment)
        if phase_context:
            for segments in (idle_segments, active_segments):
                if segments is active_segments:
                    astart_append(len(durations))
                # Inlined phase_totals(): plain sequential accumulation,
                # bit-identical to the sum() calls run_phase makes.
                remaining = 0.0
                demand = 0.0
                for d, i_l, _ in segments:
                    remaining += d
                    demand += d * i_l
                for d, i_l, kind in segments:
                    dur_append(d)
                    load_append(i_l)
                    kind_append(codes[kind])
                    pdur_append(remaining)
                    pdem_append(demand)
                    remaining -= d
                    demand -= i_l * d
        else:
            for d, i_l, kind in idle_segments:
                dur_append(d)
                load_append(i_l)
                kind_append(codes[kind])
            astart_append(len(durations))
            for d, i_l, kind in active_segments:
                dur_append(d)
                load_append(i_l)
                kind_append(codes[kind])
        bounds_append(len(durations))

    return TraceArrays(
        duration=np.asarray(durations, dtype=float),
        i_load=np.asarray(loads, dtype=float),
        kind=np.asarray(kinds, dtype=np.int8),
        phase_duration=np.asarray(phase_dur, dtype=float) if phase_context else None,
        phase_demand=np.asarray(phase_dem, dtype=float) if phase_context else None,
        slot_bounds=np.asarray(slot_bounds, dtype=np.intp),
        active_start=np.asarray(active_start, dtype=np.intp),
        slept=np.asarray(slept_l, dtype=bool),
        aborted=np.asarray(aborted_l, dtype=bool),
    )


# -- exact array kernels -----------------------------------------------------


def _running_sums(initial: float, values: np.ndarray) -> np.ndarray:
    """Sequential running sums: ``out[k] = initial + values[0] + ... + values[k-1]``.

    ``np.cumsum`` accumulates strictly left to right (``out[i] =
    out[i-1] + in[i]``), so seeding the first element with ``initial``
    reproduces a scalar ``+=`` loop bit for bit.  ``np.sum`` would not
    (pairwise summation).
    """
    out = np.empty(values.shape[0] + 1, dtype=float)
    out[0] = initial
    if values.shape[0]:
        seg = values.astype(float, copy=True)
        seg[0] += initial
        np.cumsum(seg, out=seg)
        out[1:] = seg
    return out


def clamped_cumsum(
    deltas: np.ndarray,
    initial: float,
    capacity: float,
    bled: float = 0.0,
    deficit: float = 0.0,
    max_rescans: int = _MAX_RESCANS,
) -> tuple[np.ndarray, float, float]:
    """Bounded-bucket recurrence over ``deltas``, exactly as the scalar.

    Reproduces :meth:`ChargeStorage._apply` semantics: the charge
    accumulates sequentially; overflow above ``capacity`` is bled and
    the level pins to ``capacity``; underflow below zero is recorded as
    deficit and the level pins to ``0.0``.  Returns ``(charges, bled,
    deficit)`` with ``charges[0] == initial`` and one entry per delta.

    Strategy: a seeded cumulative sum is bit-identical to the scalar
    ``+=`` loop *between* clamp events, so cumsum to the first
    violation, apply the scalar clamp arithmetic there, and resume.
    After ``max_rescans`` violations the remaining stretch runs as a
    plain sequential float loop, which beats per-event array rescans on
    clamp-heavy runs.
    """
    n = deltas.shape[0]
    charges = np.empty(n + 1, dtype=float)
    charges[0] = initial
    cur = float(initial)
    start = 0
    rescans = 0
    while start < n and rescans < max_rescans:
        seg = deltas[start:].astype(float, copy=True)
        seg[0] += cur
        np.cumsum(seg, out=seg)
        bad = (seg > capacity) | (seg < 0.0)
        nbad = int(np.count_nonzero(bad))
        if not nbad:
            charges[start + 1 :] = seg
            return charges, bled, deficit
        k = int(np.argmax(bad))
        if k:
            charges[start + 1 : start + k + 1] = seg[:k]
        new = float(seg[k])
        if new > capacity:
            bled += new - capacity
            cur = capacity
        else:
            deficit += -new
            cur = 0.0
        charges[start + k + 1] = cur
        start += k + 1
        if nbad > max_rescans - rescans:
            # The unclamped trajectory violates the bounds more times
            # than there are rescans left -- a clamp-dense stretch.
            # Skip straight to the sequential tail instead of paying
            # an array copy + cumsum per clamp event (a density
            # heuristic: it only changes speed, never values).
            break
        rescans += 1
    if start < n:
        tail = deltas[start:].tolist()
        for i, delta in enumerate(tail):
            new = cur + delta
            if new > capacity:
                bled += new - capacity
                cur = capacity
            elif new < 0.0:
                deficit += -new
                cur = 0.0
            else:
                cur = new
            charges[start + i + 1] = cur
    return charges, bled, deficit


def _realize_commands(fc: FCSystem, commands: np.ndarray) -> np.ndarray:
    """Vectorized ``FCSystem.set_output(cmd, clamp=True)`` per segment."""
    model = fc.model
    realized = np.minimum(np.maximum(commands, model.if_min), model.if_max)
    if fc.allow_zero_output:
        realized = np.where(commands == 0.0, 0.0, realized)
    return realized


def _fuel_currents(fc: FCSystem, realized: np.ndarray) -> np.ndarray:
    """Vectorized ``FCSystem.fc_current()``: the zero shortcut + fuel map."""
    i_fc = fc.model.fuel_map_array(realized)
    # FCSystem.fc_current returns exactly 0.0 for a zero setting even
    # when the model itself would not (e.g. composed models with fan
    # standby draw) -- mask after the map to match.
    return np.where(realized == 0.0, 0.0, i_fc)


def _storage_deltas(
    storage, i_f: np.ndarray, i_load: np.ndarray, durations: np.ndarray
) -> np.ndarray:
    """Per-segment signed charge delta, exactly as ``storage.step``."""
    raw = (i_f - i_load) * durations
    if type(storage) is SuperCapacitor:
        delta = np.where(raw > 0, raw * storage.coulombic_efficiency, raw)
        return delta - storage.leakage_current * durations
    return raw  # IdealStorage: step() applies current * dt unmodified


# -- eligibility -------------------------------------------------------------


#: Human-readable ineligibility reasons mapped (by prefix) to the short
#: label used on the ``sim.fast_ineligible{reason=...}`` counter.
_REASON_KEYS = (
    ("recording requested", "record"),
    ("source type", "source-type"),
    ("FC system type", "fc-type"),
    ("fuel tank type", "tank-type"),
    ("efficiency model", "model-clamp"),
    ("storage type", "storage-type"),
    ("source.record_history", "record-history"),
    ("controller", "controller"),
)


def _reason_key(reason: str) -> str:
    """Short metric-label slug for an ineligibility reason string."""
    for prefix, key in _REASON_KEYS:
        if reason.startswith(prefix):
            return key
    return "other"


def fast_path_ineligibility(
    manager: "PowerManager", *, record: bool = False
) -> str | None:
    """Why this configuration cannot take the array kernel (None = it can).

    The checks are exact-type on purpose: a subclass may override any
    of the semantics the kernel replicates, so it routes to the scalar
    simulator instead.  The returned string is a human-readable reason
    (used in docs/tests); callers treat any non-None as "fall back".
    """
    if record:
        return "recording requested (Recorder consumes per-segment steps)"
    source = manager.source
    if type(source) is not HybridPowerSource:
        return f"source type {type(source).__name__} has no array kernel"
    if type(source.fc) is not FCSystem:
        return f"FC system type {type(source.fc).__name__} has no array kernel"
    if type(source.fc.tank) is not FuelTank:
        return f"fuel tank type {type(source.fc.tank).__name__} has no array kernel"
    if type(source.fc.model).clamp is not SystemEfficiencyModel.clamp:
        return "efficiency model overrides clamp()"
    if type(source.storage) not in (SuperCapacitor, IdealStorage):
        return f"storage type {type(source.storage).__name__} has no array kernel"
    if source.record_history:
        return "source.record_history is enabled"
    if not manager.controller.is_trace_functional:
        return (
            f"controller {type(manager.controller).__name__} "
            "is not trace-functional"
        )
    return None


# -- kernel passes -----------------------------------------------------------


@dataclass(frozen=True)
class _KernelRun:
    """Raw per-segment outputs of one kernel pass."""

    i_f: np.ndarray
    i_fc: np.ndarray
    fuel: np.ndarray
    charges: np.ndarray
    bled: float
    deficit: float
    #: Final ASAP recharge flag, or None for non-ASAP controllers.
    recharging: bool | None


def _controller_commands(
    manager: "PowerManager", plan: TraceArrays, trace: "LoadTrace"
) -> np.ndarray:
    """Commanded output current per segment for a trace-functional controller.

    Prefers the controller's closed-form
    :meth:`~repro.core.baselines.SourceController.output_array` hook;
    otherwise replays :meth:`output` segment by segment with the scalar
    call order (slot lifecycle callbacks included) and the storage
    context fields poisoned to NaN -- a controller that claims to be
    trace-functional but reads storage state produces NaN results
    instead of silently wrong ones.
    """
    controller = manager.controller
    commands = controller.output_array(plan)
    if commands is not None:
        return np.asarray(commands, dtype=float)
    nan = float("nan")
    device = manager.device
    out = np.empty(plan.n_segments, dtype=float)
    durations = plan.duration.tolist()
    loads = plan.i_load.tolist()
    kinds = plan.kind.tolist()
    have_context = plan.phase_duration is not None
    if have_context:
        phase_dur = plan.phase_duration.tolist()
        phase_dem = plan.phase_demand.tolist()
    bounds = plan.slot_bounds.tolist()
    astart = plan.active_start.tolist()
    slept = plan.slept.tolist()
    for s, slot in enumerate(trace):
        controller.on_idle_start(
            SlotStart(
                slot_index=s,
                sleeping=slept[s],
                i_idle=device.i_slp if slept[s] else device.i_sdb,
                storage_charge=nan,
            )
        )
        for phase, lo, hi in (
            ("idle", bounds[s], astart[s]),
            ("active", astart[s], bounds[s + 1]),
        ):
            if not have_context:
                # Derive the remaining-phase lookahead exactly as
                # run_phase does: sequential sums over the phase.
                remaining = 0.0
                demand = 0.0
                for k in range(lo, hi):
                    remaining += durations[k]
                    demand += durations[k] * loads[k]
            for k in range(lo, hi):
                if have_context:
                    remaining = phase_dur[k]
                    demand = phase_dem[k]
                out[k] = controller.output(
                    SegmentContext(
                        slot_index=s,
                        phase=phase,
                        kind=_KIND_NAMES[kinds[k]],
                        duration=durations[k],
                        i_load=loads[k],
                        storage_charge=nan,
                        storage_capacity=nan,
                        phase_duration=remaining,
                        phase_demand=demand,
                    )
                )
                if not have_context:
                    remaining -= durations[k]
                    demand -= loads[k] * durations[k]
        controller.on_slot_end(
            SlotActuals(
                slot_index=s,
                t_idle=slot.t_idle,
                t_active=slot.t_active,
                i_active=slot.i_active,
            )
        )
    return out


def _run_from_plan(
    manager: "PowerManager", plan: TraceArrays, commands: np.ndarray
) -> _KernelRun | None:
    """Array pass for storage-independent command sequences.

    Returns None when a finite fuel tank would deplete mid-run -- the
    caller reruns the scalar path, which raises the exact
    ``DepletedError`` at the exact segment.
    """
    source = manager.source
    fc = source.fc
    storage = source.storage
    n = plan.n_segments
    if n and commands[0] == commands[-1] and not bool(np.any(commands != commands[0])):
        # Constant command sequence (conv-dpm, static controllers):
        # realize and map once with the exact scalar expressions, then
        # broadcast.  A NaN-poisoned sequence never matches (NaN !=
        # NaN) and keeps the elementwise path.
        model = fc.model
        cmd0 = float(commands[0])
        if fc.allow_zero_output and cmd0 == 0.0:
            r0 = 0.0
        else:
            r0 = min(max(cmd0, model.if_min), model.if_max)
        realized = np.full(n, r0)
        i_fc = np.full(n, 0.0 if r0 == 0.0 else model.fc_current(r0))
    else:
        realized = _realize_commands(fc, commands)
        i_fc = _fuel_currents(fc, realized)
    fuel = i_fc * plan.duration
    tank = fc.tank
    if math.isfinite(tank.capacity) and plan.n_segments:
        consumed = _running_sums(tank.consumed, fuel)
        # Exact scalar depletion test: request > capacity - consumed-so-far.
        if bool(np.any(fuel > tank.capacity - consumed[:-1])):
            return None
    deltas = _storage_deltas(storage, realized, plan.i_load, plan.duration)
    charges, bled, deficit = clamped_cumsum(
        deltas,
        storage.charge,
        storage.capacity,
        bled=storage.bled_charge,
        deficit=storage.deficit_charge,
    )
    return _KernelRun(realized, i_fc, fuel, charges, bled, deficit, None)


def _run_asap(manager: "PowerManager", plan: TraceArrays) -> _KernelRun | None:
    """Native pass for ASAP-DPM's storage-coupled recharge hysteresis.

    Both candidate modes (load-follow, full-output recharge) are
    precomputed as arrays; one sequential float pass then plays the
    scalar hysteresis -- per-segment ``soc = charge / capacity``
    compared against the thresholds *before* the segment integrates,
    exactly as ``ASAPDPMController.output`` does -- while applying the
    storage clamp arithmetic inline.
    """
    controller = manager.controller
    source = manager.source
    fc = source.fc
    storage = source.storage
    model = fc.model
    n = plan.n_segments

    cmd_follow = np.minimum(np.maximum(plan.i_load, model.if_min), model.if_max)
    real_follow = _realize_commands(fc, cmd_follow)
    ifc_follow = _fuel_currents(fc, real_follow)
    fuel_follow = ifc_follow * plan.duration
    delta_follow = _storage_deltas(storage, real_follow, plan.i_load, plan.duration)

    cmd_re = model.if_max
    if cmd_re == 0.0 and fc.allow_zero_output:
        real_re = 0.0
    else:
        real_re = min(max(cmd_re, model.if_min), model.if_max)
    ifc_re = 0.0 if real_re == 0.0 else model.fc_current(real_re)
    real_re_arr = np.full(n, real_re)
    ifc_re_arr = np.full(n, ifc_re)
    fuel_re = ifc_re_arr * plan.duration
    delta_re = _storage_deltas(storage, real_re_arr, plan.i_load, plan.duration)

    threshold = controller.recharge_threshold
    full_level = controller.full_level
    recharging = controller.recharging
    cap = storage.capacity
    cur = storage.charge
    bled = storage.bled_charge
    deficit = storage.deficit_charge
    tank = fc.tank
    tank_cap = tank.capacity
    consumed = tank.consumed
    finite = math.isfinite(tank_cap)

    charges = np.empty(n + 1, dtype=float)
    charges[0] = cur
    mode = np.empty(n, dtype=bool)
    f_fo = fuel_follow.tolist()
    f_re = fuel_re.tolist()
    d_fo = delta_follow.tolist()
    d_re = delta_re.tolist()
    for k in range(n):
        if cap > 0:
            soc = cur / cap
            if soc < threshold:
                recharging = True
            elif soc >= full_level:
                recharging = False
        if recharging:
            fuel_k = f_re[k]
            delta = d_re[k]
        else:
            fuel_k = f_fo[k]
            delta = d_fo[k]
        if finite and fuel_k > tank_cap - consumed:
            return None  # scalar rerun raises the exact DepletedError
        consumed += fuel_k
        new = cur + delta
        if new > cap:
            bled += new - cap
            cur = cap
        elif new < 0.0:
            deficit += -new
            cur = 0.0
        else:
            cur = new
        charges[k + 1] = cur
        mode[k] = recharging

    i_f = np.where(mode, real_re_arr, real_follow)
    i_fc = np.where(mode, ifc_re_arr, ifc_follow)
    fuel = np.where(mode, fuel_re, fuel_follow)
    return _KernelRun(i_f, i_fc, fuel, charges, bled, deficit, recharging)


# -- result assembly ---------------------------------------------------------


def _assemble_result(
    manager: "PowerManager",
    plan: TraceArrays,
    run: _KernelRun,
    max_deficit_fraction: float,
) -> SimulationResult:
    """Reduce kernel arrays to a ``SimulationResult`` and commit end state.

    Every ledger is a *sequential* float reduction (seeded cumsum or a
    per-slot Python loop) so each total equals the scalar simulator's
    accumulated value bit for bit.  The manager is left in exactly the
    state ``SlotSimulator.run`` leaves it in -- including when the
    deficit guard fires, which the scalar raises only after the whole
    trace has integrated.
    """
    source = manager.source
    fc = source.fc
    storage = source.storage
    n = plan.n_segments
    n_slots = plan.n_slots

    load_seg = plan.i_load * plan.duration
    delivered_seg = run.i_f * plan.duration

    total_fuel = float(_running_sums(source.total_fuel, run.fuel)[-1])
    total_load = float(_running_sums(source.total_load_charge, load_seg)[-1])
    total_time = float(_running_sums(source.total_time, plan.duration)[-1])
    total_delivered = float(
        _running_sums(source.total_delivered_charge, delivered_seg)[-1]
    )
    # Equal starting ledgers accumulate identical sequences, so the
    # totals can be shared instead of re-summed (fresh managers always
    # start every ledger at 0.0 -- the common case).
    if source.total_time == 0.0:
        duration = total_time
    else:
        duration = float(_running_sums(0.0, plan.duration)[-1])
    if fc.tank.consumed == source.total_fuel:
        consumed = total_fuel
    else:
        consumed = float(_running_sums(fc.tank.consumed, run.fuel)[-1])

    bounds = plan.slot_bounds
    starts = bounds[:-1]
    ends = bounds[1:]
    astart = plan.active_start
    slot_fuel = np.zeros(n_slots)
    slot_load = np.zeros(n_slots)
    if n_slots and n:
        slot_index = np.repeat(np.arange(n_slots), ends - starts)
        # ufunc.at accumulates unbuffered, applying the adds in index
        # order -- each slot's sum is therefore built left to right
        # exactly like the scalar's per-slot += loop (elementwise
        # adds, never a pairwise reduction).  The property suite
        # checks this equality on randomized traces.
        np.add.at(slot_fuel, slot_index, run.fuel)
        np.add.at(slot_load, slot_index, load_seg)
    if n:
        # Idle phase is [start, astart), active is [astart, end); both
        # are non-empty by construction, but mirror the scalar's
        # "last executed segment, else 0.0" guards all the same.
        if_idle = np.where(astart > starts, run.i_f[np.maximum(astart - 1, 0)], 0.0)
        if_active = np.where(ends > astart, run.i_f[ends - 1], 0.0)
    else:
        if_idle = np.zeros(n_slots)
        if_active = np.zeros(n_slots)
    storage_end = run.charges[ends]

    n_sleeps = int(np.count_nonzero(plan.slept))
    n_aborted = int(np.count_nonzero(plan.aborted))
    slot_results = list(
        map(
            SlotResult._make,
            zip(
                range(n_slots),
                plan.slept.tolist(),
                plan.aborted.tolist(),
                slot_fuel.tolist(),
                slot_load.tolist(),
                if_idle.tolist(),
                if_active.tolist(),
                storage_end.tolist(),
            ),
        )
    )

    # Commit the manager end state before the deficit guard can raise,
    # mirroring the scalar path (which mutates throughout the run).
    if n:
        fc._i_f = float(run.i_f[-1])
    fc.tank._consumed = consumed
    storage._charge = float(run.charges[-1])
    storage.bled_charge = run.bled
    storage.deficit_charge = run.deficit
    source.total_fuel = total_fuel
    source.total_load_charge = total_load
    source.total_time = total_time
    source.total_delivered_charge = total_delivered
    if run.recharging is not None:
        manager.controller._recharging = run.recharging

    threshold = source.total_load_charge * max_deficit_fraction
    if storage.deficit_charge > threshold:
        raise SimulationError(
            f"{manager.name}: storage deficit "
            f"{storage.deficit_charge:.2f} A-s exceeds "
            f"{100 * max_deficit_fraction:.0f}% of load -- "
            "the source is undersized for this workload"
        )

    return SimulationResult(
        name=manager.name,
        fuel=total_fuel,
        load_charge=total_load,
        delivered_charge=total_delivered,
        duration=duration,
        bled=run.bled,
        deficit=run.deficit,
        n_slots=plan.n_slots,
        n_sleeps=n_sleeps,
        n_aborted_sleeps=n_aborted,
        wakeup_latency=n_sleeps * manager.device.t_wu,
        slots=slot_results,
        recorder=None,
    )


def _simulate_fast_planned(
    manager: "PowerManager",
    trace: "LoadTrace",
    plan: TraceArrays,
    max_deficit_fraction: float,
) -> SimulationResult | None:
    """Kernel + assembly for an already-compiled plan (no eligibility).

    Returns None when a finite fuel tank would deplete mid-run; the
    caller owns the scalar fallback (and any state restoration).
    """
    source = manager.source
    manager.controller.start_run(source.storage.charge, source.storage.capacity)
    if type(manager.controller) is ASAPDPMController:
        run = _run_asap(manager, plan)
    else:
        commands = _controller_commands(manager, plan, trace)
        run = _run_from_plan(manager, plan, commands)
    if run is None:
        return None
    return _assemble_result(manager, plan, run, max_deficit_fraction)


# -- public API --------------------------------------------------------------


def simulate_fast(
    manager: "PowerManager",
    trace: "LoadTrace",
    *,
    record: bool = False,
    max_deficit_fraction: float = 0.05,
    max_segment: float | None = None,
) -> SimulationResult:
    """Simulate ``trace`` under ``manager``: the vectorized drop-in.

    Returns a :class:`~repro.sim.slotsim.SimulationResult` equal (``==``,
    every field) to ``SlotSimulator(manager, ...).run(trace)`` and
    leaves the manager in the same end state.  Configurations the array
    kernel cannot represent -- adaptive controllers, non-reference
    plants, recording runs (see :func:`fast_path_ineligibility`) -- run
    the scalar simulator transparently: never a wrong answer, only a
    slower one.
    """
    if max_deficit_fraction < 0:
        raise SimulationError("max_deficit_fraction cannot be negative")
    if max_segment is not None and max_segment <= 0:
        raise SimulationError("max_segment must be positive")
    reason = fast_path_ineligibility(manager, record=record)
    if reason is not None:
        if OBS.enabled:
            OBS.metrics.counter("sim.route", path="scalar").inc()
            OBS.metrics.counter(
                "sim.fast_ineligible", reason=_reason_key(reason)
            ).inc()
        with OBS.span(
            "sim.simulate", manager=manager.name, route="scalar"
        ):
            return SlotSimulator(
                manager,
                record=record,
                max_deficit_fraction=max_deficit_fraction,
                max_segment=max_segment,
            ).run(trace)
    with OBS.span("sim.simulate", manager=manager.name, route="fast") as span:
        snapshot = None
        if math.isfinite(manager.source.fc.tank.capacity):
            # A finite tank can force a mid-run DepletedError that only
            # the scalar path reports with per-segment context; snapshot
            # the stateful pieces so the rerun sees untouched decisions.
            # (Default tanks are bottomless: zero overhead there.)
            snapshot = copy.deepcopy((manager.policy, manager.controller))
        decisions = replay_policy(manager.policy, trace)
        plan = plan_trace_arrays(
            manager.device,
            trace,
            decisions,
            max_segment=max_segment,
            # The lookahead columns are only read by the generic replay,
            # which derives them on demand; skipping them here keeps the
            # compile step off the critical path's profile.
            phase_context=False,
        )
        result = _simulate_fast_planned(manager, trace, plan, max_deficit_fraction)
        if result is not None:
            if OBS.enabled:
                OBS.metrics.counter("sim.route", path="fast").inc()
            return result
        if snapshot is not None:
            manager.policy, manager.controller = snapshot
        if OBS.enabled:
            span.set(route="scalar")
            OBS.metrics.counter("sim.route", path="scalar").inc()
            OBS.metrics.counter(
                "sim.fast_ineligible", reason="tank-depleted"
            ).inc()
        return SlotSimulator(
            manager,
            record=record,
            max_deficit_fraction=max_deficit_fraction,
            max_segment=max_segment,
        ).run(trace)


def _parse_policy_spec(spec) -> None:
    """Validate a ``simulate_batch`` policy spec; raises ``ConfigurationError``."""
    from ..scenario.spec import _POLICY_KINDS

    if not isinstance(spec, str):
        raise ConfigurationError(
            f"policy spec must be a string, got {type(spec).__name__}"
        )
    if spec.startswith("static:"):
        try:
            float(spec.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(
                f"bad static policy spec {spec!r}; expected 'static:<IF amps>'"
            ) from None
        return
    if spec not in _POLICY_KINDS:
        raise ConfigurationError(
            f"unknown policy {spec!r}; expected one of {_POLICY_KINDS} "
            "or 'static:<IF amps>'"
        )


def _policy_manager(scenario: "Scenario", spec: str) -> "PowerManager":
    """Build the scenario's manager with its policy swapped to ``spec``.

    ``spec`` is a registered policy kind (``conv-dpm`` / ``asap-dpm`` /
    ``fc-dpm``) or ``static:<IF>`` -- a fixed FC setting riding on the
    conv-dpm device policy.  The manager is renamed to the spec so batch
    results key on the policy, not the scenario.
    """
    from dataclasses import replace

    _parse_policy_spec(spec)
    if spec.startswith("static:"):
        i_f = float(spec.split(":", 1)[1])
        base = replace(scenario, policy=replace(scenario.policy, kind="conv-dpm"))
        mgr = base.build_manager()
        # StaticController validates the range (ConfigurationError if not).
        mgr.controller = StaticController(mgr.controller.model, i_f)
    else:
        mgr = replace(
            scenario, policy=replace(scenario.policy, kind=spec)
        ).build_manager()
    mgr.name = spec
    return mgr


def simulate_batch(
    scenario: "Scenario | str",
    seeds,
    policies=None,
    *,
    fast: bool = True,
    traces: dict | None = None,
    max_deficit_fraction: float = 0.05,
) -> dict[int, dict[str, SimulationResult]]:
    """Monte-Carlo sweep: every (seed, policy) run of one scenario.

    Parameters
    ----------
    scenario:
        A :class:`~repro.scenario.spec.Scenario` or a registered name.
    seeds:
        Trace seeds; must be non-empty.
    policies:
        Policy specs (see :func:`_policy_manager`); defaults to the
        scenario's own policy kind.
    fast:
        Route eligible runs through the array kernel (default).  The
        trace compilation is shared across a seed's eligible policies
        -- the device-side DPM decisions depend only on the trace and
        the shared predictor configuration, so the plan is computed
        once per seed.  ``fast=False`` is the scalar reference path
        (one ``SlotSimulator`` per run) used by the equivalence tests.
    traces:
        Optional pre-built ``{seed: LoadTrace}``; seeds not present are
        generated from the scenario.  Lets callers amortize trace
        synthesis (the dominant per-seed cost) across both paths.
    max_deficit_fraction:
        Deficit guard, as in :class:`~repro.sim.slotsim.SlotSimulator`.

    Returns ``{seed: {policy_spec: SimulationResult}}``.  Results are
    identical between ``fast=True`` and ``fast=False``.
    """
    from ..scenario import get_scenario

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    seed_list = [int(s) for s in seeds]
    if not seed_list:
        raise ConfigurationError("simulate_batch needs at least one seed")
    specs = list(policies) if policies is not None else [scenario.policy.kind]
    if not specs:
        raise ConfigurationError("simulate_batch needs at least one policy")
    for spec in specs:
        _parse_policy_spec(spec)

    results: dict[int, dict[str, SimulationResult]] = {}
    # Eligible managers are built once and reset() between seeds -- a
    # reset manager is state-identical to a fresh build (ledgers, tank,
    # storage level, policy/controller learning state), and rebuilding
    # the whole plant per (seed, policy) is pure overhead in a sweep.
    # Ineligible specs keep fresh builds: the scalar path mutates
    # recorder/history state the kernel never touches.
    cached: dict[str, tuple["PowerManager", float]] = {}
    with OBS.span(
        "sim.batch",
        scenario=scenario.name,
        n_seeds=len(seed_list),
        n_policies=len(specs),
    ):
        for seed in seed_list:
            trace = None if traces is None else traces.get(seed)
            if trace is None:
                trace = scenario.build_trace(seed)
            per_policy: dict[str, SimulationResult] = {}
            plan: TraceArrays | None = None
            for spec in specs:
                entry = cached.get(spec) if fast else None
                if entry is None:
                    mgr = _policy_manager(scenario, spec)
                else:
                    mgr, initial_charge = entry
                    mgr.reset(initial_charge)
                reason = fast_path_ineligibility(mgr) if fast else "fast=False"
                if reason is not None:
                    if OBS.enabled:
                        OBS.metrics.counter("sim.route", path="scalar").inc()
                        if fast:
                            OBS.metrics.counter(
                                "sim.fast_ineligible", reason=_reason_key(reason)
                            ).inc()
                    per_policy[mgr.name] = SlotSimulator(
                        mgr, max_deficit_fraction=max_deficit_fraction
                    ).run(trace)
                    continue
                if entry is None:
                    cached[spec] = (mgr, mgr.source.storage.charge)
                if plan is None:
                    # First eligible policy replays its (fresh) device-
                    # side policy to compile the plan; later eligible
                    # managers reuse it -- their own policy objects stay
                    # fresh, an internal detail batch results never
                    # observe.
                    plan = plan_trace_arrays(
                        mgr.device,
                        trace,
                        replay_policy(mgr.policy, trace),
                        phase_context=False,
                    )
                result = _simulate_fast_planned(
                    mgr, trace, plan, max_deficit_fraction
                )
                if result is None:
                    # Finite tank depleted mid-run: rerun a fresh manager
                    # on the scalar path for the exact DepletedError
                    # context.
                    if OBS.enabled:
                        OBS.metrics.counter("sim.route", path="scalar").inc()
                        OBS.metrics.counter(
                            "sim.fast_ineligible", reason="tank-depleted"
                        ).inc()
                    result = SlotSimulator(
                        _policy_manager(scenario, spec),
                        max_deficit_fraction=max_deficit_fraction,
                    ).run(trace)
                elif OBS.enabled:
                    OBS.metrics.counter("sim.route", path="fast").inc()
                per_policy[mgr.name] = result
            results[seed] = per_policy
    return results
