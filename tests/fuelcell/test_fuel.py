"""Fuel accounting tests: Gibbs model and tank."""

import pytest

from repro.errors import ConfigurationError, DepletedError, RangeError
from repro.fuelcell.fuel import FuelTank, GibbsFuelModel


class TestGibbsFuelModel:
    def test_gibbs_energy_proportional(self):
        m = GibbsFuelModel(zeta=37.5)
        assert m.gibbs_energy(10.0) == pytest.approx(375.0)

    def test_moles_h2(self):
        m = GibbsFuelModel(zeta=37.5)
        # 237.1 kJ of Gibbs energy = 1 mol H2 (HHV).
        charge = 237_100.0 / 37.5
        assert m.moles_h2(charge) == pytest.approx(1.0)

    def test_norm_liters(self):
        m = GibbsFuelModel(zeta=37.5)
        charge = 237_100.0 / 37.5
        assert m.norm_liters_h2(charge) == pytest.approx(22.414)

    def test_rejects_negative_charge(self):
        with pytest.raises(RangeError):
            GibbsFuelModel().gibbs_energy(-1.0)

    def test_rejects_bad_zeta(self):
        with pytest.raises(ConfigurationError):
            GibbsFuelModel(zeta=0.0)


class TestFuelTank:
    def test_bottomless_by_default(self):
        tank = FuelTank()
        tank.draw(1.3, 10_000)
        assert tank.consumed == pytest.approx(13_000)
        assert not tank.is_empty

    def test_draw_accumulates(self):
        tank = FuelTank(capacity=100.0)
        tank.draw(0.5, 20.0)
        tank.draw(0.5, 20.0)
        assert tank.consumed == pytest.approx(20.0)
        assert tank.remaining == pytest.approx(80.0)

    def test_strict_depletion_raises(self):
        tank = FuelTank(capacity=10.0)
        with pytest.raises(DepletedError):
            tank.draw(1.0, 11.0)

    def test_lenient_depletion_truncates(self):
        tank = FuelTank(capacity=10.0)
        got = tank.draw(1.0, 11.0, strict=False)
        assert got == pytest.approx(10.0)
        assert tank.is_empty

    def test_lifetime_at_constant_current(self):
        tank = FuelTank(capacity=130.0)
        # Conv-DPM draws Ifc = 1.3 A constantly -> 100 s of life.
        assert tank.lifetime_at(1.3) == pytest.approx(100.0)

    def test_lifetime_infinite_at_zero(self):
        assert FuelTank(capacity=5.0).lifetime_at(0.0) == float("inf")

    def test_reset(self):
        tank = FuelTank(capacity=10.0)
        tank.draw(1.0, 5.0)
        tank.reset()
        assert tank.consumed == 0.0

    def test_rejects_negative_inputs(self):
        tank = FuelTank(capacity=10.0)
        with pytest.raises(RangeError):
            tank.draw(-1.0, 1.0)
        with pytest.raises(RangeError):
            tank.draw(1.0, -1.0)
        with pytest.raises(RangeError):
            tank.lifetime_at(-1.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            FuelTank(capacity=0.0)

    def test_physical_reporting(self):
        tank = FuelTank(capacity=1e9, model=GibbsFuelModel(zeta=37.5))
        tank.draw(237_100.0 / 37.5, 1.0)
        assert tank.consumed_moles_h2() == pytest.approx(1.0)
        assert tank.consumed_norm_liters_h2() == pytest.approx(22.414)

    def test_lifetime_inverse_proportionality(self):
        # The paper's core equivalence: lifetime ratio = inverse fuel-rate
        # ratio for a fixed tank.
        tank = FuelTank(capacity=100.0)
        assert tank.lifetime_at(0.4) / tank.lifetime_at(0.8) == pytest.approx(2.0)
