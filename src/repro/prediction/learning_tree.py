"""Adaptive learning-tree predictor (paper ref [3], Chung et al.).

Chung, Benini & De Micheli's ICCAD'99 predictor quantizes recent idle
periods into symbols and walks a tree keyed by the last ``depth``
symbols; each leaf keeps per-symbol confidence counters that are
rewarded or penalized as predictions succeed or fail.  The prediction is
the representative length of the most confident next symbol.

This captures workloads whose idle lengths follow *patterns* (e.g. the
scene structure of an MPEG trace) that moment-based filters miss.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ConfigurationError
from .base import Predictor


class LearningTreePredictor(Predictor):
    """Pattern-matching predictor over quantized period lengths.

    Parameters
    ----------
    bin_edges:
        Strictly increasing quantization edges (s).  A length in
        ``(edges[j-1], edges[j]]`` maps to symbol ``j``; values above the
        last edge map to the final symbol.
    depth:
        Context length (number of past symbols keyed on).
    reward, penalty:
        Confidence increments for correct / incorrect leaf predictions.
    initial:
        Prediction before any history exists.
    """

    def __init__(
        self,
        bin_edges,
        depth: int = 2,
        reward: float = 1.0,
        penalty: float = 0.5,
        initial: float = 0.0,
    ) -> None:
        super().__init__()
        edges = np.asarray(bin_edges, dtype=float)
        if edges.ndim != 1 or edges.size < 1:
            raise ConfigurationError("need at least one bin edge")
        if np.any(np.diff(edges) <= 0):
            raise ConfigurationError("bin edges must be strictly increasing")
        if np.any(edges <= 0):
            raise ConfigurationError("bin edges must be positive")
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if reward <= 0 or penalty < 0:
            raise ConfigurationError("reward must be > 0 and penalty >= 0")
        if initial < 0:
            raise ConfigurationError("initial estimate cannot be negative")
        self.edges = edges
        self.n_symbols = edges.size + 1
        self.depth = depth
        self.reward = reward
        self.penalty = penalty
        self.initial = initial
        # context tuple -> np.ndarray of per-symbol confidences
        self._leaves: dict[tuple[int, ...], np.ndarray] = {}
        self._context: deque[int] = deque(maxlen=depth)
        self._pending: tuple[tuple[int, ...], int] | None = None
        # Representative value per symbol: running mean of members.
        self._symbol_sum = np.zeros(self.n_symbols)
        self._symbol_count = np.zeros(self.n_symbols, dtype=int)

    # -- quantization ---------------------------------------------------------

    def symbol_of(self, length: float) -> int:
        """Quantization symbol of a period length."""
        return int(np.searchsorted(self.edges, length, side="left"))

    def representative(self, symbol: int) -> float:
        """Representative length (s) for a symbol.

        The running mean of observed members, or the bin midpoint (edge
        value for the open last bin) when empty.
        """
        if not 0 <= symbol < self.n_symbols:
            raise ConfigurationError(f"symbol {symbol} out of range")
        if self._symbol_count[symbol] > 0:
            return float(self._symbol_sum[symbol] / self._symbol_count[symbol])
        if symbol == 0:
            return float(self.edges[0] / 2)
        if symbol >= self.edges.size:
            return float(self.edges[-1])
        return float((self.edges[symbol - 1] + self.edges[symbol]) / 2)

    # -- prediction -----------------------------------------------------------

    def predict(self) -> float:
        if len(self._context) < self.depth:
            return self._remember(self.initial)
        key = tuple(self._context)
        leaf = self._leaves.get(key)
        if leaf is None or not leaf.any():
            # Unseen context: global most common symbol, else initial.
            if self._symbol_count.sum() == 0:
                return self._remember(self.initial)
            best = int(np.argmax(self._symbol_count))
            self._pending = (key, best)
            return self._remember(self.representative(best))
        best = int(np.argmax(leaf))
        self._pending = (key, best)
        return self._remember(self.representative(best))

    def _update(self, actual: float) -> None:
        symbol = self.symbol_of(actual)
        self._symbol_sum[symbol] += actual
        self._symbol_count[symbol] += 1
        if self._pending is not None:
            key, predicted = self._pending
            leaf = self._leaves.setdefault(key, np.zeros(self.n_symbols))
            if predicted == symbol:
                leaf[symbol] += self.reward
            else:
                leaf[predicted] = max(leaf[predicted] - self.penalty, 0.0)
                leaf[symbol] += self.reward / 2
            self._pending = None
        elif len(self._context) == self.depth:
            # No prediction was scored, still learn the association.
            key = tuple(self._context)
            leaf = self._leaves.setdefault(key, np.zeros(self.n_symbols))
            leaf[symbol] += self.reward / 2
        self._context.append(symbol)

    def reset(self) -> None:
        super().reset()
        self._leaves.clear()
        self._context.clear()
        self._pending = None
        self._symbol_sum[:] = 0
        self._symbol_count[:] = 0

    @property
    def n_leaves(self) -> int:
        """Number of distinct contexts learned."""
        return len(self._leaves)
