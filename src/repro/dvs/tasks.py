"""Frame-based real-time task model for the DVS substrate.

The prior-work DVS papers (refs [10, 11]) target frame-structured
multimedia workloads: each frame carries a cycle demand and must finish
by the frame deadline; slack may be spent running slower.  This module
provides the frame container plus generators mirroring the workload
families in :mod:`repro.workload.synthetic`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, TraceError


@dataclass(frozen=True)
class Frame:
    """One frame of work.

    Attributes
    ----------
    cycles:
        Cycle demand in giga-cycles (so time = cycles / GHz).
    deadline:
        Time available for the frame (s); also the frame period.
    """

    cycles: float
    deadline: float

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise TraceError("frame cycles must be positive")
        if self.deadline <= 0:
            raise TraceError("frame deadline must be positive")

    def utilization(self, f_max: float) -> float:
        """Fraction of the period the frame needs at frequency ``f_max``."""
        if f_max <= 0:
            raise TraceError("f_max must be positive")
        return self.cycles / f_max / self.deadline


class FrameTaskSet(Sequence[Frame]):
    """An immutable sequence of frames with feasibility checks."""

    def __init__(self, frames: Iterable[Frame], name: str = "frames") -> None:
        self._frames = tuple(frames)
        if not self._frames:
            raise TraceError("a task set needs at least one frame")
        self.name = name

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return FrameTaskSet(self._frames[index], name=self.name)
        return self._frames[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FrameTaskSet) and self._frames == other._frames

    def __hash__(self) -> int:
        return hash(self._frames)

    @property
    def duration(self) -> float:
        """Total schedule length (sum of deadlines, s)."""
        return sum(f.deadline for f in self._frames)

    def max_utilization(self, f_max: float) -> float:
        """Worst single-frame utilization at ``f_max``."""
        return max(f.utilization(f_max) for f in self._frames)

    def is_feasible(self, f_max: float) -> bool:
        """True if every frame fits its deadline at full speed."""
        return self.max_utilization(f_max) <= 1.0


def mpeg_frames(
    n_frames: int = 200,
    deadline: float = 1 / 30.0 * 15,
    mean_utilization: float = 0.45,
    f_max: float = 1.0,
    spread: float = 0.35,
    seed: int = 2006,
    name: str = "mpeg-gops",
) -> FrameTaskSet:
    """GOP-granularity MPEG encoding frames (the prior work's workload).

    Cycle demands follow the same scene-complexity idea as the DPM
    trace generator: lognormal variation around a mean utilization.
    """
    if n_frames < 1:
        raise ConfigurationError("need at least one frame")
    if not 0 < mean_utilization <= 1:
        raise ConfigurationError("mean utilization must be in (0, 1]")
    if not 0 <= spread < 1:
        raise ConfigurationError("spread must be in [0, 1)")
    rng = np.random.default_rng(seed)
    sigma = spread
    frames = []
    for _ in range(n_frames):
        u = mean_utilization * float(np.exp(rng.normal(0.0, sigma)))
        u = min(max(u, 0.05), 1.0)
        frames.append(Frame(cycles=u * f_max * deadline, deadline=deadline))
    return FrameTaskSet(frames, name=name)


def constant_frames(
    n_frames: int,
    utilization: float,
    deadline: float = 0.5,
    f_max: float = 1.0,
    name: str = "constant",
) -> FrameTaskSet:
    """Identical frames -- the analytical sanity workload."""
    if not 0 < utilization <= 1:
        raise ConfigurationError("utilization must be in (0, 1]")
    frame = Frame(cycles=utilization * f_max * deadline, deadline=deadline)
    return FrameTaskSet([frame] * n_frames, name=name)
