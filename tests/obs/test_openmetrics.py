"""OpenMetrics exposition: sanitization, rendering, parsing, round-trip."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    escape_label_value,
    parse_openmetrics,
    render_openmetrics,
    sanitize_label_name,
    sanitize_metric_name,
    split_metric_key,
    unescape_label_value,
    validate_exposition,
    write_openmetrics,
)


class TestSanitization:
    def test_dots_and_dashes_fold_to_underscores(self):
        assert sanitize_metric_name("sim.batch-route") == "sim_batch_route"

    def test_colons_survive_in_metric_names(self):
        assert sanitize_metric_name("ns:metric") == "ns:metric"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("2fast") == "_2fast"
        assert sanitize_label_name("2x") == "_2x"

    def test_empty_name_becomes_underscore(self):
        assert sanitize_metric_name("") == "_"

    def test_label_names_reject_colons(self):
        assert sanitize_label_name("a:b") == "a_b"

    def test_label_value_escaping_round_trips(self):
        for raw in ['pl"ain', "back\\slash", "new\nline", 'all\\"\n三']:
            assert unescape_label_value(escape_label_value(raw)) == raw


class TestSplitMetricKey:
    def test_bare_name(self):
        assert split_metric_key("sim.route") == ("sim.route", {})

    def test_labelled_key(self):
        assert split_metric_key("sim.route{path=fast,mode=2d}") == (
            "sim.route",
            {"path": "fast", "mode": "2d"},
        )


class TestRendering:
    def test_counter_sample_ends_in_total(self):
        reg = MetricsRegistry()
        reg.counter("sim.route", path="fast").inc(3)
        text = render_openmetrics(reg.snapshot())
        assert "# TYPE sim_route counter" in text
        assert 'sim_route_total{path="fast"} 3' in text

    def test_gauge_renders_plain(self):
        reg = MetricsRegistry()
        reg.gauge("runtime.parallel.inflight_chunks").set(7)
        text = render_openmetrics(reg.snapshot())
        assert "# TYPE runtime_parallel_inflight_chunks gauge" in text
        assert "runtime_parallel_inflight_chunks 7" in text

    def test_histogram_maps_to_summary_with_quantiles(self):
        reg = MetricsRegistry()
        for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
            reg.histogram("lat").observe(v)
        text = render_openmetrics(reg.snapshot())
        assert "# TYPE lat summary" in text
        assert 'lat{quantile="0.5"} 3' in text
        assert 'lat{quantile="0.95"} 100' in text
        assert "lat_count 5" in text
        assert "lat_sum 110" in text

    def test_document_ends_with_eof_and_newline(self):
        text = render_openmetrics({})
        assert text.endswith("# EOF\n")

    def test_type_collision_disambiguated_by_suffix(self):
        snapshot = {
            "a.b": {"type": "counter", "value": 1.0},
            "a_b": {"type": "gauge", "value": 2.0},
        }
        text = render_openmetrics(snapshot)
        # Both families exist, with distinct names and no re-declaration.
        type_lines = [ln for ln in text.splitlines() if ln.startswith("# TYPE")]
        declared = {ln.split()[2] for ln in type_lines}
        assert len(declared) == len(type_lines) == 2
        assert not validate_exposition(text)

    def test_non_finite_values_spelled_per_spec(self):
        snapshot = {
            "g1": {"type": "gauge", "value": math.inf},
            "g2": {"type": "gauge", "value": -math.inf},
            "g3": {"type": "gauge", "value": math.nan},
        }
        text = render_openmetrics(snapshot)
        assert "g1 +Inf" in text
        assert "g2 -Inf" in text
        assert "g3 NaN" in text


class TestRoundTrip:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("sim.route", path="fast").inc(12)
        reg.counter("sim.route", path="scalar").inc(2)
        reg.counter("exp.tasks_done", kind="scenario").inc(40)
        reg.gauge("runtime.parallel.inflight_chunks").set(3)
        for v in [0.5, 1.5, 2.5]:
            reg.histogram("runtime.parallel.chunk_seconds").observe(v)
        return reg

    def test_render_parse_recovers_every_value(self):
        snapshot = self._registry().snapshot()
        families, samples = parse_openmetrics(render_openmetrics(snapshot))
        by_key = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in samples
        }
        assert by_key[("sim_route_total", (("path", "fast"),))] == 12
        assert by_key[("sim_route_total", (("path", "scalar"),))] == 2
        assert by_key[("exp_tasks_done_total", (("kind", "scenario"),))] == 40
        assert by_key[("runtime_parallel_inflight_chunks", ())] == 3
        assert by_key[("runtime_parallel_chunk_seconds_count", ())] == 3
        assert by_key[("runtime_parallel_chunk_seconds_sum", ())] == 4.5
        assert (
            by_key[
                ("runtime_parallel_chunk_seconds", (("quantile", "0.5"),))
            ]
            == 1.5
        )
        assert families["sim_route"] == "counter"
        assert families["runtime_parallel_chunk_seconds"] == "summary"

    def test_escaped_label_values_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("m", why='quo"te\nnl').inc()
        _, samples = parse_openmetrics(render_openmetrics(reg.snapshot()))
        assert samples[0][1] == {"why": 'quo"te\nnl'}

    def test_rendered_exposition_validates_clean(self):
        text = render_openmetrics(self._registry().snapshot())
        assert validate_exposition(text) == []


class TestValidation:
    def test_missing_eof_flagged(self):
        assert any(
            "# EOF" in p for p in validate_exposition("m 1\n")
        )

    def test_counter_without_total_suffix_flagged(self):
        text = "# TYPE m counter\nm 1\n# EOF\n"
        assert any("_total" in p for p in validate_exposition(text))

    def test_undeclared_family_flagged(self):
        text = "m_total 1\n# EOF\n"
        assert any("family" in p for p in validate_exposition(text))

    def test_quantile_on_non_summary_flagged(self):
        text = '# TYPE m gauge\nm{quantile="0.5"} 1\n# EOF\n'
        assert any("quantile" in p for p in validate_exposition(text))

    def test_unparsable_line_flagged(self):
        text = "# TYPE m gauge\nm one\n# EOF\n"
        assert validate_exposition(text)

    def test_negative_counter_flagged(self):
        text = "# TYPE m counter\nm_total -1\n# EOF\n"
        assert any("negative" in p for p in validate_exposition(text))


class TestAtomicWrite:
    def test_write_then_read_back(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc(9)
        path = write_openmetrics(tmp_path / "metrics.prom", reg.snapshot())
        text = path.read_text()
        assert "hits_total 9" in text
        assert validate_exposition(text) == []

    def test_no_temp_litter_after_write(self, tmp_path):
        write_openmetrics(tmp_path / "metrics.prom", {})
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]

    def test_overwrite_replaces_whole_document(self, tmp_path):
        target = tmp_path / "metrics.prom"
        reg = MetricsRegistry()
        reg.counter("a").inc()
        write_openmetrics(target, reg.snapshot())
        reg.reset()
        reg.counter("b").inc()
        write_openmetrics(target, reg.snapshot())
        text = target.read_text()
        assert "b_total" in text and "a_total" not in text

    def test_unwritable_parent_raises_oserror(self, tmp_path):
        # A *file* where the parent directory should be fails mkstemp
        # with ENOTDIR on any platform (and regardless of privileges).
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(OSError):
            write_openmetrics(blocker / "metrics.prom", {})
