"""Power-electronics substrate: DC-DC converters, charge storage, hybrid source."""

from .converter import (
    ConverterModel,
    IdealConverter,
    PWMConverter,
    PFMConverter,
    PWMPFMConverter,
)
from .storage import ChargeStorage, SuperCapacitor, LiIonBattery, IdealStorage
from .hybrid import HybridPowerSource, HybridStep

__all__ = [
    "ConverterModel",
    "IdealConverter",
    "PWMConverter",
    "PFMConverter",
    "PWMPFMConverter",
    "ChargeStorage",
    "SuperCapacitor",
    "LiIonBattery",
    "IdealStorage",
    "HybridPowerSource",
    "HybridStep",
]
