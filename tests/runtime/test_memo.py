"""Unit tests for the solver memoization layer."""

import dataclasses

import pytest

import repro.runtime.memo as memo_mod
from repro.core.optimizer import solve_slot
from repro.core.setting import SlotProblem
from repro.fuelcell.efficiency import (
    ComposedSystemEfficiency,
    ConstantSystemEfficiency,
    LinearSystemEfficiency,
)
from repro.obs import observing
from repro.runtime.memo import (
    SOLVER_CACHE_MAX,
    clear_solver_cache,
    set_solver_cache_max,
    solve_slot_memo,
    solver_cache_max,
    solver_cache_size,
    solver_cache_stats,
)

PROBLEM = SlotProblem(
    t_idle=12.0, t_active=3.0, i_idle=0.2, i_active=1.22,
    c_ini=3.0, c_end=3.0, c_max=6.0, sleeping=True,
    t_wu=0.5, t_pd=0.5, i_wu=0.4, i_pd=0.4,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    cap = solver_cache_max()
    clear_solver_cache()
    yield
    clear_solver_cache()
    set_solver_cache_max(cap)


def _problems(n):
    """``n`` distinct cacheable problems."""
    return [dataclasses.replace(PROBLEM, t_idle=10.0 + k) for k in range(n)]


class TestEquivalence:
    def test_identical_to_direct_solve(self):
        model = LinearSystemEfficiency()
        assert solve_slot_memo(PROBLEM, model) == solve_slot(PROBLEM, model)

    def test_hit_returns_same_object(self):
        model = LinearSystemEfficiency()
        first = solve_slot_memo(PROBLEM, model)
        assert solve_slot_memo(PROBLEM, model) is first

    def test_shared_across_equal_model_instances(self):
        a = LinearSystemEfficiency()
        b = LinearSystemEfficiency()
        solve_slot_memo(PROBLEM, a)
        before = solver_cache_stats().hits
        solve_slot_memo(PROBLEM, b)
        assert solver_cache_stats().hits == before + 1

    def test_distinct_models_do_not_collide(self):
        lo = LinearSystemEfficiency(beta=0.0)
        hi = LinearSystemEfficiency(beta=0.13)
        assert solve_slot_memo(PROBLEM, lo) != solve_slot_memo(PROBLEM, hi)

    def test_distinct_problems_do_not_collide(self):
        model = LinearSystemEfficiency()
        other = SlotProblem(
            t_idle=11.0, t_active=3.0, i_idle=0.2, i_active=1.22,
            c_ini=3.0, c_end=3.0, c_max=6.0,
        )
        solve_slot_memo(PROBLEM, model)
        assert solve_slot_memo(other, model) == solve_slot(other, model)
        assert solver_cache_size() == 2


class TestCacheTokens:
    def test_linear_token_is_value_semantics(self):
        assert (
            LinearSystemEfficiency().cache_token
            == LinearSystemEfficiency().cache_token
        )
        assert (
            LinearSystemEfficiency(beta=0.1).cache_token
            != LinearSystemEfficiency(beta=0.2).cache_token
        )

    def test_constant_model_has_token(self):
        assert ConstantSystemEfficiency().cache_token is not None

    def test_composed_model_not_cacheable(self):
        model = ComposedSystemEfficiency()
        assert model.cache_token is None
        before = solver_cache_size()
        result = solve_slot_memo(PROBLEM, model)
        assert solver_cache_size() == before
        assert solver_cache_stats().uncacheable >= 1
        assert result == solve_slot(PROBLEM, model)


class TestStats:
    def test_counters(self):
        model = LinearSystemEfficiency()
        solve_slot_memo(PROBLEM, model)
        solve_slot_memo(PROBLEM, model)
        solve_slot_memo(PROBLEM, model)
        stats = solver_cache_stats()
        assert stats.misses == 1
        assert stats.hits == 2
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_clear_resets(self):
        model = LinearSystemEfficiency()
        solve_slot_memo(PROBLEM, model)
        clear_solver_cache()
        assert solver_cache_size() == 0
        assert solver_cache_stats().hits == 0
        assert solver_cache_stats().misses == 0

    def test_empty_hit_rate(self):
        assert solver_cache_stats().hit_rate == 0.0

    def test_clear_resets_evictions(self):
        set_solver_cache_max(2)
        model = LinearSystemEfficiency()
        for p in _problems(3):
            solve_slot_memo(p, model)
        assert solver_cache_stats().evictions == 1
        clear_solver_cache()
        assert solver_cache_stats().evictions == 0


class TestLRUBound:
    def test_default_cap(self):
        assert SOLVER_CACHE_MAX == 1 << 17
        assert solver_cache_max() == SOLVER_CACHE_MAX

    def test_size_never_exceeds_cap(self):
        set_solver_cache_max(4)
        model = LinearSystemEfficiency()
        for p in _problems(10):
            solve_slot_memo(p, model)
        assert solver_cache_size() == 4
        assert solver_cache_stats().evictions == 6

    def test_evicts_least_recently_used(self):
        set_solver_cache_max(2)
        model = LinearSystemEfficiency()
        a, b, c = _problems(3)
        solve_slot_memo(a, model)
        solve_slot_memo(b, model)
        solve_slot_memo(a, model)  # refresh a: b is now LRU
        solve_slot_memo(c, model)  # evicts b
        before = solver_cache_stats().misses
        solve_slot_memo(a, model)
        assert solver_cache_stats().misses == before  # a survived
        solve_slot_memo(b, model)
        assert solver_cache_stats().misses == before + 1  # b was evicted

    def test_set_cap_evicts_down_immediately(self):
        model = LinearSystemEfficiency()
        for p in _problems(6):
            solve_slot_memo(p, model)
        assert solver_cache_size() == 6
        set_solver_cache_max(2)
        assert solver_cache_size() == 2
        assert solver_cache_stats().evictions == 4

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            set_solver_cache_max(0)
        with pytest.raises(ValueError):
            set_solver_cache_max(-5)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("FCDPM_SOLVER_CACHE_MAX", "7")
        assert memo_mod._env_cache_max() == 7
        monkeypatch.setenv("FCDPM_SOLVER_CACHE_MAX", "not-a-number")
        assert memo_mod._env_cache_max() == SOLVER_CACHE_MAX
        monkeypatch.setenv("FCDPM_SOLVER_CACHE_MAX", "-3")
        assert memo_mod._env_cache_max() == SOLVER_CACHE_MAX
        monkeypatch.delenv("FCDPM_SOLVER_CACHE_MAX")
        assert memo_mod._env_cache_max() == SOLVER_CACHE_MAX


class TestObsMetrics:
    def test_eviction_counter_and_hit_ratio_gauge(self):
        set_solver_cache_max(1)
        model = LinearSystemEfficiency()
        a, b = _problems(2)
        with observing() as obs:
            solve_slot_memo(a, model)  # miss
            solve_slot_memo(a, model)  # hit
            solve_slot_memo(b, model)  # miss + eviction
            snapshot = obs.metrics.snapshot()
        assert snapshot["runtime.memo.hits"]["value"] == 1
        assert snapshot["runtime.memo.misses"]["value"] == 2
        assert snapshot["runtime.memo.evictions"]["value"] == 1
        assert snapshot["runtime.memo.hit_ratio"]["value"] == pytest.approx(1 / 3)
