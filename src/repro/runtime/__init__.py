"""Experiment runtime: parallel dispatch, memoization, result caching.

The paper's experiments are embarrassingly parallel (independent seeds,
independent sweep points) and hammer a handful of closed-form kernels
(the Eq. 4 fuel map, the Section-3.3 slot solver) with repeated inputs.
This subsystem provides the three layers that turn the serial
reproduction into a scalable experiment engine:

:mod:`repro.runtime.parallel`
    :class:`ParallelMap` -- ordered, chunked fan-out over a
    ``ProcessPoolExecutor`` with a graceful serial fallback and
    per-task timing statistics.
:mod:`repro.runtime.memo`
    In-memory memoization of the hot closed-form paths: a keyed cache
    for :func:`repro.core.optimizer.solve_slot` and an
    ``functools.lru_cache`` behind the linear fuel map.
:mod:`repro.runtime.cache`
    A small on-disk result cache keyed by a stable hash of
    (experiment parameters, code fingerprint), so CLI subcommands and
    benchmarks can skip already-computed experiments.

Everything is stdlib-only and deterministic: parallel execution
preserves result ordering and is bit-identical to serial.
"""

from .cache import CacheStats, ResultCache, cache_key, code_fingerprint
from .memo import (
    clear_solver_cache,
    solve_slot_memo,
    solver_cache_stats,
)
from .parallel import BrokenPoolError, MapStats, ParallelMap, resolve_workers

__all__ = [
    "BrokenPoolError",
    "CacheStats",
    "MapStats",
    "ParallelMap",
    "ResultCache",
    "cache_key",
    "clear_solver_cache",
    "code_fingerprint",
    "resolve_workers",
    "solve_slot_memo",
    "solver_cache_stats",
]
