"""Documentation health tests: the docs must track the code."""

import pathlib
import re

import pytest

import repro

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocFiles:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/theory.md"]
    )
    def test_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 500

    def test_readme_quickstart_runs(self):
        """Execute the README's quickstart code block verbatim."""
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102 - our own documentation
        solution = namespace["solution"]
        assert solution.fuel == pytest.approx(13.45, abs=0.01)

    def test_design_lists_every_subpackage(self):
        text = (ROOT / "DESIGN.md").read_text()
        src = ROOT / "src" / "repro"
        for package in sorted(p.name for p in src.iterdir() if p.is_dir()):
            if package == "__pycache__":
                continue
            assert package in text, f"DESIGN.md does not mention {package}/"

    def test_experiments_covers_all_tables_and_figures(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for marker in ("Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6",
                       "Fig. 7", "Table 2", "Table 3"):
            assert marker in text, marker

    def test_version_consistent(self):
        pyproject = (ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject


class TestDocstrings:
    def test_every_public_module_has_a_docstring(self):
        import importlib
        import pkgutil

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_api_objects_documented(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, undocumented
