"""Terminal rendering: text tables and ASCII plots for the bench harness."""

from __future__ import annotations

import numpy as np

from ..errors import RangeError


def format_table(rows: list[list[str]], title: str = "") -> str:
    """Render rows (first row = header) as an aligned text table."""
    if not rows:
        raise RangeError("need at least a header row")
    widths = [max(len(str(r[c])) for r in rows) for c in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(v).ljust(w) for v, w in zip(rows[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows[1:]:
        lines.append(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs, ys, max_points: int = 12) -> str:
    """Compact one-line-per-point rendering of a data series."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    n = min(xs.size, ys.size)
    idx = np.linspace(0, n - 1, min(max_points, n)).astype(int)
    pts = ", ".join(f"({xs[i]:.3g}, {ys[i]:.3g})" for i in idx)
    return f"{name}: {pts}"


def ascii_plot(
    xs,
    ys,
    width: int = 72,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one series as a crude ASCII scatter/line chart.

    Good enough to eyeball the Fig. 2/3/7 shapes in a terminal; the raw
    arrays remain the real deliverable.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size or xs.size < 2:
        raise RangeError("need matching series with at least 2 points")
    x0, x1 = float(xs.min()), float(xs.max())
    y0, y1 = float(ys.min()), float(ys.max())
    if x1 == x0 or y1 == y0:
        y1 = y0 + 1.0 if y1 == y0 else y1
        x1 = x0 + 1.0 if x1 == x0 else x1
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x0) / (x1 - x0) * (width - 1))
        row = int((y - y0) / (y1 - y0) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y1:10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y0:10.3g} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x0:<10.3g}" + " " * max(width - 20, 0) + f"{x1:>10.3g}"
    )
    if y_label:
        lines.append(f"  [{y_label}]")
    return "\n".join(lines)
