"""Byte-identity of the thin analysis clients vs pre-refactor goldens.

The four ablation sweeps, the seed-stability study and the full report
were re-plumbed through the experiment orchestration layer
(:mod:`repro.exp`).  These tests pin their outputs ``==``-equal to
values captured from the direct (pre-refactor) implementations --
float-exact, not approx.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.sweep import (
    efficiency_slope_sweep,
    predictor_sweep,
    recharge_threshold_sweep,
    storage_capacity_sweep,
)

GOLDENS = Path(__file__).parent.parent / "goldens"


@pytest.fixture(scope="module")
def sweeps_golden():
    return json.loads((GOLDENS / "sweeps_golden.json").read_text())


class TestSweepGoldens:
    def test_storage_capacity_sweep(self, sweeps_golden):
        result = storage_capacity_sweep()
        encoded = {
            repr(cap): {policy: value.hex() for policy, value in row.items()}
            for cap, row in result.items()
        }
        assert encoded == sweeps_golden["storage_capacity_sweep"]

    def test_efficiency_slope_sweep(self, sweeps_golden):
        result = efficiency_slope_sweep()
        encoded = {repr(beta): value.hex() for beta, value in result.items()}
        assert encoded == sweeps_golden["efficiency_slope_sweep"]

    def test_predictor_sweep(self, sweeps_golden):
        result = predictor_sweep()
        encoded = {name: value.hex() for name, value in result.items()}
        assert encoded == sweeps_golden["predictor_sweep"]

    def test_recharge_threshold_sweep(self, sweeps_golden):
        result = recharge_threshold_sweep()
        encoded = {repr(th): value.hex() for th, value in result.items()}
        assert encoded == sweeps_golden["recharge_threshold_sweep"]

    def test_workers_do_not_change_bytes(self, sweeps_golden):
        result = recharge_threshold_sweep(workers=2)
        encoded = {repr(th): value.hex() for th, value in result.items()}
        assert encoded == sweeps_golden["recharge_threshold_sweep"]


class TestSeedStudyGolden:
    def test_seed_study_equals_run_seeds(self):
        from repro.sim.montecarlo import run_seeds, seed_study, table2_metrics

        assert seed_study("table2-metrics", range(2)) == run_seeds(
            table2_metrics, range(2)
        )


class TestFullReportGolden:
    def test_report_text_is_byte_identical(self):
        from repro.analysis.experiments import full_report

        golden = (GOLDENS / "full_report_seed2007_n2.txt").read_text()
        assert full_report(seed=2007, n_seeds=2) == golden
