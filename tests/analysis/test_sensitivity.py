"""Parameter-sensitivity analysis tests."""

import pytest

from repro.analysis.sensitivity import (
    KNOBS,
    sensitivity_analysis,
    tornado_ranking,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def analysis():
    return sensitivity_analysis(relative=0.2)


class TestAnalysis:
    def test_covers_all_knobs(self, analysis):
        assert set(analysis) == set(KNOBS)

    def test_three_points_per_knob(self, analysis):
        for points in analysis.values():
            assert [p.factor for p in points] == [0.8, 1.0, 1.2]

    def test_nominal_consistent_across_knobs(self, analysis):
        nominals = {points[1].fc_normalized for points in analysis.values()}
        assert len(nominals) == 1

    def test_beta_increases_saving(self, analysis):
        low, _, high = analysis["beta"]
        assert high.fc_saving_vs_asap > low.fc_saving_vs_asap

    def test_capacity_decreases_fuel(self, analysis):
        low, _, high = analysis["storage_capacity"]
        assert high.fc_normalized <= low.fc_normalized + 1e-9

    def test_sleep_power_increases_fuel(self, analysis):
        low, _, high = analysis["p_sleep"]
        assert high.fc_normalized > low.fc_normalized

    def test_longer_idles_reduce_normalized_fuel(self, analysis):
        # More idle time lowers the average load relative to Conv-DPM's
        # fixed burn.
        low, _, high = analysis["idle_scale"]
        assert high.fc_normalized < low.fc_normalized

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(knobs=["nonsense"])

    def test_bad_relative_rejected(self):
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(relative=0.0)


class TestTornado:
    def test_ranking_sorted_descending(self, analysis):
        ranking = tornado_ranking(analysis)
        swings = [s for _, s in ranking]
        assert swings == sorted(swings, reverse=True)

    def test_rho_is_second_order(self, analysis):
        # The prediction factor barely matters (the paper's robustness).
        ranking = dict(tornado_ranking(analysis))
        assert ranking["rho"] < 0.02
