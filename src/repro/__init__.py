"""repro: fuel-cell-aware dynamic power management (FC-DPM).

A complete, from-scratch reproduction of

    Jianli Zhuo, Chaitali Chakrabarti, Kyungsoo Lee, Naehyuck Chang,
    "Dynamic Power Management with Hybrid Power Sources", DAC 2007.

The package provides the fuel-cell hybrid power source substrate
(:mod:`repro.fuelcell`, :mod:`repro.power`), embedded-device and
workload models (:mod:`repro.devices`, :mod:`repro.workload`), DPM
policies and predictors (:mod:`repro.dpm`, :mod:`repro.prediction`),
the paper's optimization framework and FC-DPM algorithm
(:mod:`repro.core`), simulators (:mod:`repro.sim`), declarative
experiment scenarios (:mod:`repro.scenario`) and experiment
regeneration (:mod:`repro.analysis`).

Quickstart::

    from repro import table2
    result = table2()
    print(result.normalized)   # {'conv-dpm': 1.0, 'asap-dpm': ~0.40, ...}
"""

from .config import PAPER, PaperConstants, FCSystemConstants
from .errors import ReproError
from .fuelcell import (
    FCStack,
    FCSystem,
    FuelTank,
    LinearSystemEfficiency,
    ConstantSystemEfficiency,
    ComposedSystemEfficiency,
)
from .power import (
    BatteryOnlySource,
    HybridPowerSource,
    LiIonBattery,
    MultiStackHybrid,
    PowerSource,
    SuperCapacitor,
)
from .devices import (
    DeviceParams,
    DPMDevice,
    PowerState,
    camcorder_device_params,
    randomized_device_params,
)
from .workload import LoadTrace, TaskSlot, generate_mpeg_trace, experiment2_trace
from .prediction import ExponentialAveragePredictor
from .dpm import PredictiveShutdownPolicy, TimeoutPolicy
from .core import (
    SlotProblem,
    SlotSolution,
    solve_slot,
    optimal_flat_current,
    FCDPMController,
    ConvDPMController,
    ASAPDPMController,
    PowerManager,
)
from .sim import SlotSimulator, simulate_policies
from .scenario import Scenario, get_scenario, scenario_names
from .analysis import table2, table3, fig4_motivational

__version__ = "1.0.0"

__all__ = [
    "PAPER",
    "PaperConstants",
    "FCSystemConstants",
    "ReproError",
    "FCStack",
    "FCSystem",
    "FuelTank",
    "LinearSystemEfficiency",
    "ConstantSystemEfficiency",
    "ComposedSystemEfficiency",
    "PowerSource",
    "HybridPowerSource",
    "MultiStackHybrid",
    "BatteryOnlySource",
    "SuperCapacitor",
    "LiIonBattery",
    "DeviceParams",
    "DPMDevice",
    "PowerState",
    "camcorder_device_params",
    "randomized_device_params",
    "LoadTrace",
    "TaskSlot",
    "generate_mpeg_trace",
    "experiment2_trace",
    "ExponentialAveragePredictor",
    "PredictiveShutdownPolicy",
    "TimeoutPolicy",
    "SlotProblem",
    "SlotSolution",
    "solve_slot",
    "optimal_flat_current",
    "FCDPMController",
    "ConvDPMController",
    "ASAPDPMController",
    "PowerManager",
    "SlotSimulator",
    "simulate_policies",
    "Scenario",
    "get_scenario",
    "scenario_names",
    "table2",
    "table3",
    "fig4_motivational",
    "__version__",
]
