"""Property-based tests for the discrete-level solver and simulator chunking."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.multilevel import default_levels, solve_slot_discrete
from repro.core.optimizer import solve_slot
from repro.core.setting import SlotProblem
from repro.errors import InfeasibleError
from repro.fuelcell.efficiency import LinearSystemEfficiency

MODEL = LinearSystemEfficiency()

durations = st.floats(min_value=1.0, max_value=60.0, allow_nan=False)


@st.composite
def problems(draw):
    c_max = draw(st.floats(min_value=2.0, max_value=60.0))
    c_ini = draw(st.floats(min_value=0.0, max_value=1.0)) * c_max
    return SlotProblem(
        t_idle=draw(durations),
        t_active=draw(durations),
        i_idle=draw(st.floats(min_value=0.0, max_value=0.5)),
        i_active=draw(st.floats(min_value=0.1, max_value=1.2)),
        c_ini=c_ini,
        c_end=c_ini,
        c_max=c_max,
    )


class TestDiscreteProperties:
    @given(problems(), st.integers(min_value=2, max_value=16))
    @settings(max_examples=150, deadline=None)
    def test_effective_fuel_dominates_continuous(self, problem, n_levels):
        try:
            result = solve_slot_discrete(
                problem, MODEL, default_levels(MODEL, n_levels)
            )
        except InfeasibleError:
            assume(False)
        continuous = solve_slot(problem, MODEL)
        # Comparable only when the continuous solution is itself clean.
        assume(continuous.deficit == 0 and continuous.bled == 0)
        assume(abs(continuous.c_after_slot - problem.c_end) < 1e-9)
        assert result.effective_fuel >= result.continuous_fuel - 1e-6

    @given(problems(), st.integers(min_value=2, max_value=16))
    @settings(max_examples=150, deadline=None)
    def test_solution_always_physical(self, problem, n_levels):
        try:
            result = solve_slot_discrete(
                problem, MODEL, default_levels(MODEL, n_levels)
            )
        except InfeasibleError:
            assume(False)
        s = result.solution
        assert s.deficit == 0.0
        assert -1e-9 <= s.c_after_slot <= problem.c_max + 1e-9
        assert MODEL.if_min <= s.if_idle <= MODEL.if_max
        assert MODEL.if_min <= s.if_active <= MODEL.if_max

    @given(problems())
    @settings(max_examples=100, deadline=None)
    def test_refinement_never_hurts(self, problem):
        """Nested lattices: 2**k + 1 refinement is monotone."""
        penalties = []
        for n in (3, 5, 9):
            try:
                result = solve_slot_discrete(
                    problem, MODEL, default_levels(MODEL, n)
                )
            except InfeasibleError:
                assume(False)
            penalties.append(result.effective_fuel)
        assert penalties[0] >= penalties[1] - 1e-9 >= penalties[2] - 2e-9


class TestChunkingInvariance:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=2.0, max_value=40.0),  # idle
                st.floats(min_value=0.5, max_value=8.0),   # active
                st.floats(min_value=0.1, max_value=1.3),   # current
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_conv_dpm_invariant_to_re_decision_period(self, spec, max_segment):
        """Conv-DPM's output is state-free: splitting segments into
        re-decision chunks must not change any ledger entry."""
        from repro.core.manager import PowerManager
        from repro.devices.camcorder import camcorder_device_params
        from repro.sim.slotsim import SlotSimulator
        from repro.workload.trace import LoadTrace, TaskSlot

        trace = LoadTrace([TaskSlot(*row) for row in spec])
        dev = camcorder_device_params()

        def run(seg):
            mgr = PowerManager.conv_dpm(
                dev, storage_capacity=6.0, storage_initial=3.0
            )
            return SlotSimulator(
                mgr, max_deficit_fraction=1.0, max_segment=seg
            ).run(trace)

        whole = run(None)
        chunked = run(max_segment)
        assert chunked.fuel == pytest.approx(whole.fuel, rel=1e-9)
        assert chunked.load_charge == pytest.approx(whole.load_charge, rel=1e-9)
        assert chunked.bled == pytest.approx(whole.bled, abs=1e-9)
        assert chunked.duration == pytest.approx(whole.duration, rel=1e-9)
