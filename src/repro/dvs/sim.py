"""Frame-by-frame DVS simulation on the hybrid power source.

Executes a :class:`~repro.dvs.tasks.FrameTaskSet` under a
:class:`~repro.dvs.policies.DVSPolicy`: each frame runs at the chosen
level, idles through its slack, and the FC holds the policy's plan
(idle-period output during slack, active-period output while running).
Device-only policies (no ``fc_plan``) get the fuel-optimal continuous
setting computed for their chosen level -- so the comparison isolates
the *speed selection*, not the FC controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.optimizer import solve_slot
from ..core.setting import SlotProblem
from ..errors import SimulationError
from ..fuelcell.efficiency import SystemEfficiencyModel
from ..fuelcell.fuel import FuelTank, GibbsFuelModel
from ..fuelcell.system import FCSystem
from ..power.hybrid import HybridPowerSource
from ..power.storage import SuperCapacitor
from .policies import DVSPolicy
from .tasks import FrameTaskSet


@dataclass
class DVSResult:
    """Outcome of one simulated task set."""

    name: str
    fuel: float
    device_charge: float
    duration: float
    bled: float
    deficit: float
    n_frames: int
    #: Mean selected frequency (GHz) -- the policy's signature.
    mean_frequency: float
    #: Storage charge at the end of the run (A-s); compare with the
    #: initial level when judging fuel numbers -- a drained storage is
    #: deferred fuel.
    final_storage: float = 0.0
    level_histogram: dict[float, int] = field(default_factory=dict)

    @property
    def average_fuel_rate(self) -> float:
        """Mean stack current (A)."""
        return self.fuel / self.duration if self.duration else 0.0


class DVSSimulator:
    """Runs frame task sets against a policy and a hybrid source."""

    def __init__(
        self,
        policy: DVSPolicy,
        model: SystemEfficiencyModel,
        storage_capacity: float = 6.0,
        storage_initial: float = 3.0,
        name: str | None = None,
    ) -> None:
        self.policy = policy
        self.model = model
        self.storage_capacity = storage_capacity
        self.storage_initial = storage_initial
        self.name = name if name is not None else type(policy).__name__

    def _fresh_source(self) -> HybridPowerSource:
        fc = FCSystem(
            self.model, tank=FuelTank(model=GibbsFuelModel(zeta=self.model.zeta))
        )
        storage = SuperCapacitor(
            capacity=self.storage_capacity, initial_charge=self.storage_initial
        )
        return HybridPowerSource(fc=fc, storage=storage)

    def run(self, frames: FrameTaskSet) -> DVSResult:
        """Simulate the whole task set; returns aggregate results."""
        source = self._fresh_source()
        source.record_history = False
        c_target = self.storage_initial

        device_charge = 0.0
        freq_weighted = 0.0
        histogram: dict[float, int] = {}

        for frame in frames:
            decision = self.policy.decide(
                frame, source.storage.charge, c_target, source.storage.capacity
            )
            plan = decision.fc_plan
            if plan is None:
                problem = SlotProblem(
                    t_idle=max(decision.t_idle, 0.0),
                    t_active=decision.t_run,
                    i_idle=decision.i_idle,
                    i_active=decision.i_run,
                    c_ini=source.storage.charge,
                    c_end=c_target,
                    c_max=source.storage.capacity,
                )
                plan = solve_slot(problem, self.model)

            # Idle (slack) period first mirrors the DPM slot layout; the
            # frame's work is due at the deadline either way and charge
            # accounting is order-independent for constant currents.
            if decision.t_idle > 0:
                source.set_fc_output(plan.if_idle)
                source.step(decision.i_idle, decision.t_idle)
            source.set_fc_output(plan.if_active)
            source.step(decision.i_run, decision.t_run)

            device_charge += (
                decision.i_run * decision.t_run + decision.i_idle * decision.t_idle
            )
            freq_weighted += decision.level.frequency
            histogram[decision.level.frequency] = (
                histogram.get(decision.level.frequency, 0) + 1
            )

        if source.storage.deficit_charge > 0.05 * source.total_load_charge:
            raise SimulationError(
                f"{self.name}: the source browned out "
                f"({source.storage.deficit_charge:.2f} A-s unserved)"
            )

        return DVSResult(
            name=self.name,
            fuel=source.total_fuel,
            device_charge=device_charge,
            duration=source.total_time,
            bled=source.storage.bled_charge,
            deficit=source.storage.deficit_charge,
            n_frames=len(frames),
            mean_frequency=freq_weighted / len(frames),
            final_storage=source.storage.charge,
            level_histogram=histogram,
        )
