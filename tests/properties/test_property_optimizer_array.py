"""Property-based bit-exactness gates for the batched Section-3 solver.

Two contracts, both absolute:

* :func:`repro.core.optimizer_array.solve_slot_array` equals the scalar
  :func:`repro.core.optimizer.solve_slot` on every solution field, bit
  for bit, across every branch of the decision procedure (unclamped,
  range-clamped, capacity-limited in both directions, ``t_idle == 0``,
  and the floor-overflow bleed where the ``Cmax`` correction lands
  below ``IF,min``);
* the lockstep FC-DPM stacked route (``sim.stacked._run_fc_stacked``)
  equals the serial per-seed loop on every ``SimulationResult`` field
  *and* the full manager / controller / predictor end state, on ragged
  traces and across mid-batch deficit raises.

``==`` on raw float64 bits is the only comparison -- a single differing
bit (including a -0.0 vs +0.0 drift) fails.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.vectorized as vectorized
from repro.core.optimizer import solve_slot
from repro.core.optimizer_array import SlotProblemColumns, solve_slot_array
from repro.core.setting import SlotProblem
from repro.errors import SimulationError
from repro.fuelcell.efficiency import (
    ConstantSystemEfficiency,
    LinearSystemEfficiency,
)
from repro.scenario import get_scenario
from repro.sim.vectorized import simulate_batch
from repro.workload.trace import LoadTrace, TaskSlot

MODELS = [LinearSystemEfficiency(), ConstantSystemEfficiency()]

durations = st.floats(min_value=0.5, max_value=100.0, allow_nan=False)
currents = st.floats(min_value=0.0, max_value=1.4, allow_nan=False)


@st.composite
def general_problems(draw):
    """Wide-open draws; hits the flat and range-clamped branches."""
    c_max = draw(st.floats(min_value=1.0, max_value=100.0))
    sleeping = draw(st.booleans())
    return SlotProblem(
        t_idle=draw(st.one_of(st.just(0.0), durations)),
        t_active=draw(durations),
        i_idle=draw(st.floats(min_value=0.0, max_value=0.6)),
        i_active=draw(currents),
        c_ini=draw(st.floats(min_value=0.0, max_value=1.0)) * c_max,
        c_end=draw(st.floats(min_value=0.0, max_value=1.0)) * c_max,
        c_max=c_max,
        sleeping=sleeping,
        t_wu=draw(st.floats(min_value=0.0, max_value=5.0)) if sleeping else 0.0,
        t_pd=draw(st.floats(min_value=0.0, max_value=5.0)) if sleeping else 0.0,
        i_wu=draw(st.floats(min_value=0.0, max_value=1.0)) if sleeping else 0.0,
        i_pd=draw(st.floats(min_value=0.0, max_value=1.0)) if sleeping else 0.0,
    )


@st.composite
def saturating_problems(draw):
    """Nearly-full storage + long low-load idles: the Cmax correction,
    including the floor-overflow bleed (``i_idle == 0`` puts the
    corrected ``IF,i`` below ``IF,min``)."""
    c_max = draw(st.floats(min_value=1.0, max_value=20.0))
    frac = draw(st.floats(min_value=0.9, max_value=1.0))
    return SlotProblem(
        t_idle=draw(st.floats(min_value=20.0, max_value=200.0)),
        t_active=draw(st.floats(min_value=0.5, max_value=5.0)),
        i_idle=draw(st.one_of(st.just(0.0), st.floats(min_value=0.0, max_value=0.05))),
        i_active=draw(st.floats(min_value=0.5, max_value=1.4)),
        c_ini=frac * c_max,
        c_end=draw(st.floats(min_value=0.0, max_value=1.0)) * c_max,
        c_max=c_max,
    )


@st.composite
def draining_problems(draw):
    """Nearly-empty storage + high idle loads: the empty correction."""
    c_max = draw(st.floats(min_value=5.0, max_value=100.0))
    return SlotProblem(
        t_idle=draw(st.floats(min_value=20.0, max_value=200.0)),
        t_active=draw(st.floats(min_value=0.5, max_value=5.0)),
        i_idle=draw(st.floats(min_value=0.4, max_value=0.6)),
        i_active=draw(st.floats(min_value=0.0, max_value=0.2)),
        c_ini=draw(st.floats(min_value=0.0, max_value=0.05)) * c_max,
        c_end=draw(st.floats(min_value=0.0, max_value=0.2)) * c_max,
        c_max=c_max,
    )


@st.composite
def zero_idle_problems(draw):
    """``t_idle == 0``: only the active output is free."""
    c_max = draw(st.floats(min_value=1.0, max_value=100.0))
    return SlotProblem(
        t_idle=0.0,
        t_active=draw(durations),
        i_idle=draw(st.floats(min_value=0.0, max_value=0.6)),
        i_active=draw(currents),
        c_ini=draw(st.floats(min_value=0.0, max_value=1.0)) * c_max,
        c_end=draw(st.floats(min_value=0.0, max_value=1.0)) * c_max,
        c_max=c_max,
    )


any_problem = st.one_of(
    general_problems(),
    saturating_problems(),
    draining_problems(),
    zero_idle_problems(),
)

_FLOAT_FIELDS = (
    "if_idle",
    "if_active",
    "ifc_idle",
    "ifc_active",
    "fuel",
    "c_after_idle",
    "c_after_slot",
    "bled",
    "deficit",
)
_BOOL_FIELDS = ("range_clamped", "capacity_limited")


def _assert_bitwise_equal(problems, model):
    cols = SlotProblemColumns.from_problems(problems)
    batch = solve_slot_array(cols, model)
    scalars = [solve_slot(p, model) for p in problems]
    for name in _FLOAT_FIELDS:
        got = getattr(batch, name).view(np.uint64).tolist()
        want = [
            np.float64(getattr(s, name)).view(np.uint64) for s in scalars
        ]
        assert got == want, name
    for name in _BOOL_FIELDS:
        assert getattr(batch, name).tolist() == [
            getattr(s, name) for s in scalars
        ], name
    # Row round-trip: batch.row(i) rebuilds the scalar SlotSolution.
    for i, s in enumerate(scalars):
        assert batch.row(i) == s


class TestSolveSlotArrayBitExact:
    @given(problems=st.lists(any_problem, min_size=1, max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_every_field_linear(self, problems):
        _assert_bitwise_equal(problems, MODELS[0])

    @given(problems=st.lists(any_problem, min_size=1, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_every_field_constant(self, problems):
        _assert_bitwise_equal(problems, MODELS[1])

    @given(problem=any_problem)
    @settings(max_examples=200, deadline=None)
    def test_problem_columns_round_trip(self, problem):
        cols = SlotProblemColumns.from_problems([problem])
        assert len(cols) == 1
        assert cols.row(0) == problem

    def test_branch_coverage_sweep(self):
        """A deterministic sweep must reach (and match on) every branch."""
        hit = set()
        rng = np.random.default_rng(0)
        model = MODELS[0]
        for _ in range(4000):
            c_max = float(rng.uniform(0.5, 30.0))
            p = SlotProblem(
                t_idle=float(rng.choice([0.0, rng.uniform(0.5, 200.0)])),
                t_active=float(rng.uniform(0.5, 20.0)),
                i_idle=float(rng.choice([0.0, rng.uniform(0.0, 0.6)])),
                i_active=float(rng.uniform(0.0, 1.4)),
                c_ini=float(rng.uniform(0.0, 1.0)) * c_max,
                c_end=float(rng.uniform(0.0, 1.0)) * c_max,
                c_max=c_max,
            )
            s = solve_slot(p, model)
            if p.t_idle == 0.0:
                hit.add("zero_idle")
            elif s.capacity_limited:
                mid_raw = p.c_ini + (s.if_idle - p.i_idle) * p.t_idle
                hit.add("over" if s.bled > 0 or mid_raw >= 0 else "under")
                if s.if_idle == model.if_min and s.bled > 0:
                    hit.add("floor_bleed")
            elif s.range_clamped:
                hit.add("clamped")
            else:
                hit.add("flat")
            if s.deficit > 0:
                hit.add("deficit")
            _assert_bitwise_equal([p], model)
        assert {
            "flat",
            "clamped",
            "over",
            "under",
            "floor_bleed",
            "zero_idle",
            "deficit",
        } <= hit, hit


# -- stacked FC-DPM route vs the per-row loop ---------------------------

slot_lists = st.lists(
    st.builds(
        TaskSlot,
        t_idle=st.floats(min_value=2.0, max_value=60.0, allow_nan=False),
        t_active=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
        i_active=st.floats(min_value=0.1, max_value=1.3, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
)


def _fc_state(mgr):
    """Full FC manager / controller / predictor end state."""
    controller = mgr.controller
    idle_pred = controller.idle_length_predictor
    active_pred = controller.active_length_predictor
    return {
        "charge": mgr.source.storage.charge,
        "bled": mgr.source.storage.bled_charge,
        "deficit": mgr.source.storage.deficit_charge,
        "i_f": mgr.source.fc._i_f,
        "consumed": mgr.source.fc.tank.consumed,
        "total_fuel": mgr.source.total_fuel,
        "total_load": mgr.source.total_load_charge,
        "total_time": mgr.source.total_time,
        "total_delivered": mgr.source.total_delivered_charge,
        "solutions": controller.solutions,
        "if_idle": controller._if_idle,
        "if_active": controller._if_active,
        "active_planned": controller._active_planned,
        "active_sum": controller._active_current_sum,
        "active_n": controller._active_current_n,
        "guards": controller.n_guard_activations,
        "idle_estimate": idle_pred._estimate,
        "active_estimate": active_pred._estimate,
        "idle_observed": idle_pred._n_observed,
        "active_observed": active_pred._n_observed,
        "idle_error": idle_pred._error_sum,
        "active_error": active_pred._error_sum,
        "policy_estimate": mgr.policy.predictor._estimate,
        "policy_decisions": mgr.policy.n_decisions,
        "policy_sleeps": mgr.policy.n_sleep_decisions,
    }


def _run_spied(scenario, seeds, policies, **kwargs):
    """Run a batch recording every built manager; capture any raise."""
    managers = {}
    original = vectorized._policy_manager

    def spy(sc, spec):
        mgr = original(sc, spec)
        managers.setdefault(spec, []).append(mgr)
        return mgr

    vectorized._policy_manager = spy
    error = None
    results = None
    try:
        results = simulate_batch(scenario, seeds, policies, **kwargs)
    except SimulationError as exc:
        error = (type(exc), str(exc))
    finally:
        vectorized._policy_manager = original
    return results, error, managers


@given(traces=st.lists(slot_lists, min_size=1, max_size=4))
@settings(max_examples=10, deadline=None)
def test_fc_stacked_matches_loop_every_field_and_end_state(traces):
    """Lockstep FC pass vs per-row loop: results + full end state.

    Adversarial ragged traces with the deficit guard disabled -- the
    accounting is under test, not the plant sizing.
    """
    sc = get_scenario("exp2-conv-dpm")
    seeds = list(range(len(traces)))
    built = {s: LoadTrace(t) for s, t in zip(seeds, traces)}
    a, err_a, mgrs_a = _run_spied(
        sc, seeds, ["fc-dpm"], traces=built, stacked=True,
        max_deficit_fraction=1.0,
    )
    b, err_b, mgrs_b = _run_spied(
        sc, seeds, ["fc-dpm"], traces=built, stacked=False,
        max_deficit_fraction=1.0,
    )
    assert err_a == err_b is None
    assert a.keys() == b.keys()
    for seed in seeds:
        ra, rb = a[seed]["fc-dpm"], b[seed]["fc-dpm"]
        assert dataclasses.asdict(ra) == dataclasses.asdict(rb), seed
    assert _fc_state(mgrs_a["fc-dpm"][-1]) == _fc_state(mgrs_b["fc-dpm"][-1])


@given(
    traces=st.lists(slot_lists, min_size=2, max_size=4),
    raising_row=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_fc_stacked_mid_batch_raise_matches_loop(traces, raising_row):
    """A deficit raise mid-batch leaves bit-identical committed state."""
    raising_row = min(raising_row, len(traces) - 1)
    # Force a deficit on one row: a long, heavy active burst.
    traces = list(traces)
    traces[raising_row] = traces[raising_row] + [
        TaskSlot(t_idle=2.0, t_active=4000.0, i_active=1.4)
    ]
    sc = get_scenario("exp2-conv-dpm")
    seeds = list(range(len(traces)))
    built = {s: LoadTrace(t) for s, t in zip(seeds, traces)}
    policies = ["fc-dpm", "static:0.4"]
    a, err_a, mgrs_a = _run_spied(
        sc, seeds, policies, traces=built, stacked=True
    )
    b, err_b, mgrs_b = _run_spied(
        sc, seeds, policies, traces=built, stacked=False
    )
    assert err_a == err_b
    assert (a is None) == (b is None)
    if a is not None:
        for seed in seeds:
            for name in policies:
                ra, rb = a[seed][name], b[seed][name]
                assert dataclasses.asdict(ra) == dataclasses.asdict(rb)
    assert _fc_state(mgrs_a["fc-dpm"][-1]) == _fc_state(mgrs_b["fc-dpm"][-1])
