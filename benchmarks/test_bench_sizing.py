"""Section-2.2 bench: hybridization lets the stack shrink to the average."""

from repro.analysis.report import format_table
from repro.devices.camcorder import camcorder_device_params
from repro.fuelcell.purge import calibrated_purge_model, ideal_zeta
from repro.fuelcell.sizing import downsizing_curve
from repro.workload.mpeg import generate_mpeg_trace


def test_bench_stack_downsizing(benchmark, emit):
    trace = generate_mpeg_trace(duration_s=600.0, seed=5)
    device = camcorder_device_params()
    curve = benchmark.pedantic(
        downsizing_curve, args=(trace, device), rounds=1, iterations=1
    )

    rows = [["storage (A-s)", "required IF_max (A)", "downsizing factor"]]
    for cap, r in curve.items():
        rows.append([f"{cap:g}", f"{r.hybrid_if_max:.3f}",
                     f"x{r.downsizing_factor:.2f}"])
    any_r = next(iter(curve.values()))
    emit(
        "sizing",
        "SECTION 2.2 -- minimum FC output vs storage buffer\n"
        + format_table(rows)
        + f"\npeak load {any_r.peak_current:.3f} A, "
        f"average {any_r.average_current:.3f} A: the paper's 6 A-s "
        "supercap already buys a >2x smaller stack.",
    )
    assert curve[0.0].downsizing_factor == 1.0
    assert curve[6.0].downsizing_factor > 2.0


def test_bench_purge_explains_measured_zeta(benchmark, emit):
    purge = benchmark(calibrated_purge_model)
    emit(
        "purge",
        "FUEL ACCOUNTING -- why measured zeta (37.5 W/A) exceeds "
        "thermodynamics\n"
        + format_table(
            [
                ["quantity", "value"],
                ["thermodynamic floor (20 cells)", f"{ideal_zeta(20):.2f} W/A"],
                ["paper's measured zeta", "37.5 W/A"],
                ["implied H2 utilization", f"{100 * purge.utilization:.1f} %"],
                ["implied vent per purge",
                 f"{purge.purge_loss_charge:.1f} A-s-equivalent"],
            ]
        )
        + "\nreading: a dead-ended anode purging ~1/3 of its feed is the "
        "standard small-stack regime; the paper's zeta is physically "
        "consistent.",
    )
    assert 0.6 < purge.utilization < 0.7
