"""Time-series recorder for simulation runs (feeds the Fig. 7 plots)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class Sample:
    """State over one constant-current interval ``[t, t + dt)``."""

    t: float
    dt: float
    i_load: float
    i_f: float
    i_fc: float
    storage_charge: float
    fuel_cumulative: float
    kind: str = ""
    #: Which plant produced the interval ('hybrid' | 'multi-stack' |
    #: 'battery' | ...), for plots that compare source architectures.
    source_kind: str = ""
    #: Per-stack output currents (A) for multi-stack sources; empty for
    #: single-stack plants.  Enables per-stack load-sharing plots.
    stack_currents: tuple[float, ...] = ()


class Recorder:
    """Accumulates piecewise-constant samples and exports plot arrays."""

    def __init__(self) -> None:
        self._samples: list[Sample] = []

    def add(self, sample: Sample) -> None:
        """Append a sample; time must not run backwards."""
        if self._samples and sample.t < self._samples[-1].t - 1e-9:
            raise SimulationError(
                f"time went backwards: {sample.t} after {self._samples[-1].t}"
            )
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> tuple[Sample, ...]:
        """All recorded samples."""
        return tuple(self._samples)

    @property
    def duration(self) -> float:
        """Covered time span (s)."""
        if not self._samples:
            return 0.0
        last = self._samples[-1]
        return last.t + last.dt - self._samples[0].t

    def step_series(self, field: str, t_max: float | None = None):
        """Step-plot arrays ``(times, values)`` for ``field``.

        ``times`` has one more entry than ``values`` (interval edges).
        ``t_max`` truncates the series (Fig. 7 shows the first 300 s).
        """
        times: list[float] = []
        values: list[float] = []
        for s in self._samples:
            if t_max is not None and s.t >= t_max:
                break
            if not times:
                times.append(s.t)
            times.append(s.t + s.dt)
            values.append(getattr(s, field))
        return np.asarray(times), np.asarray(values)

    def resample(self, field: str, dt: float, t_max: float | None = None):
        """Uniform-grid arrays ``(times, values)`` sampled every ``dt`` s."""
        if dt <= 0:
            raise SimulationError("resample dt must be positive")
        if not self._samples:
            return np.empty(0), np.empty(0)
        end = self.duration if t_max is None else min(self.duration, t_max)
        grid = np.arange(self._samples[0].t, end, dt)
        edges, vals = self.step_series(field)
        idx = np.clip(np.searchsorted(edges, grid, side="right") - 1, 0, len(vals) - 1)
        return grid, np.asarray(vals)[idx]

    def to_csv(self) -> str:
        """Export all samples as CSV.

        ``stack_a`` joins the per-stack currents with ``|`` (empty for
        single-stack sources) so the file stays one row per interval.
        """
        lines = [
            "t_s,dt_s,i_load_a,i_f_a,i_fc_a,storage_as,fuel_as,kind,"
            "source_kind,stack_a"
        ]
        for s in self._samples:
            stacks = "|".join(repr(c) for c in s.stack_currents)
            lines.append(
                f"{s.t!r},{s.dt!r},{s.i_load!r},{s.i_f!r},{s.i_fc!r},"
                f"{s.storage_charge!r},{s.fuel_cumulative!r},{s.kind},"
                f"{s.source_kind},{stacks}"
            )
        return "\n".join(lines) + "\n"
