"""FC output controllers: the protocol and the paper's two baselines.

A :class:`SourceController` decides the FC system output current for
every constant-load segment the simulator executes.  The paper compares
three controllers (Section 5):

* **Conv-DPM** (:class:`ConvDPMController`) -- no fuel-flow control; the
  FC permanently delivers the top of the load-following range.
* **ASAP-DPM** (:class:`ASAPDPMController`) -- the FC follows the load
  as closely as the range allows; the storage covers peaks above the
  range and is recharged at full output whenever it drops below half
  capacity.
* **FC-DPM** (:class:`repro.core.fc_dpm.FCDPMController`) -- the paper's
  contribution, in its own module.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..fuelcell.efficiency import SystemEfficiencyModel


@dataclass(frozen=True)
class SlotStart:
    """Context handed to the controller when an idle period begins."""

    slot_index: int
    #: Whether the device will SLEEP this idle period.
    sleeping: bool
    #: Nominal idle load current ``Ild,i`` (Islp when sleeping else Isdb).
    i_idle: float
    #: Storage charge right now (A-s).
    storage_charge: float


@dataclass(frozen=True)
class SegmentContext:
    """Context for one constant-load segment about to execute."""

    slot_index: int
    #: 'idle' or 'active'.
    phase: str
    #: 'standby' | 'pd' | 'sleep' | 'wu' | 'run'.
    kind: str
    #: Segment length (s).
    duration: float
    #: Load current during the segment (A).
    i_load: float
    #: Storage charge at segment start (A-s).
    storage_charge: float
    #: Storage capacity (A-s).
    storage_capacity: float
    #: Remaining duration of the current phase including this segment (s).
    phase_duration: float
    #: Remaining load charge of the current phase (A-s).
    phase_demand: float


@dataclass(frozen=True)
class SlotActuals:
    """Observed slot outcome, fed back for learning."""

    slot_index: int
    t_idle: float
    t_active: float
    i_active: float


class SourceController(ABC):
    """Decides the FC output for every segment of a simulated trace."""

    def __init__(self, model: SystemEfficiencyModel) -> None:
        self.model = model

    @property
    def is_trace_functional(self) -> bool:
        """True when the vectorized fast path may replay this controller.

        A trace-functional controller's output sequence is determined
        by the planned segment timeline alone -- adaptive controllers
        (FC-DPM's learning predictors, the stochastic and receding
        variants) react to observed state and must return False, which
        routes them to the scalar simulator
        (:func:`repro.sim.vectorized.simulate_fast` then produces the
        identical result, just without the array kernel).  The base
        class is conservative: controllers opt in explicitly, and the
        built-ins only opt in for their exact type -- a subclass that
        overrides :meth:`output` loses the guarantee automatically.
        """
        return False

    def output_array(self, plan):
        """Closed-form vectorized output (A) per planned segment, or ``None``.

        Optional acceleration hook for trace-functional controllers:
        given a compiled :class:`repro.sim.vectorized.TraceArrays`
        ``plan``, return one commanded output current per segment.  The
        fast path does not fire the per-slot lifecycle callbacks around
        a closed form (the built-ins' callbacks are no-ops).  Returning
        ``None`` (the default) makes the fast path replay :meth:`output`
        segment by segment instead -- still exact, just slower.
        """
        return None

    def start_run(self, storage_charge: float, storage_capacity: float) -> None:
        """Called once before the trace starts (records ``Cini(1)``)."""

    def on_idle_start(self, start: SlotStart) -> None:
        """Called when an idle period begins (before its first segment)."""

    @abstractmethod
    def output(self, ctx: SegmentContext) -> float:
        """FC system output current (A) to hold during ``ctx``."""

    def on_slot_end(self, actuals: SlotActuals) -> None:
        """Called after each slot with the observed timings/currents."""

    def reset(self) -> None:
        """Forget run state (controllers with learning also reset it)."""


class ConvDPMController(SourceController):
    """Conv-DPM: the FC always delivers ``IF_max`` (paper Section 5).

    "We apply the conventional DPM policy on the FC powered system
    without fuel flow control" -- the stack constantly sources the
    current corresponding to the highest load, ``Ifc = 1.3 A``.
    """

    @property
    def is_trace_functional(self) -> bool:
        """Constant output; exact-type only (a subclass may adapt)."""
        return type(self) is ConvDPMController

    def output_array(self, plan):
        return np.full(plan.n_segments, self.model.if_max)

    def output(self, ctx: SegmentContext) -> float:
        return self.model.if_max


class ASAPDPMController(SourceController):
    """ASAP-DPM: load following plus half-capacity recharge.

    The FC output matches the load current clamped into the
    load-following range.  When the storage drops below
    ``recharge_threshold`` of capacity, the controller switches to full
    output "in the successive task slots" until the storage is full
    again (paper Section 5).
    """

    def __init__(
        self,
        model: SystemEfficiencyModel,
        recharge_threshold: float = 0.5,
        full_level: float = 1.0,
    ) -> None:
        super().__init__(model)
        if not 0 <= recharge_threshold <= full_level <= 1:
            raise ConfigurationError(
                "need 0 <= recharge_threshold <= full_level <= 1"
            )
        self.recharge_threshold = recharge_threshold
        self.full_level = full_level
        self._recharging = False

    @property
    def recharging(self) -> bool:
        """True while the controller is in forced-recharge mode."""
        return self._recharging

    @property
    def is_trace_functional(self) -> bool:
        """Kernel-eligible; exact-type only (a subclass may adapt).

        ASAP-DPM is *not* literally trace-functional -- its recharge
        hysteresis reads the storage state -- but the vectorized
        simulator recognizes this exact type and plays the two-mode law
        natively (a sequential pass over precomputed per-mode arrays),
        so it advertises eligibility.  ``output_array`` stays None: the
        closed form cannot exist without the storage trajectory.
        """
        return type(self) is ASAPDPMController

    def output(self, ctx: SegmentContext) -> float:
        if ctx.storage_capacity > 0:
            soc = ctx.storage_charge / ctx.storage_capacity
            if soc < self.recharge_threshold:
                self._recharging = True
            elif soc >= self.full_level:
                self._recharging = False
        if self._recharging:
            return self.model.if_max
        return self.model.clamp(ctx.i_load)

    def reset(self) -> None:
        self._recharging = False


class StaticController(SourceController):
    """Holds one fixed output forever (parameter-sweep instrument)."""

    def __init__(self, model: SystemEfficiencyModel, i_f: float) -> None:
        super().__init__(model)
        if not model.in_range(i_f):
            raise ConfigurationError(
                f"static output {i_f} A outside the load-following range"
            )
        self.i_f = i_f

    @property
    def is_trace_functional(self) -> bool:
        """Constant output; exact-type only (a subclass may adapt)."""
        return type(self) is StaticController

    def output_array(self, plan):
        return np.full(plan.n_segments, self.i_f)

    def output(self, ctx: SegmentContext) -> float:
        return self.i_f
