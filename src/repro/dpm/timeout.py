"""Fixed-timeout DPM policy.

The oldest DPM heuristic: stay in STANDBY for ``timeout`` seconds, and
if the idle period is still going, power down.  With the timeout set to
the break-even time the policy is 2-competitive (see
:func:`repro.dpm.breakeven.worst_case_competitive_timeout`).
"""

from __future__ import annotations

from ..devices.device import DeviceParams
from ..errors import ConfigurationError
from .policy import DPMPolicy, IdleDecision


class TimeoutPolicy(DPMPolicy):
    """Sleep after a fixed STANDBY dwell.

    Parameters
    ----------
    params:
        Device parameters.
    timeout:
        STANDBY dwell before powering down (s); defaults to the device's
        break-even time.
    """

    def __init__(self, params: DeviceParams, timeout: float | None = None) -> None:
        super().__init__(params)
        value = params.break_even if timeout is None else timeout
        if value < 0:
            raise ConfigurationError("timeout cannot be negative")
        self.timeout = value

    def on_idle_start(self) -> IdleDecision:
        return self._count(IdleDecision(sleep=True, sleep_after=self.timeout))
