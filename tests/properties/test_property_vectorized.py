"""Property-based scalar-equivalence gates for the vectorized kernel.

These are the acceptance tests that let ``simulate_fast`` exist at all:
over randomized traces the array kernel must reproduce the scalar
simulator *exactly* -- ``==`` on every ledger (fuel, load charge, bled,
deficit, storage trajectory), not approximately.  A single differing
bit is a failure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import StaticController
from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params
from repro.sim.integrator import Segment, chunk_segments
from repro.sim.slotsim import SlotSimulator
from repro.sim.vectorized import clamped_cumsum, simulate_fast
from repro.workload.trace import LoadTrace, TaskSlot

slots = st.lists(
    st.builds(
        TaskSlot,
        t_idle=st.floats(min_value=2.0, max_value=60.0, allow_nan=False),
        t_active=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
        i_active=st.floats(min_value=0.1, max_value=1.3, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
)


def _end_state(mgr):
    src = mgr.source
    return (
        src.total_fuel,
        src.total_time,
        src.total_load_charge,
        src.total_delivered_charge,
        src.storage.charge,
        src.storage.bled_charge,
        src.storage.deficit_charge,
        src.fc.tank.consumed,
    )


def _assert_exact(build, slot_list):
    """Fast and scalar runs of ``build()``'s manager must match exactly."""
    trace = LoadTrace(slot_list)
    m_fast, m_scalar = build(), build()
    # Adversarial traces may overwhelm the tiny storage; accounting is
    # under test here, not sizing, so the deficit guard is disabled.
    r_fast = simulate_fast(m_fast, trace, max_deficit_fraction=1.0)
    r_scalar = SlotSimulator(m_scalar, max_deficit_fraction=1.0).run(trace)
    assert r_fast == r_scalar  # every field: fuel, charge, slots, ...
    assert r_fast.fuel == r_scalar.fuel
    assert r_fast.load_charge == r_scalar.load_charge
    assert r_fast.bled == r_scalar.bled
    assert r_fast.deficit == r_scalar.deficit
    assert _end_state(m_fast) == _end_state(m_scalar)


class TestSimulateFastEquivalence:
    @given(slots)
    @settings(max_examples=25, deadline=None)
    def test_conv_dpm_exact(self, slot_list):
        dev = camcorder_device_params()
        _assert_exact(
            lambda: PowerManager.conv_dpm(
                dev, storage_capacity=6.0, storage_initial=3.0
            ),
            slot_list,
        )

    @given(slots)
    @settings(max_examples=25, deadline=None)
    def test_asap_dpm_exact(self, slot_list):
        dev = camcorder_device_params()
        _assert_exact(
            lambda: PowerManager.asap_dpm(
                dev, storage_capacity=6.0, storage_initial=3.0
            ),
            slot_list,
        )

    @given(slots, st.floats(min_value=0.2, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_static_controller_exact(self, slot_list, i_f):
        dev = camcorder_device_params()

        def build():
            mgr = PowerManager.conv_dpm(
                dev, storage_capacity=6.0, storage_initial=3.0
            )
            mgr.controller = StaticController(mgr.controller.model, i_f)
            return mgr

        _assert_exact(build, slot_list)

    @given(slots)
    @settings(max_examples=25, deadline=None)
    def test_fc_dpm_exact(self, slot_list):
        # The scan-compiled adaptive controller: beyond the result and
        # source ledgers, the *learned* end state must also match --
        # predictor estimates and accuracy ledgers, the active-current
        # running mean, the per-slot solver log, and the guard counter.
        dev = camcorder_device_params()

        def build():
            return PowerManager.fc_dpm(
                dev, storage_capacity=6.0, storage_initial=3.0
            )

        _assert_exact(build, slot_list)
        trace = LoadTrace(slot_list)
        m_fast, m_scalar = build(), build()
        simulate_fast(m_fast, trace, max_deficit_fraction=1.0)
        SlotSimulator(m_scalar, max_deficit_fraction=1.0).run(trace)
        cf, cs = m_fast.controller, m_scalar.controller
        assert cf.idle_length_predictor.estimate == (
            cs.idle_length_predictor.estimate
        )
        assert cf.active_length_predictor.estimate == (
            cs.active_length_predictor.estimate
        )
        assert cf._active_current_sum == cs._active_current_sum
        assert cf._active_current_n == cs._active_current_n
        assert cf._if_idle == cs._if_idle
        assert cf._if_active == cs._if_active
        assert cf.solutions == cs.solutions
        assert cf.n_guard_activations == cs.n_guard_activations
        pf = m_fast.policy.predictor
        ps = m_scalar.policy.predictor
        assert pf.estimate == ps.estimate

    @given(slots, st.floats(min_value=3.0, max_value=20.0))
    @settings(max_examples=25, deadline=None)
    def test_max_segment_exact(self, slot_list, max_segment):
        trace = LoadTrace(slot_list)
        dev = camcorder_device_params()
        m1 = PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        m2 = PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        r_fast = simulate_fast(
            m1, trace, max_deficit_fraction=1.0, max_segment=max_segment
        )
        r_scalar = SlotSimulator(
            m2, max_deficit_fraction=1.0, max_segment=max_segment
        ).run(trace)
        assert r_fast == r_scalar


def _clamped_cumsum_reference(deltas, initial, capacity):
    """The scalar ``ChargeStorage._apply`` recurrence, verbatim."""
    cur = initial
    bled = 0.0
    deficit = 0.0
    charges = [initial]
    for d in deltas:
        new = cur + d
        if new > capacity:
            bled += new - capacity
            cur = capacity
        elif new < 0:
            deficit += -new
            cur = 0.0
        else:
            cur = new
        charges.append(cur)
    return charges, bled, deficit


deltas_strategy = st.lists(
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    min_size=0,
    max_size=60,
)


class TestClampedCumsum:
    @given(
        deltas_strategy,
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.5, max_value=40.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_reference_exactly(self, deltas, frac, capacity):
        initial = frac * capacity
        arr = np.asarray(deltas, dtype=float)
        charges, bled, deficit = clamped_cumsum(arr, initial, capacity)
        ref_charges, ref_bled, ref_deficit = _clamped_cumsum_reference(
            deltas, initial, capacity
        )
        assert charges.tolist() == ref_charges  # bit-exact, not approx
        assert bled == ref_bled
        assert deficit == ref_deficit

    @given(
        deltas_strategy,
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.5, max_value=40.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_pure_sequential_path_identical(self, deltas, frac, capacity):
        # max_rescans=0 forces the compiled-float sequential tail from
        # the first element; values must not depend on the strategy.
        initial = frac * capacity
        arr = np.asarray(deltas, dtype=float)
        assert [
            a.tolist() if isinstance(a, np.ndarray) else a
            for a in clamped_cumsum(arr, initial, capacity, max_rescans=0)
        ] == [
            a.tolist() if isinstance(a, np.ndarray) else a
            for a in clamped_cumsum(arr, initial, capacity)
        ]

    def test_seed_accumulators_carry_through(self):
        arr = np.asarray([10.0, -20.0], dtype=float)
        _, bled, deficit = clamped_cumsum(
            arr, 0.0, 5.0, bled=1.5, deficit=2.5
        )
        assert bled == 1.5 + 5.0
        assert deficit == 2.5 + 15.0


segments_strategy = st.lists(
    st.builds(
        Segment,
        st.floats(min_value=1e-3, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.sampled_from(["standby", "pd", "sleep", "wu", "run"]),
    ),
    min_size=0,
    max_size=20,
)


class TestChunkSegmentsProperties:
    @given(segments_strategy, st.floats(min_value=0.5, max_value=30.0))
    @settings(max_examples=200, deadline=None)
    def test_chunking_preserves_totals_and_bound(self, segments, max_segment):
        out = chunk_segments(segments, max_segment)
        assert sum(s.duration for s in out) == pytest.approx(
            sum(s.duration for s in segments), rel=1e-9
        )
        assert sum(s.duration * s.i_load for s in out) == pytest.approx(
            sum(s.duration * s.i_load for s in segments), rel=1e-9
        )
        limit = max_segment * (1.0 + 1e-12)
        assert all(s.duration <= limit for s in out)
        assert all(
            (s.i_load, s.kind) in {(o.i_load, o.kind) for o in segments}
            for s in out
        )

    def test_few_ulp_overshoot_passes_unsplit(self):
        # A duration a hair over the limit (accumulated float noise on a
        # nominally equal slot) must not split into a chunk plus a
        # ~zero-length re-decision.
        seg = Segment(10.0 * (1.0 + 1e-13), 0.4, "run")
        assert chunk_segments([seg], 10.0) == [seg]

    def test_none_limit_is_identity(self):
        segs = [Segment(50.0, 0.2, "sleep")]
        assert chunk_segments(segs, None) is segs
