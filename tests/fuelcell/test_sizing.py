"""Stack-sizing (hybridization argument) tests."""

import pytest

from repro.devices.camcorder import camcorder_device_params
from repro.errors import ConfigurationError
from repro.fuelcell.sizing import downsizing_curve, required_fc_output
from repro.workload.mpeg import generate_mpeg_trace
from repro.workload.trace import LoadTrace, TaskSlot


@pytest.fixture(scope="module")
def trace():
    return generate_mpeg_trace(duration_s=600.0, seed=5)


@pytest.fixture(scope="module")
def device():
    return camcorder_device_params()


class TestRequiredOutput:
    def test_zero_storage_needs_peak(self, trace, device):
        r = required_fc_output(trace, device, storage_capacity=0.0)
        assert r.hybrid_if_max == pytest.approx(r.peak_current)
        assert r.downsizing_factor == pytest.approx(1.0)

    def test_requirement_bounded_by_average_and_peak(self, trace, device):
        r = required_fc_output(trace, device, storage_capacity=6.0)
        assert r.average_current <= r.hybrid_if_max <= r.peak_current

    def test_monotone_in_capacity(self, trace, device):
        curve = downsizing_curve(trace, device, capacities=(0.0, 2.0, 6.0, 24.0))
        needs = [r.hybrid_if_max for r in curve.values()]
        assert needs == sorted(needs, reverse=True)

    def test_large_buffer_approaches_average(self, trace, device):
        r = required_fc_output(trace, device, storage_capacity=500.0)
        assert r.hybrid_if_max == pytest.approx(r.average_current, rel=0.02)

    def test_papers_supercap_downsizes_at_least_2x(self, trace, device):
        # Section 2.2's claim with the paper's own 6 A-s buffer.
        r = required_fc_output(trace, device, storage_capacity=6.0)
        assert r.downsizing_factor > 2.0

    def test_feasibility_is_tight(self, trace, device):
        # Just below the reported requirement must be infeasible.
        from repro.fuelcell.sizing import _feasible, _load_profile

        r = required_fc_output(trace, device, storage_capacity=6.0)
        profile = _load_profile(trace, device, sleep=True)
        assert _feasible(profile, r.hybrid_if_max + 1e-3, 6.0, 3.0)
        assert not _feasible(profile, r.hybrid_if_max - 5e-3, 6.0, 3.0)

    def test_sleep_reduces_requirement(self, device):
        # Sleeping lowers idle demand -> smaller stack suffices.
        trace = LoadTrace([TaskSlot(15.0, 3.0, 1.2)] * 10)
        with_sleep = required_fc_output(trace, device, 2.0, sleep=True)
        without = required_fc_output(trace, device, 2.0, sleep=False)
        assert with_sleep.hybrid_if_max <= without.hybrid_if_max + 1e-9

    def test_validation(self, trace, device):
        with pytest.raises(ConfigurationError):
            required_fc_output(trace, device, storage_capacity=-1.0)
        with pytest.raises(ConfigurationError):
            required_fc_output(trace, device, 6.0, storage_initial=7.0)
