"""The 4-10x claim: FC packages outlast batteries of the same size.

The paper's introduction motivates fuel cells with: "an FC package is
expected to generate power longer (4 to 10X) than a battery package of
the same size and weight."  This module checks that arithmetic for the
camcorder workload: given a pack mass budget, compare the runtime of a
Li-ion battery pack against an FC system (stack + balance of plant +
hydrogen storage) at the *system* level -- the FC's usable specific
energy must be discounted by its conversion efficiency, the battery's
by its depth of discharge.

Representative constants (documented, overridable): Li-ion packs at
120-180 Wh/kg; small H2-hydride or cartridge systems at 400-1500 Wh/kg
of *chemical* energy after packaging.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PackModel:
    """An energy pack with a usable-energy discount.

    Attributes
    ----------
    specific_energy_wh_kg:
        Chemical/stored energy per kilogram of pack (Wh/kg).
    usable_fraction:
        Fraction actually deliverable to the load: depth-of-discharge
        and converter losses for a battery; system efficiency for an FC.
    """

    specific_energy_wh_kg: float
    usable_fraction: float

    def __post_init__(self) -> None:
        if self.specific_energy_wh_kg <= 0:
            raise ConfigurationError("specific energy must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise ConfigurationError("usable fraction must be in (0, 1]")

    def usable_energy_wh(self, mass_kg: float) -> float:
        """Deliverable energy (Wh) of a ``mass_kg`` pack."""
        if mass_kg <= 0:
            raise ConfigurationError("pack mass must be positive")
        return self.specific_energy_wh_kg * self.usable_fraction * mass_kg

    def runtime_hours(self, mass_kg: float, load_power_w: float) -> float:
        """Runtime (h) sustaining ``load_power_w`` from a ``mass_kg`` pack."""
        if load_power_w <= 0:
            raise ConfigurationError("load power must be positive")
        return self.usable_energy_wh(mass_kg) / load_power_w


#: Representative Li-ion pack: 150 Wh/kg, 80 % usable after DoD + converter.
LI_ION_PACK = PackModel(specific_energy_wh_kg=150.0, usable_fraction=0.80)

#: Conservative small H2 system (hydride cartridge + stack + BoP):
#: 700 Wh/kg chemical, ~35 % system efficiency (the paper's eta_s band).
FC_PACK_LOW = PackModel(specific_energy_wh_kg=700.0, usable_fraction=0.35)

#: Optimistic compressed-cartridge system: 1500 Wh/kg at 40 %.
FC_PACK_HIGH = PackModel(specific_energy_wh_kg=1500.0, usable_fraction=0.40)


@dataclass(frozen=True)
class DensityComparison:
    """Runtime comparison of equal-mass packs."""

    battery_hours: float
    fc_low_hours: float
    fc_high_hours: float

    @property
    def advantage_low(self) -> float:
        """Conservative FC-over-battery runtime ratio."""
        return self.fc_low_hours / self.battery_hours

    @property
    def advantage_high(self) -> float:
        """Optimistic FC-over-battery runtime ratio."""
        return self.fc_high_hours / self.battery_hours

    @property
    def matches_paper_band(self) -> bool:
        """True when the 4-10x claim falls inside [low, high]."""
        return self.advantage_low <= 10.0 and self.advantage_high >= 4.0


def compare_packs(
    load_power_w: float,
    mass_kg: float = 0.5,
    battery: PackModel = LI_ION_PACK,
    fc_low: PackModel = FC_PACK_LOW,
    fc_high: PackModel = FC_PACK_HIGH,
) -> DensityComparison:
    """Equal-mass runtime comparison at a given average load power."""
    return DensityComparison(
        battery_hours=battery.runtime_hours(mass_kg, load_power_w),
        fc_low_hours=fc_low.runtime_hours(mass_kg, load_power_w),
        fc_high_hours=fc_high.runtime_hours(mass_kg, load_power_w),
    )


def camcorder_comparison(mass_kg: float = 0.5) -> DensityComparison:
    """The claim evaluated at the camcorder's average load power.

    Uses the Experiment-1 trace's whole-trace average power under DPM
    (idle at the SLEEP level) -- about 6 W.
    """
    from ..devices.camcorder import camcorder_device_params
    from ..workload.mpeg import generate_mpeg_trace

    trace = generate_mpeg_trace()
    dev = camcorder_device_params()
    avg_current = trace.average_current(dev.i_slp)
    return compare_packs(load_power_w=12.0 * avg_current, mass_kg=mass_kg)
