"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.synthetic import (
    bursty_slots,
    experiment2_trace,
    exponential_slots,
    pareto_slots,
    uniform_slots,
)


class TestUniform:
    def test_ranges_respected(self):
        trace = uniform_slots(
            200, idle_range=(5, 25), active_range=(2, 4), current_range=(1.0, 1.33),
            seed=1,
        )
        for s in trace:
            assert 5 <= s.t_idle <= 25
            assert 2 <= s.t_active <= 4
            assert 1.0 <= s.i_active <= 1.33

    def test_deterministic(self):
        a = uniform_slots(10, (5, 25), (2, 4), (1, 1.3), seed=9)
        b = uniform_slots(10, (5, 25), (2, 4), (1, 1.3), seed=9)
        assert a == b

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigurationError):
            uniform_slots(0, (5, 25), (2, 4), (1, 1.3))

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            uniform_slots(5, (25, 5), (2, 4), (1, 1.3))


class TestExperiment2:
    def test_paper_parameters(self):
        trace = experiment2_trace(seed=0)
        assert len(trace) == 100
        idles = np.array([s.t_idle for s in trace])
        currents = np.array([s.i_active for s in trace])
        assert idles.min() >= 5 and idles.max() <= 25
        # Powers 12-16 W on 12 V -> 1.0-1.333 A.
        assert currents.min() >= 1.0 and currents.max() <= 16 / 12

    def test_n_slots_override(self):
        assert len(experiment2_trace(n_slots=17)) == 17


class TestExponential:
    def test_mean_close_to_parameter(self):
        trace = exponential_slots(4000, mean_idle=10.0, mean_active=3.0,
                                  i_active=1.2, seed=4)
        idles = np.array([s.t_idle for s in trace])
        assert idles.mean() == pytest.approx(10.0, rel=0.1)

    def test_min_active_enforced(self):
        trace = exponential_slots(500, 10.0, 0.05, 1.2, min_active=0.1, seed=5)
        assert min(s.t_active for s in trace) >= 0.1

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ConfigurationError):
            exponential_slots(10, 0.0, 3.0, 1.2)


class TestPareto:
    def test_heavy_tail(self):
        trace = pareto_slots(4000, idle_scale=5.0, idle_shape=1.5,
                             t_active=3.0, i_active=1.2, seed=6)
        idles = np.array([s.t_idle for s in trace])
        assert idles.min() >= 5.0
        # Heavy tail: max far beyond the median.
        assert idles.max() > 10 * np.median(idles)

    def test_cap_applies(self):
        trace = pareto_slots(500, 5.0, 1.5, 3.0, 1.2, idle_cap=30.0, seed=6)
        assert max(s.t_idle for s in trace) <= 30.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            pareto_slots(10, 5.0, 0.0, 3.0, 1.2)


class TestBursty:
    def test_structure(self):
        trace = bursty_slots(
            n_bursts=3, burst_length=4, idle_in_burst=2.0,
            idle_between_bursts=60.0, t_active=3.0, i_active=1.2,
            jitter=0.0, seed=7,
        )
        assert len(trace) == 12
        idles = [s.t_idle for s in trace]
        # First slot of bursts 2 and 3 carries the long gap.
        assert idles[4] == pytest.approx(60.0)
        assert idles[8] == pytest.approx(60.0)
        assert idles[1] == pytest.approx(2.0)

    def test_jitter_bounds(self):
        trace = bursty_slots(2, 3, 10.0, 100.0, 3.0, 1.2, jitter=0.1, seed=8)
        for s in trace:
            assert s.t_idle == pytest.approx(10.0, rel=0.11) or s.t_idle == pytest.approx(100.0, rel=0.11)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            bursty_slots(2, 3, 10.0, 100.0, 3.0, 1.2, jitter=1.0)
