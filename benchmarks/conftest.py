"""Benchmark-harness configuration.

Every bench regenerates one table or figure of the paper, prints the
rows/series the paper reports (visible with ``pytest benchmarks/ -s``,
and always written to ``benchmarks/out/``), and times the underlying
computation with pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    """Directory where benches drop their regenerated tables/series."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(out_dir):
    """Print a report block and mirror it to benchmarks/out/<name>.txt.

    Pass ``data=`` (any JSON-serializable mapping) to also drop a
    machine-readable ``<name>.json`` next to the text -- CI uploads
    those as artifacts so speedup numbers are diffable across runs.
    """

    def _emit(name: str, text: str, data: dict | None = None) -> None:
        print(f"\n{text}\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (out_dir / f"{name}.json").write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n"
            )

    return _emit


@pytest.fixture
def kernel_record(out_dir):
    """Merge one section into the consolidated ``BENCH_kernel.json``.

    The vectorized-kernel benches each own one section (single-trace,
    batch, fc batch, storage recurrence); merging instead of rewriting
    keeps the file complete under ``-k`` partial runs, and
    ``check_kernel_regression.py`` compares its speedups against the
    committed baseline in CI.
    """

    def _record(section: str, data: dict) -> None:
        path = out_dir / "BENCH_kernel.json"
        merged = json.loads(path.read_text()) if path.exists() else {}
        merged[section] = data
        merged["host"] = {"cpus": os.cpu_count()}
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    return _record
