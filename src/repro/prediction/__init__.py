"""Idle/active-period predictors (paper refs [1], [2], [3])."""

from .base import Predictor, ConstantPredictor, LastValuePredictor, PerfectPredictor
from .exponential import ExponentialAveragePredictor
from .regression import RegressionPredictor
from .learning_tree import LearningTreePredictor
from .ensemble import EnsemblePredictor

__all__ = [
    "Predictor",
    "ConstantPredictor",
    "LastValuePredictor",
    "PerfectPredictor",
    "ExponentialAveragePredictor",
    "RegressionPredictor",
    "LearningTreePredictor",
    "EnsemblePredictor",
]
