"""One-at-a-time sensitivity of the Table-2 result to every parameter.

Which of the paper's measured constants actually carry the result?
Each knob is perturbed by +-`relative` around its paper value while
everything else stays fixed; the response is FC-DPM's normalized fuel
(fraction of Conv-DPM) and its saving versus ASAP-DPM.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..config import CamcorderConstants
from ..core.manager import PowerManager
from ..devices.camcorder import camcorder_device_params
from ..errors import ConfigurationError
from ..fuelcell.efficiency import LinearSystemEfficiency
from ..sim.slotsim import simulate_policies
from ..workload.mpeg import generate_mpeg_trace


@dataclass(frozen=True)
class SensitivityPoint:
    """Result of one perturbed run."""

    parameter: str
    factor: float
    fc_normalized: float
    fc_saving_vs_asap: float


def _run_experiment(
    alpha: float = 0.45,
    beta: float = 0.13,
    storage_capacity: float = 6.0,
    rho: float = 0.5,
    p_sleep: float = 2.40,
    idle_scale: float = 1.0,
    seed: int = 2007,
) -> tuple[float, float]:
    """Experiment 1 with the given knob values; returns
    ``(fc_normalized, fc_saving_vs_asap)``."""
    model = LinearSystemEfficiency(alpha=alpha, beta=beta)
    cam = CamcorderConstants(p_sleep=p_sleep)
    trace = generate_mpeg_trace(seed=seed, camcorder=cam)
    if idle_scale != 1.0:
        trace = trace.scaled(idle=idle_scale)
    dev = camcorder_device_params(constants=cam)
    managers = [
        PowerManager.conv_dpm(dev, model=model, storage_capacity=storage_capacity,
                              storage_initial=storage_capacity / 2, rho=rho),
        PowerManager.asap_dpm(dev, model=model, storage_capacity=storage_capacity,
                              storage_initial=storage_capacity / 2, rho=rho),
        PowerManager.fc_dpm(dev, model=model, storage_capacity=storage_capacity,
                            storage_initial=storage_capacity / 2, rho=rho),
    ]
    results = simulate_policies(trace, managers)
    conv = results["conv-dpm"].fuel
    fc = results["fc-dpm"].fuel
    asap = results["asap-dpm"].fuel
    return fc / conv, 1.0 - fc / asap


#: The perturbable knobs: name -> kwargs-producing closure of the factor.
KNOBS: dict[str, Callable[[float], dict]] = {
    "alpha": lambda f: {"alpha": 0.45 * f},
    "beta": lambda f: {"beta": 0.13 * f},
    "storage_capacity": lambda f: {"storage_capacity": 6.0 * f},
    "rho": lambda f: {"rho": min(0.5 * f, 0.95)},
    "p_sleep": lambda f: {"p_sleep": 2.40 * f},
    "idle_scale": lambda f: {"idle_scale": f},
}


def sensitivity_analysis(
    relative: float = 0.2,
    seed: int = 2007,
    knobs=None,
) -> dict[str, tuple[SensitivityPoint, SensitivityPoint, SensitivityPoint]]:
    """OAT sensitivity: each knob at ``1-relative``, 1, ``1+relative``.

    Returns ``{knob: (low, nominal, high)}``.
    """
    if not 0 < relative < 1:
        raise ConfigurationError("relative perturbation must be in (0, 1)")
    names = list(KNOBS) if knobs is None else list(knobs)
    unknown = set(names) - set(KNOBS)
    if unknown:
        raise ConfigurationError(f"unknown knobs: {sorted(unknown)}")

    nominal_fc, nominal_saving = _run_experiment(seed=seed)
    out = {}
    for name in names:
        points = []
        for factor in (1.0 - relative, 1.0, 1.0 + relative):
            if factor == 1.0:
                fc, saving = nominal_fc, nominal_saving
            else:
                fc, saving = _run_experiment(seed=seed, **KNOBS[name](factor))
            points.append(
                SensitivityPoint(
                    parameter=name,
                    factor=factor,
                    fc_normalized=fc,
                    fc_saving_vs_asap=saving,
                )
            )
        out[name] = tuple(points)
    return out


def tornado_ranking(
    analysis: dict[str, tuple[SensitivityPoint, ...]],
) -> list[tuple[str, float]]:
    """Rank knobs by the swing they induce on FC-DPM's normalized fuel.

    Returns ``[(knob, |high - low|), ...]`` sorted descending -- the
    data behind a tornado chart.
    """
    ranking = [
        (name, abs(points[-1].fc_normalized - points[0].fc_normalized))
        for name, points in analysis.items()
    ]
    return sorted(ranking, key=lambda kv: kv[1], reverse=True)
