"""Fuel-cell-aware dynamic voltage scaling (the authors' prior work).

The paper's introduction builds on two earlier results by the same
group: DVS for an FC hybrid with a *fixed* FC output level (Zhuo et
al., DAC 2006, paper ref [10]) and with *multiple* output levels
(ISLPED 2006, ref [11]).  Their shared message -- maximize FC lifetime
by minimizing the energy *delivered from the source*, not the energy
the device consumes -- is the premise FC-DPM starts from, so this
subpackage reproduces it:

* :mod:`repro.dvs.cpu` -- a discrete frequency/voltage CPU model;
* :mod:`repro.dvs.tasks` -- frame-based real-time task sets;
* :mod:`repro.dvs.policies` -- no-DVS, CPU-energy-minimal DVS, and the
  fuel-minimal FC-aware DVS;
* :mod:`repro.dvs.sim` -- frame-by-frame simulation on the hybrid
  source, comparable with the DPM experiments.
"""

from .cpu import CPULevel, CPUModel
from .tasks import Frame, FrameTaskSet
from .policies import (
    DVSPolicy,
    NoDVSPolicy,
    EnergyMinimalDVS,
    FuelAwareDVS,
    JointLevelDVS,
)
from .sim import DVSSimulator, DVSResult

__all__ = [
    "CPULevel",
    "CPUModel",
    "Frame",
    "FrameTaskSet",
    "DVSPolicy",
    "NoDVSPolicy",
    "EnergyMinimalDVS",
    "FuelAwareDVS",
    "JointLevelDVS",
    "DVSSimulator",
    "DVSResult",
]
