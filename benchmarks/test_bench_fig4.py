"""Fig. 4 / Section 3.2 bench: the motivational single-slot example."""

from repro.analysis.figures import fig4_motivational
from repro.analysis.report import format_table


def test_bench_fig4_motivational(benchmark, emit):
    result = benchmark(fig4_motivational)
    paper_reading = fig4_motivational(conv_uses_paper_ifc=True)

    rows = [
        ["setting", "fuel (A-s)", "paper (A-s)"],
        ["(a) conv-dpm (Eq.4 Ifc=1.306)", f"{result.fuel['conv-dpm']:.2f}", "36*"],
        ["(b) asap-dpm", f"{result.fuel['asap-dpm']:.2f}", "16"],
        ["(c) fc-dpm", f"{result.fuel['fc-dpm']:.2f}", "13.45"],
    ]
    report = "\n".join(
        [
            "FIG 4 / SEC 3.2 -- three FC output settings for one task slot",
            "slot: Ti=20 s @0.2 A, Ta=10 s @1.2 A, Cmax=200 A-s",
            format_table(rows),
            "(*) the paper's 36 A-s uses Ifc = IF = 1.2 A; Eq. (4) gives 39.18.",
            f"fc vs asap saving: {100 * result.fc_vs_asap_saving:.1f}% (paper 15.9%)",
            f"fc vs conv saving (paper reading): "
            f"{100 * paper_reading.fc_vs_conv_saving:.1f}% (paper 62.6%)",
        ]
    )
    emit("fig4", report)

    assert abs(result.fuel["fc-dpm"] - 13.45) < 0.01
    assert abs(result.fuel["asap-dpm"] - 16.08) < 0.02
