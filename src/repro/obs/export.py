"""Export sinks: JSONL span/metric dumps, Chrome traces, human summaries.

Three consumers, three formats:

* **JSONL** (``spans.jsonl``) -- one JSON object per line, spans first
  (``{"type": "span", ...}``) then metric records (``{"type":
  "metric", ...}``); greppable, streamable, schema-checked in CI.
* **Chrome trace** (``trace.json``) -- the ``chrome://tracing`` /
  Perfetto "trace event" format (complete ``"ph": "X"`` events), so a
  run can be inspected on a real timeline, parallel workers appearing
  as their own process tracks.
* **Summary** (:func:`trace_summary`) -- the ``fcdpm trace summary``
  rendering: the span tree with durations plus the top metrics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .metrics import METRICS_SCHEMA_VERSION
from .tracer import Span


def write_spans_jsonl(
    path: Path | str,
    spans: list[dict[str, Any]],
    metrics: dict[str, dict[str, Any]] | None = None,
) -> Path:
    """Write spans (and optionally a metrics snapshot) as JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for span in spans:
            fh.write(json.dumps(span, sort_keys=True, default=repr) + "\n")
        for key, data in (metrics or {}).items():
            record = dict(data)
            # The instrument dict's own "type" (counter/gauge/histogram)
            # moves to "kind"; "type" tags the JSONL record class.
            record["kind"] = record.pop("type", "counter")
            record.update(type="metric", schema=METRICS_SCHEMA_VERSION, key=key)
            fh.write(json.dumps(record, sort_keys=True, default=repr) + "\n")
    return path


def read_jsonl(path: Path | str) -> tuple[list[dict], list[dict]]:
    """Read a JSONL dump back; returns ``(span_dicts, metric_dicts)``."""
    spans: list[dict] = []
    metrics: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            (spans if record.get("type") == "span" else metrics).append(record)
    return spans, metrics


def write_chrome_trace(path: Path | str, spans: list[dict[str, Any]]) -> Path:
    """Write spans in the Chrome trace-event format (complete events).

    Timestamps are wall-clock microseconds relative to the earliest
    span, so coordinator and worker spans line up on one timeline;
    ``pid``/``tid`` map to real process/thread identities, which is how
    parallel chunks show up as separate tracks.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    t_base = min((s.get("t_wall", 0.0) for s in spans), default=0.0)
    events = []
    for s in spans:
        events.append(
            {
                "name": s["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (s.get("t_wall", 0.0) - t_base) * 1e6,
                "dur": (s.get("duration") or 0.0) * 1e6,
                "pid": s.get("pid", 0),
                "tid": s.get("thread", "") or 0,
                "args": s.get("attrs", {}),
            }
        )
    path.write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                   default=repr)
        + "\n"
    )
    return path


# -- human summary -----------------------------------------------------------


def _span_tree(spans: list[dict]) -> tuple[dict[str, list[dict]], list[dict]]:
    """Index spans by parent; returns ``(children_by_id, roots)``."""
    by_id = {s["span_id"]: s for s in spans}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for s in spans:
        parent = s.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    ordering = {id(s): i for i, s in enumerate(spans)}
    for kids in children.values():
        kids.sort(key=lambda s: (s.get("t_wall", 0.0), ordering[id(s)]))
    roots.sort(key=lambda s: (s.get("t_wall", 0.0), ordering[id(s)]))
    return children, roots


def trace_summary(
    spans: list[dict[str, Any]],
    metrics: dict[str, dict[str, Any]] | list[dict] | None = None,
    max_children: int = 8,
) -> str:
    """Render the span tree + key metrics as indented text.

    Sibling spans beyond ``max_children`` are folded into one
    ``... (+N more, total Xs)`` line -- a 600-slot scalar run stays
    readable.
    """
    children, roots = _span_tree(spans)
    lines: list[str] = [f"{len(spans)} spans"]

    def fmt(s: dict) -> str:
        dur = s.get("duration")
        dur_txt = f"{1e3 * dur:.2f} ms" if dur is not None else "open"
        attrs = s.get("attrs") or {}
        attr_txt = (
            " [" + ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) + "]"
            if attrs
            else ""
        )
        status = s.get("status", "ok")
        flag = "" if status == "ok" else f" !{status}"
        return f"{s['name']}  {dur_txt}{attr_txt}{flag}"

    def walk(s: dict, depth: int) -> None:
        lines.append("  " * depth + fmt(s))
        kids = children.get(s["span_id"], [])
        for kid in kids[:max_children]:
            walk(kid, depth + 1)
        if len(kids) > max_children:
            folded = kids[max_children:]
            total = sum(k.get("duration") or 0.0 for k in folded)
            lines.append(
                "  " * (depth + 1)
                + f"... (+{len(folded)} more, total {1e3 * total:.2f} ms)"
            )

    for root in roots:
        walk(root, 0)

    if metrics:
        if isinstance(metrics, list):  # JSONL metric records
            metrics = {m["key"]: m for m in metrics}
        lines.append("")
        lines.append(f"{len(metrics)} metrics")
        for key in sorted(metrics):
            data = metrics[key]
            # Registry snapshots say {"type": "histogram"}; JSONL metric
            # records carry the instrument class under "kind" instead.
            kind = data.get("kind") or data.get("type", "counter")
            if kind == "histogram":
                lines.append(
                    f"  {key}: n={data.get('count', 0)} "
                    f"mean={data.get('mean', 0.0):.6g} "
                    f"p50={data.get('p50', 0.0):.6g} "
                    f"p95={data.get('p95', 0.0):.6g}"
                )
            else:
                lines.append(f"  {key}: {data.get('value', 0.0):.6g}")
    return "\n".join(lines)


def write_trace_bundle(
    directory: Path | str,
    spans: list[dict[str, Any]],
    metrics: dict[str, dict[str, Any]] | None = None,
    manifest: "Any | None" = None,
) -> dict[str, Path]:
    """Write the standard trace artifact set into ``directory``.

    ``spans.jsonl`` + ``trace.json`` always; ``manifest.json`` when a
    :class:`~repro.obs.manifest.RunManifest` is given.  Returns the
    paths keyed by artifact name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "spans": write_spans_jsonl(directory / "spans.jsonl", spans, metrics),
        "chrome_trace": write_chrome_trace(directory / "trace.json", spans),
    }
    if manifest is not None:
        paths["manifest"] = manifest.write(directory / "manifest.json")
    return paths


__all__ = [
    "Span",
    "read_jsonl",
    "trace_summary",
    "write_chrome_trace",
    "write_spans_jsonl",
    "write_trace_bundle",
]
