"""Ordered parallel map over a process pool, with a serial fallback.

:class:`ParallelMap` is the one dispatch primitive every experiment
layer shares (``run_seeds``, ``downsizing_curve``, the ablation sweeps,
``full_report``).  Design constraints, in order:

1. **Determinism** -- results come back in input order and are
   bit-identical to a serial run; tasks are dispatched in fixed
   contiguous chunks (no work stealing), so the computation itself is
   independent of scheduling.
2. **Graceful degradation** -- ``workers <= 1`` runs inline with zero
   pool overhead, and any *infrastructure* failure (unpicklable
   callable, fork failure, broken pool) silently falls back to serial
   execution; task exceptions still propagate.
3. **Observability** -- per-task wall-clock timings are collected in
   :class:`MapStats` either way, so benchmarks can report speedups and
   stragglers without instrumenting the task function.
"""

from __future__ import annotations

import os
import pickle
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: Exceptions that mean "the pool could not run this work" rather than
#: "the task failed" -- these trigger the serial fallback.  AttributeError
#: is how CPython reports an unpicklable local/lambda callable; a task
#: that genuinely raises one of these still propagates, because the
#: serial retry re-raises it.
_POOL_FAILURES = (
    pickle.PicklingError,
    BrokenProcessPool,
    OSError,
    ImportError,
    AttributeError,
)


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers=`` argument to an effective worker count.

    ``None`` and ``0`` mean "use every available core"; negative values
    are rejected; anything is capped to the host's usable CPU count
    (oversubscribing processes only adds overhead).
    """
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    if workers is None or workers == 0:
        return available
    if workers < 0:
        raise ConfigurationError("workers cannot be negative")
    return min(int(workers), max(available, 1))


@dataclass
class MapStats:
    """Timing record of one :meth:`ParallelMap.map` call."""

    #: ``"serial"`` or ``"process"``.
    mode: str = "serial"
    #: Effective worker count used for dispatch.
    workers: int = 1
    #: Number of tasks executed.
    n_tasks: int = 0
    #: Wall-clock of the whole map call (s).
    elapsed: float = 0.0
    #: Per-task wall-clock durations (s), in input order.
    task_durations: list[float] = field(default_factory=list)
    #: Why a process-pool dispatch fell back to serial, if it did.
    fallback_reason: str | None = None

    @property
    def total_task_time(self) -> float:
        """Sum of per-task durations -- the serial-equivalent work (s)."""
        return sum(self.task_durations)

    @property
    def mean_task_time(self) -> float:
        """Average per-task duration (s)."""
        if not self.task_durations:
            return 0.0
        return self.total_task_time / len(self.task_durations)

    @property
    def parallel_efficiency(self) -> float:
        """``total_task_time / (workers * elapsed)`` -- 1.0 is perfect."""
        if self.elapsed <= 0 or self.workers <= 0:
            return 0.0
        return self.total_task_time / (self.workers * self.elapsed)

    def summary(self) -> str:
        """One-line human-readable digest for benchmark output."""
        return (
            f"{self.mode} x{self.workers}: {self.n_tasks} tasks in "
            f"{self.elapsed:.3f}s (task mean {1e3 * self.mean_task_time:.2f}ms,"
            f" efficiency {self.parallel_efficiency:.2f})"
        )


def _run_chunk(fn: Callable, items: Sequence) -> tuple[list, list[float]]:
    """Worker-side chunk execution; returns (results, per-task seconds).

    Module-level so it pickles; ``fn`` itself must also be picklable for
    process dispatch (module-level functions and ``functools.partial``
    of them are; lambdas are not and trigger the serial fallback).
    """
    results = []
    durations = []
    for item in items:
        t0 = time.perf_counter()
        results.append(fn(item))
        durations.append(time.perf_counter() - t0)
    return results, durations


def _chunk_slices(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Deterministic contiguous chunking: ``n_chunks`` near-equal slices."""
    n_chunks = max(min(n_chunks, n_items), 1)
    base, extra = divmod(n_items, n_chunks)
    slices = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        slices.append((start, start + size))
        start += size
    return slices


class ParallelMap:
    """Ordered map over items, optionally fanned out across processes.

    Parameters
    ----------
    workers:
        Process count.  ``<= 1`` executes inline (serial); ``None``/``0``
        uses every available core.
    chunks_per_worker:
        Dispatch granularity: each worker receives about this many
        contiguous chunks.  More chunks smooth out stragglers at the
        cost of more pickling round-trips.

    After each :meth:`map` call, :attr:`stats` describes what happened.
    """

    def __init__(self, workers: int | None = 1, chunks_per_worker: int = 4) -> None:
        if chunks_per_worker < 1:
            raise ConfigurationError("chunks_per_worker must be >= 1")
        self.workers = resolve_workers(workers)
        self.chunks_per_worker = chunks_per_worker
        self.stats = MapStats()

    # -- execution ---------------------------------------------------------

    def _map_serial(self, fn: Callable, items: Sequence) -> list:
        results, durations = _run_chunk(fn, items)
        self.stats.mode = "serial"
        self.stats.workers = 1
        self.stats.task_durations = durations
        return results

    def _map_processes(self, fn: Callable, items: Sequence) -> list:
        slices = _chunk_slices(len(items), self.workers * self.chunks_per_worker)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(_run_chunk, fn, items[lo:hi]) for lo, hi in slices
            ]
            results: list = []
            durations: list[float] = []
            # Collect in submission order: ordering is positional, and a
            # failure surfaces on the earliest affected chunk.
            for future in futures:
                chunk_results, chunk_durations = future.result()
                results.extend(chunk_results)
                durations.extend(chunk_durations)
        self.stats.mode = "process"
        self.stats.workers = self.workers
        self.stats.task_durations = durations
        return results

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results in input order.

        Bit-identical to ``[fn(x) for x in items]``: the pool only
        changes *where* each call runs.  Exceptions raised by ``fn``
        propagate; pool-infrastructure failures retry the whole map
        serially (recorded in ``stats.fallback_reason``).
        """
        item_list = list(items)
        self.stats = MapStats(n_tasks=len(item_list))
        t0 = time.perf_counter()
        if not item_list:
            results = []
        elif self.workers <= 1:
            results = self._map_serial(fn, item_list)
        else:
            try:
                results = self._map_processes(fn, item_list)
            except _POOL_FAILURES as exc:
                self.stats.fallback_reason = f"{type(exc).__name__}: {exc}"
                results = self._map_serial(fn, item_list)
        self.stats.n_tasks = len(item_list)
        self.stats.elapsed = time.perf_counter() - t0
        return results


def parallel_map(
    fn: Callable, items: Iterable, workers: int | None = 1
) -> list:
    """One-shot convenience wrapper around :class:`ParallelMap`."""
    return ParallelMap(workers=workers).map(fn, items)
