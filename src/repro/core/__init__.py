"""The paper's contribution: fuel-optimal FC output setting and FC-DPM.

* :mod:`repro.core.optimizer` -- the Section-3 optimization framework
  (unconstrained, range-clamped, capacity-limited, ``Cend != Cini`` and
  transition-overhead variants, plus a multi-slot offline extension);
* :mod:`repro.core.fc_dpm` -- Algorithm FC-DPM (Fig. 5), the online
  controller built on prediction;
* :mod:`repro.core.baselines` -- the paper's competing controllers
  Conv-DPM and ASAP-DPM;
* :mod:`repro.core.manager` -- the joint device + source power manager.
"""

from .setting import SlotProblem, SlotSolution, FCOutputPlan, PlanSegment
from .optimizer import (
    optimal_flat_current,
    solve_slot,
    solve_slot_numeric,
    solve_horizon,
)
from .multilevel import (
    DiscreteSolution,
    default_levels,
    solve_slot_discrete,
    quantization_loss_curve,
)
from .baselines import (
    SourceController,
    SegmentContext,
    ConvDPMController,
    ASAPDPMController,
    StaticController,
)
from .fc_dpm import FCDPMController
from .receding import RecedingHorizonController
from .oracle_controller import OracleFCDPMController
from .manager import PowerManager

__all__ = [
    "SlotProblem",
    "SlotSolution",
    "FCOutputPlan",
    "PlanSegment",
    "optimal_flat_current",
    "solve_slot",
    "solve_slot_numeric",
    "solve_horizon",
    "DiscreteSolution",
    "default_levels",
    "solve_slot_discrete",
    "quantization_loss_curve",
    "SourceController",
    "SegmentContext",
    "ConvDPMController",
    "ASAPDPMController",
    "StaticController",
    "FCDPMController",
    "RecedingHorizonController",
    "OracleFCDPMController",
    "PowerManager",
]
