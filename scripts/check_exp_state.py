#!/usr/bin/env python3
"""Validate experiment ``state.json`` files (main and shard sidecars).

Thin CLI over :func:`repro.exp.state.validate_state_dict`, used by
``make exp-smoke`` and CI to assert that every state file under a
directory is structurally sound: schema version, status vocabulary,
spec round-trip, content-hash integrity, task-id agreement with the
spec's own expansion, and settled-tasks-have-cache-keys.

Accepts state files or directories (searched recursively for
``state*.json``).  Exit status: 0 when every file validates, 1 with one
problem per line otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _state_files(target: Path) -> list[Path]:
    if target.is_file():
        return [target]
    return sorted(target.rglob("state*.json"))


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(f"usage: {argv[0]} <state.json | directory>...", file=sys.stderr)
        return 2
    from repro.exp.state import validate_state_dict

    failures = 0
    checked = 0
    for arg in argv[1:]:
        target = Path(arg)
        files = _state_files(target)
        if not files:
            print(f"FAIL {target}: no state*.json files found")
            failures += 1
            continue
        for path in files:
            checked += 1
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(f"FAIL {path}: unreadable ({exc})")
                failures += 1
                continue
            problems = validate_state_dict(data)
            for problem in problems:
                print(f"FAIL {path}: {problem}")
            failures += len(problems)
    if failures:
        return 1
    print(f"ok {checked} state file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
