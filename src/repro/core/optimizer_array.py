"""Array-native Section-3.3 slot solver: ``solve_slot`` over columns.

:func:`solve_slot_array` evaluates the full closed-form decision
procedure of :func:`repro.core.optimizer.solve_slot` -- Eq. 11/13 flat
optimum, range clamp, both ``Cmax``/empty corrections with the ``IF,a``
re-derivation, bleeder/deficit residue accounting -- over a
structure-of-arrays batch of :class:`~repro.core.setting.SlotProblem`
rows in one set of NumPy passes.  The contract is *bit-exactness*: for
every row, every :class:`~repro.core.setting.SlotSolution` field equals
the scalar solver's output bit for bit.

Two rules make that hold:

* every arithmetic expression replays the scalar op order exactly
  (elementwise IEEE-754 ops are identical to their scalar forms when
  the association matches), and
* scalar ``min``/``max`` are replayed through :func:`_pymin` /
  :func:`_pymax` -- ``np.where`` forms that keep Python's
  return-the-first-argument-on-ties semantics.  ``np.maximum(-0.0,
  0.0)`` is ``+0.0`` but ``max(-0.0, 0.0)`` is ``-0.0``; the residue
  accounting (``max(-c_mid, 0.0)``) can hit exactly that case.

Both sides of every branch are computed for all rows and merged with
masks; divisions that are dead on a row (``t_idle == 0``) are discarded
by the mask, so the whole solve runs under ``np.errstate`` suppression.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from ..fuelcell.efficiency import SystemEfficiencyModel
from .optimizer import _EPS
from .setting import SlotProblem, SlotSolution


def _pymax(a, b):
    """Python ``max(a, b)`` over arrays: returns ``a`` on ties (signed zeros)."""
    return np.where(b > a, b, a)


def _pymin(a, b):
    """Python ``min(a, b)`` over arrays: returns ``a`` on ties (signed zeros)."""
    return np.where(b < a, b, a)


@dataclass(frozen=True)
class SlotProblemColumns:
    """A batch of :class:`SlotProblem` rows in structure-of-arrays form.

    Field semantics (and the derived-quantity op order) mirror
    :class:`SlotProblem` exactly; validation is the caller's problem --
    rows are assumed to satisfy the scalar constructor's invariants.
    """

    t_idle: np.ndarray
    t_active: np.ndarray
    i_idle: np.ndarray
    i_active: np.ndarray
    c_ini: np.ndarray
    c_end: np.ndarray
    c_max: np.ndarray
    sleeping: np.ndarray
    t_wu: np.ndarray
    t_pd: np.ndarray
    i_wu: np.ndarray
    i_pd: np.ndarray

    @classmethod
    def from_problems(cls, problems: Sequence[SlotProblem]) -> SlotProblemColumns:
        """Pack scalar problems into columns (float64 / bool)."""

        def col(name):
            return np.array([getattr(p, name) for p in problems], dtype=float)

        return cls(
            t_idle=col("t_idle"),
            t_active=col("t_active"),
            i_idle=col("i_idle"),
            i_active=col("i_active"),
            c_ini=col("c_ini"),
            c_end=col("c_end"),
            c_max=col("c_max"),
            sleeping=np.array([p.sleeping for p in problems], dtype=bool),
            t_wu=col("t_wu"),
            t_pd=col("t_pd"),
            i_wu=col("i_wu"),
            i_pd=col("i_pd"),
        )

    def __len__(self) -> int:
        return len(self.t_idle)

    def row(self, i: int) -> SlotProblem:
        """Rebuild row ``i`` as a scalar :class:`SlotProblem`."""
        return SlotProblem(
            t_idle=float(self.t_idle[i]),
            t_active=float(self.t_active[i]),
            i_idle=float(self.i_idle[i]),
            i_active=float(self.i_active[i]),
            c_ini=float(self.c_ini[i]),
            c_end=float(self.c_end[i]),
            c_max=float(self.c_max[i]),
            sleeping=bool(self.sleeping[i]),
            t_wu=float(self.t_wu[i]),
            t_pd=float(self.t_pd[i]),
            i_wu=float(self.i_wu[i]),
            i_pd=float(self.i_pd[i]),
        )

    # -- derived columns (SlotProblem property op order) --------------------

    @cached_property
    def t_active_eff(self) -> np.ndarray:
        return np.where(
            self.sleeping, self.t_active + self.t_wu + self.t_pd, self.t_active
        )

    @cached_property
    def active_demand(self) -> np.ndarray:
        base = self.i_active * self.t_active
        return np.where(
            self.sleeping, base + self.i_wu * self.t_wu + self.i_pd * self.t_pd, base
        )

    @cached_property
    def idle_demand(self) -> np.ndarray:
        return self.i_idle * self.t_idle

    @cached_property
    def total_demand(self) -> np.ndarray:
        return self.idle_demand + self.active_demand

    @cached_property
    def total_time(self) -> np.ndarray:
        return self.t_idle + self.t_active_eff


@dataclass(frozen=True)
class SlotSolutionColumns:
    """Batch solver output: one array per :class:`SlotSolution` field."""

    if_idle: np.ndarray
    if_active: np.ndarray
    ifc_idle: np.ndarray
    ifc_active: np.ndarray
    fuel: np.ndarray
    c_after_idle: np.ndarray
    c_after_slot: np.ndarray
    range_clamped: np.ndarray
    capacity_limited: np.ndarray
    bled: np.ndarray
    deficit: np.ndarray

    def __len__(self) -> int:
        return len(self.if_idle)

    def row(self, i: int) -> SlotSolution:
        """Rebuild row ``i`` as a scalar :class:`SlotSolution`."""
        return SlotSolution(
            if_idle=float(self.if_idle[i]),
            if_active=float(self.if_active[i]),
            ifc_idle=float(self.ifc_idle[i]),
            ifc_active=float(self.ifc_active[i]),
            fuel=float(self.fuel[i]),
            c_after_idle=float(self.c_after_idle[i]),
            c_after_slot=float(self.c_after_slot[i]),
            range_clamped=bool(self.range_clamped[i]),
            capacity_limited=bool(self.capacity_limited[i]),
            bled=float(self.bled[i]),
            deficit=float(self.deficit[i]),
        )


def solve_slot_array(
    cols: SlotProblemColumns, model: SystemEfficiencyModel
) -> SlotSolutionColumns:
    """Closed-form Section-3.3 solve of every row at once.

    Bit-exact against :func:`repro.core.optimizer.solve_slot` row for
    row on every solution field -- the scalar procedure's branches are
    computed on all rows and merged by mask, with every expression in
    the scalar op order (see the module docstring for the ``min``/``max``
    subtlety).  Rows must be valid :class:`SlotProblem` instances; the
    solver itself never leaves ``[if_min, if_max]``, so the fuel map is
    always evaluated in range.
    """
    lo, hi = model.if_min, model.if_max
    t_i = cols.t_idle
    t_a = cols.t_active_eff
    c_ini, c_end, c_max = cols.c_ini, cols.c_end, cols.c_max
    i_idle = cols.i_idle
    active_demand = cols.active_demand

    with np.errstate(divide="ignore", invalid="ignore"):
        # 1. flat optimum (Eq. 11/13) and range clamp.
        flat = _pymax((cols.total_demand + c_end - c_ini) / cols.total_time, 0.0)
        clamped_pos = ~((flat >= lo - _EPS) & (flat <= hi + _EPS))
        if_flat = _pymin(_pymax(flat, lo), hi)

        t_pos = t_i > 0.0

        # 2. t_idle > 0: Eq. 12 capacity check at the idle/active boundary.
        c_mid0 = c_ini + (if_flat - i_idle) * t_i
        over = t_pos & (c_mid0 > c_max + _EPS)
        if_over = (c_max - c_ini) / t_i + i_idle
        if_over = np.where(if_over < lo, lo, if_over)  # floor-overflow bleed
        under = t_pos & ~over & (c_mid0 < -_EPS)
        if_under = i_idle - c_ini / t_i
        if_under = np.where(if_under > hi, hi, if_under)
        capacity_limited = over | under
        if_i_pos = np.where(over, if_over, np.where(under, if_under, if_flat))

        # 3. re-derive IF,a from the charge balance where any constraint
        #    bit; elsewhere IF,a = IF,i stays flat.  The recompute of
        #    c_mid with an unchanged IF,i is bitwise the original.
        redo = t_pos & (capacity_limited | clamped_pos)
        c_mid_pos = c_ini + (if_i_pos - i_idle) * t_i
        bled_idle_pos = np.where(redo, _pymax(c_mid_pos - c_max, 0.0), 0.0)
        deficit_idle_pos = np.where(redo, _pymax(-c_mid_pos, 0.0), 0.0)
        c_mid_pos = np.where(redo, _pymin(_pymax(c_mid_pos, 0.0), c_max), c_mid_pos)
        if_a_redo = _pymin(
            _pymax((active_demand + c_end - c_mid_pos) / t_a, lo), hi
        )
        if_a_pos = np.where(redo, if_a_redo, if_i_pos)

        # 4. t_idle == 0: only the active output is free.
        if_a_free = (active_demand + c_end - c_ini) / t_a
        clamped_z = ~((if_a_free >= lo - _EPS) & (if_a_free <= hi + _EPS))
        if_a_z = _pymin(_pymax(if_a_free, lo), hi)

        # 5. merge the two top-level branches.
        if_i = np.where(t_pos, if_i_pos, if_a_z)
        if_a = np.where(t_pos, if_a_pos, if_a_z)
        c_mid = np.where(t_pos, c_mid_pos, c_ini)
        clamped = np.where(t_pos, clamped_pos, clamped_z)
        bled_idle = np.where(t_pos, bled_idle_pos, 0.0)
        deficit_idle = np.where(t_pos, deficit_idle_pos, 0.0)

        # 6. slot-end storage with range-limited IF,a; clip + residue.
        c_after = c_mid + if_a * t_a - active_demand
        bled_active = _pymax(c_after - c_max, 0.0)
        deficit_active = _pymax(-c_after, 0.0)
        c_after = _pymin(_pymax(c_after, 0.0), c_max)

    ifc_idle = model.fuel_map_array(if_i)
    ifc_active = model.fuel_map_array(if_a)
    return SlotSolutionColumns(
        if_idle=if_i,
        if_active=if_a,
        ifc_idle=ifc_idle,
        ifc_active=ifc_active,
        fuel=ifc_idle * cols.t_idle + ifc_active * t_a,
        c_after_idle=c_mid,
        c_after_slot=c_after,
        range_clamped=clamped,
        capacity_limited=capacity_limited,
        bled=bled_idle + bled_active,
        deficit=deficit_idle + deficit_active,
    )
