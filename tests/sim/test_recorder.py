"""Recorder time-series tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.recorder import Recorder, Sample


def sample(t, dt, i_f=0.5, i_load=0.2, kind="standby"):
    return Sample(
        t=t, dt=dt, i_load=i_load, i_f=i_f, i_fc=0.4,
        storage_charge=1.0, fuel_cumulative=t * 0.4, kind=kind,
    )


class TestRecorder:
    def test_add_and_duration(self):
        r = Recorder()
        r.add(sample(0.0, 10.0))
        r.add(sample(10.0, 5.0))
        assert len(r) == 2
        assert r.duration == 15.0

    def test_time_must_not_go_backwards(self):
        r = Recorder()
        r.add(sample(10.0, 5.0))
        with pytest.raises(SimulationError):
            r.add(sample(3.0, 1.0))

    def test_step_series(self):
        r = Recorder()
        r.add(sample(0.0, 10.0, i_f=0.5))
        r.add(sample(10.0, 5.0, i_f=0.9))
        times, values = r.step_series("i_f")
        assert list(times) == [0.0, 10.0, 15.0]
        assert list(values) == [0.5, 0.9]

    def test_step_series_t_max(self):
        r = Recorder()
        r.add(sample(0.0, 10.0))
        r.add(sample(10.0, 5.0))
        r.add(sample(15.0, 5.0))
        times, values = r.step_series("i_f", t_max=12.0)
        assert len(values) == 2

    def test_resample_uniform_grid(self):
        r = Recorder()
        r.add(sample(0.0, 10.0, i_f=0.5))
        r.add(sample(10.0, 10.0, i_f=0.9))
        grid, vals = r.resample("i_f", dt=1.0)
        assert len(grid) == len(vals) == 20
        assert vals[5] == 0.5
        assert vals[15] == 0.9

    def test_resample_empty(self):
        grid, vals = Recorder().resample("i_f", dt=1.0)
        assert grid.size == 0 and vals.size == 0

    def test_resample_rejects_bad_dt(self):
        with pytest.raises(SimulationError):
            Recorder().resample("i_f", dt=0.0)

    def test_csv_export(self):
        r = Recorder()
        r.add(sample(0.0, 10.0, kind="sleep"))
        text = r.to_csv()
        lines = text.strip().split("\n")
        assert lines[0].startswith("t_s,dt_s")
        assert "sleep" in lines[1]

    def test_samples_immutable_view(self):
        r = Recorder()
        r.add(sample(0.0, 1.0))
        assert isinstance(r.samples, tuple)


class TestSourceKindRecording:
    def test_sample_defaults_are_sourceless(self):
        s = sample(0.0, 1.0)
        assert s.source_kind == ""
        assert s.stack_currents == ()

    def test_csv_exports_source_kind_and_stack_currents(self):
        r = Recorder()
        r.add(
            Sample(
                t=0.0, dt=5.0, i_load=0.8, i_f=0.8, i_fc=1.0,
                storage_charge=3.0, fuel_cumulative=1.0, kind="run",
                source_kind="multi-stack", stack_currents=(0.4, 0.4),
            )
        )
        text = r.to_csv()
        header, row = text.strip().split("\n")
        assert header.endswith("source_kind,stack_a")
        assert "multi-stack" in row
        assert "0.4|0.4" in row

    def test_recorded_run_carries_source_kind(self, camcorder_params):
        from repro.core.manager import PowerManager
        from repro.sim.slotsim import SlotSimulator
        from repro.workload.trace import LoadTrace, TaskSlot

        mgr = PowerManager.fc_dpm(
            camcorder_params, storage_capacity=6.0, storage_initial=3.0
        )
        trace = LoadTrace([TaskSlot(t_idle=12.0, t_active=3.0, i_active=1.2)])
        result = SlotSimulator(mgr, record=True).run(trace)
        assert result.recorder is not None
        assert all(s.source_kind == "hybrid" for s in result.recorder.samples)
