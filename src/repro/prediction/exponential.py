"""Hwang-Wu exponential-average predictor (paper ref [1], Eq. 14/15).

The paper's FC-DPM uses this filter for both the idle period,

    T'_i(k) = rho * T'_i(k-1) + (1 - rho) * T_i(k-1),

and (with factor ``sigma``) the active period.  It is the classic
single-pole low-pass estimator: cheap, smooth, and biased toward recent
history as the factor shrinks.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, RangeError
from .base import Predictor


def exponential_average_scan(
    factor: float, initial: float, observations
) -> tuple[np.ndarray, float]:
    """Whole-trace predictions of the Eq. 14/15 filter, bit-exactly.

    Returns ``(predictions, final_estimate)`` where ``predictions[k]``
    is what :meth:`ExponentialAveragePredictor.predict` would return
    before observing ``observations[k]``, and ``final_estimate`` is the
    internal estimate after observing all of them.

    The recurrence ``e' = factor * e + (1 - factor) * x`` has a closed
    form as a weighted prefix sum, but evaluating that form would
    reassociate the floating-point operations and drift from the scalar
    predictor by ULPs.  Instead the gain terms ``(1 - factor) * x`` are
    computed elementwise (each product is the exact scalar product) and
    combined with a sequential Python fold that replays the scalar
    operation order verbatim -- the fold is two flops per observation,
    a negligible share of a kernel pass.
    """
    obs = np.asarray(observations, dtype=float)
    n = obs.shape[0]
    if n == 0:
        return np.empty(0, dtype=float), float(initial)
    if float(obs.min()) < 0:
        raise RangeError("length cannot be negative")
    gains = ((1 - factor) * obs).tolist()
    e = float(initial)
    preds = []
    append = preds.append
    for g in gains:
        append(e)
        e = factor * e + g
    return np.asarray(preds, dtype=float), e


def exponential_average_scan_batch(
    factor: float,
    initial: float,
    observations: np.ndarray,
    n_valid: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-stacked :func:`exponential_average_scan`: many traces at once.

    ``observations`` is ``(rows, slots)`` with ragged rows zero-padded
    past ``n_valid[row]``; every row starts from the same ``initial``
    (a batch shares one freshly built predictor configuration).
    Returns ``(predictions, final_estimates)`` where ``predictions[r,
    :n_valid[r]]`` and ``final_estimates[r]`` are bit-identical to the
    1D scan of row ``r``'s valid prefix -- the gain terms are the same
    elementwise products and the column fold replays the scalar
    operation order per row (``e' = factor * e + g``, frozen past each
    row's valid length).  Prediction columns at or past ``n_valid[row]``
    are unspecified.
    """
    obs = np.asarray(observations, dtype=float)
    if obs.ndim != 2:
        raise ConfigurationError("batch scan needs a 2D observation array")
    rows, width = obs.shape
    if rows == 0 or width == 0:
        return np.empty((rows, width), dtype=float), np.full(rows, float(initial))
    if float(obs.min()) < 0:
        raise RangeError("length cannot be negative")
    gains = (1 - factor) * obs
    preds = np.empty((rows, width), dtype=float)
    e = np.full(rows, float(initial))
    for k in range(width):
        preds[:, k] = e
        e = np.where(k < n_valid, factor * e + gains[:, k], e)
    return preds, e


class ExponentialAveragePredictor(Predictor):
    """Single-pole exponential average of period lengths.

    Parameters
    ----------
    factor:
        Smoothing factor (``rho`` for idle, ``sigma`` for active in the
        paper; both 0.5 in the experiments).  ``factor = 0`` degenerates
        to last-value prediction, ``factor -> 1`` to a frozen estimate.
    initial:
        Prediction before any observation (``T'(0)``).
    """

    def __init__(self, factor: float = 0.5, initial: float = 0.0) -> None:
        super().__init__()
        if not 0 <= factor < 1:
            raise ConfigurationError("smoothing factor must be in [0, 1)")
        if initial < 0:
            raise ConfigurationError("initial estimate cannot be negative")
        self.factor = factor
        self._estimate = initial
        self._initial = initial

    @property
    def estimate(self) -> float:
        """Current internal estimate ``T'`` (s)."""
        return self._estimate

    def predict(self) -> float:
        return self._remember(self._estimate)

    def _update(self, actual: float) -> None:
        self._estimate = self.factor * self._estimate + (1 - self.factor) * actual

    def commit_scan(self, observations, predictions, final_estimate: float) -> None:
        """Commit a whole predict/observe run computed by the scan.

        Leaves the predictor in the exact state a sequential
        ``predict(); observe(x)`` loop over ``observations`` would:
        the accuracy ledgers accumulate each signed error in order
        (``predictions`` must be the scan of this predictor's current
        state over the same observations), the internal estimate jumps
        to ``final_estimate``, and the last prediction is remembered.
        """
        obs = (
            observations.tolist()
            if isinstance(observations, np.ndarray)
            else list(observations)
        )
        if not obs:
            return
        error_sum = self._error_sum
        abs_error_sum = self._abs_error_sum
        for predicted, actual in zip(predictions.tolist(), obs):
            err = predicted - actual
            error_sum += err
            abs_error_sum += abs(err)
        self._error_sum = error_sum
        self._abs_error_sum = abs_error_sum
        self._n_observed += len(obs)
        self._estimate = float(final_estimate)
        self._remember(float(predictions[-1]))

    def reset(self) -> None:
        super().reset()
        self._estimate = self._initial
