"""Discrete frequency/voltage CPU model for the DVS substrate.

Dynamic power follows the classic alpha-power CMOS model
``P_dyn = C_eff * V^2 * f``; a voltage-dependent leakage term makes
race-to-idle attractive for *device* energy at low loads, which is
exactly the regime where CPU-energy-minimal DVS and fuel-minimal DVS
disagree (the prior-work claim this subpackage reproduces).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, RangeError


@dataclass(frozen=True)
class CPULevel:
    """One operating point of the processor.

    Attributes
    ----------
    frequency:
        Clock frequency (GHz, or any consistent cycle-rate unit).
    voltage:
        Supply voltage (V) at this frequency.
    """

    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        if self.frequency <= 0 or self.voltage <= 0:
            raise ConfigurationError("frequency and voltage must be positive")


class CPUModel:
    """A DVS-capable processor on the regulated 12 V rail.

    Parameters
    ----------
    levels:
        Operating points, sorted by ascending frequency.
    c_eff:
        Effective switched capacitance (W / (V^2 * GHz)) -- scales
        dynamic power.
    leakage_per_volt:
        Static power per volt of supply (W/V); modeled as ``k * V``.
    p_platform:
        Frequency-independent platform power while running (W) --
        memory, buses, peripherals.
    p_idle:
        Platform power while idling between frames (W).
    v_rail:
        Rail voltage used to convert power to current.
    """

    def __init__(
        self,
        levels: list[CPULevel],
        c_eff: float = 1.2,
        leakage_per_volt: float = 0.8,
        p_platform: float = 2.0,
        p_idle: float = 2.4,
        v_rail: float = 12.0,
    ) -> None:
        if not levels:
            raise ConfigurationError("need at least one operating point")
        freqs = [lv.frequency for lv in levels]
        if freqs != sorted(freqs) or len(set(freqs)) != len(freqs):
            raise ConfigurationError("levels must be strictly ascending in frequency")
        volts = [lv.voltage for lv in levels]
        if volts != sorted(volts):
            raise ConfigurationError("voltage must be non-decreasing with frequency")
        if min(c_eff, leakage_per_volt, p_platform, p_idle) < 0:
            raise ConfigurationError("power coefficients must be non-negative")
        if v_rail <= 0:
            raise ConfigurationError("rail voltage must be positive")
        self.levels = list(levels)
        self.c_eff = c_eff
        self.leakage_per_volt = leakage_per_volt
        self.p_platform = p_platform
        self.p_idle = p_idle
        self.v_rail = v_rail

    @classmethod
    def xscale_like(cls) -> "CPUModel":
        """An XScale-flavored 5-level processor (a common DVS testbed)."""
        return cls(
            levels=[
                CPULevel(0.15, 0.75),
                CPULevel(0.40, 1.00),
                CPULevel(0.60, 1.30),
                CPULevel(0.80, 1.60),
                CPULevel(1.00, 1.80),
            ],
            c_eff=2.8,
            leakage_per_volt=0.9,
            p_platform=2.0,
            p_idle=2.4,
        )

    # -- power/current ---------------------------------------------------------

    @property
    def f_max(self) -> float:
        """Highest available frequency."""
        return self.levels[-1].frequency

    def run_power(self, level: CPULevel) -> float:
        """Total power (W) while executing at ``level``."""
        dynamic = self.c_eff * level.voltage**2 * level.frequency
        leakage = self.leakage_per_volt * level.voltage
        return dynamic + leakage + self.p_platform

    def run_current(self, level: CPULevel) -> float:
        """Rail current (A) while executing at ``level``."""
        return self.run_power(level) / self.v_rail

    @property
    def idle_current(self) -> float:
        """Rail current (A) while idling between frames."""
        return self.p_idle / self.v_rail

    # -- timing ------------------------------------------------------------

    def execution_time(self, cycles: float, level: CPULevel) -> float:
        """Seconds to retire ``cycles`` giga-cycles at ``level``."""
        if cycles <= 0:
            raise RangeError("cycle count must be positive")
        return cycles / level.frequency

    def feasible_levels(self, cycles: float, deadline: float) -> list[CPULevel]:
        """Levels that finish ``cycles`` within ``deadline`` seconds."""
        if deadline <= 0:
            raise RangeError("deadline must be positive")
        return [
            lv for lv in self.levels if self.execution_time(cycles, lv) <= deadline
        ]

    def frame_charge(self, cycles: float, deadline: float, level: CPULevel) -> float:
        """Device charge (A-s) of one frame: run at ``level``, then idle.

        This is the quantity CPU-energy-minimal DVS minimizes.
        """
        t_run = self.execution_time(cycles, level)
        if t_run > deadline:
            raise RangeError(
                f"level {level.frequency} GHz misses the deadline "
                f"({t_run:.3f} s > {deadline:.3f} s)"
            )
        return self.run_current(level) * t_run + self.idle_current * (
            deadline - t_run
        )
