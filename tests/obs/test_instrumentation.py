"""Telemetry wired into the runtime/sim stack behaves as documented.

Integration-level checks: recording runs route scalar with the reason
emitted as a metric, per-slot spans agree with the Recorder's sample
timeline, parallel workers ship spans/metrics back to the coordinator,
and the result cache logs/counts code-fingerprint invalidations.
"""

import logging

import pytest

import repro.runtime.cache as cache_module
from repro.obs import OBS, observing
from repro.runtime.cache import ResultCache
from repro.runtime.parallel import ParallelMap
from repro.sim.vectorized import simulate_fast


def _square(x):
    return x * x


# -- sim routing + recorder agreement ----------------------------------------


class TestRecordedRunTelemetry:
    @pytest.fixture
    def traced_recorded_run(self, managers, small_trace):
        conv = managers[0]
        with observing() as obs:
            result = simulate_fast(conv, small_trace, record=True)
            spans = obs.tracer.export()
            snapshot = obs.metrics.snapshot()
        return result, spans, snapshot

    def test_recording_routes_scalar_with_reason_metric(
        self, traced_recorded_run
    ):
        result, spans, snapshot = traced_recorded_run
        assert result.recorder is not None
        assert snapshot["sim.route{path=scalar}"]["value"] == 1
        assert snapshot["sim.fast_ineligible{reason=record}"]["value"] == 1
        assert "sim.route{path=fast}" not in snapshot
        sim_span = next(s for s in spans if s["name"] == "sim.simulate")
        assert sim_span["attrs"]["route"] == "scalar"

    def test_decision_counters_cover_every_slot(
        self, traced_recorded_run, small_trace
    ):
        _, _, snapshot = traced_recorded_run
        slept = snapshot.get("dpm.decisions{slept=yes}", {}).get("value", 0)
        awake = snapshot.get("dpm.decisions{slept=no}", {}).get("value", 0)
        assert slept + awake == len(small_trace)

    def test_slot_spans_agree_with_recorder_samples(self, traced_recorded_run):
        result, spans, _ = traced_recorded_run
        slot_spans = sorted(
            (s for s in spans if s["name"] == "sim.slot"),
            key=lambda s: s["attrs"]["slot"],
        )
        assert [s["attrs"]["slot"] for s in slot_spans] == list(
            range(len(slot_spans))
        )
        # Slots tile the simulated timeline: each span ends where the
        # next begins...
        for prev, nxt in zip(slot_spans, slot_spans[1:]):
            assert prev["attrs"]["t_sim_end"] == pytest.approx(
                nxt["attrs"]["t_sim_start"]
            )
        # ...and every slot boundary is a Sample-row interval edge.
        edges = set()
        for sample in result.recorder.samples:
            edges.add(round(sample.t, 6))
            edges.add(round(sample.t + sample.dt, 6))
        for span in slot_spans:
            assert round(span["attrs"]["t_sim_start"], 6) in edges
            assert round(span["attrs"]["t_sim_end"], 6) in edges

    def test_fast_route_counts_when_eligible(self, managers, small_trace):
        conv = managers[0]
        with observing() as obs:
            simulate_fast(conv, small_trace)
            snapshot = obs.metrics.snapshot()
            spans = obs.tracer.export()
        assert snapshot["sim.route{path=fast}"]["value"] == 1
        assert "sim.fast_ineligible{reason=record}" not in snapshot
        sim_span = next(s for s in spans if s["name"] == "sim.simulate")
        assert sim_span["attrs"]["route"] == "fast"

    def test_disabled_emits_nothing(self, managers, small_trace):
        assert not OBS.enabled
        before = len(OBS.metrics)
        simulate_fast(managers[0], small_trace, record=True)
        assert len(OBS.metrics) == before


# -- parallel map telemetry --------------------------------------------------


class TestParallelTelemetry:
    def test_worker_spans_and_metrics_ship_back(self):
        pm = ParallelMap(workers=2)
        # Force a real pool even on a 1-core host.
        pm.workers = 2
        with observing() as obs:
            assert pm.map(_square, range(23)) == [x * x for x in range(23)]
            spans = obs.tracer.export()
            snapshot = obs.metrics.snapshot()

        map_span = next(s for s in spans if s["name"] == "parallel.map")
        chunk_spans = [s for s in spans if s["name"] == "parallel.chunk"]
        assert chunk_spans
        # Worker roots are re-parented under the coordinator's map span.
        assert all(s["parent_id"] == map_span["span_id"] for s in chunk_spans)
        assert map_span["attrs"]["mode"] == "process"

        n_chunks = len(pm.stats.chunk_durations)
        assert len(chunk_spans) == n_chunks
        assert snapshot["runtime.parallel.chunk_seconds"]["count"] == n_chunks
        assert snapshot["runtime.parallel.maps{mode=process}"]["value"] == 1
        assert "runtime.parallel.fallbacks" not in snapshot

    def test_chunk_stats_populate(self):
        pm = ParallelMap(workers=2)
        pm.workers = 2
        pm.map(_square, range(23))
        stats = pm.stats
        assert sum(stats.chunk_sizes) == 23
        assert len(stats.chunk_durations) == len(stats.chunk_sizes)
        assert len(stats.chunk_pids) == len(stats.chunk_sizes)
        assert 0.0 <= stats.chunk_latency_p50 <= stats.chunk_latency_p95
        assert "chunks" in stats.summary() and "p95" in stats.summary()

    def test_serial_map_has_in_process_chunk_spans(self):
        pm = ParallelMap(workers=1)
        with observing() as obs:
            pm.map(_square, range(5))
            spans = obs.tracer.export()
            snapshot = obs.metrics.snapshot()
        map_span = next(s for s in spans if s["name"] == "parallel.map")
        chunk_spans = [s for s in spans if s["name"] == "parallel.chunk"]
        assert chunk_spans
        assert all(s["parent_id"] == map_span["span_id"] for s in chunk_spans)
        assert snapshot["runtime.parallel.maps{mode=serial}"]["value"] == 1


# -- result cache invalidation -----------------------------------------------


class TestCacheInvalidation:
    def test_fingerprint_change_logs_and_counts(
        self, tmp_path, monkeypatch, caplog
    ):
        cache = ResultCache(root=tmp_path)
        monkeypatch.setattr(cache_module, "_FINGERPRINT", "aaaa0000")
        with observing() as obs:
            assert cache.cached("exp", {"seed": 1}, lambda: 10) == 10
            # Same fingerprint: a plain hit, no invalidation.
            assert cache.cached("exp", {"seed": 1}, lambda: 11) == 10
            snap = obs.metrics.snapshot()
            assert "runtime.cache.invalidated{namespace=exp}" not in snap

            # A code change: new fingerprint, old entry unreachable.
            monkeypatch.setattr(cache_module, "_FINGERPRINT", "bbbb1111")
            with caplog.at_level(logging.INFO, logger="repro.runtime.cache"):
                assert cache.cached("exp", {"seed": 1}, lambda: 12) == 12
            snap = obs.metrics.snapshot()

        assert snap["runtime.cache.invalidated{namespace=exp}"]["value"] == 1
        event = next(
            r for r in caplog.records if "cache.invalidated" in r.getMessage()
        )
        assert "old_fingerprint=aaaa0000" in event.getMessage()
        assert "new_fingerprint=bbbb1111" in event.getMessage()

    def test_sidecar_and_manifest_written(self, tmp_path, monkeypatch):
        cache = ResultCache(root=tmp_path)
        monkeypatch.setattr(cache_module, "_FINGERPRINT", "aaaa0000")
        cache.cached("exp", {"seed": 1}, lambda: 10)
        sidecars = list(tmp_path.glob("*.fp"))
        manifests = list(tmp_path.glob("*.manifest.json"))
        assert len(sidecars) == 1
        assert sidecars[0].read_text().strip() == "aaaa0000"
        assert len(manifests) == 1
        from repro.obs import validate_manifest
        import json

        data = json.loads(manifests[0].read_text())
        assert validate_manifest(data) == []
        assert data["name"] == "exp"
        assert data["route"] == "cached"
        assert data["fingerprint"] == "aaaa0000"

    def test_clear_removes_sidecars(self, tmp_path, monkeypatch):
        cache = ResultCache(root=tmp_path)
        monkeypatch.setattr(cache_module, "_FINGERPRINT", "aaaa0000")
        cache.cached("exp", {}, lambda: 1)
        assert cache.clear() == 1
        assert list(tmp_path.iterdir()) == []

    def test_hit_miss_counters(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        with observing() as obs:
            cache.cached("exp", {"a": 1}, lambda: 5)
            cache.cached("exp", {"a": 1}, lambda: 6)
            snap = obs.metrics.snapshot()
        assert snap["runtime.cache.misses"]["value"] == 1
        assert snap["runtime.cache.hits"]["value"] == 1
