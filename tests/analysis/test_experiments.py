"""Full-report generator tests."""

import pytest

from repro.analysis.experiments import full_report, mpc_comparison


class TestMpcComparison:
    def test_contains_all_controllers(self):
        fuels = mpc_comparison(horizons=(1, 2))
        assert set(fuels) == {"fc-dpm", "mpc-h1", "mpc-h2"}
        assert all(f > 0 for f in fuels.values())

    def test_mpc_competitive(self):
        fuels = mpc_comparison(horizons=(2,))
        assert fuels["mpc-h2"] <= fuels["fc-dpm"] * 1.01


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return full_report(seed=2007, n_seeds=2)

    def test_all_sections_present(self, report):
        for marker in (
            "Fig 2",
            "Fig 3",
            "Fig 4",
            "table2",
            "table3",
            "seeds",
            "efficiency slope",
            "storage capacity",
            "receding-horizon",
            "battery-aware",
        ):
            assert marker in report, marker

    def test_key_numbers_present(self, report):
        assert "13.45" in report      # Fig 4 closed form
        assert "18.2" in report       # Voc

    def test_report_is_plain_text(self, report):
        assert report.isprintable() or "\n" in report
        assert len(report) > 1000
