"""CPU model tests for the DVS substrate."""

import pytest

from repro.dvs.cpu import CPULevel, CPUModel
from repro.errors import ConfigurationError, RangeError


@pytest.fixture
def cpu() -> CPUModel:
    return CPUModel.xscale_like()


class TestConstruction:
    def test_levels_sorted(self, cpu):
        freqs = [lv.frequency for lv in cpu.levels]
        assert freqs == sorted(freqs)
        assert cpu.f_max == 1.0

    def test_rejects_empty_levels(self):
        with pytest.raises(ConfigurationError):
            CPUModel(levels=[])

    def test_rejects_unsorted_levels(self):
        with pytest.raises(ConfigurationError):
            CPUModel(levels=[CPULevel(1.0, 1.8), CPULevel(0.5, 1.2)])

    def test_rejects_decreasing_voltage(self):
        with pytest.raises(ConfigurationError):
            CPUModel(levels=[CPULevel(0.5, 1.8), CPULevel(1.0, 1.2)])

    def test_level_validation(self):
        with pytest.raises(ConfigurationError):
            CPULevel(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            CPULevel(1.0, -1.0)


class TestPower:
    def test_power_increases_with_frequency(self, cpu):
        powers = [cpu.run_power(lv) for lv in cpu.levels]
        assert powers == sorted(powers)

    def test_alpha_power_model(self):
        cpu = CPUModel(
            levels=[CPULevel(1.0, 2.0)], c_eff=3.0, leakage_per_volt=0.5,
            p_platform=1.0,
        )
        # P = 3*4*1 + 0.5*2 + 1 = 14 W.
        assert cpu.run_power(cpu.levels[0]) == pytest.approx(14.0)

    def test_currents_on_rail(self, cpu):
        lv = cpu.levels[-1]
        assert cpu.run_current(lv) == pytest.approx(cpu.run_power(lv) / 12.0)
        assert cpu.idle_current == pytest.approx(2.4 / 12.0)

    def test_energy_per_cycle_decreases_with_voltage(self, cpu):
        # The whole point of DVS: charge per gigacycle falls at lower V/f.
        lo, hi = cpu.levels[1], cpu.levels[-1]
        charge_lo = cpu.run_current(lo) / lo.frequency
        charge_hi = cpu.run_current(hi) / hi.frequency
        assert charge_lo < charge_hi


class TestTiming:
    def test_execution_time(self, cpu):
        assert cpu.execution_time(0.5, cpu.levels[-1]) == pytest.approx(0.5)
        assert cpu.execution_time(0.5, cpu.levels[1]) == pytest.approx(1.25)

    def test_execution_time_rejects_nonpositive_cycles(self, cpu):
        with pytest.raises(RangeError):
            cpu.execution_time(0.0, cpu.levels[0])

    def test_feasible_levels(self, cpu):
        # 0.5 Gcycles in 1 s: needs >= 0.5 GHz.
        feasible = cpu.feasible_levels(0.5, 1.0)
        assert all(lv.frequency >= 0.5 for lv in feasible)
        assert len(feasible) == 3

    def test_feasible_levels_rejects_bad_deadline(self, cpu):
        with pytest.raises(RangeError):
            cpu.feasible_levels(0.5, 0.0)


class TestFrameCharge:
    def test_slowest_feasible_minimizes_charge(self, cpu):
        # Convex power + modest idle power: stretching always wins.
        cycles, deadline = 0.3, 1.0
        feasible = cpu.feasible_levels(cycles, deadline)
        charges = [cpu.frame_charge(cycles, deadline, lv) for lv in feasible]
        assert charges[0] == min(charges)

    def test_deadline_miss_rejected(self, cpu):
        with pytest.raises(RangeError):
            cpu.frame_charge(2.0, 1.0, cpu.levels[0])

    def test_charge_composition(self, cpu):
        lv = cpu.levels[-1]
        charge = cpu.frame_charge(0.4, 1.0, lv)
        expected = cpu.run_current(lv) * 0.4 + cpu.idle_current * 0.6
        assert charge == pytest.approx(expected)
