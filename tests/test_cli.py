"""CLI entry-point tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "conv-dpm" in out and "fc-dpm" in out
        assert "lifetime" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "max power point" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "13.45" in out

    def test_sweep_beta(self, capsys):
        assert main(["sweep", "beta"]) == 0
        assert "sweep: beta" in capsys.readouterr().out

    def test_sweep_unknown(self, capsys):
        assert main(["sweep", "nope"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seed_flag(self, capsys):
        assert main(["--seed", "3", "table2"]) == 0

    def test_export(self, capsys, tmp_path):
        target = tmp_path / "artifacts"
        assert main(["export", str(target)]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 5
        assert (target / "tables_2_3.csv").exists()

    def test_lifetime(self, capsys):
        assert main(["lifetime"]) == 0
        out = capsys.readouterr().out
        assert "run-to-empty" in out
        assert "fc-dpm" in out
