"""Shared-memory hygiene check: no stale ``repro-plans-*`` segments.

Runs a multi-process ``simulate_batch`` -- forcing two pool workers
even on single-core hosts, since the check is about segment lifecycle,
not speed -- and then asserts that no ``/dev/shm/repro-plans-*``
entries survive.  ``SharedArrayStore.dispose`` must close and unlink
the batch segment on every exit path; a leak here means a run left
kernel plans pinned in shared memory.

Exits 0 when clean, 1 when stale segments (or result anomalies) are
found.  Hosts without ``/dev/shm`` still exercise the inline-handle
fallback path.
"""

from __future__ import annotations

import glob
import sys

from repro.runtime import parallel as parallel_mod
from repro.scenario import get_scenario
from repro.sim import vectorized

SHM_GLOB = "/dev/shm/repro-plans-*"


def main() -> int:
    before = set(glob.glob(SHM_GLOB))

    # Force real process dispatch regardless of host size: both the
    # dispatch decision in simulate_batch and ParallelMap's own pool
    # sizing normally cap at the usable core count.
    parallel_mod.resolve_workers = lambda workers: 2
    vectorized.resolve_workers = lambda workers: 2

    sc = get_scenario("exp1-conv-dpm")
    seeds = list(range(8))
    serial = vectorized.simulate_batch(sc, seeds, ["conv-dpm", "fc-dpm"])
    parallel = vectorized.simulate_batch(
        sc, seeds, ["conv-dpm", "fc-dpm"], workers=2
    )
    if parallel != serial:
        print("FAIL: parallel batch results differ from serial")
        return 1

    leaked = set(glob.glob(SHM_GLOB)) - before
    if leaked:
        print(f"FAIL: stale shared-memory segments: {sorted(leaked)}")
        return 1
    print("OK: parallel == serial and no stale repro-plans-* segments")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
