"""Memoization of the hot closed-form kernels.

Profiling the experiment layer shows two dominant costs per simulated
slot: the Section-3.3 closed-form solve (:func:`~repro.core.optimizer.
solve_slot`, ~5 us) and Eq.-4 fuel-map evaluations (~0.2 us each, many
per slot).  Monte-Carlo sweeps and ablations re-pose *identical*
problems constantly -- the same trace simulated under several policies,
the same predictor state recurring across seeds -- so both kernels are
natural memoization targets:

* the fuel map is cached with ``functools.lru_cache`` inside
  :mod:`repro.fuelcell.efficiency` (a shared module-level table keyed
  by the linear-model coefficients);
* :func:`solve_slot_memo` here keys full slot solves by
  ``(model.cache_token, SlotProblem)`` -- a frozen dataclass and a
  tuple, so the key is a plain hash and a cache hit skips the whole
  decision procedure.

Only models that expose a value-semantics ``cache_token`` participate;
anything else (e.g. a stateful composed model) transparently degrades
to a direct solve.  The cache is process-local: parallel workers each
warm their own, which preserves determinism (the solver is pure).

The table is a bounded LRU: long sweeps and service-style lifetimes
pose an unbounded stream of distinct problems, so instead of growing
without limit (or dropping the whole table at a threshold, as earlier
revisions did) the least-recently-used entry is evicted once the cap is
reached.  The cap defaults to :data:`SOLVER_CACHE_MAX`, can be
overridden with the ``FCDPM_SOLVER_CACHE_MAX`` environment variable,
and is adjustable at runtime via :func:`set_solver_cache_max`.
Evictions are counted in :class:`SolverCacheStats` and, when the obs
layer is recording, surfaced as the ``runtime.memo.evictions`` counter
beside a ``runtime.memo.hit_ratio`` gauge.

The batched solver (:func:`repro.core.optimizer_array.solve_slot_array`)
*bypasses* this cache entirely -- array passes amortize the solve
across rows far below the per-hit cost of a dict probe, and seeding the
LRU from whole batches would evict the scalar path's genuinely hot
entries.  See ``docs/performance.md`` ("Kernel round 4").

The solver is imported lazily so this module sits below
:mod:`repro.core` in the import graph (``core.fc_dpm`` imports us).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.setting import SlotProblem, SlotSolution
    from ..fuelcell.efficiency import SystemEfficiencyModel

#: Default bound on distinct (model, problem) entries; beyond it the
#: least-recently-used solution is evicted per insert.
SOLVER_CACHE_MAX = 1 << 17

_CACHE: OrderedDict[tuple, "SlotSolution"] = OrderedDict()
_CACHE_MAX = SOLVER_CACHE_MAX
_SOLVE = None


def _env_cache_max() -> int:
    raw = os.environ.get("FCDPM_SOLVER_CACHE_MAX", "")
    try:
        value = int(raw)
    except ValueError:
        return SOLVER_CACHE_MAX
    return value if value > 0 else SOLVER_CACHE_MAX


_CACHE_MAX = _env_cache_max()


def _solver():
    """Resolve :func:`repro.core.optimizer.solve_slot` once, lazily."""
    global _SOLVE
    if _SOLVE is None:
        from ..core.optimizer import solve_slot

        _SOLVE = solve_slot
    return _SOLVE


@dataclass
class SolverCacheStats:
    """Hit/miss/eviction counters of the slot-solver cache."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_STATS = SolverCacheStats()


def solve_slot_memo(
    problem: "SlotProblem", model: "SystemEfficiencyModel"
) -> "SlotSolution":
    """Memoized :func:`~repro.core.optimizer.solve_slot`.

    Bit-identical to the direct call (the solver is a pure function of
    ``(problem, model)``); repeated identical slots return the cached
    frozen :class:`~repro.core.setting.SlotSolution` in well under a
    microsecond.  Entries beyond the LRU cap evict oldest-first.
    """
    token = getattr(model, "cache_token", None)
    if token is None:
        _STATS.uncacheable += 1
        if OBS.enabled:
            OBS.metrics.counter("runtime.memo.uncacheable").inc()
        return _solver()(problem, model)
    key = (token, problem)
    solution = _CACHE.get(key)
    if solution is None:
        _STATS.misses += 1
        while len(_CACHE) >= _CACHE_MAX:
            _CACHE.popitem(last=False)
            _STATS.evictions += 1
            if OBS.enabled:
                OBS.metrics.counter("runtime.memo.evictions").inc()
        solution = _CACHE[key] = _solver()(problem, model)
        if OBS.enabled:
            OBS.metrics.counter("runtime.memo.misses").inc()
            OBS.metrics.gauge("runtime.memo.hit_ratio").set(_STATS.hit_rate)
    else:
        _CACHE.move_to_end(key)
        _STATS.hits += 1
        if OBS.enabled:
            OBS.metrics.counter("runtime.memo.hits").inc()
            OBS.metrics.gauge("runtime.memo.hit_ratio").set(_STATS.hit_rate)
    return solution


def solver_cache_stats() -> SolverCacheStats:
    """Current counters (live object; copy if you need a snapshot)."""
    return _STATS


def clear_solver_cache() -> None:
    """Drop every cached solution and zero the counters."""
    _CACHE.clear()
    _STATS.hits = _STATS.misses = _STATS.uncacheable = _STATS.evictions = 0


def solver_cache_size() -> int:
    """Number of memoized (model, problem) entries."""
    return len(_CACHE)


def solver_cache_max() -> int:
    """Current LRU capacity."""
    return _CACHE_MAX


def set_solver_cache_max(cap: int) -> None:
    """Resize the LRU; a smaller cap evicts oldest entries immediately."""
    if cap <= 0:
        raise ValueError("solver cache cap must be positive")
    global _CACHE_MAX
    _CACHE_MAX = cap
    while len(_CACHE) > _CACHE_MAX:
        _CACHE.popitem(last=False)
        _STATS.evictions += 1
        if OBS.enabled:
            OBS.metrics.counter("runtime.memo.evictions").inc()
