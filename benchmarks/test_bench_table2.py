"""Table 2 bench: Experiment 1 (28-min MPEG camcorder trace)."""

from repro.analysis.report import format_table
from repro.analysis.tables import table2


def test_bench_table2_experiment1(benchmark, emit):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)

    report = "\n".join(
        [
            "TABLE 2 -- normalized fuel consumption, Experiment 1",
            "28-min synthetic MPEG encode/write trace, DVD camcorder,",
            "1 F supercap (6 A-s), rho = 0.5",
            format_table(result.rows()),
            f"FC-DPM saves {100 * result.fc_vs_asap_saving:.1f}% fuel vs "
            f"ASAP-DPM (paper: 24.4%)",
            f"lifetime extension vs ASAP-DPM: x{result.fc_vs_asap_lifetime:.2f} "
            f"(paper: x1.32)",
        ]
    )
    emit("table2", report)

    n = result.normalized
    assert n["fc-dpm"] < n["asap-dpm"] < n["conv-dpm"]
    assert abs(n["asap-dpm"] - 0.408) < 0.06
    assert abs(n["fc-dpm"] - 0.308) < 0.06
