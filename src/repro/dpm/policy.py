"""DPM policy protocol: the sleep decision per idle period.

The paper's slot structure lets every policy be expressed as two hooks:

* :meth:`DPMPolicy.on_idle_start` -- called when the device goes idle;
  returns an :class:`IdleDecision` (sleep or not, and after what delay);
* :meth:`DPMPolicy.on_idle_end` -- called with the actual idle length so
  history-based policies can learn.

The decision is *committed* at idle start (matching the paper's
predictive scheme); timeout policies express their waiting period via
``sleep_after``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..devices.device import DeviceParams
from ..errors import ConfigurationError
from ..obs import OBS


@dataclass(frozen=True)
class IdleDecision:
    """What the device should do for the coming idle period.

    Attributes
    ----------
    sleep:
        Whether to enter SLEEP at all.
    sleep_after:
        STANDBY dwell (s) before starting the power-down transition
        (0 for immediate predictive shutdown, the timeout for timeout
        policies).  Ignored when ``sleep`` is False.
    """

    sleep: bool
    sleep_after: float = 0.0

    def __post_init__(self) -> None:
        if self.sleep_after < 0:
            raise ConfigurationError("sleep_after cannot be negative")


#: Shared immutable decisions for the two immediate outcomes.  Policies
#: that decide at idle start (no timeout dwell) hand one out per slot;
#: interning them keeps frozen-dataclass construction (and its
#: validation) out of per-slot simulator and replay loops.
SLEEP_NOW = IdleDecision(sleep=True, sleep_after=0.0)
STAY_AWAKE = IdleDecision(sleep=False, sleep_after=0.0)


class DPMPolicy(ABC):
    """Base class for device-side power management policies."""

    def __init__(self, params: DeviceParams) -> None:
        self.params = params
        self.n_decisions = 0
        self.n_sleep_decisions = 0

    @abstractmethod
    def on_idle_start(self) -> IdleDecision:
        """Decide the coming idle period's plan."""

    def on_idle_end(self, t_idle: float) -> None:
        """Observe the actual idle length (default: no learning)."""

    def _count(self, decision: IdleDecision) -> IdleDecision:
        self.n_decisions += 1
        if decision.sleep:
            self.n_sleep_decisions += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "dpm.policy_decisions",
                policy=type(self).__name__,
                sleep="yes" if decision.sleep else "no",
            ).inc()
        return decision

    def reset(self) -> None:
        """Clear decision counters (subclasses also clear learning state)."""
        self.n_decisions = 0
        self.n_sleep_decisions = 0

    @property
    def sleep_rate(self) -> float:
        """Fraction of idle periods for which SLEEP was chosen."""
        if self.n_decisions == 0:
            return 0.0
        return self.n_sleep_decisions / self.n_decisions
