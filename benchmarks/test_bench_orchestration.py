"""Orchestration overhead gate: the experiment layer must stay thin.

The thin analysis clients route every sweep and seed study through
:func:`repro.exp.runner.run_experiment`; if the lifecycle layer (spec
expansion, task bookkeeping, state checkpoints) cost real time, every
consumer would pay it.  This bench races an ephemeral experiment run
against the bare :func:`~repro.sim.vectorized.simulate_batch` call it
wraps -- interleaved best-of timing so host noise hits both sides --
and gates the overhead at <= 5%, after asserting the results bit-equal.
"""

import time

from repro.exp import ExperimentResults, run_experiment, scenario_batch_spec
from repro.exp.tasks import result_metrics
from repro.sim.vectorized import simulate_batch

SCENARIO = "exp2-fc-dpm"
SEEDS = list(range(8))
POLICIES = ["conv-dpm", "asap-dpm", "fc-dpm"]
REPEATS = 9


def _bare():
    return simulate_batch(SCENARIO, SEEDS, POLICIES, fast=True)


def _orchestrated():
    spec = scenario_batch_spec("bench", SCENARIO, SEEDS, policies=POLICIES)
    return run_experiment(spec)


def test_bench_orchestration_overhead(emit):
    """Ephemeral run_experiment vs bare simulate_batch: <= 5% overhead."""
    # Warm both paths once (plan compilation, imports) before timing.
    direct = _bare()
    run = _orchestrated()

    # Bit-equality first: overhead numbers are meaningless if the layer
    # changed the results.
    cells = ExperimentResults.from_run(run).by_cell()
    for seed in SEEDS:
        for policy in POLICIES:
            assert cells[(seed, policy)] == result_metrics(direct[seed][policy])

    # Interleaved best-of: alternate the two sides inside every repeat
    # so thermal / scheduling drift cannot bias one of them.
    t_bare = float("inf")
    t_orch = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        _bare()
        t_bare = min(t_bare, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _orchestrated()
        t_orch = min(t_orch, time.perf_counter() - t0)

    ratio = t_orch / t_bare
    emit(
        "bench_orchestration_overhead",
        f"run_experiment vs bare simulate_batch "
        f"({len(SEEDS)} seeds x {len(POLICIES)} policies)\n"
        f"bare:         {1e3 * t_bare:.2f} ms\n"
        f"orchestrated: {1e3 * t_orch:.2f} ms\n"
        f"overhead:     {100 * (ratio - 1):+.1f}%",
    )
    assert ratio <= 1.05, (
        f"orchestration overhead {100 * (ratio - 1):.1f}% exceeds the 5% "
        f"budget ({1e3 * t_bare:.2f} ms -> {1e3 * t_orch:.2f} ms)"
    )
