#!/usr/bin/env python3
"""Multi-device DPM: task ordering decides how much devices can sleep.

Implements the scenario of Lu, Benini & De Micheli (paper ref [7]): a
system with a disk and a network interface executes a batch of tasks,
each needing one (or both) of the devices.  Interleaved execution
fragments every device's idle time into un-sleepable slivers; clustering
tasks by device consolidates the idle into long sleepable gaps.

Run:  python examples/multi_device_scheduling.py
"""

from repro.analysis.report import format_table
from repro.devices import (
    DeviceParams,
    MultiDeviceTask,
    cluster_order,
    compare_orderings,
)


def make_device(t_pd: float, t_wu: float) -> DeviceParams:
    """A disk-like device: heavy spin-down/up, deep sleep."""
    return DeviceParams(
        i_run=1.0, i_sdb=0.4, i_slp=0.05,
        t_pd=t_pd, t_wu=t_wu, i_pd=0.4, i_wu=0.4,
    )


def main() -> None:
    devices = {
        "disk": make_device(t_pd=2.0, t_wu=2.0),
        "net": make_device(t_pd=1.0, t_wu=1.0),
    }

    # A media-sync batch: alternating disk reads and network transfers,
    # plus two tasks that hold both devices.
    tasks = []
    for k in range(5):
        tasks.append(MultiDeviceTask(f"read{k}", 3.0, frozenset({"disk"})))
        tasks.append(MultiDeviceTask(f"send{k}", 3.0, frozenset({"net"})))
    tasks.append(MultiDeviceTask("verify0", 4.0, frozenset({"disk", "net"})))
    tasks.append(MultiDeviceTask("verify1", 4.0, frozenset({"disk", "net"})))

    results = compare_orderings(tasks, devices)

    print("execution orders:")
    print("  fifo     :", " ".join(results["fifo"].order))
    print("  clustered:", " ".join(t.name for t in cluster_order(tasks)))
    print()

    rows = [["ordering", "device", "idle gaps", "sleeps", "charge (A-s)"]]
    for name, ev in results.items():
        for dev_name, usage in ev.per_device.items():
            rows.append(
                [name, dev_name, str(usage.n_idle_gaps), str(usage.n_sleeps),
                 f"{usage.charge:.2f}"]
            )
    print(format_table(rows, title="per-device outcome"))

    fifo = results["fifo"].total_charge
    clustered = results["clustered"].total_charge
    print(f"\ntotal charge: fifo {fifo:.2f} A-s, clustered {clustered:.2f} A-s")
    print(f"clustering saves {100 * (1 - clustered / fifo):.1f}% device charge")
    print("\nreading: idle aggregation is the device-side dual of the FC's")
    print("flat-output rule -- both reshape *when* power is drawn without")
    print("changing the work done.")


if __name__ == "__main__":
    main()
