"""Monte-Carlo experiment runner: seeds, summary statistics, intervals.

The paper reports single-trace numbers; a reproduction should show how
stable they are.  :func:`run_seeds` executes a policy-comparison
experiment across many trace seeds and reduces each policy's normalized
fuel to mean / standard deviation / a t-interval.
"""

from __future__ import annotations

import math
import statistics
from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache

from ..errors import ConfigurationError


@lru_cache(maxsize=None)
def _t95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom.

    Computed from ``scipy.stats.t.ppf`` (scipy is a hard dependency),
    replacing the hand-coded 30-entry table this module used to carry;
    the test suite pins the old table's values to 1e-3.  Imported lazily
    and cached so summary statistics stay cheap in tight loops.
    """
    from scipy.stats import t

    return float(t.ppf(0.975, df))


@dataclass(frozen=True)
class SeedSummary:
    """Summary statistics of one metric across seeds."""

    name: str
    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the 95 % t-interval for the mean."""
        if self.n < 2:
            return float("inf")
        return _t95(self.n - 1) * self.stdev / math.sqrt(self.n)

    @property
    def ci95(self) -> tuple[float, float]:
        """The 95 % confidence interval for the mean."""
        h = self.ci95_halfwidth
        return self.mean - h, self.mean + h

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.mean:.4f} +- {self.ci95_halfwidth:.4f} "
            f"(n={self.n}, range [{self.minimum:.4f}, {self.maximum:.4f}])"
        )


def summarize(name: str, values) -> SeedSummary:
    """Reduce a sample of metric values to a :class:`SeedSummary`."""
    data = [float(v) for v in values]
    if not data:
        raise ConfigurationError("cannot summarize an empty sample")
    return SeedSummary(
        name=name,
        n=len(data),
        mean=statistics.fmean(data),
        stdev=statistics.stdev(data) if len(data) > 1 else 0.0,
        minimum=min(data),
        maximum=max(data),
    )


def run_seeds(
    experiment: Callable[[int], dict[str, float]],
    seeds,
    workers: int = 1,
) -> dict[str, SeedSummary]:
    """Run ``experiment(seed) -> {metric: value}`` across ``seeds``.

    Every run must return the same metric keys.  Returns a summary per
    metric, with metrics in the key order of the *first* run -- so the
    report layout is deterministic regardless of execution order.

    Parameters
    ----------
    workers:
        Fan the seeds out over this many processes
        (:class:`~repro.runtime.parallel.ParallelMap`).  ``1`` (the
        default) runs inline; any value yields bit-identical summaries
        because each run is an independent pure function of its seed and
        results are reduced in seed order.  For ``workers > 1`` the
        ``experiment`` callable must be picklable (a module-level
        function or ``functools.partial``); unpicklable callables fall
        back to serial execution.
    """
    from ..obs import OBS
    from ..runtime.parallel import ParallelMap

    seed_list = [int(seed) for seed in seeds]
    if not seed_list:
        raise ConfigurationError("need at least one seed")
    with OBS.span("mc.run_seeds", n_seeds=len(seed_list), workers=workers):
        results = ParallelMap(workers=workers).map(experiment, seed_list)

    # Metric order is pinned to the first run's dict order (PEP 468
    # insertion order), not a sorted or set order.
    keys = list(results[0])
    key_set = set(keys)
    samples: dict[str, list[float]] = {key: [] for key in keys}
    for seed, result in zip(seed_list, results):
        if set(result) != key_set:
            raise ConfigurationError(
                f"seed {seed} returned metrics {sorted(result)}, "
                f"expected {sorted(key_set)}"
            )
        for key in keys:
            samples[key].append(float(result[key]))
    return {key: summarize(key, values) for key, values in samples.items()}


def seed_study(kind: str, seeds, workers: int = 1) -> dict[str, SeedSummary]:
    """Seed-stability study through the experiment orchestration layer.

    The :func:`run_seeds` shape -- ``{metric: SeedSummary}`` with metric
    order pinned to the first seed's dict order -- but driven as an
    ephemeral :class:`~repro.exp.spec.ExperimentSpec` of ``kind`` cells
    (``"table2-metrics"``, ``"scenario-metrics"``, or any registered
    task kind returning a metric dict).  Bit-identical to calling
    :func:`run_seeds` with the matching per-seed function.
    """
    from ..exp import ExperimentResults, run_experiment, seed_study_spec

    spec = seed_study_spec(kind, seeds)
    run = run_experiment(spec, workers=workers)
    return ExperimentResults.from_run(run).seed_summaries()


def table2_metrics(seed: int) -> dict[str, float]:
    """Experiment-1 normalized fuel + FC-vs-ASAP saving for one seed.

    The canonical experiment closure for :func:`run_seeds`.
    """
    from ..analysis.tables import table2

    result = table2(seed=seed)
    out = dict(result.normalized)
    out["fc_saving_vs_asap"] = result.fc_vs_asap_saving
    return out


def scenario_metrics(name: str, seed: int, fast: bool = False) -> dict[str, float]:
    """Run one registered scenario on one seed; returns its run metrics.

    Module-level (not a closure) so ``functools.partial(scenario_metrics,
    name)`` stays picklable for multi-process :func:`run_seeds` fan-out.
    ``fast=True`` routes through :func:`repro.sim.vectorized.simulate_fast`
    (identical metrics, array kernel when eligible).
    """
    from ..scenario import get_scenario
    from .slotsim import SlotSimulator

    sc = get_scenario(name)
    if fast:
        from .vectorized import simulate_fast

        result = simulate_fast(sc.build_manager(), sc.build_trace(seed))
    else:
        result = SlotSimulator(sc.build_manager()).run(sc.build_trace(seed))
    return {
        "fuel": result.fuel,
        "load_charge": result.load_charge,
        "bled": result.bled,
        "deficit": result.deficit,
        "n_sleeps": float(result.n_sleeps),
    }
