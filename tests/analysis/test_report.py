"""Text-rendering helper tests."""

import pytest

from repro.analysis.report import ascii_plot, format_series, format_table
from repro.errors import RangeError


class TestFormatTable:
    def test_alignment(self):
        text = format_table([["name", "value"], ["fc-dpm", "0.308"]])
        lines = text.split("\n")
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "fc-dpm" in lines[2]

    def test_title(self):
        text = format_table([["a"]], title="Table 2")
        assert text.startswith("Table 2")

    def test_empty_rejected(self):
        with pytest.raises(RangeError):
            format_table([])


class TestFormatSeries:
    def test_subsamples(self):
        xs = list(range(100))
        ys = [x * 2 for x in xs]
        text = format_series("s", xs, ys, max_points=5)
        assert text.startswith("s:")
        assert text.count("(") == 5

    def test_short_series(self):
        text = format_series("s", [1, 2], [3, 4])
        assert "(1, 3)" in text and "(2, 4)" in text


class TestAsciiPlot:
    def test_contains_marks_and_bounds(self):
        xs = [0, 1, 2, 3, 4]
        ys = [0.0, 1.0, 4.0, 9.0, 16.0]
        text = ascii_plot(xs, ys, width=40, height=8, title="quad")
        assert text.startswith("quad")
        assert "*" in text
        assert "16" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([0, 1, 2], [5.0, 5.0, 5.0])
        assert "*" in text

    def test_rejects_short_series(self):
        with pytest.raises(RangeError):
            ascii_plot([1], [1])

    def test_rejects_mismatched(self):
        with pytest.raises(RangeError):
            ascii_plot([1, 2, 3], [1, 2])

    def test_y_label(self):
        text = ascii_plot([0, 1], [0, 1], y_label="amps")
        assert "[amps]" in text
