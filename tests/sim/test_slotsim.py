"""Slot-level simulator tests."""

import pytest

from repro.core.manager import PowerManager
from repro.errors import SimulationError
from repro.sim.slotsim import SlotSimulator, simulate_policies
from repro.workload.trace import LoadTrace, TaskSlot


class TestBasicRun:
    def test_duration_matches_trace_plus_overheads(self, managers, small_trace):
        mgr = managers[0]
        result = SlotSimulator(mgr).run(small_trace)
        p = mgr.device
        expected = small_trace.duration + len(small_trace) * (
            p.t_sdb_to_run + p.t_run_to_sdb
        )
        assert result.duration == pytest.approx(expected)

    def test_load_charge_accounted(self, managers, small_trace):
        result = SlotSimulator(managers[0]).run(small_trace)
        assert result.load_charge > 0
        assert result.n_slots == len(small_trace)

    def test_conv_uses_most_fuel(self, managers, small_trace):
        results = simulate_policies(small_trace, managers)
        assert results["conv-dpm"].fuel > results["asap-dpm"].fuel
        assert results["asap-dpm"].fuel > results["fc-dpm"].fuel

    def test_same_load_charge_across_policies(self, managers, small_trace):
        results = simulate_policies(small_trace, managers)
        charges = [r.load_charge for r in results.values()]
        assert charges[0] == pytest.approx(charges[1])
        assert charges[1] == pytest.approx(charges[2])

    def test_metrics_reduction(self, managers, small_trace):
        result = SlotSimulator(managers[0]).run(small_trace)
        m = result.metrics
        assert m.fuel == result.fuel
        assert m.name == "conv-dpm"


class TestSleepHandling:
    def test_camcorder_sleeps_after_learning(self, managers, small_trace):
        result = SlotSimulator(managers[0]).run(small_trace)
        # First idle has prediction 0 < Tbe; the rest sleep.
        assert result.n_sleeps == len(small_trace) - 1

    def test_slots_record_sleep_flag(self, managers, small_trace):
        result = SlotSimulator(managers[0]).run(small_trace)
        assert not result.slots[0].slept
        assert all(s.slept for s in result.slots[1:])

    def test_aborted_sleep_counted(self, camcorder_params):
        # Committed sleep into an idle period too short for the 1 s round
        # trip: the simulator falls back to STANDBY and counts it.
        trace = LoadTrace(
            [TaskSlot(12.0, 3.0, 1.2), TaskSlot(0.6, 3.0, 1.2)], name="abort"
        )
        mgr = PowerManager.conv_dpm(
            camcorder_params, storage_capacity=6.0, storage_initial=3.0
        )
        result = SlotSimulator(mgr).run(trace)
        assert result.n_aborted_sleeps == 1
        assert result.n_sleeps == 0  # slot 0 not predicted, slot 1 aborted

    def test_exp2_skips_short_idles(self, exp2_params):
        # Tbe = 10 s: a predictor estimate below that must not sleep.
        trace = LoadTrace(
            [TaskSlot(6.0, 3.0, 1.2)] * 8, name="short-idles"
        )
        mgr = PowerManager.conv_dpm(
            exp2_params, storage_capacity=6.0, storage_initial=3.0
        )
        result = SlotSimulator(mgr).run(trace)
        assert result.n_sleeps == 0


class TestRecording:
    def test_recorder_disabled_by_default(self, managers, small_trace):
        result = SlotSimulator(managers[0]).run(small_trace)
        assert result.recorder is None

    def test_recorder_captures_segments(self, managers, small_trace):
        result = SlotSimulator(managers[2], record=True).run(small_trace)
        rec = result.recorder
        assert rec is not None
        assert rec.duration == pytest.approx(result.duration)
        kinds = {s.kind for s in rec.samples}
        assert "run" in kinds and "sleep" in kinds

    def test_fuel_cumulative_monotone(self, managers, small_trace):
        result = SlotSimulator(managers[1], record=True).run(small_trace)
        fuels = [s.fuel_cumulative for s in result.recorder.samples]
        assert fuels == sorted(fuels)
        assert fuels[-1] == pytest.approx(result.fuel)


class TestConservation:
    def test_fc_dpm_storage_returns_near_target(self, managers, small_trace):
        result = SlotSimulator(managers[2]).run(small_trace)
        # Cend target is the initial 3.0 A-s; prediction noise leaves a
        # bounded residual.
        assert result.slots[-1].storage_end == pytest.approx(3.0, abs=1.5)

    def test_undersized_source_raises(self, exp2_params):
        # A huge always-active load the FC + tiny storage cannot carry.
        trace = LoadTrace([TaskSlot(0.5, 30.0, 1.33)] * 10, name="hungry")
        mgr = PowerManager.asap_dpm(
            exp2_params, storage_capacity=0.5, storage_initial=0.25
        )
        with pytest.raises(SimulationError):
            SlotSimulator(mgr).run(trace)

    def test_average_system_efficiency_in_physical_band(
        self, managers, small_trace
    ):
        result = SlotSimulator(managers[2]).run(small_trace)
        # delivered/fuel for the linear law stays within (0, 1.5] A/A.
        assert 0 < result.average_system_efficiency < 1.5


class TestLatencyAccounting:
    def test_wakeup_latency_counts_sleeps(self, managers, small_trace):
        result = SlotSimulator(managers[0]).run(small_trace)
        expected = result.n_sleeps * managers[0].device.t_wu
        assert result.wakeup_latency == pytest.approx(expected)

    def test_mean_latency_per_request(self, managers, small_trace):
        result = SlotSimulator(managers[0]).run(small_trace)
        assert result.mean_latency_per_request == pytest.approx(
            result.wakeup_latency / result.n_slots
        )

    def test_no_sleep_no_latency(self, exp2_params):
        trace = LoadTrace([TaskSlot(6.0, 3.0, 1.2)] * 5, name="short")
        mgr = PowerManager.conv_dpm(
            exp2_params, storage_capacity=6.0, storage_initial=3.0
        )
        result = SlotSimulator(mgr).run(trace)
        assert result.wakeup_latency == 0.0


class TestSegmentChunking:
    def test_chunking_preserves_durations(self, managers, small_trace):
        whole = SlotSimulator(managers[0]).run(small_trace)
        mgr = PowerManager.conv_dpm(
            managers[0].device, storage_capacity=6.0, storage_initial=3.0
        )
        chunked = SlotSimulator(mgr, max_segment=1.0).run(small_trace)
        assert chunked.duration == pytest.approx(whole.duration)
        assert chunked.fuel == pytest.approx(whole.fuel)

    def test_rejects_bad_max_segment(self, managers):
        with pytest.raises(SimulationError):
            SlotSimulator(managers[0], max_segment=0.0)

    def test_guard_counter_small_on_paper_workload(self, camcorder_params):
        from repro.workload.mpeg import generate_mpeg_trace

        mgr = PowerManager.fc_dpm(
            camcorder_params, storage_capacity=6.0, storage_initial=3.0
        )
        result = SlotSimulator(mgr).run(generate_mpeg_trace())
        # The saturation guard should stay a rare correction here.
        assert mgr.controller.n_guard_activations < 0.15 * result.n_slots
