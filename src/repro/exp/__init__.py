"""Experiment orchestration: declarative specs, sharded resumable runs.

The lifecycle layer the comparison studies sit on::

    spec = scenario_batch_spec("study", "exp2-fc-dpm", range(100),
                               policies=("conv-dpm", "asap-dpm", "fc-dpm"))
    store = ExperimentStore()                  # <cache dir>/experiments
    run = run_experiment(spec, store=store, workers=0)
    frame = ExperimentResults.from_run(run).frame()

An :class:`ExperimentSpec` (scenario x seeds x policies x ablations)
expands into a deterministic unit-task list; :func:`run_experiment`
drives every task ``defined -> running -> done`` with crash-safe resume
from the :class:`~repro.runtime.cache.ResultCache` (verified through
per-entry manifests), shard slicing for multi-host dispatch
(``--shard i/n`` + ``merge``), and batch routing through
:func:`~repro.sim.vectorized.simulate_batch`;
:class:`ExperimentResults` turns the settled tasks into per-cell metric
frames for analysis.  ``fcdpm exp define|run|status|resume|merge|report``
is the CLI surface; see docs/orchestration.md.
"""

from .results import Cell, ExperimentResults
from .runner import AbortRun, ExperimentRun, parse_shard, run_experiment, shard_tasks
from .spec import (
    SWEEP_KINDS,
    ExperimentSpec,
    UnitTask,
    scenario_batch_spec,
    seed_study_spec,
    sweep_spec,
)
from .state import (
    EXPERIMENT_STATUSES,
    STATE_SCHEMA_VERSION,
    TASK_STATUSES,
    ExperimentState,
    ExperimentStore,
    TaskRecord,
    default_state_root,
    validate_state_dict,
)
from .tasks import TASK_KINDS, result_metrics, run_task, task_kind, task_kind_names

__all__ = [
    "EXPERIMENT_STATUSES",
    "STATE_SCHEMA_VERSION",
    "SWEEP_KINDS",
    "TASK_KINDS",
    "TASK_STATUSES",
    "AbortRun",
    "Cell",
    "ExperimentResults",
    "ExperimentRun",
    "ExperimentSpec",
    "ExperimentState",
    "ExperimentStore",
    "TaskRecord",
    "UnitTask",
    "default_state_root",
    "parse_shard",
    "result_metrics",
    "run_experiment",
    "run_task",
    "scenario_batch_spec",
    "seed_study_spec",
    "shard_tasks",
    "sweep_spec",
    "task_kind",
    "task_kind_names",
    "validate_state_dict",
]
