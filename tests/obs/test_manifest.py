"""RunManifest: assembly, JSON roundtrip, schema validation."""

import json

from repro.obs import RunManifest, build_manifest
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, package_versions
from repro.obs.schema import validate_manifest


def test_build_manifest_fills_provenance():
    m = build_manifest(
        "table2",
        scenario={"name": "exp1-fc-dpm"},
        params={"seed": 7},
        seeds=[7, 8],
        workers=2,
        route="fast",
        wall_s=1.5,
        cpu_s=1.2,
        metrics={"sim.route{path=fast}": {"type": "counter", "value": 2}},
    )
    assert m.name == "table2"
    assert m.fingerprint  # derived from code_fingerprint()
    assert m.schema_version == MANIFEST_SCHEMA_VERSION
    assert m.created > 0
    assert m.seeds == (7, 8)
    assert m.route == "fast"
    assert set(m.versions) >= {"python", "numpy", "repro"}


def test_explicit_fingerprint_skips_hashing():
    m = build_manifest("x", fingerprint="cafe")
    assert m.fingerprint == "cafe"


def test_write_read_roundtrip(tmp_path):
    m = build_manifest(
        "run:exp1", params={"seed": 0}, seeds=[0], route="scalar", wall_s=0.1
    )
    path = m.write(tmp_path / "sub" / "manifest.json")
    assert path.exists()
    rebuilt = RunManifest.from_dict(json.loads(path.read_text()))
    assert rebuilt == m


def test_built_manifest_validates():
    m = build_manifest("export", params={"files": 6}, route="export")
    assert validate_manifest(m.to_dict()) == []


def test_validate_flags_problems():
    assert validate_manifest("not a dict")
    good = build_manifest("x", fingerprint="f").to_dict()

    missing = dict(good)
    del missing["fingerprint"]
    assert any("fingerprint" in p for p in validate_manifest(missing))

    newer = dict(good, schema_version=MANIFEST_SCHEMA_VERSION + 1)
    assert any("newer" in p for p in validate_manifest(newer))

    bad_versions = dict(good, versions={"numpy": "1.0"})
    assert any("python" in p for p in validate_manifest(bad_versions))


def test_package_versions_shape():
    versions = package_versions()
    assert versions["python"].count(".") >= 1
    assert "numpy" in versions
