"""ExperimentResults: frames, reducers, partial-result refusal."""

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentResults,
    ExperimentStore,
    run_experiment,
    scenario_batch_spec,
    seed_study_spec,
)
from repro.runtime.cache import ResultCache
from repro.sim.montecarlo import run_seeds, table2_metrics


@pytest.fixture
def spec():
    return scenario_batch_spec(
        "res", "exp2-fc-dpm", [0, 1], policies=("conv-dpm", "fc-dpm")
    )


class TestFrame:
    def test_rows_carry_identity_and_metrics(self, spec):
        frame = ExperimentResults.from_run(run_experiment(spec)).frame()
        assert len(frame) == spec.n_tasks
        row = frame[0]
        assert row["task_id"] == "t00000"
        assert row["scenario"] == "exp2-fc-dpm"
        assert row["policy"] == "conv-dpm"
        assert {"fuel", "bled", "deficit", "duration"} <= set(row)

    def test_rows_follow_expansion_order(self, spec):
        frame = ExperimentResults.from_run(run_experiment(spec)).frame()
        assert [r["task_id"] for r in frame] == [
            f"t{i:05d}" for i in range(spec.n_tasks)
        ]


class TestSeedSummaries:
    def test_matches_run_seeds(self):
        spec = seed_study_spec("table2-metrics", range(2))
        run = run_experiment(spec)
        via_exp = ExperimentResults.from_run(run).seed_summaries()
        direct = run_seeds(table2_metrics, range(2))
        assert via_exp == direct
        # Metric order pinned to the first cell's dict order.
        assert list(via_exp) == list(direct)

    def test_rejects_non_dict_cells(self, spec):
        from repro.exp import sweep_spec

        run = run_experiment(sweep_spec("beta", [0.0], seed=3))
        with pytest.raises(ConfigurationError, match="dict-valued"):
            ExperimentResults.from_run(run).seed_summaries()


class TestLoad:
    def test_refuses_partial_experiments(self, spec, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        monkeypatch.setenv("FCDPM_EXP_ABORT_AFTER", "2")
        from repro.exp import AbortRun

        with pytest.raises(AbortRun):
            run_experiment(spec, store=store, cache=cache)
        monkeypatch.delenv("FCDPM_EXP_ABORT_AFTER")
        state = store.load(spec.name)
        with pytest.raises(ConfigurationError, match="unfinished"):
            ExperimentResults.load(state, cache)

    def test_refuses_evicted_values(self, spec, tmp_path):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        run_experiment(spec, store=store, cache=cache)
        cache.clear()
        state = store.load(spec.name)
        with pytest.raises(ConfigurationError, match="evicted"):
            ExperimentResults.load(state, cache)

    def test_mark_analyzed_advances_records(self, spec, tmp_path):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        run_experiment(spec, store=store, cache=cache)
        state = store.load(spec.name)
        ExperimentResults.load(state, cache, mark_analyzed=True)
        assert state.status == "analyzed"
        assert all(r.status == "analyzed" for r in state.tasks.values())


class TestByKnob:
    def test_missing_knob_raises(self, spec):
        results = ExperimentResults.from_run(run_experiment(spec))
        with pytest.raises(ConfigurationError, match="no 'capacity' param"):
            results.by_knob("capacity")
