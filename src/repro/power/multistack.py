"""Multi-stack hybrid source: N FC systems behind one charge storage.

Small FC stacks are cheaper to manufacture and cool than one large
stack, so production hybrids gang several systems on the shared rail
(Shi et al., *Health-aware energy management for multiple stack hydrogen
fuel cell and battery hybrid systems*; Suresh et al., *Optimal Power
Distribution Control for a Network of Fuel Cell Stacks*).  The
controller still commands one total output current; a pluggable
:class:`LoadSharingStrategy` decides how that total is split across the
stacks:

* :class:`EqualShare` -- every stack carries ``I/N``.  For identical
  stacks with an efficiency law that falls with load this is also the
  fuel-optimal split (the fuel map is convex, so equalizing currents
  minimises total stack current).
* :class:`EfficiencyProportional` -- stacks carry load in proportion to
  their system efficiency near the operating point, so a degraded or
  smaller stack is automatically relieved (the health-aware rule of the
  multi-stack papers, evaluated at the equal-share point).

Each FC system keeps its own fuel tank and load-following range; the
shared storage buffers the difference between the summed output and the
load exactly as in the single-stack hybrid.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from .source import PowerSource
from .storage import ChargeStorage, SuperCapacitor

if TYPE_CHECKING:  # avoid a circular import with repro.fuelcell at runtime
    from ..fuelcell.system import FCSystem


class LoadSharingStrategy(ABC):
    """Splits one commanded total output current across N FC systems."""

    @abstractmethod
    def shares(self, i_total: float, systems: Sequence["FCSystem"]) -> list[float]:
        """Per-system output-current commands summing to ``i_total``.

        The commands are *requests*: each system still clamps its share
        into its own load-following range.
        """


class EqualShare(LoadSharingStrategy):
    """Every stack carries ``i_total / N`` (fuel-optimal for twins)."""

    def shares(self, i_total: float, systems: Sequence["FCSystem"]) -> list[float]:
        n = len(systems)
        return [i_total / n] * n


class EfficiencyProportional(LoadSharingStrategy):
    """Share in proportion to each system's efficiency at ``I/N``.

    A one-step relaxation of the health-aware optimal dispatch: evaluate
    every stack's system efficiency at the equal-share operating point
    and let the more efficient stacks carry proportionally more of the
    load.  Identical stacks degenerate to :class:`EqualShare` exactly.
    """

    def shares(self, i_total: float, systems: Sequence["FCSystem"]) -> list[float]:
        n = len(systems)
        base = i_total / n
        weights = [
            max(fc.model.efficiency(fc.model.clamp(base)), 1e-12) for fc in systems
        ]
        total = sum(weights)
        return [i_total * w / total for w in weights]


class MultiStackHybrid(PowerSource):
    """N FC systems + one shared charge storage.

    Parameters
    ----------
    systems:
        The FC systems (each with its own efficiency model and tank).
        All must regulate to the same rail voltage.
    storage:
        Shared charge buffer; defaults to the paper's 6 A-s supercap.
    sharing:
        Load-sharing strategy; defaults to :class:`EqualShare`.
    """

    kind = "multi-stack"

    def __init__(
        self,
        systems: Sequence["FCSystem"],
        storage: ChargeStorage | None = None,
        sharing: LoadSharingStrategy | None = None,
    ) -> None:
        systems = list(systems)
        if not systems:
            raise ConfigurationError("need at least one FC system")
        rails = {fc.v_out for fc in systems}
        if len(rails) != 1:
            raise ConfigurationError(
                f"all stacks must regulate to one rail voltage, got {sorted(rails)}"
            )
        self.systems = systems
        self.sharing = sharing if sharing is not None else EqualShare()
        super().__init__(
            storage if storage is not None else SuperCapacitor(capacity=6.0)
        )

    # -- control -------------------------------------------------------------

    @property
    def v_out(self) -> float:
        """Shared regulated rail voltage (V)."""
        return self.systems[0].v_out

    @property
    def n_stacks(self) -> int:
        """Number of ganged FC systems."""
        return len(self.systems)

    @property
    def load_following_range(self) -> tuple[float, float]:
        """Aggregate ``(sum IF_min, sum IF_max)`` across the stacks (A)."""
        return (
            sum(fc.model.if_min for fc in self.systems),
            sum(fc.model.if_max for fc in self.systems),
        )

    def set_fc_output(self, i_f: float, *, clamp: bool = True) -> float:
        """Command a total output; returns the total actually realised.

        The sharing strategy proposes per-stack commands; each stack
        clamps its own share into its load-following range, so the
        realised total can differ from the command near the range edges.
        """
        shares = self.sharing.shares(i_f, self.systems)
        return sum(
            fc.set_output(share, clamp=clamp)
            for fc, share in zip(self.systems, shares)
        )

    # -- dynamics ------------------------------------------------------------

    def _generate(
        self, dt: float, strict_fuel: bool
    ) -> tuple[float, float, float, tuple[float, ...]]:
        stack_currents = tuple(fc.output_current for fc in self.systems)
        i_f = sum(stack_currents)
        i_fc = sum(fc.fc_current() for fc in self.systems)
        fuel = sum(fc.run(dt, strict_fuel=strict_fuel) for fc in self.systems)
        return i_f, i_fc, fuel, stack_currents

    def reset(self, storage_charge: float = 0.0) -> None:
        """Reset ledgers, every stack's tank, and the shared storage."""
        super().reset(storage_charge)
        for fc in self.systems:
            fc.tank.reset()
