"""Live telemetry: streaming heartbeats + OpenMetrics flushing.

The PR-4 obs layer is post-hoc -- spans and metrics only surface after
a run finishes and exports.  This module adds the *monitoring-in-the-
loop* half: a background :class:`LiveFlusher` thread that, at a
configurable interval, atomically publishes

* a **heartbeat JSON** per run/shard (pid, host, start/update
  timestamps, task progress, rate, ETA, current phase, cache-hit
  ratio) -- the file ``fcdpm exp watch`` / ``fcdpm top`` poll; and
* an **OpenMetrics text exposition** of the full
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot
  (:mod:`repro.obs.openmetrics`) -- the exact artifact a future
  ``fcdpm serve /metrics`` endpoint will serve.

Both writes are atomic (temp file + ``os.replace``), so a concurrent
reader never sees a partial document; both are best-effort -- an
unwritable directory degrades telemetry, never the computation.

Everything is **off by default**: no thread starts unless a caller
constructs a flusher (``fcdpm exp run --live``, or the
``FCDPM_LIVE_INTERVAL`` environment switch), and the instrumented call
sites feeding :class:`LiveProgress` cost one attribute test when
inactive -- the same discipline (and the same ≤2% benchmark gate) as
the rest of the obs layer.

Stall semantics: a heartbeat that is not ``final`` and whose age
exceeds ``stall_factor`` (default 3) times its own ``interval_s`` is
**stalled** -- the writing process died, hung, or lost its disk.  A
``final`` heartbeat (written by a clean :meth:`LiveFlusher.stop`) is
never stalled, however old; a crash skips the final flush, so the last
periodic heartbeat goes stale and trips detection.
"""

from __future__ import annotations

import json
import os
import re
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .openmetrics import write_openmetrics

#: Bump when a heartbeat field changes meaning.
HEARTBEAT_SCHEMA_VERSION = 1

#: Seconds between flushes when live mode is enabled without an
#: explicit interval (``--live`` with no ``--live-interval``).
DEFAULT_LIVE_INTERVAL = 1.0

#: Heartbeat age, in multiples of the flush interval, beyond which a
#: non-final heartbeat counts as stalled.
DEFAULT_STALL_FACTOR = 3.0

_SHARD_FILE_RE = re.compile(r"heartbeat\.shard-(\d+)-of-(\d+)\.json\Z")


def live_interval(value: float | bool | None = None) -> float | None:
    """Resolve a live-flush interval; ``None`` means live mode is off.

    ``None`` defers to the ``FCDPM_LIVE_INTERVAL`` environment variable
    (unset/empty/unparsable/non-positive -> off); ``True`` means "on at
    the default cadence"; ``False`` forces off; a number is the
    interval in seconds (non-positive -> off).
    """
    if value is None:
        raw = os.environ.get("FCDPM_LIVE_INTERVAL")
        if not raw:
            return None
        try:
            value = float(raw)
        except ValueError:
            return None
    if value is True:
        return DEFAULT_LIVE_INTERVAL
    if value is False:
        return None
    value = float(value)
    return value if value > 0 else None


def _shard_suffix(shard: tuple[int, int] | str | None) -> str:
    """``".shard-i-of-n"`` filename infix, or ``""`` unsharded."""
    if shard is None:
        return ""
    if isinstance(shard, str):
        i_text, _, n_text = shard.partition("/")
        shard = (int(i_text), int(n_text))
    return f".shard-{shard[0]}-of-{shard[1]}"


def heartbeat_path(
    directory: Path | str, shard: tuple[int, int] | str | None = None
) -> Path:
    """Where a run/shard's heartbeat JSON lives."""
    return Path(directory) / f"heartbeat{_shard_suffix(shard)}.json"


def exposition_path(
    directory: Path | str, shard: tuple[int, int] | str | None = None
) -> Path:
    """Where a run/shard's OpenMetrics exposition lives."""
    return Path(directory) / f"metrics{_shard_suffix(shard)}.prom"


def write_atomic_json(path: Path | str, payload: Any) -> Path:
    """Write JSON via temp file + ``os.replace`` (reader-torn-proof)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n"
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


@dataclass
class Heartbeat:
    """One liveness record, as written to ``heartbeat*.json``."""

    name: str
    pid: int
    host: str
    started: float
    updated: float
    interval_s: float
    phase: str = ""
    shard: str | None = None
    tasks_done: int = 0
    tasks_failed: int = 0
    tasks_total: int = 0
    #: Settled tasks per second since the flusher started (0 when none).
    task_rate: float = 0.0
    #: Projected seconds to finish the remaining tasks (None: unknown).
    eta_s: float | None = None
    #: ``hits / (hits + misses)`` of the result cache so far (None: no
    #: cache traffic yet).
    cache_hit_ratio: float | None = None
    #: True only on the clean final flush -- never considered stalled.
    final: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": HEARTBEAT_SCHEMA_VERSION,
            "name": self.name,
            "shard": self.shard,
            "pid": self.pid,
            "host": self.host,
            "started": self.started,
            "updated": self.updated,
            "interval_s": self.interval_s,
            "phase": self.phase,
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
            "tasks_total": self.tasks_total,
            "task_rate": self.task_rate,
            "eta_s": self.eta_s,
            "cache_hit_ratio": self.cache_hit_ratio,
            "final": self.final,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Heartbeat":
        return cls(
            name=data["name"],
            shard=data.get("shard"),
            pid=data.get("pid", 0),
            host=data.get("host", ""),
            started=data.get("started", 0.0),
            updated=data.get("updated", 0.0),
            interval_s=data.get("interval_s", DEFAULT_LIVE_INTERVAL),
            phase=data.get("phase", ""),
            tasks_done=data.get("tasks_done", 0),
            tasks_failed=data.get("tasks_failed", 0),
            tasks_total=data.get("tasks_total", 0),
            task_rate=data.get("task_rate", 0.0),
            eta_s=data.get("eta_s"),
            cache_hit_ratio=data.get("cache_hit_ratio"),
            final=data.get("final", False),
        )


_HEARTBEAT_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "name": str,
    "pid": int,
    "host": str,
    "started": (int, float),
    "updated": (int, float),
    "interval_s": (int, float),
    "phase": str,
    "tasks_done": int,
    "tasks_failed": int,
    "tasks_total": int,
    "task_rate": (int, float),
    "final": bool,
}


def validate_heartbeat(data: Any) -> list[str]:
    """Structural problems with one heartbeat dict (empty = valid)."""
    if not isinstance(data, dict):
        return [f"heartbeat: expected an object, got {type(data).__name__}"]
    problems: list[str] = []
    for field_name, types in _HEARTBEAT_REQUIRED.items():
        if field_name not in data:
            problems.append(f"heartbeat: missing field {field_name!r}")
        elif not isinstance(data[field_name], types) or isinstance(
            data[field_name], bool
        ) != (types is bool):
            problems.append(
                f"heartbeat: field {field_name!r} has type "
                f"{type(data[field_name]).__name__}"
            )
    if problems:
        return problems
    if data["schema_version"] > HEARTBEAT_SCHEMA_VERSION:
        problems.append(
            f"heartbeat: schema_version {data['schema_version']} is newer "
            f"than supported {HEARTBEAT_SCHEMA_VERSION}"
        )
    if data["interval_s"] <= 0:
        problems.append(f"heartbeat: interval_s {data['interval_s']!r} not > 0")
    if data["updated"] < data["started"]:
        problems.append("heartbeat: updated predates started")
    for field_name in ("tasks_done", "tasks_failed", "tasks_total"):
        if data[field_name] < 0:
            problems.append(f"heartbeat: negative {field_name}")
    if data["tasks_total"] and (
        data["tasks_done"] + data["tasks_failed"] > data["tasks_total"]
    ):
        problems.append("heartbeat: done + failed exceeds total")
    shard = data.get("shard")
    if shard is not None and not isinstance(shard, str):
        problems.append("heartbeat: shard must be null or 'i/n'")
    for field_name in ("eta_s", "cache_hit_ratio"):
        value = data.get(field_name)
        if value is not None and not isinstance(value, (int, float)):
            problems.append(f"heartbeat: {field_name} must be null or a number")
    return problems


def heartbeat_age(data: dict[str, Any], now: float | None = None) -> float:
    """Seconds since the heartbeat was last written (clamped at 0)."""
    if now is None:
        now = time.time()
    return max(0.0, now - float(data.get("updated", 0.0)))


def is_stalled(
    data: dict[str, Any],
    now: float | None = None,
    factor: float = DEFAULT_STALL_FACTOR,
) -> bool:
    """Stalled = not final and older than ``factor`` flush intervals."""
    if data.get("final"):
        return False
    interval = float(data.get("interval_s", DEFAULT_LIVE_INTERVAL)) or (
        DEFAULT_LIVE_INTERVAL
    )
    return heartbeat_age(data, now) > factor * interval


def iter_heartbeats(
    directory: Path | str,
) -> list[tuple[str | None, dict[str, Any]]]:
    """All readable heartbeats in a run directory, shards sorted first
    by index; returns ``[(shard_label | None, heartbeat_dict), ...]``.

    Unreadable or torn files are skipped -- with atomic writes the only
    way to see one is a dead writer mid-``mkstemp``, and the watcher
    must keep rendering the healthy shards regardless.
    """
    directory = Path(directory)
    out: list[tuple[tuple[int, int], str | None, dict[str, Any]]] = []
    if not directory.is_dir():
        return []
    for path in sorted(directory.glob("heartbeat*.json")):
        match = _SHARD_FILE_RE.match(path.name)
        if match:
            label = f"{int(match.group(1))}/{int(match.group(2))}"
            order = (int(match.group(1)), int(match.group(2)))
        elif path.name == "heartbeat.json":
            label, order = None, (0, 0)
        else:
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        out.append((order, label, data))
    out.sort(key=lambda item: item[0])
    return [(label, data) for _, label, data in out]


class LiveProgress:
    """Thread-safe task-progress counters the run loop updates.

    One instance per run/shard; the executing thread bumps it per task
    commit and the :class:`LiveFlusher` thread snapshots it per flush.
    Updates are per *task* (not per slot), so the lock is cold.
    """

    __slots__ = ("_lock", "_done", "_failed", "_total", "_phase")

    def __init__(self, total: int = 0, phase: str = "") -> None:
        self._lock = threading.Lock()
        self._done = 0
        self._failed = 0
        self._total = int(total)
        self._phase = phase

    def add_done(self, n: int = 1) -> None:
        with self._lock:
            self._done += n

    def add_failed(self, n: int = 1) -> None:
        with self._lock:
            self._failed += n

    def set_total(self, total: int) -> None:
        with self._lock:
            self._total = int(total)

    def set_phase(self, phase: str) -> None:
        with self._lock:
            self._phase = phase

    def snapshot(self) -> tuple[int, int, int, str]:
        """Consistent ``(done, failed, total, phase)`` view."""
        with self._lock:
            return (self._done, self._failed, self._total, self._phase)


def _cache_hit_ratio(snapshot: dict[str, dict[str, Any]]) -> float | None:
    """``hits / (hits + misses)`` from a registry snapshot, if any."""
    hits = snapshot.get("runtime.cache.hits", {}).get("value", 0.0)
    misses = snapshot.get("runtime.cache.misses", {}).get("value", 0.0)
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


class LiveFlusher(threading.Thread):
    """Background thread that periodically publishes live telemetry.

    Writes :func:`heartbeat_path` and :func:`exposition_path` under
    ``directory`` every ``interval`` seconds (plus once immediately on
    start and once, marked ``final``, from :meth:`stop`).  The metrics
    registry is resolved *per flush* (default: the live ``OBS.metrics``),
    so an ``observing()`` scope installed after construction is still
    captured.

    The thread is a daemon: a crashed coordinator never hangs on it,
    and the missing final flush is exactly what lets the stall detector
    notice the crash.
    """

    def __init__(
        self,
        directory: Path | str,
        name: str,
        *,
        progress: LiveProgress,
        interval: float = DEFAULT_LIVE_INTERVAL,
        shard: tuple[int, int] | str | None = None,
        registry=None,
    ) -> None:
        super().__init__(name=f"fcdpm-live-{name}", daemon=True)
        if interval <= 0:
            raise ValueError(f"flush interval must be > 0, got {interval}")
        self.directory = Path(directory)
        self.run_name = name
        self.progress = progress
        self.interval = float(interval)
        self.shard_label = (
            f"{shard[0]}/{shard[1]}" if isinstance(shard, tuple) else shard
        )
        self._registry = registry
        self._stop_event = threading.Event()
        self._started_wall = time.time()
        self._t0 = time.perf_counter()
        self.flushes = 0
        self.write_errors = 0

    # -- flush mechanics -----------------------------------------------------

    def _snapshot_registry(self) -> dict[str, dict[str, Any]]:
        registry = self._registry
        if registry is None:
            from .state import OBS

            registry = OBS.metrics
        return registry.snapshot()

    def build_heartbeat(self, final: bool = False) -> Heartbeat:
        """Assemble the current heartbeat (also used by tests)."""
        done, failed, total, phase = self.progress.snapshot()
        elapsed = time.perf_counter() - self._t0
        settled = done + failed
        rate = settled / elapsed if elapsed > 0 else 0.0
        remaining = max(total - settled, 0)
        eta = remaining / rate if (rate > 0 and total) else None
        return Heartbeat(
            name=self.run_name,
            shard=self.shard_label,
            pid=os.getpid(),
            host=socket.gethostname(),
            started=self._started_wall,
            updated=time.time(),
            interval_s=self.interval,
            phase=phase,
            tasks_done=done,
            tasks_failed=failed,
            tasks_total=total,
            task_rate=rate,
            eta_s=eta,
            cache_hit_ratio=_cache_hit_ratio(self._snapshot_registry()),
            final=final,
        )

    def flush(self, final: bool = False) -> None:
        """Write heartbeat + exposition once; IO failures are counted,
        never raised (telemetry must not break the run)."""
        try:
            snapshot = self._snapshot_registry()
            write_atomic_json(
                heartbeat_path(self.directory, self.shard_label),
                self.build_heartbeat(final=final).to_dict(),
            )
            write_openmetrics(
                exposition_path(self.directory, self.shard_label), snapshot
            )
            self.flushes += 1
        except OSError:
            self.write_errors += 1

    # -- thread lifecycle ----------------------------------------------------

    def run(self) -> None:  # pragma: no cover - exercised via start()
        self.flush()
        while not self._stop_event.wait(self.interval):
            self.flush()

    def stop(self, final: bool = True, timeout: float | None = None) -> None:
        """Stop the loop, join, and write one last flush.

        ``final=True`` (a clean completion) marks the heartbeat final
        so it is never flagged stalled; ``final=False`` (an abort)
        leaves it non-final, so it goes stale and trips the detector
        exactly like a hard crash.
        """
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout if timeout is not None else self.interval * 5 + 1)
        self.flush(final=final)

    def __enter__(self) -> "LiveFlusher":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(final=exc_type is None)


__all__ = [
    "DEFAULT_LIVE_INTERVAL",
    "DEFAULT_STALL_FACTOR",
    "HEARTBEAT_SCHEMA_VERSION",
    "Heartbeat",
    "LiveFlusher",
    "LiveProgress",
    "exposition_path",
    "heartbeat_age",
    "heartbeat_path",
    "is_stalled",
    "iter_heartbeats",
    "live_interval",
    "validate_heartbeat",
    "write_atomic_json",
]
