"""Table 2 and Table 3: normalized fuel consumption of the three policies.

Each function builds the paper's exact experimental configuration, runs
the three controllers over the same trace, and returns normalized fuel
numbers alongside the paper's published values for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import Experiment1Constants, Experiment2Constants
from ..core.manager import PowerManager
from ..devices.camcorder import camcorder_device_params, randomized_device_params
from ..sim.metrics import compare, fuel_saving, lifetime_extension
from ..sim.slotsim import SimulationResult, simulate_policies
from ..workload.mpeg import generate_mpeg_trace
from ..workload.synthetic import experiment2_trace

#: Published Table 2 values (fraction of Conv-DPM fuel).
PAPER_TABLE2 = {"conv-dpm": 1.0, "asap-dpm": 0.408, "fc-dpm": 0.308}
#: Published Table 3 values.
PAPER_TABLE3 = {"conv-dpm": 1.0, "asap-dpm": 0.491, "fc-dpm": 0.415}


@dataclass
class TableResult:
    """One reproduced table: measured vs published normalized fuel."""

    name: str
    normalized: dict[str, float]
    paper: dict[str, float]
    results: dict[str, SimulationResult] = field(default_factory=dict)

    @property
    def fc_vs_asap_saving(self) -> float:
        """Fractional fuel FC-DPM saves over ASAP-DPM."""
        return fuel_saving(
            self.results["fc-dpm"].metrics, self.results["asap-dpm"].metrics
        )

    @property
    def fc_vs_asap_lifetime(self) -> float:
        """Lifetime-extension factor of FC-DPM over ASAP-DPM (paper: 1.32)."""
        return lifetime_extension(
            self.results["fc-dpm"].metrics, self.results["asap-dpm"].metrics
        )

    def rows(self) -> list[list[str]]:
        """Formatted rows: policy, measured %, paper %."""
        out = [["DPM policy", "measured (% of Conv-DPM)", "paper (%)"]]
        for key in ("conv-dpm", "asap-dpm", "fc-dpm"):
            out.append(
                [
                    key,
                    f"{100 * self.normalized[key]:.1f}",
                    f"{100 * self.paper[key]:.1f}",
                ]
            )
        return out


def _managers(dev, capacity: float, initial: float, rho: float, sigma: float,
              active_current_estimate):
    return [
        PowerManager.conv_dpm(
            dev, storage_capacity=capacity, storage_initial=initial, rho=rho
        ),
        PowerManager.asap_dpm(
            dev, storage_capacity=capacity, storage_initial=initial, rho=rho
        ),
        PowerManager.fc_dpm(
            dev,
            storage_capacity=capacity,
            storage_initial=initial,
            rho=rho,
            sigma=sigma,
            active_current_estimate=active_current_estimate,
        ),
    ]


def table2(
    seed: int = 2007,
    record: bool = False,
    constants: Experiment1Constants | None = None,
    fast: bool = False,
) -> TableResult:
    """Reproduce Table 2: the 28-minute MPEG camcorder experiment.

    Storage is the paper's 1 F supercap (~6 A-s usable), started half
    full (the paper does not state ``Cini``; half capacity gives the
    buffer headroom in both directions that ``Cend = Cini`` stability
    presumes).  Prediction factor ``rho = 0.5``; the active period is
    fixed by the buffer/writer so no active-length prediction is needed
    (the sigma filter converges to the constant immediately).

    ``fast=True`` routes each policy through the vectorized kernel
    (:func:`repro.sim.vectorized.simulate_fast`); the numbers are
    identical -- FC-DPM is adaptive and transparently takes the scalar
    path either way.
    """
    c = constants if constants is not None else Experiment1Constants()
    trace = generate_mpeg_trace(duration_s=c.duration_s, seed=seed)
    dev = camcorder_device_params(i_pd=c.i_pd, i_wu=c.i_wu)
    managers = _managers(
        dev,
        capacity=c.storage_capacity,
        initial=c.storage_capacity / 2,
        rho=c.rho,
        sigma=c.rho,
        active_current_estimate=None,
    )
    results = simulate_policies(trace, managers, record=record, fast=fast)
    return TableResult(
        name="table2",
        normalized=compare([r.metrics for r in results.values()]),
        paper=dict(PAPER_TABLE2),
        results=results,
    )


def table3(
    seed: int = 2007,
    record: bool = False,
    constants: Experiment2Constants | None = None,
    fast: bool = False,
) -> TableResult:
    """Reproduce Table 3: the randomized synthetic experiment.

    Idle U[5, 25] s, active U[2, 4] s, active power U[12, 16] W, heavy
    SLEEP overheads (1 s at 1.2 A each way), ``Tbe = 10 s``,
    ``rho = sigma = 0.5`` and the future active current estimated as the
    constant 1.2 A -- all per paper Section 5.2.

    ``fast=True`` as in :func:`table2`.
    """
    e = constants if constants is not None else Experiment2Constants()
    trace = experiment2_trace(constants=e, seed=seed)
    dev = randomized_device_params(e)
    managers = _managers(
        dev,
        capacity=6.0,
        initial=3.0,
        rho=e.rho,
        sigma=e.sigma,
        active_current_estimate=e.i_active_estimate,
    )
    results = simulate_policies(trace, managers, record=record, fast=fast)
    return TableResult(
        name="table3",
        normalized=compare([r.metrics for r in results.values()]),
        paper=dict(PAPER_TABLE3),
        results=results,
    )
