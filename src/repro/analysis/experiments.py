"""One-shot experiment report: every table/figure/ablation in one run.

``fcdpm report`` (or :func:`full_report`) regenerates the complete
evaluation and renders a single text report -- the quickest way to audit
the reproduction end to end.
"""

from __future__ import annotations

import io

import numpy as np

from ..core.manager import PowerManager
from ..core.receding import RecedingHorizonController
from ..devices.camcorder import camcorder_device_params
from ..dpm.predictive import PredictiveShutdownPolicy
from ..fuelcell.efficiency import LinearSystemEfficiency
from ..prediction.exponential import ExponentialAveragePredictor
from ..sim.montecarlo import seed_study
from ..sim.slotsim import SlotSimulator
from ..workload.mpeg import generate_mpeg_trace
from .battery_contrast import shaping_contrast
from .figures import fig2_stack_iv_curve, fig3_efficiency_curves, fig4_motivational
from .report import format_table
from .sweep import efficiency_slope_sweep, storage_capacity_sweep
from .tables import table2, table3


def _section(out: io.StringIO, title: str) -> None:
    out.write(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n")


def mpc_comparison(seed: int = 2007, horizons=(1, 2, 4)) -> dict[str, float]:
    """FC-DPM vs receding-horizon control on the Experiment-1 trace."""
    trace = generate_mpeg_trace(seed=seed)
    dev = camcorder_device_params()
    model = LinearSystemEfficiency()

    fuels: dict[str, float] = {}
    base = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
    fuels["fc-dpm"] = SlotSimulator(base).run(trace).fuel

    for h in horizons:
        idle_pred = ExponentialAveragePredictor(factor=0.5)
        mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        mgr.name = f"mpc-h{h}"
        mgr.policy = PredictiveShutdownPolicy(dev, idle_pred)
        controller = RecedingHorizonController(
            model, horizon=h, idle_length_predictor=idle_pred
        )
        controller.observes_idle = False
        mgr.controller = controller
        fuels[mgr.name] = SlotSimulator(mgr).run(trace).fuel
    return fuels


def full_report(seed: int = 2007, n_seeds: int = 5, workers: int = 1) -> str:
    """Run the full evaluation; returns the rendered text report.

    ``workers`` fans the seed-stability study and the ablation sweeps
    out over processes (see :mod:`repro.runtime.parallel`); the rendered
    report is byte-identical for any worker count.
    """
    out = io.StringIO()
    out.write("FC-DPM reproduction report (Zhuo et al., DAC 2007)\n")

    # -- Fig 2 / Fig 3 ------------------------------------------------------
    _section(out, "Fig 2 -- stack characteristics")
    f2 = fig2_stack_iv_curve()
    out.write(
        f"Voc = {f2['voltage'][0]:.2f} V (paper 18.2), "
        f"MPP = {float(f2['p_mpp']):.2f} W @ {float(f2['i_mpp']):.3f} A "
        "(paper ~20 W)\n"
    )
    _section(out, "Fig 3 -- efficiency calibration")
    f3 = fig3_efficiency_curves()
    in_range = (f3["current"] >= 0.1) & (f3["current"] <= 1.2)
    err = float(np.max(np.abs(f3["proportional"][in_range] -
                              f3["linear_fit"][in_range])))
    out.write(
        f"max |composed - (0.45 - 0.13 IF)| over the range: {err:.4f}\n"
    )

    # -- Fig 4 ---------------------------------------------------------------
    _section(out, "Fig 4 -- motivational example")
    f4 = fig4_motivational()
    rows = [["setting", "fuel (A-s)", "paper"]]
    for name, paper in (("conv-dpm", "36*"), ("asap-dpm", "16"),
                        ("fc-dpm", "13.45")):
        rows.append([name, f"{f4.fuel[name]:.2f}", paper])
    out.write(format_table(rows) + "\n")

    # -- Tables ----------------------------------------------------------------
    for result in (table2(seed=seed), table3(seed=seed)):
        _section(out, f"{result.name} -- normalized fuel")
        out.write(format_table(result.rows()) + "\n")
        out.write(
            f"FC-DPM vs ASAP-DPM: -{100 * result.fc_vs_asap_saving:.1f}% "
            f"fuel, lifetime x{result.fc_vs_asap_lifetime:.2f}\n"
        )

    # -- Seed stability -----------------------------------------------------
    _section(out, f"Table 2 across {n_seeds} seeds (95% CI)")
    summaries = seed_study("table2-metrics", range(n_seeds), workers=workers)
    rows = [["metric", "mean", "+-95%", "range"]]
    for name, s in summaries.items():
        rows.append(
            [name, f"{s.mean:.3f}", f"{s.ci95_halfwidth:.3f}",
             f"[{s.minimum:.3f}, {s.maximum:.3f}]"]
        )
    out.write(format_table(rows) + "\n")

    # -- Ablations ------------------------------------------------------------
    _section(out, "Ablation -- saving vs efficiency slope beta")
    rows = [["beta", "FC-DPM saving vs ASAP (%)"]]
    for beta, saving in efficiency_slope_sweep(betas=(0.0, 0.13, 0.24),
                                               seed=seed, workers=workers).items():
        rows.append([f"{beta:.2f}", f"{100 * saving:.1f}"])
    out.write(format_table(rows) + "\n")

    _section(out, "Ablation -- storage capacity")
    rows = [["Cmax (A-s)", "fc-dpm fuel / conv"]]
    for cap, row in storage_capacity_sweep(capacities=(2.0, 6.0, 24.0),
                                           seed=seed, workers=workers).items():
        rows.append([f"{cap:g}", f"{row['fc-dpm']:.3f}"])
    out.write(format_table(rows) + "\n")

    # -- Extensions -------------------------------------------------------------
    _section(out, "Extension -- receding-horizon control")
    rows = [["controller", "fuel (A-s)"]]
    for name, fuel in mpc_comparison(seed=seed).items():
        rows.append([name, f"{fuel:.2f}"])
    out.write(format_table(rows) + "\n")

    _section(out, "Claim check -- battery-aware shaping does not transfer")
    contrast = shaping_contrast()
    rows = [["source", "flat cost", "pulsed cost", "prefers"]]
    for name, cost in contrast.items():
        rows.append(
            [name, f"{cost.flat:.3f}", f"{cost.pulsed:.3f}",
             "pulsed" if cost.prefers_pulsed else "flat"]
        )
    out.write(format_table(rows) + "\n")

    return out.getvalue()
