"""Fig. 7 bench: Experiment-1 current profiles over the first 300 s."""

import numpy as np

from repro.analysis.figures import fig7_current_profiles
from repro.analysis.report import ascii_plot


def _mids(times, values):
    return [(times[i] + times[i + 1]) / 2 for i in range(len(values))]


def test_bench_fig7_current_profiles(benchmark, emit):
    profiles = benchmark.pedantic(fig7_current_profiles, rounds=1, iterations=1)

    blocks = [
        "FIG 7 -- current profiles, first 300 s of Experiment 1",
        "paper: (a) load, (b) ASAP-DPM follows the load, (c) FC-DPM is flat",
    ]
    stats = {}
    for key, title in (
        ("load", "(a) embedded-system load current Ild"),
        ("asap-dpm", "(b) FC system output IF under ASAP-DPM"),
        ("fc-dpm", "(c) FC system output IF under FC-DPM"),
    ):
        times, values = profiles[key]
        stats[key] = float(np.std(values))
        blocks.append(ascii_plot(_mids(times, values), values,
                                 title=title, y_label="A"))
    blocks.append(
        "std(IF): asap=%.3f A, fc-dpm=%.3f A (flatness is the paper's point)"
        % (stats["asap-dpm"], stats["fc-dpm"])
    )
    emit("fig7", "\n".join(blocks))

    assert stats["fc-dpm"] < 0.5 * stats["asap-dpm"]
