"""Schema checks for trace artifacts (manifest / JSONL / Chrome trace).

Dependency-free structural validation: each ``validate_*`` function
returns a list of human-readable problem strings (empty = valid), and
:func:`validate_trace_dir` checks a whole ``--trace`` output directory
-- the contract ``make trace-smoke`` and CI enforce via
``scripts/check_trace.py``.  Checks cover field presence and types,
schema-version compatibility, span-tree integrity (ids unique, parents
resolvable, at least one root) and Chrome-trace loadability.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .manifest import MANIFEST_SCHEMA_VERSION
from .metrics import METRICS_SCHEMA_VERSION
from .tracer import SPAN_SCHEMA_VERSION

_MANIFEST_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "name": str,
    "fingerprint": str,
    "schema_version": int,
    "created": (int, float),
    "seeds": list,
    "workers": int,
    "route": str,
    "wall_s": (int, float),
    "cpu_s": (int, float),
    "metrics": dict,
    "versions": dict,
}

_SPAN_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "name": str,
    "span_id": str,
    "t_wall": (int, float),
    "pid": int,
    "thread": str,
    "status": str,
    "attrs": dict,
}


def _check_fields(
    data: dict, required: dict, what: str, errors: list[str]
) -> None:
    for field_name, types in required.items():
        if field_name not in data:
            errors.append(f"{what}: missing field {field_name!r}")
        elif not isinstance(data[field_name], types):
            errors.append(
                f"{what}: field {field_name!r} has type "
                f"{type(data[field_name]).__name__}"
            )


def validate_manifest(data: Any) -> list[str]:
    """Problems with one manifest dict (empty list = valid)."""
    if not isinstance(data, dict):
        return [f"manifest: expected an object, got {type(data).__name__}"]
    errors: list[str] = []
    _check_fields(data, _MANIFEST_REQUIRED, "manifest", errors)
    if data.get("schema_version", MANIFEST_SCHEMA_VERSION) > MANIFEST_SCHEMA_VERSION:
        errors.append(
            f"manifest: schema_version {data['schema_version']} is newer "
            f"than supported {MANIFEST_SCHEMA_VERSION}"
        )
    versions = data.get("versions")
    if isinstance(versions, dict) and "python" not in versions:
        errors.append("manifest: versions lacks a 'python' entry")
    scenario = data.get("scenario")
    if scenario is not None and not isinstance(scenario, dict):
        errors.append("manifest: scenario must be null or an object")
    return errors


def validate_span(data: Any) -> list[str]:
    """Problems with one span dict (empty list = valid)."""
    if not isinstance(data, dict):
        return [f"span: expected an object, got {type(data).__name__}"]
    errors: list[str] = []
    _check_fields(data, _SPAN_REQUIRED, f"span {data.get('name', '?')!r}", errors)
    if data.get("schema", SPAN_SCHEMA_VERSION) > SPAN_SCHEMA_VERSION:
        errors.append(
            f"span {data.get('name', '?')!r}: schema {data['schema']} is newer "
            f"than supported {SPAN_SCHEMA_VERSION}"
        )
    duration = data.get("duration")
    if duration is not None and (
        not isinstance(duration, (int, float)) or duration < 0
    ):
        errors.append(f"span {data.get('name', '?')!r}: bad duration {duration!r}")
    return errors


def validate_span_set(spans: list[dict]) -> list[str]:
    """Cross-span integrity: unique ids, resolvable parents, >= 1 root."""
    errors: list[str] = []
    ids: set[str] = set()
    for span in spans:
        span_id = span.get("span_id")
        if span_id in ids:
            errors.append(f"span set: duplicate span_id {span_id!r}")
        if isinstance(span_id, str):
            ids.add(span_id)
    roots = 0
    for span in spans:
        parent = span.get("parent_id")
        if parent is None:
            roots += 1
        elif parent not in ids:
            errors.append(
                f"span {span.get('name', '?')!r}: parent_id {parent!r} "
                "does not resolve"
            )
    if spans and roots == 0:
        errors.append("span set: no root span (every parent_id set)")
    return errors


def validate_metric_record(data: Any) -> list[str]:
    """Problems with one JSONL metric record."""
    if not isinstance(data, dict):
        return [f"metric: expected an object, got {type(data).__name__}"]
    errors: list[str] = []
    if not isinstance(data.get("key"), str):
        errors.append("metric: missing string 'key'")
    # Counters/gauges carry 'value'; histograms carry 'count' (+ stats).
    if "value" not in data and "count" not in data:
        errors.append(f"metric {data.get('key', '?')!r}: no value/count payload")
    if data.get("schema", METRICS_SCHEMA_VERSION) > METRICS_SCHEMA_VERSION:
        errors.append(
            f"metric {data.get('key', '?')!r}: schema {data['schema']} is "
            f"newer than supported {METRICS_SCHEMA_VERSION}"
        )
    return errors


def validate_chrome_trace(data: Any) -> list[str]:
    """Problems with a loaded Chrome trace-event document."""
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["chrome trace: expected an object with 'traceEvents'"]
    errors: list[str] = []
    for i, event in enumerate(data["traceEvents"]):
        if not isinstance(event, dict):
            errors.append(f"chrome trace: event {i} is not an object")
            continue
        for key in ("name", "ph", "ts"):
            if key not in event:
                errors.append(f"chrome trace: event {i} lacks {key!r}")
        if event.get("ph") == "X" and "dur" not in event:
            errors.append(f"chrome trace: complete event {i} lacks 'dur'")
    return errors


def validate_trace_dir(directory: Path | str) -> list[str]:
    """Validate a ``--trace`` output directory end to end."""
    directory = Path(directory)
    errors: list[str] = []
    if not directory.is_dir():
        return [f"{directory}: not a directory"]

    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        errors.append(f"{manifest_path.name}: missing")
    else:
        try:
            errors.extend(validate_manifest(json.loads(manifest_path.read_text())))
        except json.JSONDecodeError as exc:
            errors.append(f"{manifest_path.name}: invalid JSON ({exc})")

    jsonl_path = directory / "spans.jsonl"
    if not jsonl_path.exists():
        errors.append(f"{jsonl_path.name}: missing")
    else:
        spans: list[dict] = []
        for lineno, line in enumerate(jsonl_path.read_text().splitlines(), 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{jsonl_path.name}:{lineno}: invalid JSON ({exc})")
                continue
            if record.get("type") == "span":
                errors.extend(validate_span(record))
                spans.append(record)
            else:
                errors.extend(validate_metric_record(record))
        if not spans:
            errors.append(f"{jsonl_path.name}: contains no spans")
        errors.extend(validate_span_set(spans))

    chrome_path = directory / "trace.json"
    if not chrome_path.exists():
        errors.append(f"{chrome_path.name}: missing")
    else:
        try:
            errors.extend(
                validate_chrome_trace(json.loads(chrome_path.read_text()))
            )
        except json.JSONDecodeError as exc:
            errors.append(f"{chrome_path.name}: invalid JSON ({exc})")

    return errors
