"""The hybrid power source of paper Fig. 1: FC system + charge storage.

The charge storage element buffers the difference between the FC system
output ``IF`` and the embedded-system load ``Ild``:

* ``Ild < IF``  -- the surplus ``Ichg = IF - Ild`` charges the storage;
  if the storage is full the excess is dissipated in the bleeder by-pass
  (paper Section 3.3.1, "limited charge capacity" extreme case);
* ``Ild > IF``  -- the shortfall ``Idis = Ild - IF`` is discharged from
  the storage; an empty storage means the load is not met, which the
  simulator records as a brown-out deficit (a policy bug if it happens).

This is the reference implementation of the
:class:`~repro.power.source.PowerSource` protocol: the shared base
class keeps the full ledger -- fuel burned, energy delivered, charge
bled, deficits -- so policies can be compared on exactly the quantities
the paper tabulates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .source import PowerSource, SourceStep
from .storage import ChargeStorage, SuperCapacitor

if TYPE_CHECKING:  # avoid a circular import with repro.fuelcell at runtime
    from ..fuelcell.system import FCSystem

#: Backward-compatible alias: one hybrid interval is one source step.
HybridStep = SourceStep


class HybridPowerSource(PowerSource):
    """FC system + charge storage, with conservation bookkeeping."""

    kind = "hybrid"

    def __init__(
        self,
        fc: "FCSystem | None" = None,
        storage: ChargeStorage | None = None,
    ) -> None:
        if fc is None:
            from ..fuelcell.system import FCSystem

            fc = FCSystem.paper_system()
        self.fc = fc
        super().__init__(
            storage if storage is not None else SuperCapacitor(capacity=6.0)
        )

    # -- control -------------------------------------------------------------

    @property
    def v_out(self) -> float:
        """Regulated rail voltage (V), set by the FC system's converter."""
        return self.fc.v_out

    def set_fc_output(self, i_f: float, *, clamp: bool = True) -> float:
        """Command the FC system output current (delegates to the FC)."""
        return self.fc.set_output(i_f, clamp=clamp)

    # -- dynamics ------------------------------------------------------------

    def _generate(
        self, dt: float, strict_fuel: bool
    ) -> tuple[float, float, float, tuple[float, ...]]:
        i_f = self.fc.output_current
        i_fc = self.fc.fc_current()
        fuel = self.fc.run(dt, strict_fuel=strict_fuel)
        return i_f, i_fc, fuel, (i_f,)

    def reset(self, storage_charge: float = 0.0) -> None:
        """Reset ledgers, fuel tank and storage for a fresh run."""
        super().reset(storage_charge)
        self.fc.tank.reset()
