#!/usr/bin/env python3
"""Experiment 2: the randomized workload with heavy sleep overheads (Table 3).

Idle U[5, 25] s, active U[2, 4] s, active power U[12, 16] W; SLEEP
transitions cost 1 s at 1.2 A each way, so the break-even time is 10 s
and the predictive policy must actually *skip* short idles.  The future
active current is estimated as the constant 1.2 A, as in the paper.

Also demonstrates running the same configuration across many seeds to
report confidence intervals -- something the paper does not do.

Run:  python examples/synthetic_workload.py [n_seeds]
"""

import statistics
import sys

from repro import PowerManager, experiment2_trace, randomized_device_params
from repro.analysis.report import format_table
from repro.sim import simulate_policies


def run_once(seed: int) -> dict[str, float]:
    trace = experiment2_trace(seed=seed)
    dev = randomized_device_params()
    managers = [
        PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        PowerManager.fc_dpm(
            dev, storage_capacity=6.0, storage_initial=3.0,
            active_current_estimate=1.2,
        ),
    ]
    results = simulate_policies(trace, managers)
    conv = results["conv-dpm"].fuel
    return {name: r.fuel / conv for name, r in results.items()}


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    runs = [run_once(seed) for seed in range(n_seeds)]

    paper = {"conv-dpm": 1.0, "asap-dpm": 0.491, "fc-dpm": 0.415}
    rows = [["policy", "mean normalized fuel", "stdev", "paper"]]
    for name in ("conv-dpm", "asap-dpm", "fc-dpm"):
        values = [r[name] for r in runs]
        mean = statistics.fmean(values)
        sd = statistics.stdev(values) if len(values) > 1 else 0.0
        rows.append(
            [name, f"{100 * mean:.1f}%", f"{100 * sd:.1f}",
             f"{100 * paper[name]:.1f}%"]
        )
    print(format_table(
        rows, title=f"Table 3 -- Experiment 2 over {n_seeds} seeds"
    ))

    savings = [1 - r["fc-dpm"] / r["asap-dpm"] for r in runs]
    print(f"\nfc-dpm saving vs asap-dpm: "
          f"{100 * statistics.fmean(savings):.1f}% mean "
          f"(min {100 * min(savings):.1f}%, max {100 * max(savings):.1f}%; "
          "paper: 15.5%)")
    print("note: the saving is smaller than Experiment 1's, as the paper "
          "explains -- higher average currents leave less efficiency contrast.")


if __name__ == "__main__":
    main()
