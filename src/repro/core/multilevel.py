"""Discrete FC output levels: the ISLPED'06 setting (paper ref [11]).

The DAC'07 paper assumes the FC output is continuously adjustable
within the load-following range.  The authors' earlier ISLPED'06 work
instead supports a *finite set of output levels* -- realistic when the
fuel-flow controller has a few calibrated set-points.  This module
solves the single-slot problem of Section 3 under that restriction:

    min  Ifc(l_i)*Ti + Ifc(l_a)*Ta_eff
    s.t. l_i, l_a in L  (the discrete level set)
         storage stays in [0, Cmax]; end level as close to Cend as the
         lattice permits.

With |L| levels the search space is |L|^2 pairs -- solved exactly by
enumeration, with infeasibility (deficit) excluded and residual
imbalance penalized lexicographically after fuel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, InfeasibleError
from ..fuelcell.efficiency import SystemEfficiencyModel
from .setting import SlotProblem, SlotSolution


def default_levels(model: SystemEfficiencyModel, n_levels: int = 6) -> tuple[float, ...]:
    """Evenly spaced output levels across the load-following range."""
    if n_levels < 2:
        raise ConfigurationError("need at least two levels")
    return tuple(
        float(x) for x in np.linspace(model.if_min, model.if_max, n_levels)
    )


@dataclass(frozen=True)
class DiscreteSolution:
    """Best discrete pair with its continuous-relaxation reference."""

    solution: SlotSolution
    #: Fuel of the continuous optimum (lower bound).
    continuous_fuel: float
    #: Fuel plus the replacement cost of any end-of-slot shortfall
    #: (charged at the fuel map's steepest marginal rate).  This is the
    #: apples-to-apples number against ``continuous_fuel``: a lattice
    #: that under-delivers owes the missing coulombs to a later slot.
    effective_fuel: float = 0.0

    @property
    def quantization_penalty(self) -> float:
        """Extra (effective) fuel paid for the discrete lattice (>= 0)."""
        return self.effective_fuel - self.continuous_fuel


def solve_slot_discrete(
    problem: SlotProblem,
    model: SystemEfficiencyModel,
    levels: tuple[float, ...] | None = None,
    balance_weight: float | None = None,
) -> DiscreteSolution:
    """Exact enumeration of the discrete-level single-slot problem.

    Candidate pairs that brown out the storage (deficit) are rejected;
    among survivors the objective is fuel plus ``balance_weight`` times
    the charge the slot ends *below* its target (the lattice rarely
    hits ``Cend`` exactly).  The default weight is the fuel map's
    steepest marginal rate ``dIfc/dIF`` at ``IF_max``: since the fuel
    saved by under-delivering one coulomb can never exceed that
    marginal, a greedy per-slot solver can never "profit" from silently
    draining the storage below target.  Surplus over the target is not
    penalized (its fuel cost is already in the objective); a tiny
    tie-break keeps the end state near the target among equals.
    Raises :class:`InfeasibleError` when every pair browns out.
    """
    from .optimizer import solve_slot

    lv = levels if levels is not None else default_levels(model)
    if any(not model.in_range(x) for x in lv):
        raise ConfigurationError("levels must lie in the load-following range")
    if balance_weight is None:
        balance_weight = model.fc_current_derivative(model.if_max)
    t_i, t_a = problem.t_idle, problem.t_active_eff

    best: SlotSolution | None = None
    best_score = float("inf")
    for l_i in lv:
        c_mid = problem.c_ini + (l_i - problem.i_idle) * t_i
        bled_idle = max(c_mid - problem.c_max, 0.0)
        if c_mid < -1e-9:
            continue  # storage browns out during the idle period
        c_mid = min(c_mid, problem.c_max)
        for l_a in lv:
            c_after = c_mid + l_a * t_a - problem.active_demand
            bled_active = max(c_after - problem.c_max, 0.0)
            if c_after < -1e-9:
                continue  # browns out during the active period
            c_after = min(c_after, problem.c_max)
            fuel = model.fc_current(l_i) * t_i + model.fc_current(l_a) * t_a
            shortfall = max(problem.c_end - c_after, 0.0)
            score = (
                fuel
                + balance_weight * shortfall
                + 1e-6 * abs(c_after - problem.c_end)
            )
            if score < best_score:
                best_score = score
                best = SlotSolution(
                    if_idle=l_i,
                    if_active=l_a,
                    ifc_idle=model.fc_current(l_i),
                    ifc_active=model.fc_current(l_a),
                    fuel=fuel,
                    c_after_idle=c_mid,
                    c_after_slot=c_after,
                    range_clamped=False,
                    capacity_limited=bled_idle + bled_active > 0,
                    bled=bled_idle + bled_active,
                    deficit=0.0,
                )
    if best is None:
        raise InfeasibleError(
            "every discrete level pair browns out the storage; the level "
            "lattice cannot carry this slot's load"
        )
    continuous = solve_slot(problem, model)
    shortfall = max(problem.c_end - best.c_after_slot, 0.0)
    return DiscreteSolution(
        solution=best,
        continuous_fuel=continuous.fuel,
        effective_fuel=best.fuel + balance_weight * shortfall,
    )


def quantization_loss_curve(
    problem: SlotProblem,
    model: SystemEfficiencyModel,
    level_counts=(3, 5, 9, 17, 33),
) -> dict[int, float]:
    """Extra fuel vs number of FC levels -- how many set-points suffice.

    The ISLPED'06 design question: each additional calibrated level
    costs controller complexity; this curve shows the diminishing
    return.  The default counts are ``2**k + 1`` so consecutive
    lattices are *nested* (every coarse level survives refinement),
    which makes the penalty provably non-increasing; arbitrary counts
    produce non-nested lattices whose penalties may wiggle.  Returns
    ``{n_levels: quantization_penalty}``.
    """
    out: dict[int, float] = {}
    for n in level_counts:
        result = solve_slot_discrete(problem, model, default_levels(model, n))
        out[n] = result.quantization_penalty
    return out
