"""Frozen parameter sets taken verbatim from the paper.

Everything a reader needs to re-run the paper's experiments is collected
here, so that no magic number hides inside an algorithm.  Each constant
cites the paper section it comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import units
from .errors import ConfigurationError


@dataclass(frozen=True)
class FCSystemConstants:
    """Fuel-cell system parameters (paper Section 2).

    Attributes
    ----------
    v_out:
        Regulated DC-DC output voltage ``VF`` (V).  Paper: 12 V.
    open_circuit_voltage:
        FC stack open-circuit voltage ``Vo`` (V).  Paper: 18.2 V.
    n_cells:
        Number of cells in the stack.  Paper: 20.
    alpha, beta:
        Coefficients of the linear system-efficiency model
        ``eta_s = alpha - beta * IF`` (Eq. 2).  Paper: 0.45 / 0.13.
    zeta:
        Gibbs-energy proportionality ``dE_Gibbs = zeta * Ifc`` (Eq. 1).
        Paper: ~37.5 (W per A of stack current).
    if_min, if_max:
        Load-following range of the FC system output current (A).
        Paper: [0.1, 1.2].
    rated_power:
        Stack rated power (W).  Paper: BCS 20 W stack.
    """

    v_out: float = 12.0
    open_circuit_voltage: float = 18.2
    n_cells: int = 20
    alpha: float = 0.45
    beta: float = 0.13
    zeta: float = 37.5
    if_min: float = 0.1
    if_max: float = 1.2
    rated_power: float = 20.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta < 0:
            raise ConfigurationError("alpha must be > 0 and beta >= 0")
        if not 0 <= self.if_min < self.if_max:
            raise ConfigurationError("need 0 <= if_min < if_max")
        if self.alpha - self.beta * self.if_max <= 0:
            raise ConfigurationError(
                "efficiency model must stay positive over the load-following "
                f"range: alpha - beta*if_max = {self.alpha - self.beta * self.if_max}"
            )

    @property
    def k_fuel(self) -> float:
        """Coefficient ``VF / zeta`` of the Ifc(IF) map (Eq. 4).  Paper: 0.32."""
        return self.v_out / self.zeta


@dataclass(frozen=True)
class CamcorderConstants:
    """DVD-camcorder power-state abstraction (paper Fig. 6, Section 5.1)."""

    #: Load power (W) in the RUN state (DVD writer writing).
    p_run: float = 14.65
    #: Load power (W) in STANDBY (encoder working, writer idle).
    p_standby: float = 4.84
    #: Load power (W) in SLEEP (writer powered down).
    p_sleep: float = 2.40
    #: SLEEP entry/exit transition time (s) and power (W).
    t_pd: float = 0.5
    t_wu: float = 0.5
    p_transition_sleep: float = 4.84
    #: STANDBY <-> RUN transition times (s); power equals ``p_run``.
    t_standby_to_run: float = 1.5
    t_run_to_standby: float = 0.5
    #: Buffer size (MB) and DVD 4x writing speed (MB/s) -> 3.03 s active slot.
    buffer_mb: float = 16.0
    write_rate_mb_s: float = 5.28
    #: Idle-period range produced by the MPEG encoder (s).
    idle_min: float = 8.0
    idle_max: float = 20.0

    @property
    def active_length(self) -> float:
        """Length of an active (writing) period: 16 MB / 5.28 MB/s = 3.03 s."""
        return self.buffer_mb / self.write_rate_mb_s

    @property
    def break_even_time(self) -> float:
        """DPM break-even time ``Tbe = tau_PD + tau_WU`` = 1 s (paper §5.1)."""
        return self.t_pd + self.t_wu


@dataclass(frozen=True)
class Experiment1Constants:
    """Experiment 1 setup (paper Section 5.1)."""

    #: Total trace duration: a 28-minute MPEG encode/write session.
    duration_s: float = 28 * 60.0
    #: Exponential-average prediction factor for the idle period.
    rho: float = 0.5
    #: Supercapacitor storage: 1 F ~ "100 mA-min" at 12 V = 6 A-s usable.
    storage_capacity: float = units.mA_min(100.0)
    #: SLEEP transition currents: 4.65 W @ 12 V ~ 0.40 A plus base standby load
    #: (paper Fig. 6 labels the transition 0.40 A / 4.65 W).
    i_wu: float = 0.40
    i_pd: float = 0.40


@dataclass(frozen=True)
class Experiment2Constants:
    """Experiment 2 randomized-workload setup (paper Section 5.2)."""

    idle_low: float = 5.0
    idle_high: float = 25.0
    active_low: float = 2.0
    active_high: float = 4.0
    p_active_low: float = 12.0
    p_active_high: float = 16.0
    t_pd: float = 1.0
    t_wu: float = 1.0
    i_pd: float = 1.2
    i_wu: float = 1.2
    break_even_time: float = 10.0
    rho: float = 0.5
    sigma: float = 0.5
    #: Estimate used for the future active-period current (A).
    i_active_estimate: float = 1.2
    #: Number of task slots simulated (paper does not state it; the 28-min
    #: Exp-1 trace has ~95 slots, we default to a comparable run length).
    n_slots: int = 100


@dataclass(frozen=True)
class PaperConstants:
    """Bundle of every parameter set in the paper."""

    fc: FCSystemConstants = FCSystemConstants()
    camcorder: CamcorderConstants = CamcorderConstants()
    exp1: Experiment1Constants = Experiment1Constants()
    exp2: Experiment2Constants = Experiment2Constants()


#: The default, paper-faithful parameter bundle.
PAPER = PaperConstants()
