"""Clairvoyant FC-DPM: the prediction-error cost, isolated.

FC-DPM differs from the per-slot optimum only through its predictions
(``T'_i``, ``T'_a``, ``I'_ld,a``).  This controller is FC-DPM with the
predictions replaced by the *actual* slot values (looked up from the
trace by slot index), so

    fuel(FC-DPM) - fuel(OracleFCDPM)   = the cost of prediction error,
    fuel(OracleFCDPM) - offline bound  = the cost of per-slot planning.

Together with :func:`repro.core.optimizer.solve_horizon` this decomposes
FC-DPM's entire gap to the offline optimum into named pieces -- the
predictor ablation bench reports all three.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..fuelcell.efficiency import SystemEfficiencyModel
from ..workload.trace import LoadTrace
from .baselines import SlotStart
from .fc_dpm import FCDPMController
from .optimizer import solve_slot
from .setting import SlotProblem


class OracleFCDPMController(FCDPMController):
    """FC-DPM fed the true slot timings and currents.

    Parameters
    ----------
    model:
        System-efficiency model.
    trace:
        The exact trace that will be simulated; slot lookups use the
        ``slot_index`` the simulator passes in.
    device:
        Sleep-transition overheads, as for
        :class:`~repro.core.fc_dpm.FCDPMController`.
    """

    def __init__(
        self,
        model: SystemEfficiencyModel,
        trace: LoadTrace,
        device=None,
    ) -> None:
        super().__init__(model, device=device)
        self.trace = trace
        # The oracle neither needs nor should update the shared
        # predictors; learning state is irrelevant to it.
        self.observes_idle = False

    def on_idle_start(self, start: SlotStart) -> None:
        if not 0 <= start.slot_index < len(self.trace):
            raise ConfigurationError(
                f"slot index {start.slot_index} outside the oracle trace"
            )
        slot = self.trace[start.slot_index]
        problem = SlotProblem(
            t_idle=max(slot.t_idle, 1e-6),
            t_active=slot.t_active,
            i_idle=start.i_idle,
            i_active=slot.i_active,
            c_ini=start.storage_charge,
            c_end=self._c_target,
            c_max=self._c_max,
            sleeping=start.sleeping,
            **self._overheads(start.sleeping),
        )
        solution = solve_slot(problem, self.model)
        self.solutions.append(solution)
        self._if_idle = solution.if_idle
        self._if_active = solution.if_active
        self._active_planned = False
