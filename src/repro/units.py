"""Unit conversions and physical constants used throughout the library.

The paper (Zhuo et al., DAC 2007) works in a small set of engineering
units -- volts, amperes, seconds, watts, and "A-s" (ampere-seconds, i.e.
coulombs) for stored charge and fuel consumption.  This module centralizes
the conversions so the rest of the code never multiplies by a bare
``3600`` or ``0.001``.

All library-internal quantities use SI base units:

* current    -- ampere (A)
* voltage    -- volt (V)
* power      -- watt (W)
* time       -- second (s)
* charge     -- coulomb (C), printed as "A-s" to match the paper
* energy     -- joule (J)
* fuel       -- expressed as FC-stack charge (A-s); see :mod:`repro.fuelcell.fuel`
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Faraday constant (C/mol) -- charge carried by one mole of electrons.
FARADAY = 96485.33212

#: Universal gas constant (J/(mol*K)).
GAS_CONSTANT = 8.31446

#: Standard temperature used by the room-temperature stack model (K).
ROOM_TEMPERATURE_K = 298.15

#: Gibbs free energy of the H2 + 1/2 O2 -> H2O(l) reaction at 25 C (J/mol).
#: Larminie & Dicks, "Fuel Cell Systems Explained" (paper ref [12]).
GIBBS_ENERGY_H2_LHV = 228_600.0
GIBBS_ENERGY_H2_HHV = 237_100.0

#: Electrons transferred per H2 molecule.
ELECTRONS_PER_H2 = 2

#: Ideal (thermodynamic) cell voltage E = dG / (n F) at 25 C, liquid water.
IDEAL_CELL_VOLTAGE = GIBBS_ENERGY_H2_HHV / (ELECTRONS_PER_H2 * FARADAY)


# ---------------------------------------------------------------------------
# Time conversions
# ---------------------------------------------------------------------------

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def to_minutes(seconds: float) -> float:
    """Convert seconds to minutes."""
    return seconds / SECONDS_PER_MINUTE


# ---------------------------------------------------------------------------
# Charge conversions
# ---------------------------------------------------------------------------


def mAh(value: float) -> float:
    """Convert milliamp-hours to coulombs (A-s)."""
    return value * 1e-3 * SECONDS_PER_HOUR


def mA_min(value: float) -> float:
    """Convert milliamp-minutes to coulombs (A-s).

    The paper sizes the supercapacitor as "100 mA-min" (~= 6 A-s).
    """
    return value * 1e-3 * SECONDS_PER_MINUTE


def capacitor_charge(capacitance_f: float, voltage_v: float) -> float:
    """Usable charge (A-s) of a capacitor charged to ``voltage_v``.

    ``Q = C * V``.  The paper equates a 1 F supercap at 12 V with a
    "100 mA-min" storage element; note ``1 F * 12 V = 12 A-s`` while
    ``100 mA-min = 6 A-s`` -- the paper assumes only the top half of the
    capacitor voltage swing is usable by the converter, i.e. the usable
    charge is ``C * V / 2``.
    """
    if capacitance_f < 0 or voltage_v < 0:
        raise ValueError("capacitance and voltage must be non-negative")
    return capacitance_f * voltage_v


# ---------------------------------------------------------------------------
# Power / current helpers
# ---------------------------------------------------------------------------


def power_to_current(power_w: float, voltage_v: float) -> float:
    """Load current (A) drawn by a ``power_w`` load on a ``voltage_v`` rail."""
    if voltage_v <= 0:
        raise ValueError(f"rail voltage must be positive, got {voltage_v}")
    return power_w / voltage_v


def current_to_power(current_a: float, voltage_v: float) -> float:
    """Power (W) delivered at ``current_a`` on a ``voltage_v`` rail."""
    if voltage_v <= 0:
        raise ValueError(f"rail voltage must be positive, got {voltage_v}")
    return current_a * voltage_v


def coulombs_to_mol_h2(charge_c: float) -> float:
    """Moles of H2 consumed to push ``charge_c`` coulombs through the stack.

    Each H2 molecule supplies :data:`ELECTRONS_PER_H2` electrons.
    """
    return charge_c / (ELECTRONS_PER_H2 * FARADAY)


def mol_h2_to_norm_liters(mol: float) -> float:
    """Moles of H2 to normal liters (22.414 L/mol at STP)."""
    return mol * 22.414


def isclose(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Convenience float comparison with library-wide defaults."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)
