"""Run manifests: the provenance record behind every exported number.

A :class:`RunManifest` pins everything needed to reproduce a result --
the code fingerprint the run was computed under, the full scenario
spec / parameter dict, seeds, worker count, which execution route
(vectorized fast path vs scalar simulator) produced it, wall/CPU time,
a metrics snapshot, and the package versions involved.  One is written

* alongside every on-disk :class:`~repro.runtime.cache.ResultCache`
  entry (``<key>.manifest.json``),
* into every ``fcdpm export`` directory, and
* into the ``--trace`` output directory of ``fcdpm run``,

so any number in a table or figure can be traced back to the exact
configuration that computed it.  The schema is validated by
:mod:`repro.obs.schema` (and ``scripts/check_trace.py`` in CI).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

#: Bump when a field changes meaning; validators check compatibility.
MANIFEST_SCHEMA_VERSION = 1


def package_versions() -> dict[str, str]:
    """Versions of the interpreter and the packages that shape results."""
    import numpy

    try:
        from repro import __version__ as repro_version
    except ImportError:  # pragma: no cover - broken install
        repro_version = "unknown"
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro_version,
    }


@dataclass(frozen=True)
class RunManifest:
    """Frozen provenance record of one computed result."""

    #: What was run -- an experiment namespace ('table2', 'run', ...).
    name: str
    #: Code fingerprint the result was computed under
    #: (:func:`~repro.runtime.cache.code_fingerprint`).
    fingerprint: str
    schema_version: int = MANIFEST_SCHEMA_VERSION
    #: Unix timestamp of manifest creation.
    created: float = 0.0
    #: Full scenario spec dict (``Scenario.to_dict()``), if one applies.
    scenario: dict[str, Any] | None = None
    #: Free-form parameter dict (whatever keyed the computation).
    params: dict[str, Any] | None = None
    seeds: tuple[int, ...] = ()
    workers: int = 1
    #: 'fast' | 'scalar' | 'mixed' | '' (not a simulation).
    route: str = ""
    wall_s: float = 0.0
    cpu_s: float = 0.0
    #: Flat metrics snapshot (:meth:`MetricsRegistry.snapshot`).
    metrics: dict[str, Any] = field(default_factory=dict)
    versions: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["seeds"] = list(self.seeds)
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, default=repr)

    def write(self, path: Path | str) -> Path:
        """Write the manifest as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        return cls(
            name=data["name"],
            fingerprint=data["fingerprint"],
            schema_version=data.get("schema_version", MANIFEST_SCHEMA_VERSION),
            created=data.get("created", 0.0),
            scenario=data.get("scenario"),
            params=data.get("params"),
            seeds=tuple(data.get("seeds", ())),
            workers=data.get("workers", 1),
            route=data.get("route", ""),
            wall_s=data.get("wall_s", 0.0),
            cpu_s=data.get("cpu_s", 0.0),
            metrics=data.get("metrics", {}),
            versions=data.get("versions", {}),
        )


def build_manifest(
    name: str,
    *,
    scenario: dict[str, Any] | None = None,
    params: dict[str, Any] | None = None,
    seeds=(),
    workers: int = 1,
    route: str = "",
    wall_s: float = 0.0,
    cpu_s: float = 0.0,
    metrics: dict[str, Any] | None = None,
    fingerprint: str | None = None,
) -> RunManifest:
    """Assemble a manifest, filling fingerprint/versions/timestamp in."""
    if fingerprint is None:
        from ..runtime.cache import code_fingerprint

        fingerprint = code_fingerprint()
    return RunManifest(
        name=name,
        fingerprint=fingerprint,
        created=time.time(),
        scenario=scenario,
        params=params,
        seeds=tuple(int(s) for s in seeds),
        workers=workers,
        route=route,
        wall_s=wall_s,
        cpu_s=cpu_s,
        metrics=dict(metrics) if metrics else {},
        versions=package_versions(),
    )
