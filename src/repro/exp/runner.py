"""Sharded, resumable experiment execution.

:func:`run_experiment` takes an :class:`~repro.exp.spec.ExperimentSpec`
(or the name of a defined experiment) and drives every unit task to
``done``:

* **Resume first.**  Tasks whose results already sit in the
  :class:`~repro.runtime.cache.ResultCache` -- verified through the
  entry's ``<key>.manifest.json`` provenance sidecar -- are marked done
  without executing (counted under ``exp.tasks_resumed``); only the
  remainder is dispatched.  A crashed run therefore restarts from where
  its cache writes stopped, not from zero.
* **Batch where the kernel can.**  ``scenario``-kind tasks group into
  (scenario x seeds x policies) blocks routed through one
  :func:`~repro.sim.vectorized.simulate_batch` call each (shared plan
  compilation, stacked 2D kernel, shm fan-out); every other kind fans
  out through :class:`~repro.runtime.parallel.ParallelMap`.  Both paths
  are bit-identical to a serial per-cell loop.
* **Shard across hosts.**  ``shard=(i, n)`` takes the tasks with
  ``index % n == i - 1`` (round-robin, so heterogeneous kinds spread
  evenly) and persists into a shard-private sidecar;
  :meth:`~repro.exp.state.ExperimentStore.merge` folds the sidecars
  back into one record.

Telemetry: an ``exp.run`` span wraps the call, ``exp.shard`` wraps the
dispatch of this shard's pending tasks, and the counters
``exp.tasks_done`` / ``exp.tasks_resumed`` / ``exp.tasks_failed`` track
outcomes.  ``FCDPM_EXP_ABORT_AFTER=<n>`` aborts after ``n`` task
commits -- the crash-injection hook ``make exp-smoke`` and the resume
tests use.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError
from ..obs import OBS
from ..obs.live import LiveFlusher, LiveProgress, live_interval
from ..runtime.cache import ResultCache, code_fingerprint
from ..runtime.parallel import ParallelMap
from .spec import ExperimentSpec, UnitTask
from .state import ExperimentState, ExperimentStore
from .tasks import effective_policy, result_metrics, run_task


class AbortRun(RuntimeError):
    """Raised by the crash-injection hook after N task commits."""


def _abort_after() -> int | None:
    """``$FCDPM_EXP_ABORT_AFTER`` as an int, if set and positive."""
    raw = os.environ.get("FCDPM_EXP_ABORT_AFTER")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def parse_shard(shard) -> tuple[int, int] | None:
    """Normalize a ``--shard`` argument: ``"i/n"`` or ``(i, n)``, 1-based."""
    if shard is None:
        return None
    if isinstance(shard, str):
        try:
            i_text, n_text = shard.split("/", 1)
            shard = (int(i_text), int(n_text))
        except ValueError:
            raise ConfigurationError(
                f"bad shard {shard!r}; expected 'i/n' (e.g. --shard 2/4)"
            ) from None
    i, n = int(shard[0]), int(shard[1])
    if n < 1 or not 1 <= i <= n:
        raise ConfigurationError(f"shard index {i}/{n} out of range (1 <= i <= n)")
    return (i, n)


def shard_tasks(tasks: list[UnitTask], shard: tuple[int, int] | None) -> list[UnitTask]:
    """This shard's slice: round-robin by task index (deterministic)."""
    if shard is None:
        return list(tasks)
    i, n = shard
    return [t for t in tasks if t.index % n == i - 1]


def verified_in_cache(cache: ResultCache, key: str, fingerprint: str) -> bool:
    """True when ``key`` has both a cache entry and a valid manifest.

    The manifest sidecar is the resume-trust anchor: a pickle without
    provenance (or with a fingerprint that disagrees with the key's) is
    treated as absent and recomputed.
    """
    if not cache.contains(key):
        return False
    manifest_path = cache.root / f"{key}.manifest.json"
    try:
        data = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    from ..obs import validate_manifest

    if validate_manifest(data):
        return False
    return data.get("fingerprint") == fingerprint


@dataclass
class ExperimentRun:
    """Outcome of one :func:`run_experiment` call."""

    spec: ExperimentSpec
    state: ExperimentState
    #: Values of the tasks this call settled (executed or resumed),
    #: keyed by task id.  Resumed values are loaded lazily from the
    #: cache on first access through :meth:`value`.
    results: dict[str, Any] = field(default_factory=dict)
    executed: int = 0
    resumed: int = 0
    failed: int = 0
    wall_s: float = 0.0
    shard: tuple[int, int] | None = None
    _cache: ResultCache | None = None

    def value(self, task: UnitTask) -> Any:
        """The task's result value (memory first, then the cache)."""
        if task.task_id in self.results:
            return self.results[task.task_id]
        if self._cache is not None:
            sentinel = object()
            value = self._cache.get(task.cache_key(), sentinel)
            if value is not sentinel:
                self.results[task.task_id] = value
                return value
        raise ConfigurationError(
            f"no result for task {task.task_id} ({task.label()}); "
            f"status={self.state.tasks[task.task_id].status}"
        )


def _group_key(task: UnitTask):
    """Batchable-group identity of a ``scenario``-kind task."""
    from ..runtime.cache import _canonical

    return (_canonical(task.scenario), _canonical(dict(task.params)), task.fast)


def _policy_groups(tasks: list[UnitTask]) -> list[tuple[list[int], list[str]]]:
    """Partition one scenario group into ``simulate_batch`` calls.

    Returns ``[(seeds, policies), ...]``.  When every policy is pending
    for the same seed list (the common full-run case) that is a single
    call; ragged resumes fall back to one call per policy so no cell is
    computed twice.
    """
    by_policy: dict[str, list[int]] = {}
    for task in tasks:
        by_policy.setdefault(effective_policy(task), []).append(task.seed)
    seed_lists = list(by_policy.values())
    if all(lst == seed_lists[0] for lst in seed_lists[1:]):
        return [(seed_lists[0], list(by_policy))]
    return [(seeds, [policy]) for policy, seeds in by_policy.items()]


class _Runner:
    """One run's mutable context (commit bookkeeping, abort hook)."""

    def __init__(
        self,
        state: ExperimentState,
        store: ExperimentStore | None,
        cache: ResultCache,
        shard: tuple[int, int] | None,
        workers: int | None,
    ) -> None:
        self.state = state
        self.store = store
        self.cache = cache
        self.shard = shard
        self.workers = workers
        self.shard_label = f"{shard[0]}/{shard[1]}" if shard else None
        self.abort_after = _abort_after()
        self.committed = 0
        #: Live task-progress counters, set when ``--live`` flushing is
        #: on; every commit path bumps it so the heartbeat tracks.
        self.progress: LiveProgress | None = None
        self.run = ExperimentRun(
            spec=state.spec, state=state, shard=shard, _cache=cache
        )

    # -- state persistence -------------------------------------------------

    def checkpoint(self) -> None:
        """Persist the current records (shard sidecar when sharded)."""
        if self.store is not None:
            self.state.refresh_status()
            self.store.save(self.state, shard=self.shard)

    def set_phase(self, phase: str) -> None:
        """Surface the current dispatch phase in the live heartbeat."""
        if self.progress is not None:
            self.progress.set_phase(phase)

    def _maybe_abort(self) -> None:
        if self.abort_after is not None and self.committed >= self.abort_after:
            raise AbortRun(
                f"aborting after {self.committed} task commits "
                f"(FCDPM_EXP_ABORT_AFTER)"
            )

    # -- commit paths ------------------------------------------------------

    def commit_done(self, task: UnitTask, value: Any, wall_s: float) -> None:
        record = self.state.tasks[task.task_id]
        if self.cache.enabled:
            record.cache_key = self.cache.store(
                task.cache_namespace(), task.cache_params(), value, wall_s=wall_s
            )
        record.status = "done"
        record.shard = self.shard_label
        record.wall_s = wall_s
        record.error = None
        self.run.results[task.task_id] = value
        self.run.executed += 1
        self.committed += 1
        if self.progress is not None:
            self.progress.add_done()
        if OBS.enabled:
            OBS.metrics.counter("exp.tasks_done", kind=task.kind).inc()
        self.checkpoint()
        self._maybe_abort()

    def commit_failed(self, task: UnitTask, error: str) -> None:
        record = self.state.tasks[task.task_id]
        record.status = "failed"
        record.shard = self.shard_label
        record.error = error
        self.run.failed += 1
        self.committed += 1
        if self.progress is not None:
            self.progress.add_failed()
        if OBS.enabled:
            OBS.metrics.counter("exp.tasks_failed", kind=task.kind).inc()
        self.checkpoint()
        self._maybe_abort()

    def mark_resumed(self, task: UnitTask, key: str) -> None:
        record = self.state.tasks[task.task_id]
        if not record.settled:
            record.status = "done"
        record.resumed = True
        record.cache_key = key
        self.run.resumed += 1
        if self.progress is not None:
            # Resumed tasks count toward done so the heartbeat's
            # done+failed converges on total.
            self.progress.add_done()
        if OBS.enabled:
            OBS.metrics.counter("exp.tasks_resumed", kind=task.kind).inc()

    # -- dispatch ----------------------------------------------------------

    def execute_scenario_groups(self, tasks: list[UnitTask]) -> None:
        """Route ``scenario``-kind cells through grouped batch calls."""
        from ..scenario import Scenario
        from ..sim.vectorized import simulate_batch

        groups: dict[Any, list[UnitTask]] = {}
        for task in tasks:
            groups.setdefault(_group_key(task), []).append(task)
        for group in groups.values():
            scenario = group[0].scenario
            if isinstance(scenario, dict):
                scenario = Scenario.from_dict(scenario)
            self.set_phase(
                "batch:"
                + (scenario if isinstance(scenario, str) else scenario.name)
            )
            by_cell = {
                (t.seed, effective_policy(t)): t for t in group
            }
            for seeds, policies in _policy_groups(group):
                t0 = time.perf_counter()
                try:
                    out = simulate_batch(
                        scenario,
                        seeds,
                        policies,
                        fast=group[0].fast,
                        workers=self.workers,
                    )
                except AbortRun:
                    raise
                except Exception as exc:  # noqa: BLE001 - isolate the batch
                    self._execute_cells_individually(
                        [by_cell[(s, p)] for s in seeds for p in policies],
                        batch_error=f"{type(exc).__name__}: {exc}",
                    )
                    continue
                wall = time.perf_counter() - t0
                per_cell = wall / max(len(seeds) * len(policies), 1)
                for seed in seeds:
                    for policy in policies:
                        self.commit_done(
                            by_cell[(seed, policy)],
                            result_metrics(out[seed][policy]),
                            per_cell,
                        )

    def _execute_cells_individually(
        self, tasks: list[UnitTask], batch_error: str
    ) -> None:
        """Per-cell fallback after a batch raised: isolate the failure."""
        for task in tasks:
            t0 = time.perf_counter()
            try:
                value = run_task(task)
            except AbortRun:
                raise
            except Exception as exc:  # noqa: BLE001 - record, keep going
                self.commit_failed(
                    task, f"{type(exc).__name__}: {exc} (batch: {batch_error})"
                )
                continue
            self.commit_done(task, value, time.perf_counter() - t0)

    def execute_plain(self, tasks: list[UnitTask]) -> None:
        """Fan every other kind out through :class:`ParallelMap`."""
        if not tasks:
            return
        self.set_phase("dispatch:tasks")
        workers = self.workers if self.workers is not None else 0
        if workers and workers != 1 and len(tasks) > 1:
            outcomes = ParallelMap(workers=self.workers).map(_safe_run_task, tasks)
            for task, (ok, value, wall_s) in zip(tasks, outcomes):
                if ok:
                    self.commit_done(task, value, wall_s)
                else:
                    self.commit_failed(task, value)
            return
        for task in tasks:
            ok, value, wall_s = _safe_run_task(task)
            if ok:
                self.commit_done(task, value, wall_s)
            else:
                self.commit_failed(task, value)


def _safe_run_task(task: UnitTask) -> tuple[bool, Any, float]:
    """Module-level (picklable) task wrapper with failure isolation."""
    t0 = time.perf_counter()
    try:
        value = run_task(task)
    except Exception as exc:  # noqa: BLE001 - shipped back as a failure
        return (False, f"{type(exc).__name__}: {exc}", time.perf_counter() - t0)
    return (True, value, time.perf_counter() - t0)


def run_experiment(
    spec: ExperimentSpec | str,
    *,
    store: ExperimentStore | None = None,
    cache: ResultCache | None = None,
    workers: int | None = 1,
    shard=None,
    resume: bool = True,
    live: float | bool | None = None,
) -> ExperimentRun:
    """Drive an experiment's unit tasks to completion.

    Parameters
    ----------
    spec:
        An :class:`ExperimentSpec`, or the name of an experiment
        already defined in ``store``.
    store:
        Lifecycle persistence.  ``None`` runs ephemerally: no state
        file is written and, unless a ``cache`` is supplied, results
        stay in memory only -- the mode the thin analysis clients use,
        with zero on-disk footprint.
    cache:
        Result storage for task values.  Defaults to the real on-disk
        :class:`ResultCache` when ``store`` is given, and to a disabled
        (never hits, never writes) cache when ephemeral.
    workers:
        Process fan-out, forwarded to ``simulate_batch`` /
        ``ParallelMap``.  Results are bit-identical for any value.
    shard:
        ``"i/n"`` (1-based) or ``(i, n)``: execute only this slice of
        the task list and persist into a shard sidecar; fold the
        sidecars with ``ExperimentStore.merge`` (``fcdpm exp merge``).
    resume:
        Skip tasks whose results are already in the cache (verified
        via their entry manifests).  ``False`` re-executes everything.
    live:
        Live-telemetry flushing: ``True`` enables it at the default
        cadence, a number is the flush interval in seconds, ``None``
        defers to ``$FCDPM_LIVE_INTERVAL``, ``False`` forces it off.
        When on (and a ``store`` provides a directory), a background
        :class:`~repro.obs.live.LiveFlusher` publishes per-shard
        heartbeats + an OpenMetrics exposition under the experiment
        dir for ``fcdpm exp watch`` / ``fcdpm top``.

    Returns an :class:`ExperimentRun`; the state file (when persisted)
    is left consistent even if the process dies mid-run, because every
    commit writes the cache entry first and checkpoints the state
    after.
    """
    if isinstance(spec, str):
        if store is None:
            raise ConfigurationError(
                "running an experiment by name requires a store"
            )
        state = store.load(spec)
        spec = state.spec
    elif store is not None:
        state = store.define(spec)
    else:
        state = ExperimentState.define(spec)
    if cache is None:
        cache = ResultCache() if store is not None else ResultCache(enabled=False)

    shard = parse_shard(shard)
    tasks = spec.expand()
    mine = shard_tasks(tasks, shard)
    fingerprint = code_fingerprint()
    shard_label = f"{shard[0]}/{shard[1]}" if shard else "1/1"

    runner = _Runner(state, store, cache, shard, workers)
    interval = live_interval(live)
    flusher: LiveFlusher | None = None
    if interval is not None and store is not None:
        runner.progress = LiveProgress(total=len(mine), phase="resume-scan")
        flusher = LiveFlusher(
            store.experiment_dir(spec.name),
            spec.name,
            progress=runner.progress,
            interval=interval,
            shard=shard,
        )
        flusher.start()
    t0 = time.perf_counter()
    clean = False
    try:
        _run_all(runner, spec, state, cache, mine, fingerprint, shard_label, resume)
        clean = True
    finally:
        if flusher is not None:
            runner.set_phase("done" if clean else "aborted")
            flusher.stop(final=clean)

    runner.run.wall_s = time.perf_counter() - t0
    if store is not None:
        _write_run_manifest(store, state, runner, workers)
    return runner.run


def _run_all(
    runner: _Runner,
    spec: ExperimentSpec,
    state: ExperimentState,
    cache: ResultCache,
    mine: list[UnitTask],
    fingerprint: str,
    shard_label: str,
    resume: bool,
) -> None:
    """The span-wrapped resume-scan + dispatch body of a run."""
    with OBS.span(
        "exp.run",
        experiment=spec.name,
        kind=spec.kind,
        n_tasks=len(state.tasks),
        shard=shard_label,
    ) as span:
        # -- resume scan ---------------------------------------------------
        # A disabled cache can never satisfy a resume, so skip the
        # per-task key hashing entirely (the ephemeral fast path).
        scan = resume and cache.enabled
        pending: list[UnitTask] = []
        for task in mine:
            record = state.tasks[task.task_id]
            if scan:
                key = task.cache_key(fingerprint)
                if verified_in_cache(cache, key, fingerprint):
                    runner.mark_resumed(task, key)
                    continue
            if record.settled:
                # Recorded done but the cached value is gone -- fall
                # back to re-execution rather than trust air.
                record.status = "defined"
                record.resumed = False
            pending.append(task)
        for task in pending:
            state.tasks[task.task_id].status = "running"
        runner.checkpoint()

        # -- dispatch ------------------------------------------------------
        try:
            with OBS.span(
                "exp.shard",
                shard=shard_label,
                n_tasks=len(mine),
                pending=len(pending),
                resumed=runner.run.resumed,
            ):
                scenario_tasks = [t for t in pending if t.kind == "scenario"]
                other_tasks = [t for t in pending if t.kind != "scenario"]
                runner.execute_scenario_groups(scenario_tasks)
                runner.execute_plain(other_tasks)
        finally:
            # Tasks still marked running after an abort revert to
            # defined -- they never committed.
            for task in pending:
                record = state.tasks[task.task_id]
                if record.status == "running":
                    record.status = "defined"
            runner.checkpoint()
        if OBS.enabled:
            span.set(
                executed=runner.run.executed,
                resumed=runner.run.resumed,
                failed=runner.run.failed,
            )


def _write_run_manifest(
    store: ExperimentStore,
    state: ExperimentState,
    runner: _Runner,
    workers: int | None,
) -> None:
    """Run-level provenance beside the state file (best-effort)."""
    from ..obs import build_manifest

    try:
        manifest = build_manifest(
            f"exp:{state.spec.name}",
            params={
                "spec": state.spec.to_dict(),
                "spec_hash": state.spec.content_hash,
                "shard": runner.shard_label,
                "executed": runner.run.executed,
                "resumed": runner.run.resumed,
                "failed": runner.run.failed,
            },
            seeds=state.spec.seeds,
            workers=workers if isinstance(workers, int) else 0,
            route="exp",
            wall_s=runner.run.wall_s,
            metrics=OBS.metrics.snapshot() if OBS.enabled else {},
        )
        manifest.write(store.experiment_dir(state.spec.name) / "manifest.json")
    except (OSError, TypeError, ValueError):
        pass
