"""Shared segment planner + integrator (the common core of both sims)."""

from __future__ import annotations

import pytest

from repro.core.manager import PowerManager
from repro.sim.integrator import (
    Segment,
    SegmentIntegrator,
    chunk_segments,
    phase_totals,
    plan_active_segments,
    plan_idle_segments,
)
from repro.sim.recorder import Recorder
from repro.workload.trace import TaskSlot


class TestIdlePlanning:
    def test_no_sleep_is_one_standby_segment(self, camcorder_params):
        segments, slept, aborted = plan_idle_segments(
            camcorder_params, 12.0, sleep=False, sleep_after=0.0
        )
        assert not slept and not aborted
        assert [s.kind for s in segments] == ["standby"]
        assert segments[0].duration == 12.0
        assert segments[0].i_load == camcorder_params.i_sdb

    def test_sleep_layout_sums_to_idle_length(self, camcorder_params):
        t_idle = 15.0
        segments, slept, aborted = plan_idle_segments(
            camcorder_params, t_idle, sleep=True, sleep_after=2.0
        )
        assert slept and not aborted
        assert [s.kind for s in segments] == ["standby", "pd", "sleep", "wu"]
        assert sum(s.duration for s in segments) == pytest.approx(t_idle)

    def test_too_short_idle_aborts_the_sleep(self, camcorder_params):
        p = camcorder_params
        t_idle = p.t_pd + p.t_wu - 0.01  # cannot even host the transitions
        segments, slept, aborted = plan_idle_segments(
            p, t_idle, sleep=True, sleep_after=0.0
        )
        assert not slept and aborted
        assert [s.kind for s in segments] == ["standby"]

    def test_immediate_sleep_has_no_standby_prefix(self, camcorder_params):
        segments, slept, _ = plan_idle_segments(
            camcorder_params, 15.0, sleep=True, sleep_after=0.0
        )
        assert slept
        assert segments[0].kind == "pd"


class TestActivePlanning:
    def test_transitions_absorbed_at_active_current(self, camcorder_params):
        slot = TaskSlot(t_idle=10.0, t_active=3.0, i_active=1.2)
        segments = plan_active_segments(camcorder_params, slot)
        assert len(segments) == 1
        seg = segments[0]
        assert seg.kind == "run"
        assert seg.i_load == 1.2
        assert seg.duration == pytest.approx(
            camcorder_params.t_sdb_to_run + 3.0 + camcorder_params.t_run_to_sdb
        )


class TestChunking:
    def test_none_is_identity(self):
        segs = [Segment(30.0, 0.4, "standby")]
        assert chunk_segments(segs, None) is segs

    def test_long_segment_splits_into_equal_chunks(self):
        out = chunk_segments([Segment(30.0, 0.4, "sleep")], 8.0)
        assert len(out) == 4
        assert all(s.duration == pytest.approx(7.5) for s in out)
        assert sum(s.duration for s in out) == pytest.approx(30.0)
        assert all(s.kind == "sleep" and s.i_load == 0.4 for s in out)

    def test_phase_totals(self):
        segs = [Segment(10.0, 0.4, "standby"), Segment(5.0, 1.2, "run")]
        duration, charge = phase_totals(segs)
        assert duration == pytest.approx(15.0)
        assert charge == pytest.approx(10.0 * 0.4 + 5.0 * 1.2)


class TestIntegrator:
    def _manager(self, camcorder_params) -> PowerManager:
        return PowerManager.fc_dpm(
            camcorder_params, storage_capacity=6.0, storage_initial=3.0
        )

    def test_clock_advances_by_segment_durations(self, camcorder_params):
        mgr = self._manager(camcorder_params)
        integrator = SegmentIntegrator(mgr)
        integrator.start_run()
        segs = [Segment(10.0, 0.4, "standby"), Segment(5.0, 1.2, "run")]
        integrator.run_phase(0, "idle", segs)
        assert integrator.t_now == pytest.approx(15.0)

    def test_steps_feed_the_recorder_with_source_kind(self, camcorder_params):
        mgr = self._manager(camcorder_params)
        recorder = Recorder()
        integrator = SegmentIntegrator(mgr, recorder=recorder)
        integrator.start_run()
        integrator.run_phase(0, "idle", [Segment(10.0, 0.4, "standby")])
        assert len(recorder) == 1
        sample = recorder.samples[0]
        assert sample.kind == "standby"
        assert sample.source_kind == "hybrid"
        assert sample.dt == 10.0

    def test_run_phase_decrements_remaining_lookahead(self, camcorder_params):
        # The controller of the last segment must see exactly that
        # segment as the remaining phase -- probe via a spy controller.
        mgr = self._manager(camcorder_params)
        seen = []
        original = mgr.controller.output

        def spy(ctx):
            seen.append((ctx.phase_duration, ctx.phase_demand))
            return original(ctx)

        mgr.controller.output = spy
        integrator = SegmentIntegrator(mgr)
        integrator.start_run()
        segs = [Segment(10.0, 0.4, "standby"), Segment(5.0, 1.2, "run")]
        integrator.run_phase(0, "idle", segs)
        assert seen[0] == (pytest.approx(15.0), pytest.approx(10.0))
        assert seen[1] == (pytest.approx(5.0), pytest.approx(6.0))

    def test_ledger_totals_match_source(self, camcorder_params):
        mgr = self._manager(camcorder_params)
        integrator = SegmentIntegrator(mgr)
        integrator.start_run()
        steps = integrator.run_phase(
            0, "idle", [Segment(10.0, 0.4, "standby"), Segment(5.0, 1.2, "run")]
        )
        assert sum(s.fuel for s in steps) == pytest.approx(mgr.source.total_fuel)
        assert mgr.source.total_load_charge == pytest.approx(10.0)
