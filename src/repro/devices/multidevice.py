"""Multi-device DPM: task ordering for device idle aggregation (ref [7]).

Lu, Benini & De Micheli (CODES 2000) observe that in a system with
*several* power-manageable devices, the task execution *order* decides
how fragmented each device's idle time is: running all tasks that need
device A back-to-back gives device B one long sleepable gap, and vice
versa.  We implement the batch-scheduling version:

* a :class:`MultiDeviceTask` needs a subset of devices for a duration;
* within a batch (tasks released together, order free), the scheduler
  permutes tasks to cluster per-device usage;
* :func:`evaluate_schedule` charges every device for its busy time,
  fragmented idle (STANDBY or SLEEP per the break-even rule), and sleep
  transitions -- so orderings are compared on real charge.

The greedy clusterer sorts each batch by device-set similarity to the
previously scheduled task (Jaccard), which is the classic heuristic and
near-optimal for the 2-3 device systems of the reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, TraceError
from .device import DeviceParams


@dataclass(frozen=True)
class MultiDeviceTask:
    """One task: which devices it holds busy, and for how long."""

    name: str
    duration: float
    devices: frozenset[str]

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise TraceError("task duration must be positive")
        if not self.devices:
            raise TraceError("a task must use at least one device")


def _jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    union = a | b
    return len(a & b) / len(union) if union else 0.0


def cluster_order(tasks: list[MultiDeviceTask]) -> list[MultiDeviceTask]:
    """Greedy similarity ordering: keep device usage contiguous.

    Starts from the task with the rarest device set (fewest sharers)
    and repeatedly appends the remaining task with the highest Jaccard
    similarity to the last scheduled one (ties: longer task first, then
    name for determinism).
    """
    if not tasks:
        raise ConfigurationError("need at least one task")
    remaining = list(tasks)

    def rarity(task: MultiDeviceTask) -> int:
        return sum(1 for t in remaining if t.devices & task.devices)

    current = min(remaining, key=lambda t: (rarity(t), -t.duration, t.name))
    remaining.remove(current)
    ordered = [current]
    while remaining:
        current = max(
            remaining,
            key=lambda t: (_jaccard(t.devices, ordered[-1].devices),
                           t.duration, t.name),
        )
        remaining.remove(current)
        ordered.append(current)
    return ordered


@dataclass(frozen=True)
class DeviceUsage:
    """Per-device outcome of one schedule evaluation."""

    busy_time: float
    idle_time: float
    n_idle_gaps: int
    n_sleeps: int
    charge: float


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Whole-schedule outcome."""

    order: tuple[str, ...]
    total_charge: float
    per_device: dict[str, DeviceUsage]

    @property
    def total_sleeps(self) -> int:
        """Sleeps across all devices."""
        return sum(u.n_sleeps for u in self.per_device.values())


def evaluate_schedule(
    tasks: list[MultiDeviceTask],
    devices: dict[str, DeviceParams],
) -> ScheduleEvaluation:
    """Charge a task order against every device's DPM behaviour.

    Tasks run back-to-back (a batch with no release gaps).  A device is
    busy (RUN current) while a task using it runs, and idle otherwise;
    each contiguous idle gap sleeps iff it clears the device's
    break-even time (clairvoyant per-gap decision, as in ref [7]'s
    offline analysis).
    """
    if not tasks:
        raise ConfigurationError("need at least one task")
    for task in tasks:
        unknown = task.devices - devices.keys()
        if unknown:
            raise ConfigurationError(f"task {task.name} uses unknown {unknown}")

    # Build per-device busy intervals on the common timeline.
    t = 0.0
    busy: dict[str, list[tuple[float, float]]] = {name: [] for name in devices}
    for task in tasks:
        for name in task.devices:
            busy[name].append((t, t + task.duration))
        t += task.duration
    horizon = t

    per_device: dict[str, DeviceUsage] = {}
    total = 0.0
    for name, params in devices.items():
        intervals = busy[name]
        busy_time = sum(b - a for a, b in intervals)
        charge = params.i_run * busy_time
        # Idle gaps: before the first, between, after the last interval.
        edges = [0.0]
        for a, b in intervals:
            edges += [a, b]
        edges.append(horizon)
        gaps = [
            (edges[i + 1] - edges[i])
            for i in range(0, len(edges), 2)
            if edges[i + 1] - edges[i] > 1e-12
        ]
        n_sleeps = 0
        for gap in gaps:
            sleep = (
                gap >= params.break_even
                and gap >= params.t_pd + params.t_wu
                and params.idle_charge(gap, sleep=True)
                < params.idle_charge(gap, sleep=False)
            )
            if sleep:
                n_sleeps += 1
            charge += params.idle_charge(gap, sleep=sleep)
        per_device[name] = DeviceUsage(
            busy_time=busy_time,
            idle_time=horizon - busy_time,
            n_idle_gaps=len(gaps),
            n_sleeps=n_sleeps,
            charge=charge,
        )
        total += per_device[name].charge

    return ScheduleEvaluation(
        order=tuple(task.name for task in tasks),
        total_charge=total,
        per_device=per_device,
    )


def compare_orderings(
    tasks: list[MultiDeviceTask],
    devices: dict[str, DeviceParams],
) -> dict[str, ScheduleEvaluation]:
    """FIFO vs clustered ordering of the same batch.

    Returns ``{"fifo": ..., "clustered": ...}`` -- the reference's
    result is that clustering saves device charge by consolidating
    idle time into sleepable gaps.
    """
    return {
        "fifo": evaluate_schedule(tasks, devices),
        "clustered": evaluate_schedule(cluster_order(tasks), devices),
    }
