"""Property-based tests for trace containers and simulation accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params
from repro.sim.slotsim import SlotSimulator
from repro.workload.trace import LoadTrace, TaskSlot

slots = st.lists(
    st.builds(
        TaskSlot,
        t_idle=st.floats(min_value=2.0, max_value=60.0, allow_nan=False),
        t_active=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
        i_active=st.floats(min_value=0.1, max_value=1.3, allow_nan=False),
    ),
    min_size=1,
    max_size=20,
)


class TestTraceProperties:
    @given(slots)
    @settings(max_examples=200, deadline=None)
    def test_duration_is_sum_of_parts(self, slot_list):
        trace = LoadTrace(slot_list)
        assert trace.duration == pytest.approx(trace.idle_time + trace.active_time)

    @given(slots)
    @settings(max_examples=200, deadline=None)
    def test_csv_roundtrip_identity(self, slot_list):
        trace = LoadTrace(slot_list)
        assert LoadTrace.from_csv(trace.to_csv()) == trace

    @given(slots)
    @settings(max_examples=200, deadline=None)
    def test_json_roundtrip_identity(self, slot_list):
        trace = LoadTrace(slot_list)
        assert LoadTrace.from_json(trace.to_json()) == trace

    @given(slots, st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=200, deadline=None)
    def test_average_current_between_extremes(self, slot_list, i_idle):
        trace = LoadTrace(slot_list)
        avg = trace.average_current(i_idle)
        lo = min(i_idle, min(s.i_active for s in trace))
        hi = max(i_idle, trace.peak_current)
        assert lo - 1e-9 <= avg <= hi + 1e-9


class TestSimulationAccounting:
    @given(slots)
    @settings(max_examples=30, deadline=None)
    def test_fuel_exceeds_ideal_floor(self, slot_list):
        """Fuel >= k * delivered charge (no efficiency exceeds 1/k)."""
        trace = LoadTrace(slot_list)
        mgr = PowerManager.fc_dpm(
            camcorder_device_params(), storage_capacity=6.0, storage_initial=3.0
        )
        # Adversarial traces may legitimately overwhelm the tiny storage;
        # this test checks accounting, not sizing, so disable the guard.
        result = SlotSimulator(mgr, max_deficit_fraction=1.0).run(trace)
        delivered = mgr.source.total_delivered_charge
        assert result.fuel >= 0.32 * delivered / 0.45 - 1e-6

    @given(slots)
    @settings(max_examples=30, deadline=None)
    def test_charge_ledger_balances(self, slot_list):
        """FC supply = load + storage delta + bled - deficit over the run."""
        trace = LoadTrace(slot_list)
        mgr = PowerManager.asap_dpm(
            camcorder_device_params(), storage_capacity=6.0, storage_initial=3.0
        )
        result = SlotSimulator(mgr, max_deficit_fraction=1.0).run(trace)
        source = mgr.source
        supplied = source.total_delivered_charge
        storage_delta = source.storage.charge - 3.0
        assert supplied == pytest.approx(
            result.load_charge
            + storage_delta
            + source.storage.bled_charge
            - source.storage.deficit_charge,
            abs=1e-6,
        )
