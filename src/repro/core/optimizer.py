"""The Section-3 optimization framework: fuel-optimal FC output setting.

For one task slot the problem is

    min   Ifc(IF,i) * Ti + Ifc(IF,a) * Ta_eff                     (Eq. 5)
    s.t.  Cini + (IF,i - Ild,i) * Ti = Cend + demand_a - IF,a * Ta_eff
                                                                   (Eq. 6/13)
          IF,i, IF,a in [IF_min, IF_max]
          0 <= storage <= Cmax throughout

With the paper's linear efficiency law the fuel map
``Ifc = k*IF/(alpha - beta*IF)`` is strictly convex and increasing, so
the Lagrange conditions (Eq. 8-10) force ``IF,i = IF,a``: the optimal
unconstrained output is **flat** at the charge-weighted average load

    IF* = (demand_total + Cend - Cini) / (Ti + Ta_eff)             (Eq. 11)

:func:`solve_slot` implements the paper's full decision procedure --
Eq. 11, range clamping, the ``Cmax`` correction, ``Cend != Cini``
(Eq. 13) and the Section-3.3.2 transition overheads -- entirely in
closed form.  :func:`solve_slot_numeric` cross-checks it with a generic
convex solver (and supports non-linear efficiency models for the
ablation benches).  :func:`solve_horizon` extends the argument to a
whole trace: the offline optimum used as a lower bound.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..errors import InfeasibleError, RangeError
from ..fuelcell.efficiency import SystemEfficiencyModel
from .setting import SlotProblem, SlotSolution

#: Numerical slack used when testing constraint activity.
_EPS = 1e-9


def optimal_flat_current(problem: SlotProblem) -> float:
    """The unconstrained optimum of Eq. 11 / Eq. 13 (A).

    ``IF,i = IF,a = (demand_total + Cend - Cini) / (Ti + Ta_eff)``.
    Transition overheads are included through ``demand`` and ``Ta_eff``
    exactly as in Section 3.3.2.
    """
    flat = (problem.total_demand + problem.c_end - problem.c_ini) / problem.total_time
    return max(flat, 0.0)


def _fuel(model: SystemEfficiencyModel, problem: SlotProblem, if_i: float, if_a: float) -> float:
    return model.fc_current(if_i) * problem.t_idle + model.fc_current(
        if_a
    ) * problem.t_active_eff


def solve_slot(problem: SlotProblem, model: SystemEfficiencyModel) -> SlotSolution:
    """Closed-form solution of the single-slot problem (paper Section 3.3).

    Follows the paper's procedure:

    1. compute the flat optimum (Eq. 11/13);
    2. clamp into the load-following range;
    3. check the storage-capacity constraint at the idle/active boundary
       (Eq. 12); if violated, lower ``IF,i`` to just fill the storage
       and re-derive ``IF,a`` from the charge balance;
    4. symmetrically, raise ``IF,i`` if the storage would be driven
       below empty during the idle period;
    5. account any residual overflow (bleeder by-pass) or shortfall
       (deficit) forced by the range limits.

    The returned solution always describes *physically realizable*
    behaviour: storage endpoints are clipped to ``[0, Cmax]`` with the
    clipped charge reported in ``bled`` / ``deficit``.
    """
    lo, hi = model.if_min, model.if_max
    t_i, t_a = problem.t_idle, problem.t_active_eff

    flat = optimal_flat_current(problem)
    clamped = not (lo - _EPS <= flat <= hi + _EPS)
    if_i = min(max(flat, lo), hi)
    if_a = if_i
    capacity_limited = False

    if t_i > 0:
        # Storage level at the idle/active boundary (Eq. 12 check).
        c_mid = problem.c_ini + (if_i - problem.i_idle) * t_i
        if c_mid > problem.c_max + _EPS:
            # Idle surplus would overflow: lower IF,i to just fill it.
            capacity_limited = True
            if_i = (problem.c_max - problem.c_ini) / t_i + problem.i_idle
            if if_i < lo:
                # Extreme case: even the range floor overflows; the
                # excess goes through the bleeder by-pass.
                if_i = lo
        elif c_mid < -_EPS:
            # Idle shortfall would empty the storage: raise IF,i.
            capacity_limited = True
            if_i = problem.i_idle - problem.c_ini / t_i
            if if_i > hi:
                if_i = hi
        if capacity_limited or clamped:
            # Re-derive IF,a from the charge balance (Eq. 6/13) given the
            # realizable c_mid, then clamp.
            c_mid = problem.c_ini + (if_i - problem.i_idle) * t_i
            bled_idle = max(c_mid - problem.c_max, 0.0)
            deficit_idle = max(-c_mid, 0.0)
            c_mid = min(max(c_mid, 0.0), problem.c_max)
            if_a = (problem.active_demand + problem.c_end - c_mid) / t_a
            if_a = min(max(if_a, lo), hi)
        else:
            bled_idle = 0.0
            deficit_idle = 0.0
    else:
        # No idle period: only the active output is free.
        if_a = (problem.active_demand + problem.c_end - problem.c_ini) / t_a
        clamped = not (lo - _EPS <= if_a <= hi + _EPS)
        if_a = min(max(if_a, lo), hi)
        if_i = if_a
        c_mid = problem.c_ini
        bled_idle = 0.0
        deficit_idle = 0.0

    if t_i > 0 and not (capacity_limited or clamped):
        c_mid = problem.c_ini + (if_i - problem.i_idle) * t_i

    # Slot-end storage with range-limited IF,a; clip and account residue.
    c_after = c_mid + if_a * t_a - problem.active_demand
    bled_active = max(c_after - problem.c_max, 0.0)
    deficit_active = max(-c_after, 0.0)
    c_after = min(max(c_after, 0.0), problem.c_max)

    return SlotSolution(
        if_idle=if_i,
        if_active=if_a,
        ifc_idle=model.fc_current(if_i),
        ifc_active=model.fc_current(if_a),
        fuel=_fuel(model, problem, if_i, if_a),
        c_after_idle=c_mid,
        c_after_slot=c_after,
        range_clamped=clamped,
        capacity_limited=capacity_limited,
        bled=bled_idle + bled_active,
        deficit=deficit_idle + deficit_active,
    )


def solve_slot_numeric(
    problem: SlotProblem, model: SystemEfficiencyModel
) -> SlotSolution:
    """Generic convex solve of the single-slot problem (SLSQP).

    Works with *any* efficiency model (the ablation benches use the
    physically composed one).  For the linear law it must agree with
    :func:`solve_slot` wherever the charge balance is feasible -- that
    agreement is asserted by the test suite.
    """
    lo, hi = model.if_min, model.if_max
    t_i, t_a = problem.t_idle, problem.t_active_eff

    if t_i == 0:
        return solve_slot(problem, model)

    def objective(x: np.ndarray) -> float:
        return model.fc_current(float(x[0])) * t_i + model.fc_current(
            float(x[1])
        ) * t_a

    def balance(x: np.ndarray) -> float:
        c_after = (
            problem.c_ini
            + (x[0] - problem.i_idle) * t_i
            + x[1] * t_a
            - problem.active_demand
        )
        return c_after - problem.c_end

    def headroom(x: np.ndarray) -> float:
        c_mid = problem.c_ini + (x[0] - problem.i_idle) * t_i
        return problem.c_max - c_mid if np.isfinite(problem.c_max) else 1.0

    def floor(x: np.ndarray) -> float:
        return problem.c_ini + (x[0] - problem.i_idle) * t_i

    x0 = np.full(2, min(max(optimal_flat_current(problem), lo), hi))
    result = optimize.minimize(
        objective,
        x0,
        method="SLSQP",
        bounds=[(lo, hi), (lo, hi)],
        constraints=[
            {"type": "eq", "fun": balance},
            {"type": "ineq", "fun": headroom},
            {"type": "ineq", "fun": floor},
        ],
        options={"maxiter": 200, "ftol": 1e-12},
    )
    if not result.success:
        # The equality constraint can be infeasible within the range box
        # (e.g. load demand beyond what IF_max + storage covers); the
        # closed-form solver handles those by reporting deficits.
        raise InfeasibleError(f"numeric slot solve failed: {result.message}")
    if_i, if_a = float(result.x[0]), float(result.x[1])
    c_mid = problem.c_ini + (if_i - problem.i_idle) * t_i
    c_after = c_mid + if_a * t_a - problem.active_demand
    return SlotSolution(
        if_idle=if_i,
        if_active=if_a,
        ifc_idle=model.fc_current(if_i),
        ifc_active=model.fc_current(if_a),
        fuel=float(result.fun),
        c_after_idle=c_mid,
        c_after_slot=c_after,
        range_clamped=bool(
            abs(if_i - lo) < 1e-7
            or abs(if_i - hi) < 1e-7
            or abs(if_a - lo) < 1e-7
            or abs(if_a - hi) < 1e-7
        ),
        capacity_limited=bool(
            np.isfinite(problem.c_max) and abs(c_mid - problem.c_max) < 1e-6
        ),
    )


def solve_horizon(
    durations,
    demands,
    model: SystemEfficiencyModel,
    c_ini: float = 0.0,
    c_end: float | None = None,
    c_max: float = float("inf"),
):
    """Offline fuel-optimal flat-where-possible schedule over many periods.

    This extends the paper's single-slot Lagrange argument to a whole
    horizon (an explicit "future work" direction of the paper): given
    period ``durations`` (s) and load-charge ``demands`` (A-s), choose a
    per-period FC output minimizing total fuel subject to the storage
    staying in ``[0, c_max]`` and finishing at ``c_end``.

    Because the fuel map is convex and shared by all periods, the
    optimum equalizes outputs wherever storage bounds allow -- a convex
    program solved here with SLSQP.  Returns ``(outputs, fuel)``.
    """
    t = np.asarray(durations, dtype=float)
    q = np.asarray(demands, dtype=float)
    if t.ndim != 1 or t.shape != q.shape or t.size == 0:
        raise RangeError("durations and demands must be matching 1-D arrays")
    if np.any(t <= 0) or np.any(q < 0):
        raise RangeError("durations must be positive and demands non-negative")
    target = c_ini if c_end is None else c_end
    lo, hi = model.if_min, model.if_max

    n = t.size
    flat = (q.sum() + target - c_ini) / t.sum()
    x0 = np.full(n, min(max(flat, lo), hi))

    def objective(x: np.ndarray) -> float:
        return float(sum(model.fc_current(float(v)) * ti for v, ti in zip(x, t)))

    def trajectory(x: np.ndarray) -> np.ndarray:
        return c_ini + np.cumsum(x * t - q)

    constraints = [
        {"type": "eq", "fun": lambda x: trajectory(x)[-1] - target},
        {"type": "ineq", "fun": lambda x: trajectory(x)},
    ]
    if np.isfinite(c_max):
        constraints.append({"type": "ineq", "fun": lambda x: c_max - trajectory(x)})

    result = optimize.minimize(
        objective,
        x0,
        method="SLSQP",
        bounds=[(lo, hi)] * n,
        constraints=constraints,
        options={"maxiter": 500, "ftol": 1e-12},
    )
    if not result.success:
        raise InfeasibleError(f"horizon solve failed: {result.message}")
    return np.asarray(result.x, dtype=float), float(result.fun)
