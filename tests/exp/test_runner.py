"""run_experiment: batching, resume, sharding, failure isolation."""

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentResults,
    ExperimentSpec,
    ExperimentStore,
    parse_shard,
    run_experiment,
    scenario_batch_spec,
    shard_tasks,
    sweep_spec,
)
from repro.exp.tasks import result_metrics, task_kind
from repro.runtime.cache import ResultCache
from repro.sim.vectorized import simulate_batch


@pytest.fixture
def spec():
    return scenario_batch_spec(
        "batch", "exp2-fc-dpm", [0, 1], policies=("conv-dpm", "fc-dpm")
    )


class TestShardMath:
    def test_parse_shard_accepts_string_and_tuple(self):
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard((1, 3)) == (1, 3)
        assert parse_shard(None) is None

    def test_parse_shard_rejects_garbage(self):
        for bad in ("x/y", "0/2", "3/2", "2"):
            with pytest.raises(ConfigurationError):
                parse_shard(bad)

    def test_shards_partition_the_tasks(self, spec):
        tasks = spec.expand()
        slices = [shard_tasks(tasks, (i, 3)) for i in (1, 2, 3)]
        recombined = sorted(
            (t for s in slices for t in s), key=lambda t: t.index
        )
        assert recombined == tasks


class TestEphemeralRun:
    def test_matches_direct_simulate_batch(self, spec):
        run = run_experiment(spec)
        assert run.executed == 4 and run.failed == 0
        cells = ExperimentResults.from_run(run).by_cell()
        direct = simulate_batch(
            "exp2-fc-dpm", [0, 1], ["conv-dpm", "fc-dpm"], fast=True
        )
        for seed in (0, 1):
            for policy in ("conv-dpm", "fc-dpm"):
                assert cells[(seed, policy)] == result_metrics(
                    direct[seed][policy]
                )

    def test_workers_bit_identical(self, spec):
        serial = ExperimentResults.from_run(run_experiment(spec)).by_cell()
        fanned = ExperimentResults.from_run(
            run_experiment(spec, workers=2)
        ).by_cell()
        assert serial == fanned

    def test_ephemeral_run_leaves_no_state(self, spec, tmp_path):
        run_experiment(spec)
        # conftest redirects FCDPM_CACHE_DIR into tmp_path's sibling; an
        # ephemeral run must not create the experiments directory.
        from repro.exp.state import default_state_root

        assert not default_state_root().exists()

    def test_single_cell_equals_grouped(self):
        # A lone straggler cell re-executed alone must be bit-equal to
        # the same cell from a grouped batch call.
        lone = scenario_batch_spec("one", "exp2-fc-dpm", [1], policies=("fc-dpm",))
        grouped = scenario_batch_spec(
            "many", "exp2-fc-dpm", [0, 1], policies=("conv-dpm", "fc-dpm")
        )
        one = ExperimentResults.from_run(run_experiment(lone)).by_cell()
        many = ExperimentResults.from_run(run_experiment(grouped)).by_cell()
        assert one[(1, "fc-dpm")] == many[(1, "fc-dpm")]


class TestPersistedRun:
    def test_records_settle_and_link_cache_keys(self, spec, tmp_path):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        run = run_experiment(spec, store=store, cache=cache)
        state = store.load(spec.name)
        assert state.status == "done"
        for record in state.tasks.values():
            assert record.settled
            assert record.cache_key
            assert cache.contains(record.cache_key)
            # Per-entry provenance manifest sits beside the pickle.
            assert (cache.root / f"{record.cache_key}.manifest.json").exists()
        assert run.executed == spec.n_tasks

    def test_second_run_resumes_everything(self, spec, tmp_path):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        first = run_experiment(spec, store=store, cache=cache)
        second = run_experiment(spec, store=store, cache=cache)
        assert first.executed == spec.n_tasks
        assert second.executed == 0
        assert second.resumed == spec.n_tasks
        assert ExperimentResults.from_run(second).by_cell() == \
            ExperimentResults.from_run(first).by_cell()

    def test_resume_false_reexecutes(self, spec, tmp_path):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        run_experiment(spec, store=store, cache=cache)
        again = run_experiment(spec, store=store, cache=cache, resume=False)
        assert again.executed == spec.n_tasks and again.resumed == 0

    def test_manifestless_entry_is_not_trusted(self, spec, tmp_path):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        run_experiment(spec, store=store, cache=cache)
        # Strip one entry's provenance manifest; resume must recompute
        # that task instead of trusting a bare pickle.
        key = store.load(spec.name).tasks["t00000"].cache_key
        (cache.root / f"{key}.manifest.json").unlink()
        again = run_experiment(spec, store=store, cache=cache)
        assert again.executed == 1
        assert again.resumed == spec.n_tasks - 1

    def test_evicted_entry_reverts_to_defined_and_recomputes(
        self, spec, tmp_path
    ):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        run_experiment(spec, store=store, cache=cache)
        key = store.load(spec.name).tasks["t00001"].cache_key
        cache.clear()
        again = run_experiment(spec, store=store, cache=cache)
        assert again.executed == spec.n_tasks  # everything was evicted
        state = store.load(spec.name)
        assert state.tasks["t00001"].cache_key  # re-settled
        assert state.status == "done"

    def test_sharded_runs_merge_to_full_result(self, spec, tmp_path):
        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        store.define(spec)
        r1 = run_experiment(spec.name, store=store, cache=cache, shard="1/2")
        r2 = run_experiment(spec.name, store=store, cache=cache, shard="2/2")
        assert r1.executed + r2.executed == spec.n_tasks
        merged = store.merge(spec.name)
        assert merged.status == "done"
        full = ExperimentResults.from_run(run_experiment(spec)).by_cell()
        assert ExperimentResults.load(merged, cache).by_cell() == full

    def test_run_by_name_requires_store(self):
        with pytest.raises(ConfigurationError, match="requires a store"):
            run_experiment("whatever")

    def test_run_manifest_written(self, spec, tmp_path):
        store = ExperimentStore(tmp_path / "exp")
        run_experiment(spec, store=store, cache=ResultCache())
        path = store.experiment_dir(spec.name) / "manifest.json"
        assert path.exists()
        from repro.obs import validate_manifest
        import json

        assert validate_manifest(json.loads(path.read_text())) == []


class TestFailureIsolation:
    def test_failing_kind_records_failed_not_raises(self, tmp_path):
        @task_kind("test.boom")
        def _boom(task):
            raise ValueError(f"boom on seed {task.seed}")

        try:
            spec = ExperimentSpec(name="f", kind="test.boom", seeds=(0, 1))
            store = ExperimentStore(tmp_path / "exp")
            run = run_experiment(spec, store=store, cache=ResultCache())
            assert run.failed == 2 and run.executed == 0
            state = store.load("f")
            assert state.status == "failed"
            assert "boom on seed 0" in state.tasks["t00000"].error
        finally:
            from repro.exp.tasks import TASK_KINDS

            TASK_KINDS.pop("test.boom", None)

    def test_unknown_kind_is_a_recorded_failure(self, tmp_path):
        spec = ExperimentSpec(name="u", kind="no-such-kind", seeds=(0,))
        run = run_experiment(spec)
        assert run.failed == 1


class TestSweepKinds:
    def test_sweep_spec_runs_and_reduces(self):
        spec = sweep_spec("recharge", [0.25, 0.75], seed=3)
        run = run_experiment(spec)
        by_knob = ExperimentResults.from_run(run).by_knob("threshold")
        assert list(by_knob) == [0.25, 0.75]
        assert all(isinstance(v, float) for v in by_knob.values())


class TestLiveRun:
    def test_live_run_writes_final_heartbeat_and_exposition(self, tmp_path, spec):
        import json

        from repro.obs.live import (
            exposition_path,
            heartbeat_path,
            validate_heartbeat,
        )
        from repro.obs.openmetrics import validate_exposition

        store = ExperimentStore(tmp_path / "exp")
        run = run_experiment(spec, store=store, cache=ResultCache(), live=0.1)
        assert run.executed == 4 and run.failed == 0
        exp_dir = store.experiment_dir(spec.name)
        hb = json.loads(heartbeat_path(exp_dir).read_text())
        assert validate_heartbeat(hb) == []
        assert hb["final"] is True
        assert hb["phase"] == "done"
        assert hb["tasks_done"] == 4 and hb["tasks_total"] == 4
        text = exposition_path(exp_dir).read_text()
        assert validate_exposition(text) == []

    def test_sharded_live_run_uses_shard_sidecar_names(self, tmp_path, spec):
        import json

        from repro.obs.live import heartbeat_path

        store = ExperimentStore(tmp_path / "exp")
        run_experiment(
            spec, store=store, cache=ResultCache(), shard="1/2", live=0.1
        )
        exp_dir = store.experiment_dir(spec.name)
        hb = json.loads(heartbeat_path(exp_dir, (1, 2)).read_text())
        assert hb["shard"] == "1/2"
        assert hb["tasks_done"] == 2 and hb["tasks_total"] == 2
        assert not heartbeat_path(exp_dir).exists()

    def test_aborted_live_run_leaves_nonfinal_heartbeat(
        self, tmp_path, spec, monkeypatch
    ):
        import json

        from repro.exp import AbortRun
        from repro.obs.live import heartbeat_path, is_stalled

        store = ExperimentStore(tmp_path / "exp")
        monkeypatch.setenv("FCDPM_EXP_ABORT_AFTER", "2")
        with pytest.raises(AbortRun):
            run_experiment(spec, store=store, cache=ResultCache(), live=0.1)
        hb = json.loads(heartbeat_path(store.experiment_dir(spec.name)).read_text())
        assert hb["final"] is False
        assert hb["phase"] == "aborted"
        assert hb["tasks_done"] == 2
        # The non-final heartbeat goes stale -> the watcher flags it.
        assert is_stalled(hb, now=hb["updated"] + 10.0)

    def test_live_off_writes_nothing(self, tmp_path, spec, monkeypatch):
        from repro.obs.live import heartbeat_path

        monkeypatch.delenv("FCDPM_LIVE_INTERVAL", raising=False)
        store = ExperimentStore(tmp_path / "exp")
        run_experiment(spec, store=store, cache=ResultCache())
        assert not heartbeat_path(store.experiment_dir(spec.name)).exists()

    def test_resumed_tasks_count_toward_heartbeat_done(self, tmp_path, spec):
        import json

        from repro.obs.live import heartbeat_path

        store = ExperimentStore(tmp_path / "exp")
        cache = ResultCache()
        run_experiment(spec, store=store, cache=cache)
        run = run_experiment(spec, store=store, cache=cache, live=0.1)
        assert run.resumed == 4
        hb = json.loads(heartbeat_path(store.experiment_dir(spec.name)).read_text())
        assert hb["tasks_done"] == 4 and hb["final"] is True
