"""Parameter sweeps for the ablation studies called out in DESIGN.md.

Each sweep runs the full Experiment-1 style simulation while varying a
single design knob, returning plain result dictionaries the ablation
benches print.

Every public sweep is a *thin client* of the experiment orchestration
layer: it builds a declarative
:func:`~repro.exp.spec.sweep_spec`, runs it ephemerally through
:func:`~repro.exp.runner.run_experiment` (no state file, no cache
writes), and reduces the per-cell values with
:meth:`~repro.exp.results.ExperimentResults.by_knob` -- byte-identical
to the historical direct ``ParallelMap`` fan-out, including under
``workers>1``.  The per-point task functions below stay here; the
``sweep.*`` task kinds in :mod:`repro.exp.tasks` call back into them.
"""

from __future__ import annotations

from ..core.fc_dpm import FCDPMController
from ..core.manager import PowerManager
from ..devices.camcorder import camcorder_device_params
from ..devices.device import DeviceParams
from ..dpm.predictive import PredictiveShutdownPolicy
from ..errors import ConfigurationError
from ..fuelcell.efficiency import LinearSystemEfficiency
from ..prediction.base import LastValuePredictor
from ..prediction.exponential import ExponentialAveragePredictor
from ..prediction.learning_tree import LearningTreePredictor
from ..prediction.regression import RegressionPredictor
from ..sim.slotsim import simulate_policies
from ..workload.mpeg import generate_mpeg_trace
from ..workload.trace import LoadTrace


def _exp1_trace(seed: int) -> LoadTrace:
    return generate_mpeg_trace(seed=seed)


def _sweep_base(scenario, seed: int) -> tuple[LoadTrace, DeviceParams]:
    """Workload + device for a sweep: Experiment 1 or a named scenario.

    ``scenario`` is a registry name or a
    :class:`~repro.scenario.spec.Scenario`; ``None`` keeps the historical
    Experiment-1 default bit-identically.  Only the scenario's workload
    and device are used -- the swept knob itself overrides the rest.
    """
    if scenario is None:
        return _exp1_trace(seed), camcorder_device_params()
    from ..scenario import Scenario, get_scenario

    sc = scenario if isinstance(scenario, Scenario) else get_scenario(scenario)
    return sc.build_trace(seed), sc.build_device()


# -- per-point task functions (module-level so they pickle) -----------------


def _storage_capacity_point(
    trace: LoadTrace, dev: DeviceParams, cap: float, *, fast: bool = False
) -> dict[str, float]:
    managers = [
        PowerManager.conv_dpm(dev, storage_capacity=cap, storage_initial=cap / 2),
        PowerManager.asap_dpm(dev, storage_capacity=cap, storage_initial=cap / 2),
        PowerManager.fc_dpm(dev, storage_capacity=cap, storage_initial=cap / 2),
    ]
    results = simulate_policies(trace, managers, fast=fast)
    conv = results["conv-dpm"].fuel
    return {name: r.fuel / conv for name, r in results.items()}


def _efficiency_slope_point(
    trace: LoadTrace, dev: DeviceParams, beta: float, *, fast: bool = False
) -> float:
    model = LinearSystemEfficiency(alpha=0.45, beta=beta)
    managers = [
        PowerManager.asap_dpm(
            dev, model=model, storage_capacity=6.0, storage_initial=3.0
        ),
        PowerManager.fc_dpm(
            dev, model=model, storage_capacity=6.0, storage_initial=3.0
        ),
    ]
    results = simulate_policies(trace, managers, fast=fast)
    return 1.0 - results["fc-dpm"].fuel / results["asap-dpm"].fuel


def _recharge_threshold_point(
    trace: LoadTrace, dev: DeviceParams, th: float, *, fast: bool = False
) -> float:
    managers = [
        PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        PowerManager.asap_dpm(
            dev,
            storage_capacity=6.0,
            storage_initial=3.0,
            recharge_threshold=th,
        ),
    ]
    results = simulate_policies(trace, managers, fast=fast)
    return results["asap-dpm"].fuel / results["conv-dpm"].fuel


#: Idle-period predictor menu for :func:`predictor_sweep`.  Factories
#: live in this table (not in closures) so the parallel task only ships
#: the *name* to the worker.
_PREDICTOR_FACTORIES = {
    "fc-exponential": lambda: ExponentialAveragePredictor(factor=0.5),
    "fc-lastvalue": lambda: LastValuePredictor(initial=10.0),
    "fc-regression": lambda: RegressionPredictor(order=2, window=24),
    "fc-learningtree": lambda: LearningTreePredictor(
        bin_edges=[9.0, 11.0, 13.0, 15.0, 17.0], depth=2, initial=12.0
    ),
}


def _predictor_point(
    trace: LoadTrace, dev: DeviceParams, name: str, *, fast: bool = False
) -> float:
    model = LinearSystemEfficiency()
    idle_predictor = _PREDICTOR_FACTORIES[name]()
    policy = PredictiveShutdownPolicy(dev, idle_predictor)
    controller = FCDPMController(
        model,
        active_length_predictor=ExponentialAveragePredictor(factor=0.5),
        idle_length_predictor=idle_predictor,
        device=dev,
    )
    controller.observes_idle = False
    mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
    mgr.name = name
    mgr.policy = policy
    mgr.controller = controller
    managers = [
        PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        mgr,
    ]
    results = simulate_policies(trace, managers, fast=fast)
    return results[name].fuel / results["conv-dpm"].fuel


# -- public sweeps (thin clients of repro.exp) -------------------------------


def _run_sweep(sweep: str, values, seed: int, scenario, fast: bool, workers: int):
    """Build the sweep's spec, run it ephemerally, reduce by knob."""
    # Lazy import: repro.exp.tasks calls back into this module's point
    # functions, so a top-level import would be circular.
    from ..exp import ExperimentResults, run_experiment, sweep_spec
    from ..exp.spec import SWEEP_KINDS

    spec = sweep_spec(sweep, values, seed=seed, scenario=scenario, fast=fast)
    run = run_experiment(spec, workers=workers)
    return ExperimentResults.from_run(run).by_knob(SWEEP_KINDS[sweep][1])


def storage_capacity_sweep(
    capacities=(1.0, 2.0, 4.0, 6.0, 12.0, 24.0, 60.0),
    seed: int = 2007,
    workers: int = 1,
    scenario=None,
    fast: bool = False,
) -> dict[float, dict[str, float]]:
    """Normalized fuel vs storage capacity ``Cmax``.

    As ``Cmax -> 0`` the FC loses its freedom to time-shift charge and
    FC-DPM degenerates toward ASAP-DPM; large ``Cmax`` lets FC-DPM hold
    the globally flat optimum.  Returns
    ``{capacity: {policy: fuel_normalized_to_conv}}``.

    ``fast=True`` routes each point's static policies through the
    vectorized kernel; results are bit-identical either way (adaptive
    controllers fall back to the scalar path inside
    :func:`~repro.sim.slotsim.simulate_policies`).
    """
    capacity_list = list(capacities)
    for cap in capacity_list:
        if cap <= 0:
            raise ConfigurationError("capacity must be positive")
    return _run_sweep("storage", capacity_list, seed, scenario, fast, workers)


def predictor_sweep(
    seed: int = 2007, workers: int = 1, scenario=None, fast: bool = False
) -> dict[str, float]:
    """FC-DPM fuel (normalized to Conv-DPM) per idle-period predictor.

    Exercises the exponential filter the paper uses against last-value,
    regression, and learning-tree predictors -- quantifying how much
    headroom better prediction buys.
    """
    names = list(_PREDICTOR_FACTORIES)
    return _run_sweep("predictor", names, seed, scenario, fast, workers)


def efficiency_slope_sweep(
    betas=(0.0, 0.04, 0.08, 0.13, 0.18, 0.24),
    seed: int = 2007,
    workers: int = 1,
    scenario=None,
    fast: bool = False,
) -> dict[float, float]:
    """FC-DPM's fuel saving over ASAP-DPM versus the efficiency slope.

    The paper's whole advantage comes from the *slope* of the efficiency
    law (convexity of the fuel map): at ``beta = 0`` the fuel map is
    linear and flattening the output saves nothing.  Returns
    ``{beta: fractional_saving_vs_asap}``.
    """
    beta_list = list(betas)
    return _run_sweep("beta", beta_list, seed, scenario, fast, workers)


def recharge_threshold_sweep(
    thresholds=(0.1, 0.25, 0.5, 0.75, 0.9),
    seed: int = 2007,
    workers: int = 1,
    scenario=None,
    fast: bool = False,
) -> dict[float, float]:
    """ASAP-DPM fuel (normalized to Conv-DPM) vs recharge threshold.

    The half-capacity rule is a design choice of the paper's baseline;
    this sweep shows its (mild) sensitivity.
    """
    threshold_list = list(thresholds)
    return _run_sweep("recharge", threshold_list, seed, scenario, fast, workers)
