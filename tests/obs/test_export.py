"""Export sinks: JSONL roundtrip, Chrome trace, summary, bundles."""

import json

from repro.obs import (
    Tracer,
    build_manifest,
    observing,
    read_jsonl,
    trace_summary,
    write_chrome_trace,
    write_spans_jsonl,
    write_trace_bundle,
)
from repro.obs.schema import (
    validate_chrome_trace,
    validate_metric_record,
    validate_span,
    validate_span_set,
    validate_trace_dir,
)
from repro.obs.state import OBS


def _sample_run():
    """A small traced run: two spans + a couple of metrics."""
    with observing() as obs:
        with obs.span("run", scenario="exp1"):
            with obs.span("sim.simulate", route="fast"):
                pass
        obs.metrics.counter("sim.route", path="fast").inc(3)
        obs.metrics.histogram("lat").observe(0.25)
        spans = obs.tracer.export()
        metrics = obs.metrics.snapshot()
    return spans, metrics


def test_jsonl_roundtrip_separates_spans_and_metrics(tmp_path):
    spans, metrics = _sample_run()
    path = write_spans_jsonl(tmp_path / "spans.jsonl", spans, metrics)
    got_spans, got_metrics = read_jsonl(path)
    assert [s["name"] for s in got_spans] == [s["name"] for s in spans]
    assert all(validate_span(s) == [] for s in got_spans)
    assert validate_span_set(got_spans) == []
    assert all(validate_metric_record(m) == [] for m in got_metrics)
    # The instrument class rides under "kind"; "type" tags the record.
    by_key = {m["key"]: m for m in got_metrics}
    assert by_key["sim.route{path=fast}"]["kind"] == "counter"
    assert by_key["sim.route{path=fast}"]["type"] == "metric"
    assert by_key["sim.route{path=fast}"]["value"] == 3
    assert by_key["lat"]["kind"] == "histogram"


def test_chrome_trace_events(tmp_path):
    spans, _ = _sample_run()
    path = write_chrome_trace(tmp_path / "trace.json", spans)
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    assert len(events) == len(spans)
    assert all(e["ph"] == "X" for e in events)
    # Timestamps are relative to the earliest span.
    assert min(e["ts"] for e in events) == 0.0
    names = {e["name"] for e in events}
    assert names == {"run", "sim.simulate"}


def test_trace_summary_tree_and_metrics():
    spans, metrics = _sample_run()
    text = trace_summary(spans, metrics)
    lines = text.splitlines()
    assert lines[0] == f"{len(spans)} spans"
    # The child span is indented under its root.
    run_line = next(ln for ln in lines if ln.startswith("run"))
    sim_line = next(ln for ln in lines if "sim.simulate" in ln)
    assert sim_line.startswith("  ")
    assert "[scenario=exp1]" in run_line
    assert any("sim.route{path=fast}: 3" in ln for ln in lines)


def test_trace_summary_folds_wide_fanouts():
    tracer = Tracer()
    with tracer.span("root"):
        for i in range(12):
            with tracer.span(f"slot-{i}"):
                pass
    text = trace_summary(tracer.export(), max_children=8)
    assert "(+4 more" in text
    assert "slot-11" not in text


def test_trace_summary_accepts_jsonl_metric_records(tmp_path):
    spans, metrics = _sample_run()
    path = write_spans_jsonl(tmp_path / "s.jsonl", spans, metrics)
    got_spans, got_metrics = read_jsonl(path)
    text = trace_summary(got_spans, got_metrics)
    assert "sim.route{path=fast}: 3" in text
    assert "lat: n=1" in text


def test_write_trace_bundle_validates(tmp_path):
    spans, metrics = _sample_run()
    manifest = build_manifest(
        "run:test", params={"seed": 0}, seeds=[0], route="fast", wall_s=0.01
    )
    paths = write_trace_bundle(tmp_path / "out", spans, metrics, manifest)
    assert set(paths) == {"spans", "chrome_trace", "manifest"}
    assert validate_trace_dir(tmp_path / "out") == []


def test_validate_trace_dir_reports_problems(tmp_path):
    assert validate_trace_dir(tmp_path / "nope")
    spans, metrics = _sample_run()
    write_trace_bundle(tmp_path / "partial", spans, metrics, manifest=None)
    problems = validate_trace_dir(tmp_path / "partial")
    assert any("manifest.json" in p for p in problems)


def test_observing_restores_previous_state():
    assert not OBS.enabled
    before = (OBS.tracer, OBS.metrics)
    with observing() as obs:
        assert OBS.enabled
        assert obs is OBS
        outer_metrics = OBS.metrics
        with observing():  # nested scope gets its own registry
            assert OBS.metrics is not outer_metrics
        assert OBS.metrics is outer_metrics
    assert not OBS.enabled
    assert (OBS.tracer, OBS.metrics) == before
