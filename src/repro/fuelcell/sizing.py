"""Stack sizing: the hybridization argument of paper Section 2.2.

"If we use the FC alone, the load following range ... has to be large
enough to handle the peak load power, which results in a very
pessimistic use of the FC stack in terms of weight and volume.  If,
however, we utilize a hybrid power source ..., the FC size can be
chosen based on the average load, which is a lot smaller."

This module turns that paragraph into numbers: given a workload and a
storage budget, the minimum FC output capability that keeps the storage
from browning out, and the resulting downsizing factor versus a
stand-alone stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.device import DeviceParams
from ..errors import ConfigurationError
from ..workload.trace import LoadTrace


@dataclass(frozen=True)
class SizingResult:
    """Stack requirements for one workload."""

    #: Peak load current the source must survive (A).
    peak_current: float
    #: Whole-trace average load current (A).
    average_current: float
    #: Minimum FC output for a stand-alone source (= peak).
    standalone_if_max: float
    #: Minimum FC output with the given storage buffer (A).
    hybrid_if_max: float
    #: Storage capacity assumed (A-s).
    storage_capacity: float

    @property
    def downsizing_factor(self) -> float:
        """Stand-alone over hybrid requirement (the paper's argument)."""
        if self.hybrid_if_max == 0:
            return float("inf")
        return self.standalone_if_max / self.hybrid_if_max


def _load_profile(trace: LoadTrace, device: DeviceParams, sleep: bool):
    """Piecewise-constant (duration, current) profile of the whole trace."""
    segments: list[tuple[float, float]] = []
    for slot in trace:
        if sleep and slot.t_idle >= device.t_pd + device.t_wu:
            segments.append((device.t_pd, device.i_pd))
            segments.append(
                (slot.t_idle - device.t_pd - device.t_wu, device.i_slp)
            )
            segments.append((device.t_wu, device.i_wu))
        else:
            segments.append((slot.t_idle, device.i_sdb))
        duration = device.t_sdb_to_run + slot.t_active + device.t_run_to_sdb
        segments.append((duration, slot.i_active))
    return [(d, i) for d, i in segments if d > 0]


def _feasible(profile, if_max: float, capacity: float, initial: float) -> bool:
    """Can a flat-capped FC keep the storage non-negative?

    The FC delivers ``min(needed, if_max)`` greedily (refill surplus up
    to the capacity whenever the load allows) -- the most favorable
    control, so this is the true feasibility frontier.
    """
    charge = initial
    for duration, i_load in profile:
        net = (if_max - i_load) * duration
        charge = min(charge + net, capacity)
        if charge < -1e-9:
            return False
    return True


def required_fc_output(
    trace: LoadTrace,
    device: DeviceParams,
    storage_capacity: float,
    storage_initial: float | None = None,
    sleep: bool = True,
    tol: float = 1e-4,
) -> SizingResult:
    """Minimum flat FC output that carries the workload with the buffer.

    Bisects on ``IF_max`` between the average load (charge balance lower
    bound) and the peak load (always sufficient).
    """
    if storage_capacity < 0:
        raise ConfigurationError("storage capacity cannot be negative")
    initial = (
        storage_capacity / 2 if storage_initial is None else storage_initial
    )
    if not 0 <= initial <= storage_capacity:
        raise ConfigurationError("initial charge must fit the capacity")

    profile = _load_profile(trace, device, sleep)
    total_charge = sum(d * i for d, i in profile)
    total_time = sum(d for d, _ in profile)
    average = total_charge / total_time
    peak = max(i for _, i in profile)

    lo, hi = average, peak
    if _feasible(profile, lo, storage_capacity, initial):
        hi = lo
    else:
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if _feasible(profile, mid, storage_capacity, initial):
                hi = mid
            else:
                lo = mid
    return SizingResult(
        peak_current=peak,
        average_current=average,
        standalone_if_max=peak,
        hybrid_if_max=hi,
        storage_capacity=storage_capacity,
    )


def downsizing_curve(
    trace: LoadTrace,
    device: DeviceParams,
    capacities=(0.0, 1.0, 2.0, 4.0, 6.0, 12.0, 24.0),
    workers: int = 1,
) -> dict[float, SizingResult]:
    """Required FC output versus storage capacity (Section 2.2's curve).

    Each capacity is an independent bisection over the same profile, so
    ``workers > 1`` fans the points out over processes
    (:class:`~repro.runtime.parallel.ParallelMap`) with bit-identical
    results in the same capacity order.
    """
    from functools import partial

    from ..runtime.parallel import ParallelMap

    capacity_list = list(capacities)
    results = ParallelMap(workers=workers).map(
        partial(required_fc_output, trace, device), capacity_list
    )
    return dict(zip(capacity_list, results))
