"""Lifetime bench: the paper's headline metric measured by run-to-empty.

The paper derives "up to 32 % more system lifetime" from fuel ratios;
this bench actually runs the three policies against a finite hydrogen
reserve until depletion and reports the survival times.
"""

from repro.analysis.report import format_table
from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params
from repro.sim.lifetime import lifetime_comparison
from repro.workload.mpeg import generate_mpeg_trace


def test_bench_lifetime_run_to_empty(benchmark, emit):
    trace = generate_mpeg_trace(duration_s=300.0, seed=5)
    dev = camcorder_device_params()

    def run():
        managers = [
            PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
            PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
            PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        ]
        return lifetime_comparison(managers, trace, tank_capacity=2000.0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["policy", "lifetime (min)", "workload cycles", "mean Ifc (A)"]]
    for name, r in results.items():
        rows.append(
            [name, f"{r.lifetime / 60:.1f}", str(r.full_cycles),
             f"{r.average_fuel_rate:.3f}"]
        )
    extension = results["fc-dpm"].lifetime / results["asap-dpm"].lifetime
    emit(
        "lifetime",
        "LIFETIME -- run-to-empty on a 2000 A-s hydrogen reserve\n"
        + format_table(rows)
        + f"\nmeasured FC-DPM vs ASAP-DPM lifetime extension: x{extension:.2f} "
        "(paper infers x1.32 from fuel ratios)",
    )
    assert (
        results["fc-dpm"].lifetime
        > results["asap-dpm"].lifetime
        > results["conv-dpm"].lifetime
    )
    assert extension > 1.1
