"""Robustness benches: seed stability, fault injection, slew limits,
multi-device ordering.

These quantify how far the paper's headline survives conditions the
paper never tested.
"""

from repro.analysis.report import format_table
from repro.analysis.slew import slew_rate_sweep
from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params
from repro.devices.device import DeviceParams
from repro.devices.multidevice import MultiDeviceTask, compare_orderings
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.sim.faults import DegradedEfficiency
from repro.sim.montecarlo import run_seeds, table2_metrics
from repro.sim.slotsim import SlotSimulator, simulate_policies
from repro.workload.mpeg import generate_mpeg_trace


def test_bench_seed_stability(benchmark, emit):
    """Table 2 across seeds with 95% confidence intervals."""
    summaries = benchmark.pedantic(
        run_seeds, args=(table2_metrics, range(5)), rounds=1, iterations=1
    )
    rows = [["metric", "mean", "+-95%", "range"]]
    for name, s in summaries.items():
        rows.append(
            [name, f"{s.mean:.3f}", f"{s.ci95_halfwidth:.3f}",
             f"[{s.minimum:.3f}, {s.maximum:.3f}]"]
        )
    emit(
        "robust_seeds",
        "ROBUSTNESS -- Table 2 across 5 trace seeds\n" + format_table(rows),
    )
    assert summaries["fc-dpm"].maximum < summaries["asap-dpm"].minimum


def test_bench_stack_aging(benchmark, emit):
    """FC-DPM's win must survive stack degradation."""
    dev = camcorder_device_params()
    trace = generate_mpeg_trace(duration_s=600.0, seed=13)

    def run_all():
        out = {}
        for health in (1.0, 0.9, 0.8, 0.7):
            model = DegradedEfficiency(LinearSystemEfficiency(), health)
            managers = [
                PowerManager.asap_dpm(dev, model=model, storage_capacity=6.0,
                                      storage_initial=3.0),
                PowerManager.fc_dpm(dev, model=model, storage_capacity=6.0,
                                    storage_initial=3.0),
            ]
            results = simulate_policies(trace, managers)
            out[health] = (
                results["asap-dpm"].fuel,
                results["fc-dpm"].fuel,
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [["stack health", "asap fuel", "fc-dpm fuel", "fc saving (%)"]]
    for health, (asap, fc) in results.items():
        rows.append(
            [f"{health:.1f}", f"{asap:.1f}", f"{fc:.1f}",
             f"{100 * (1 - fc / asap):.1f}"]
        )
    emit(
        "robust_aging",
        "FAULT INJECTION -- stack aging (efficiency scaled by health)\n"
        + format_table(rows),
    )
    for asap, fc in results.values():
        assert fc < asap


def test_bench_slew_rate(benchmark, emit):
    """How fast must the fuel-flow controller be for the paper's
    instant-retarget assumption to hold?"""
    model = LinearSystemEfficiency()
    dev = camcorder_device_params()
    trace = generate_mpeg_trace(duration_s=600.0, seed=13)
    mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
    result = SlotSimulator(mgr, record=True).run(trace)
    _, commands = result.recorder.step_series("i_f")
    durations = [s.dt for s in result.recorder.samples]

    sweep = benchmark.pedantic(
        slew_rate_sweep, args=(durations, list(commands), model),
        rounds=1, iterations=1,
    )
    rows = [["slew rate (A/s)", "fuel penalty (%)", "worst shortfall (A-s)"]]
    for rate, r in sweep.items():
        rows.append(
            [f"{rate:g}", f"{100 * r.fuel_penalty:+.2f}",
             f"{r.worst_transition_shortfall:.3f}"]
        )
    emit(
        "robust_slew",
        "ABLATION -- FC output slew-rate limit on the FC-DPM profile\n"
        + format_table(rows)
        + "\nreading: above ~0.5 A/s the instant-retarget assumption is "
        "harmless (sub-0.1 A-s shortfalls vs a 6 A-s buffer).",
    )
    fast = sweep[max(sweep)]
    assert abs(fast.fuel_penalty) < 0.01
    assert fast.worst_transition_shortfall < 0.2


def test_bench_multidevice_ordering(benchmark, emit):
    """Ref [7]: clustering tasks by device consolidates sleepable idle."""
    def dev(t_pd, t_wu):
        return DeviceParams(
            i_run=1.0, i_sdb=0.4, i_slp=0.05, t_pd=t_pd, t_wu=t_wu,
            i_pd=0.4, i_wu=0.4,
        )

    devices = {"disk": dev(2.0, 2.0), "net": dev(2.0, 2.0)}
    tasks = []
    for k in range(6):
        tasks.append(MultiDeviceTask(f"a{k}", 3.0, frozenset({"disk"})))
        tasks.append(MultiDeviceTask(f"b{k}", 3.0, frozenset({"net"})))

    results = benchmark.pedantic(
        compare_orderings, args=(tasks, devices), rounds=1, iterations=1
    )
    rows = [["ordering", "total charge (A-s)", "total sleeps"]]
    for name, ev in results.items():
        rows.append([name, f"{ev.total_charge:.2f}", str(ev.total_sleeps)])
    saving = 1 - results["clustered"].total_charge / results["fifo"].total_charge
    emit(
        "robust_multidevice",
        "PRIOR WORK [7] -- multi-device task ordering\n"
        + format_table(rows)
        + f"\ncharge saving from clustering: {100 * saving:.1f}%",
    )
    assert results["clustered"].total_charge < results["fifo"].total_charge
