"""OpenMetrics text exposition of a :class:`MetricsRegistry` snapshot.

The live-telemetry layer (:mod:`repro.obs.live`) periodically renders
the full metrics snapshot into the `OpenMetrics text format
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_ -- the exact
artifact a future ``fcdpm serve /metrics`` endpoint will serve, and a
file Prometheus' node-exporter textfile collector can scrape today.

Mapping from the registry's instrument model:

==============  ==============================================================
registry kind   OpenMetrics family
==============  ==============================================================
counter         ``counter`` -- one ``<name>_total`` sample
gauge           ``gauge`` -- one ``<name>`` sample
histogram       ``summary`` -- ``{quantile="0.5"|"0.95"}`` samples (the
                registry's nearest-rank p50/p95) plus ``_sum`` / ``_count``
==============  ==============================================================

Registry keys (``sim.route{path=fast}``) are split back into name +
labels; names and label names are sanitized into the OpenMetrics
charset (``sim_route``), label values are escaped per the spec.  The
module also ships a small text-format *parser* so tests and
``scripts/check_live.py`` can round-trip an exposition instead of
string-matching it.

Everything is dependency-free and pure -- rendering never touches the
registry lock (it consumes an already-taken snapshot).
"""

from __future__ import annotations

import math
import os
import re
import tempfile
from pathlib import Path
from typing import Any

#: Schema note stamped into the exposition header comment.
OPENMETRICS_VERSION = "1.0.0"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")

#: The two quantiles the registry's histograms retain.
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"))


def sanitize_metric_name(name: str) -> str:
    """Fold an arbitrary registry name into the OpenMetrics charset.

    Dots and dashes (the registry convention: ``sim.batch_route``)
    become underscores; a leading digit gets an underscore prefix; the
    empty string becomes ``_``.
    """
    out = _NAME_BAD.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def sanitize_label_name(name: str) -> str:
    """Same folding for label names (no colons allowed there)."""
    out = _LABEL_BAD.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the spec: backslash, quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value` (used by the parser)."""
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a registry key ``name{k=v,...}`` into ``(name, labels)``."""
    name, brace, inner = key.partition("{")
    if not brace:
        return key, {}
    inner = inner[:-1] if inner.endswith("}") else inner
    labels: dict[str, str] = {}
    for part in inner.split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v
    return name, labels


def _format_value(value: Any) -> str:
    """A float rendered per the spec (incl. the Inf/NaN spellings)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_label_name(k)}="{escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_openmetrics(snapshot: dict[str, dict[str, Any]]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as exposition text.

    Families are emitted in sorted name order, each with its ``# TYPE``
    line; the document ends with the mandatory ``# EOF`` terminator.
    A sanitization collision between two registry names of *different*
    instrument kinds is disambiguated by suffixing the later family
    with its kind.
    """
    _OM_TYPES = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}
    # family name -> {"type": om_type, "samples": [(sample_name, labels, value)]}
    families: dict[str, dict[str, Any]] = {}
    taken: dict[str, str] = {}  # family name -> om type already claimed
    for key in sorted(snapshot):
        data = snapshot[key]
        kind = data.get("type", "counter")
        om_type = _OM_TYPES.get(kind, "gauge")
        raw_name, labels = split_metric_key(key)
        family = sanitize_metric_name(raw_name)
        if om_type == "counter" and family.endswith("_total"):
            family = family[: -len("_total")]
        if taken.get(family, om_type) != om_type:
            family = f"{family}_{om_type}"
        taken.setdefault(family, om_type)
        entry = families.setdefault(family, {"type": om_type, "samples": []})
        if kind == "counter":
            entry["samples"].append(
                (f"{family}_total", labels, data.get("value", 0.0))
            )
        elif kind == "histogram":
            for quantile, stat in _QUANTILES:
                q_labels = dict(labels)
                q_labels["quantile"] = quantile
                entry["samples"].append((family, q_labels, data.get(stat, 0.0)))
            entry["samples"].append(
                (f"{family}_count", labels, data.get("count", 0))
            )
            entry["samples"].append((f"{family}_sum", labels, data.get("sum", 0.0)))
        else:
            entry["samples"].append((family, labels, data.get("value", 0.0)))

    lines: list[str] = []
    for family in sorted(families):
        entry = families[family]
        lines.append(f"# TYPE {family} {entry['type']}")
        for sample_name, labels, value in entry["samples"]:
            lines.append(
                f"{sample_name}{_label_text(labels)} {_format_value(value)}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    path: Path | str, snapshot: dict[str, dict[str, Any]]
) -> Path:
    """Atomically write the exposition (temp file + ``os.replace``).

    A concurrent reader (scraper, ``fcdpm exp watch``) sees either the
    previous or the new complete document, never a torn one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = render_openmetrics(snapshot)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# -- parsing -----------------------------------------------------------------


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_RE.match(text, pos)
        if match is None:
            raise ValueError(f"bad label set {text!r} at offset {pos}")
        labels[match.group("name")] = unescape_label_value(match.group("value"))
        pos = match.end()
    return labels


def parse_openmetrics(
    text: str,
) -> tuple[dict[str, str], list[tuple[str, dict[str, str], float]]]:
    """Parse exposition text into ``(families, samples)``.

    ``families`` maps family name to declared type; ``samples`` is a
    list of ``(sample_name, labels, value)`` in document order.  Raises
    ``ValueError`` on lines that fit neither shape -- the strictness
    the round-trip tests rely on.
    """
    families: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                families[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            spelled = {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}
            if raw not in spelled:
                raise ValueError(
                    f"line {lineno}: bad sample value {raw!r}"
                ) from None
            value = spelled[raw]
        samples.append((match.group("name"), labels, value))
    return families, samples


def _family_of(sample_name: str, families: dict[str, str]) -> str | None:
    """The declared family a sample name belongs to, if any."""
    if sample_name in families:
        return sample_name
    for suffix in ("_total", "_count", "_sum"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None


def validate_exposition(text: str) -> list[str]:
    """Structural problems with an exposition document (empty = valid).

    Checks the ``# EOF`` terminator, sample parseability, name charset,
    family declarations, and the counter ``_total`` naming rule --
    the contract ``scripts/check_live.py`` enforces in CI.
    """
    problems: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        problems.append("exposition does not end with '# EOF'")
    if text and not text.endswith("\n"):
        problems.append("exposition does not end with a newline")
    body = [ln for ln in lines[:-1] if ln.strip()]
    if any(ln.strip() == "# EOF" for ln in body):
        problems.append("'# EOF' appears before the final line")
    try:
        families, samples = parse_openmetrics(text)
    except ValueError as exc:
        return problems + [str(exc)]
    # An empty document (just "# EOF") is valid: a run with telemetry
    # disabled flushes an empty registry.  Sample-presence requirements
    # belong to the caller (scripts/check_live.py asserts them in CI).
    for name, labels, value in samples:
        if not _NAME_OK.match(name):
            problems.append(f"sample {name!r}: invalid metric name")
        family = _family_of(name, families)
        if family is None:
            problems.append(f"sample {name!r}: no '# TYPE' family declared")
            continue
        om_type = families[family]
        if om_type == "counter":
            if not name.endswith("_total"):
                problems.append(
                    f"sample {name!r}: counter samples must end in '_total'"
                )
            if value < 0:
                problems.append(f"sample {name!r}: negative counter value")
        for label in labels:
            if not _LABEL_OK.match(label):
                problems.append(f"sample {name!r}: invalid label {label!r}")
            if label == "quantile" and om_type != "summary":
                problems.append(
                    f"sample {name!r}: quantile label on a non-summary family"
                )
    return problems


__all__ = [
    "OPENMETRICS_VERSION",
    "escape_label_value",
    "parse_openmetrics",
    "render_openmetrics",
    "sanitize_label_name",
    "sanitize_metric_name",
    "split_metric_key",
    "unescape_label_value",
    "validate_exposition",
    "write_openmetrics",
]
