"""FCSystem (stack + converter + controller terminal model) tests."""

import pytest

from repro.errors import DepletedError, RangeError
from repro.fuelcell.fuel import FuelTank
from repro.fuelcell.system import FCSystem


@pytest.fixture
def system() -> FCSystem:
    return FCSystem.paper_system()


class TestOutputControl:
    def test_initial_output_at_range_floor(self, system):
        assert system.output_current == pytest.approx(0.1)

    def test_set_output_clamps_by_default(self, system):
        assert system.set_output(2.0) == pytest.approx(1.2)
        assert system.set_output(0.01) == pytest.approx(0.1)

    def test_set_output_strict_raises(self, system):
        with pytest.raises(RangeError):
            system.set_output(2.0, clamp=False)

    def test_load_following_range(self, system):
        assert system.load_following_range == (0.1, 1.2)

    def test_zero_output_rejected_unless_allowed(self, system):
        assert system.set_output(0.0) == pytest.approx(0.1)
        system2 = FCSystem.paper_system()
        system2.allow_zero_output = True
        assert system2.set_output(0.0) == 0.0
        assert system2.fc_current() == 0.0


class TestFuelDynamics:
    def test_fc_current_at_top_is_1_3(self, system):
        system.set_output(1.2)
        assert system.fc_current() == pytest.approx(1.306, abs=0.01)

    def test_run_burns_fuel(self, system):
        system.set_output(1.2)
        fuel = system.run(30.0)
        assert fuel == pytest.approx(1.306 * 30, abs=0.3)
        assert system.tank.consumed == pytest.approx(fuel)

    def test_run_with_finite_tank_depletes(self):
        system = FCSystem.paper_system(tank=FuelTank(capacity=10.0))
        system.set_output(1.2)
        with pytest.raises(DepletedError):
            system.run(60.0)

    def test_run_rejects_negative_dt(self, system):
        with pytest.raises(RangeError):
            system.run(-1.0)

    def test_output_power(self, system):
        system.set_output(0.5)
        assert system.output_power() == pytest.approx(6.0)

    def test_efficiency_at_setting(self, system):
        system.set_output(1.0)
        assert system.efficiency() == pytest.approx(0.32)
