"""Fuel accounting: Gibbs energy, fuel flow, and the fuel tank.

The paper measures fuel consumption in units proportional to the FC
stack charge, ``integral of Ifc dt`` (A-s), because the hydrogen flow
rate is proportional to the stack current (Section 2.3):

    dE_Gibbs = zeta * Ifc,    zeta ~= 37.5 W/A.

:class:`GibbsFuelModel` converts that stack charge into physical
quantities (moles / normal liters of H2, Gibbs energy), and
:class:`FuelTank` integrates consumption against a finite reserve so a
simulation can report *lifetime* -- the paper's headline metric is a
1.32x lifetime extension, and lifetime is inversely proportional to the
fuel consumption rate for a fixed tank.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..errors import ConfigurationError, DepletedError, RangeError


@dataclass(frozen=True)
class GibbsFuelModel:
    """Convert stack charge (A-s) to physical fuel quantities.

    Attributes
    ----------
    zeta:
        Gibbs power per ampere of stack current (W/A).  The paper
        measures ~37.5 for its 20-cell stack; the thermodynamic floor is
        ``n_cells * dG / (2 F)`` ~= 24.6 W/A -- the excess covers fuel
        utilization losses (purging, crossover).
    """

    zeta: float = 37.5

    def __post_init__(self) -> None:
        if self.zeta <= 0:
            raise ConfigurationError("zeta must be positive")

    def gibbs_energy(self, stack_charge: float) -> float:
        """Gibbs free energy (J) drawn for ``stack_charge`` A-s."""
        if stack_charge < 0:
            raise RangeError("stack charge cannot be negative")
        return self.zeta * stack_charge

    def moles_h2(self, stack_charge: float) -> float:
        """Moles of H2 corresponding to a Gibbs draw of ``zeta * charge``."""
        return self.gibbs_energy(stack_charge) / units.GIBBS_ENERGY_H2_HHV

    def norm_liters_h2(self, stack_charge: float) -> float:
        """Normal liters of H2 consumed."""
        return units.mol_h2_to_norm_liters(self.moles_h2(stack_charge))


class FuelTank:
    """Finite hydrogen reserve, tracked in stack-charge units (A-s).

    Parameters
    ----------
    capacity:
        Total fuel, expressed as the stack charge it can sustain (A-s).
        ``float('inf')`` gives a bottomless tank (pure fuel *metering*).
    model:
        Conversion model for physical reporting.
    """

    def __init__(
        self, capacity: float = float("inf"), model: GibbsFuelModel | None = None
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("tank capacity must be positive")
        self.capacity = capacity
        self.model = model if model is not None else GibbsFuelModel()
        self._consumed = 0.0

    # -- state -------------------------------------------------------------

    @property
    def consumed(self) -> float:
        """Fuel consumed so far (stack A-s)."""
        return self._consumed

    @property
    def remaining(self) -> float:
        """Fuel remaining (stack A-s)."""
        return self.capacity - self._consumed

    @property
    def is_empty(self) -> bool:
        """True once the reserve is exhausted."""
        return self._consumed >= self.capacity

    def reset(self) -> None:
        """Refill the tank."""
        self._consumed = 0.0

    # -- dynamics -----------------------------------------------------------

    def draw(self, i_fc: float, dt: float, *, strict: bool = True) -> float:
        """Consume fuel for stack current ``i_fc`` over ``dt`` seconds.

        Returns the charge drawn.  With ``strict=True`` (default) raises
        :class:`DepletedError` when the tank runs dry mid-draw; otherwise
        the draw is truncated at empty.
        """
        if i_fc < 0:
            raise RangeError("stack current cannot be negative")
        if dt < 0:
            raise RangeError("dt cannot be negative")
        request = i_fc * dt
        available = self.remaining
        if request > available:
            if strict:
                raise DepletedError(
                    f"fuel tank empty: requested {request:.3f} A-s, "
                    f"had {available:.3f} A-s"
                )
            self._consumed = self.capacity
            return available
        self._consumed += request
        return request

    def lifetime_at(self, i_fc: float) -> float:
        """Seconds the *remaining* fuel lasts at constant stack current."""
        if i_fc < 0:
            raise RangeError("stack current cannot be negative")
        if i_fc == 0:
            return float("inf")
        return self.remaining / i_fc

    # -- physical reporting ---------------------------------------------------

    def consumed_moles_h2(self) -> float:
        """Moles of H2 consumed so far."""
        return self.model.moles_h2(self._consumed)

    def consumed_norm_liters_h2(self) -> float:
        """Normal liters of H2 consumed so far."""
        return self.model.norm_liters_h2(self._consumed)
