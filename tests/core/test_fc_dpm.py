"""FC-DPM controller tests (Algorithm of paper Fig. 5)."""

import pytest

from repro.core.baselines import SegmentContext, SlotActuals, SlotStart
from repro.core.fc_dpm import FCDPMController
from repro.devices.camcorder import camcorder_device_params
from repro.errors import ConfigurationError
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.prediction.base import ConstantPredictor


@pytest.fixture
def model() -> LinearSystemEfficiency:
    return LinearSystemEfficiency()


def make_controller(model, t_i=20.0, t_a=10.0, i_a=1.2, **kwargs) -> FCDPMController:
    return FCDPMController(
        model,
        idle_length_predictor=ConstantPredictor(t_i),
        active_length_predictor=ConstantPredictor(t_a),
        active_current_estimate=i_a,
        **kwargs,
    )


def idle_ctx(charge, duration=20.0, i_load=0.2):
    return SegmentContext(
        slot_index=0, phase="idle", kind="sleep", duration=duration,
        i_load=i_load, storage_charge=charge, storage_capacity=200.0,
        phase_duration=duration, phase_demand=i_load * duration,
    )


def active_ctx(charge, duration=10.0, i_load=1.2):
    return SegmentContext(
        slot_index=0, phase="active", kind="run", duration=duration,
        i_load=i_load, storage_charge=charge, storage_capacity=200.0,
        phase_duration=duration, phase_demand=i_load * duration,
    )


class TestPlanning:
    def test_idle_output_is_flat_optimum(self, model):
        c = make_controller(model)
        c.start_run(0.0, 200.0)
        c.on_idle_start(SlotStart(0, sleeping=False, i_idle=0.2,
                                  storage_charge=0.0))
        assert c.output(idle_ctx(0.0)) == pytest.approx(16 / 30, abs=1e-9)

    def test_active_replan_uses_actuals(self, model):
        c = make_controller(model, t_i=20.0, t_a=10.0)
        c.start_run(0.0, 200.0)
        c.on_idle_start(SlotStart(0, False, 0.2, 0.0))
        c.output(idle_ctx(0.0))
        # Suppose the idle ran long and the storage holds 8 A-s at the
        # active start; actual demand 12 A-s, target 0:
        # IF,a = (12 + 0 - 8)/10 = 0.4.
        assert c.output(active_ctx(8.0)) == pytest.approx(0.4)

    def test_active_replan_computed_once_per_slot(self, model):
        c = make_controller(model)
        c.start_run(0.0, 200.0)
        c.on_idle_start(SlotStart(0, False, 0.2, 0.0))
        first = c.output(active_ctx(8.0))
        # A later segment of the same phase must reuse the planned value.
        assert c.output(active_ctx(2.0)) == first
        # A new slot replans.
        c.on_idle_start(SlotStart(1, False, 0.2, 4.0))
        assert not c._active_planned

    def test_active_replan_clamps_to_range(self, model):
        c = make_controller(model)
        c.start_run(0.0, 200.0)
        c.on_idle_start(SlotStart(0, False, 0.2, 0.0))
        # Storage overfull: raw IF,a would be negative.
        assert c.output(active_ctx(100.0)) == model.if_min
        c.on_idle_start(SlotStart(1, False, 0.2, 0.0))
        # Storage empty and heavy demand: clamps at the ceiling.
        assert c.output(active_ctx(0.0, duration=5.0, i_load=1.33)) == model.if_max

    def test_solutions_recorded(self, model):
        c = make_controller(model)
        c.start_run(0.0, 200.0)
        c.on_idle_start(SlotStart(0, False, 0.2, 0.0))
        c.on_idle_start(SlotStart(1, False, 0.2, 0.0))
        assert len(c.solutions) == 2

    def test_cend_target_is_run_start_level(self, model):
        c = make_controller(model)
        c.start_run(3.0, 200.0)
        # Storage currently 0 but target 3: flat output rises to refill.
        c.on_idle_start(SlotStart(0, False, 0.2, 0.0))
        assert c.output(idle_ctx(0.0)) == pytest.approx((16 + 3) / 30)


class TestOverheads:
    def test_sleeping_slot_includes_transition_terms(self, model):
        dev = camcorder_device_params()
        c = make_controller(model, device=dev)
        c.start_run(0.0, 200.0)
        c.on_idle_start(SlotStart(0, sleeping=True, i_idle=0.2,
                                  storage_charge=0.0))
        s = c.solutions[-1]
        # delta = 1: Ta_eff = 10 + 0.5 + 0.5 = 11.
        expected = (16 + dev.sleep_overhead_charge) / 31.0
        assert s.if_idle == pytest.approx(expected)

    def test_no_device_means_no_overheads(self, model):
        c = make_controller(model, device=None)
        c.start_run(0.0, 200.0)
        c.on_idle_start(SlotStart(0, sleeping=True, i_idle=0.2,
                                  storage_charge=0.0))
        assert c.solutions[-1].if_idle == pytest.approx(16 / 30)


class TestLearning:
    def test_active_current_running_mean(self, model):
        c = FCDPMController(
            model,
            idle_length_predictor=ConstantPredictor(20.0),
            active_length_predictor=ConstantPredictor(10.0),
            active_current_estimate=None,
            fallback_active_current=1.0,
        )
        assert c._estimated_active_current() == 1.0
        c.on_slot_end(SlotActuals(0, 20.0, 10.0, 1.2))
        c.on_slot_end(SlotActuals(1, 20.0, 10.0, 0.8))
        assert c._estimated_active_current() == pytest.approx(1.0)

    def test_fixed_estimate_wins(self, model):
        c = make_controller(model, i_a=1.2)
        c.on_slot_end(SlotActuals(0, 20.0, 10.0, 0.5))
        assert c._estimated_active_current() == 1.2

    def test_observes_idle_flag(self, model):
        from repro.prediction.exponential import ExponentialAveragePredictor

        shared = ExponentialAveragePredictor(factor=0.5)
        c = FCDPMController(model, idle_length_predictor=shared)
        c.observes_idle = False
        c.on_slot_end(SlotActuals(0, 10.0, 3.0, 1.2))
        assert shared.estimate == 0.0  # untouched
        c.observes_idle = True
        c.on_slot_end(SlotActuals(1, 10.0, 3.0, 1.2))
        assert shared.estimate == pytest.approx(5.0)

    def test_rejects_negative_estimate(self, model):
        with pytest.raises(ConfigurationError):
            FCDPMController(model, active_current_estimate=-1.0)

    def test_reset(self, model):
        c = make_controller(model)
        c.start_run(0.0, 200.0)
        c.on_idle_start(SlotStart(0, False, 0.2, 0.0))
        c.on_slot_end(SlotActuals(0, 20.0, 10.0, 1.2))
        c.reset()
        assert not c.solutions
        assert c._active_current_n == 0
