"""Stack thermal model: heat generation, fan cooling, temperature limits.

The paper's balance-of-plant includes a cooling fan whose speed (on-off
vs load-proportional) defines the two Fig-3 system configurations; this
module closes the physical loop behind that choice.  A PEM stack
converts only ``Vcell / E_thermo`` of the reaction enthalpy to
electricity -- the rest is heat:

    P_heat = (E_thermo - Vcell) * Ifc * n_cells,   E_thermo ~ 1.48 V

A lumped thermal mass heats up under ``P_heat`` and is cooled by
convection whose coefficient scales with fan speed.  The steady-state
temperature determines whether a constant-speed fan is over- or
under-cooling at a given load -- exactly the waste the proportional fan
eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..errors import ConfigurationError, RangeError
from .stack import FCStack

#: Thermoneutral cell voltage (HHV): all enthalpy -> electricity at this V.
THERMONEUTRAL_CELL_VOLTAGE = 1.481


@dataclass(frozen=True)
class ThermalParams:
    """Lumped thermal parameters of a small air-cooled stack.

    Attributes
    ----------
    thermal_mass:
        Heat capacity of the stack (J/K).
    h_natural:
        Convective loss with the fan off (W/K).
    h_fan_max:
        Additional convective loss at full fan speed (W/K).
    t_ambient:
        Ambient temperature (K).
    t_max:
        Membrane temperature limit (K) -- dry-out above this.
    """

    thermal_mass: float = 350.0
    h_natural: float = 0.08
    h_fan_max: float = 0.9
    t_ambient: float = units.ROOM_TEMPERATURE_K
    t_max: float = 338.15  # 65 C for a low-temperature PEM

    def __post_init__(self) -> None:
        if min(self.thermal_mass, self.h_natural, self.h_fan_max) <= 0:
            raise ConfigurationError("thermal parameters must be positive")
        if self.t_max <= self.t_ambient:
            raise ConfigurationError("t_max must exceed ambient")


class StackThermalModel:
    """First-order thermal dynamics of the stack.

    ``C dT/dt = P_heat(Ifc) - h(fan) * (T - T_ambient)``
    """

    def __init__(
        self,
        stack: FCStack | None = None,
        params: ThermalParams | None = None,
    ) -> None:
        self.stack = stack if stack is not None else FCStack.bcs_20w()
        self.params = params if params is not None else ThermalParams()
        self._temperature = self.params.t_ambient

    @property
    def temperature(self) -> float:
        """Present stack temperature (K)."""
        return self._temperature

    def heat_power(self, i_fc: float) -> float:
        """Waste heat (W) at stack current ``Ifc``.

        ``(E_thermo * n - Vstack) * Ifc`` -- the enthalpy not converted
        to electrical work.
        """
        if i_fc < 0:
            raise RangeError("stack current cannot be negative")
        if i_fc == 0:
            return 0.0
        v_thermo = THERMONEUTRAL_CELL_VOLTAGE * self.stack.n_cells
        return (v_thermo - float(self.stack.voltage(i_fc))) * i_fc

    def conductance(self, fan_speed: float) -> float:
        """Convective loss coefficient (W/K) at ``fan_speed`` in [0, 1]."""
        if not 0 <= fan_speed <= 1:
            raise RangeError("fan speed must be in [0, 1]")
        return self.params.h_natural + self.params.h_fan_max * fan_speed

    def steady_state_temperature(self, i_fc: float, fan_speed: float) -> float:
        """Equilibrium temperature at constant current and fan speed."""
        return self.params.t_ambient + self.heat_power(i_fc) / self.conductance(
            fan_speed
        )

    def required_fan_speed(self, i_fc: float, margin: float = 3.0) -> float:
        """Minimum fan speed keeping steady state ``margin`` K under t_max.

        Returns a value in [0, 1]; 1.0 means even full speed cannot hold
        the limit (the operating point is thermally infeasible).
        """
        if margin < 0:
            raise ConfigurationError("margin cannot be negative")
        target = self.params.t_max - margin
        needed = self.heat_power(i_fc) / (target - self.params.t_ambient)
        speed = (needed - self.params.h_natural) / self.params.h_fan_max
        return min(max(speed, 0.0), 1.0)

    def step(self, i_fc: float, fan_speed: float, dt: float) -> float:
        """Advance the temperature by ``dt`` seconds; returns the new T.

        Exact integration of the linear first-order ODE over the step
        (current and fan constant within it).
        """
        import math

        if dt < 0:
            raise RangeError("dt cannot be negative")
        h = self.conductance(fan_speed)
        t_inf = self.params.t_ambient + self.heat_power(i_fc) / h
        tau = self.params.thermal_mass / h
        self._temperature = t_inf + (self._temperature - t_inf) * math.exp(
            -dt / tau
        )
        return self._temperature

    @property
    def over_limit(self) -> bool:
        """True when the membrane limit is exceeded."""
        return self._temperature > self.params.t_max

    def reset(self) -> None:
        """Cool back to ambient."""
        self._temperature = self.params.t_ambient
