"""Analysis adapter: per-cell metric frames over experiment results.

:class:`ExperimentResults` is the one read path every consumer shares:
it zips an experiment's deterministic task expansion with the task
values (from a live :class:`~repro.exp.runner.ExperimentRun` or loaded
back out of the :class:`~repro.runtime.cache.ResultCache`) and exposes

* :meth:`cells` -- ``(UnitTask, value)`` pairs in expansion order,
* :meth:`frame` -- flat ``list[dict]`` rows (seed / policy / knobs /
  metrics), the "metric frame" reducers and reports consume,
* :meth:`by_knob` -- single-knob sweep reduction (``{knob: value}``),
* :meth:`seed_summaries` -- the ``run_seeds``-compatible per-metric
  :class:`~repro.sim.montecarlo.SeedSummary` reduction.

The thin clients in :mod:`repro.analysis` are a spec + one of these
reducers each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError
from .spec import ExperimentSpec, UnitTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.cache import ResultCache
    from ..sim.montecarlo import SeedSummary
    from .runner import ExperimentRun
    from .state import ExperimentState


@dataclass(frozen=True)
class Cell:
    """One task paired with its computed value."""

    task: UnitTask
    value: Any

    @property
    def seed(self) -> int:
        return self.task.seed

    @property
    def policy(self) -> str | None:
        return self.task.policy


class ExperimentResults:
    """Uniform read access to an experiment's per-cell values."""

    def __init__(self, spec: ExperimentSpec, values: dict[str, Any]) -> None:
        self.spec = spec
        self._values = values
        self._tasks = spec.expand()

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_run(cls, run: "ExperimentRun") -> "ExperimentResults":
        """Wrap a finished :func:`~repro.exp.runner.run_experiment` call."""
        values = dict(run.results)
        missing = [
            t for t in run.spec.expand() if t.task_id not in values
        ]
        for task in missing:
            values[task.task_id] = run.value(task)
        return cls(run.spec, values)

    @classmethod
    def load(
        cls,
        state: "ExperimentState",
        cache: "ResultCache",
        mark_analyzed: bool = False,
    ) -> "ExperimentResults":
        """Pull every settled task's value back out of the cache.

        Raises :class:`ConfigurationError` when any task is not settled
        or its cached value has been evicted -- analysis over partial
        results would silently bias the reduction.  With
        ``mark_analyzed=True`` every consumed task record advances to
        ``analyzed`` (the caller persists the state).
        """
        values: dict[str, Any] = {}
        sentinel = object()
        missing: list[str] = []
        for task in state.spec.expand():
            record = state.tasks[task.task_id]
            if not record.settled:
                missing.append(f"{task.task_id} ({record.status})")
                continue
            key = record.cache_key or task.cache_key()
            value = cache.get(key, sentinel)
            if value is sentinel:
                missing.append(f"{task.task_id} (evicted from cache)")
                continue
            values[task.task_id] = value
            if mark_analyzed:
                record.status = "analyzed"
        if missing:
            preview = ", ".join(missing[:5])
            raise ConfigurationError(
                f"experiment {state.spec.name!r} has {len(missing)} "
                f"unfinished/unreadable tasks: {preview}"
                + ("..." if len(missing) > 5 else "")
            )
        if mark_analyzed:
            state.refresh_status()
        return cls(state.spec, values)

    # -- access ------------------------------------------------------------

    def cells(self) -> list[Cell]:
        """Every (task, value) pair, in expansion (task-index) order."""
        out = []
        for task in self._tasks:
            if task.task_id not in self._values:
                raise ConfigurationError(
                    f"no value for task {task.task_id} ({task.label()})"
                )
            out.append(Cell(task, self._values[task.task_id]))
        return out

    def values(self) -> list[Any]:
        """Just the values, in expansion order."""
        return [cell.value for cell in self.cells()]

    def frame(self) -> list[dict[str, Any]]:
        """Flat per-cell rows: identity columns + metric columns.

        Dict values spread into columns; scalar values land in a
        single ``value`` column.  The deterministic tabular form
        reports and exporters consume.
        """
        rows = []
        for cell in self.cells():
            row: dict[str, Any] = {
                "task_id": cell.task.task_id,
                "kind": cell.task.kind,
                "scenario": _scenario_label(cell.task.scenario),
                "seed": cell.task.seed,
                "policy": cell.task.policy,
            }
            row.update(dict(cell.task.params))
            if isinstance(cell.value, dict):
                row.update(cell.value)
            else:
                row["value"] = cell.value
            rows.append(row)
        return rows

    # -- reducers ----------------------------------------------------------

    def by_knob(self, knob: str) -> dict[Any, Any]:
        """Single-knob sweep reduction: ``{knob value: cell value}``.

        Expansion order is ablation-major, so the mapping preserves the
        sweep's declared value order -- byte-compatible with the
        historical ``dict(zip(values, results))`` sweeps.
        """
        out: dict[Any, Any] = {}
        for cell in self.cells():
            value = cell.task.param(knob)
            if value is None:
                raise ConfigurationError(
                    f"task {cell.task.task_id} has no {knob!r} param"
                )
            out[value] = cell.value
        return out

    def by_cell(self) -> dict[tuple[int, str | None], Any]:
        """``{(seed, policy): value}`` over every cell."""
        return {(c.seed, c.policy): c.value for c in self.cells()}

    def seed_summaries(self) -> dict[str, "SeedSummary"]:
        """Per-metric summary across seeds -- ``run_seeds`` compatible.

        Every cell must return the same metric keys; metric order is
        pinned to the *first* cell's dict order and a key-set mismatch
        raises, exactly as :func:`repro.sim.montecarlo.run_seeds`.
        """
        from ..sim.montecarlo import summarize

        cells = self.cells()
        first = cells[0].value
        if not isinstance(first, dict):
            raise ConfigurationError(
                "seed_summaries needs dict-valued cells "
                f"(got {type(first).__name__})"
            )
        keys = list(first)
        key_set = set(keys)
        samples: dict[str, list[float]] = {key: [] for key in keys}
        for cell in cells:
            if set(cell.value) != key_set:
                raise ConfigurationError(
                    f"seed {cell.seed} returned metrics {sorted(cell.value)}, "
                    f"expected {sorted(key_set)}"
                )
            for key in keys:
                samples[key].append(float(cell.value[key]))
        return {key: summarize(key, values) for key, values in samples.items()}


def _scenario_label(scenario) -> str | None:
    if scenario is None or isinstance(scenario, str):
        return scenario
    return scenario.get("name", "<inline>")
