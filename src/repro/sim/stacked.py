"""Stacked batch kernel: one 2D sweep across a whole multi-seed batch.

``simulate_batch``'s serial loop runs the 1D array kernel once per
(seed, policy).  For fleet-scale sweeps the per-seed work is itself
mostly vectorizable *across seeds*: every row of the batch shares the
device, the plant, and the policy configuration, differing only in its
trace.  This module packs the per-seed plans into padded 2D arrays
(``seeds x segments``, zero padding for ragged rows) and runs the
trace-functional policies in single vectorized sweeps:

- :func:`clamped_cumsum_batch` replays the
  :meth:`~repro.power.storage.ChargeStorage` clamp / bleed / deficit
  recurrence along axis 1 of every row at once, bit-identically to
  :func:`~repro.sim.vectorized.clamped_cumsum` per row;
- conv-dpm and static controllers reduce to one constant realized
  output per batch (:func:`_run_const_stacked`);
- ASAP-DPM's storage-coupled hysteresis runs as one column loop over
  all rows (:func:`_run_asap_stacked`) instead of a Python loop per
  segment per seed;
- FC-DPM's Eq. 14/15 predictor scans batch across rows
  (:func:`~repro.prediction.exponential.exponential_average_scan_batch`)
  and its storage-coupled per-slot solves advance all rows in lockstep,
  one :func:`~repro.core.optimizer_array.solve_slot_array` call per
  slot column (:func:`_run_fc_stacked`).

Planning is batched too: all rows' slots concatenate into one
:func:`~repro.sim.integrator.plan_slot_arrays` call (every layout rule
is slot-local, so the concatenated plan equals the per-seed plans row
for row), and the device-side sleep decisions come from one batched
predictor scan replicating ``PredictiveShutdownPolicy.decisions_array``.

Exactness contract: for every seed, every ``SimulationResult`` field
and the manager / controller / policy end state equal the serial loop's
bit for bit.  Intermediate per-row manager states are unobservable from
``simulate_batch``'s API, so end-state commits are deferred to the exit
point -- the last row on success, or the exact raising row when the
deficit guard fires (specs at or before the raising spec hold the
raising row's state; later specs hold the previous row's).

Telemetry: the stacked route runs with or without ``OBS`` enabled and
reports batch-level attributes (rows, padded fraction, plan-stack
seconds) on the ``sim.batch`` span plus ``sim.batch_*`` metrics.  The
per-slot ``dpm.*`` counters of the sequential policy replay are *not*
emitted on this route -- the batched decision scan never visits slots
individually (see docs/observability.md).
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from itertools import repeat as _repeat
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.baselines import ASAPDPMController, ConvDPMController, StaticController
from ..core.fc_dpm import FCDPMController
from ..core.optimizer_array import (
    SlotProblemColumns,
    SlotSolutionColumns,
    solve_slot_array,
)
from ..core.setting import SlotSolution
from ..dpm.predictive import PredictiveShutdownPolicy
from ..errors import SimulationError
from ..obs import OBS
from ..prediction.exponential import (
    ExponentialAveragePredictor,
    exponential_average_scan_batch,
)
from .integrator import plan_slot_arrays
from .slotsim import SimulationResult, SlotResult
from .vectorized import (
    _MAX_RESCANS,
    TraceArrays,
    _fc_scan_seeds,
    _fuel_currents,
    _realize_commands,
    _reason_key,
    _storage_deltas,
    fast_path_ineligibility,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.manager import PowerManager
    from ..scenario.spec import Scenario
    from ..workload.trace import LoadTrace

#: Controller types with a stacked (2D) kernel pass.  Exact types on
#: purpose, like the 1D eligibility checks: a subclass may override any
#: semantics the pass replicates.
_STACKED_CONTROLLERS = (
    ConvDPMController,
    StaticController,
    ASAPDPMController,
    FCDPMController,
)

#: Ineligibility reason prefixes specific to the stacked route, mapped
#: to the ``sim.batch_ineligible{reason=...}`` metric labels.  Reasons
#: inherited from the 1D fast path keep their ``sim.fast_ineligible``
#: slugs (see ``vectorized._REASON_KEYS``).
_STACKED_REASON_KEYS = (
    ("finite fuel tank", "stacked-finite-tank"),
    ("controller", "stacked-controller"),
    ("policy", "stacked-policy"),
)


def _stacked_reason_key(reason: str) -> str:
    """Metric-label slug for a stacked-route ineligibility reason."""
    for prefix, key in _STACKED_REASON_KEYS:
        if reason.startswith(prefix):
            return key
    return _reason_key(reason)


def stacked_batch_ineligibility(manager: "PowerManager") -> str | None:
    """Why this spec cannot ride the stacked batch kernel (None = it can).

    Strictly stronger than :func:`~repro.sim.vectorized
    .fast_path_ineligibility`: the stacked passes additionally require a
    bottomless fuel tank (there is no per-row mid-run depletion
    fallback), a controller with a 2D pass, and a device policy whose
    sleep decisions compile to the batched predictor scan.
    """
    reason = fast_path_ineligibility(manager)
    if reason is not None:
        return reason
    tank = manager.source.fc.tank
    if math.isfinite(tank.capacity):
        return (
            "finite fuel tank (stacked passes have no per-row "
            "depletion fallback)"
        )
    if type(manager.controller) not in _STACKED_CONTROLLERS:
        return (
            f"controller {type(manager.controller).__name__} has no "
            "stacked batch pass"
        )
    policy = manager.policy
    if type(policy) is not PredictiveShutdownPolicy or type(
        getattr(policy, "predictor", None)
    ) is not ExponentialAveragePredictor:
        return (
            f"policy type {type(policy).__name__} has no batched "
            "decision scan"
        )
    return None


# -- batched slot synthesis ---------------------------------------------------


@dataclass(frozen=True)
class _BatchSlots:
    """All rows' task slots, flat (concatenated) and padded-2D."""

    counts: np.ndarray  #: (R,) slots per row
    offsets: np.ndarray  #: (R+1,) flat slot offsets
    t_idle: np.ndarray  #: flat, row-major
    t_active: np.ndarray
    i_active: np.ndarray
    t_idle2d: np.ndarray  #: (R, W) zero-padded
    t_active2d: np.ndarray
    valid: np.ndarray  #: (R, W) bool


def _pad_rows(flat: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Scatter a row-major flat column into a zero-padded 2D array."""
    out = np.zeros(valid.shape, dtype=float)
    out[valid] = flat
    return out


def _gather_batch_slots(
    scenario: "Scenario", seed_list: list[int], traces: dict | None
) -> _BatchSlots:
    """Every seed's slot columns, via the batched synthesizer when possible.

    ``Scenario.build_slot_arrays`` produces the whole batch in one RNG
    pass per seed (bit-identical to per-seed ``build_trace`` slots);
    workloads without an array builder -- or pre-built ``traces`` --
    extract columns per trace instead.
    """
    arrays = None if traces else scenario.build_slot_arrays(seed_list)
    if arrays is not None:
        t_idle2d, t_active2d, i_active2d = arrays
        rows, width = t_idle2d.shape
        counts = np.full(rows, width, dtype=np.intp)
        valid = np.ones((rows, width), dtype=bool)
        return _BatchSlots(
            counts=counts,
            offsets=np.arange(rows + 1, dtype=np.intp) * width,
            t_idle=t_idle2d.ravel(),
            t_active=t_active2d.ravel(),
            i_active=i_active2d.ravel(),
            t_idle2d=t_idle2d,
            t_active2d=t_active2d,
            valid=valid,
        )
    cols_i: list[np.ndarray] = []
    cols_a: list[np.ndarray] = []
    cols_c: list[np.ndarray] = []
    for seed in seed_list:
        trace = None if traces is None else traces.get(seed)
        if trace is None:
            trace = scenario.build_trace(seed)
        slots = list(trace)
        cols_i.append(np.array([s.t_idle for s in slots], dtype=float))
        cols_a.append(np.array([s.t_active for s in slots], dtype=float))
        cols_c.append(np.array([s.i_active for s in slots], dtype=float))
    counts = np.array([c.shape[0] for c in cols_i], dtype=np.intp)
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    t_idle = np.concatenate(cols_i)
    t_active = np.concatenate(cols_a)
    i_active = np.concatenate(cols_c)
    width = int(counts.max()) if counts.size else 0
    valid = np.arange(width)[None, :] < counts[:, None]
    return _BatchSlots(
        counts=counts,
        offsets=offsets,
        t_idle=t_idle,
        t_active=t_active,
        i_active=i_active,
        t_idle2d=_pad_rows(t_idle, valid),
        t_active2d=_pad_rows(t_active, valid),
        valid=valid,
    )


# -- stacked plans ------------------------------------------------------------


@dataclass(frozen=True)
class StackedPlans:
    """Per-seed :class:`~repro.sim.vectorized.TraceArrays` stacked on axis 0.

    ``flat`` is the whole batch as one plan over the concatenated slot
    sequence (its ``slot_bounds`` / ``active_start`` hold *global*
    segment indices); ``rows[r]`` is row ``r``'s plan with row-local
    indices -- views into the flat columns, bit-identical to planning
    that row alone.  ``duration`` / ``i_load`` are the zero-padded 2D
    forms the stacked kernels sweep (zero padding is bit-neutral in
    every reduction the kernels perform).
    """

    flat: TraceArrays
    rows: list[TraceArrays]
    seg_offsets: np.ndarray  #: (R+1,) flat segment offset per row
    slot_offsets: np.ndarray  #: (R+1,) flat slot offset per row
    n_seg: np.ndarray  #: (R,) segments per row
    duration: np.ndarray  #: (R, S) zero-padded
    i_load: np.ndarray  #: (R, S) zero-padded
    valid_seg: np.ndarray  #: (R, S) bool

    @property
    def n_rows(self) -> int:
        return self.n_seg.shape[0]

    @property
    def width(self) -> int:
        return self.duration.shape[1]


def _stack_from_flat(flat: TraceArrays, counts: np.ndarray) -> StackedPlans:
    """Carve one concatenated plan into per-row views + padded 2D columns."""
    slot_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    g_bounds = flat.slot_bounds
    seg_offsets = g_bounds[slot_offsets]
    rows: list[TraceArrays] = []
    for r in range(counts.shape[0]):
        slo = int(slot_offsets[r])
        shi = int(slot_offsets[r + 1])
        lo = int(seg_offsets[r])
        hi = int(seg_offsets[r + 1])
        rows.append(
            TraceArrays(
                duration=flat.duration[lo:hi],
                i_load=flat.i_load[lo:hi],
                kind=flat.kind[lo:hi],
                phase_duration=None,
                phase_demand=None,
                slot_bounds=g_bounds[slo : shi + 1] - lo,
                active_start=flat.active_start[slo:shi] - lo,
                slept=flat.slept[slo:shi],
                aborted=flat.aborted[slo:shi],
            )
        )
    n_seg = np.diff(seg_offsets)
    width = int(n_seg.max()) if n_seg.size else 0
    valid = np.arange(width)[None, :] < n_seg[:, None]
    return StackedPlans(
        flat=flat,
        rows=rows,
        seg_offsets=seg_offsets,
        slot_offsets=slot_offsets,
        n_seg=n_seg,
        duration=_pad_rows(flat.duration, valid),
        i_load=_pad_rows(flat.i_load, valid),
        valid_seg=valid,
    )


def stack_plans(plans: Sequence[TraceArrays]) -> StackedPlans:
    """Stack already-compiled per-seed plans into one :class:`StackedPlans`.

    The concatenated ``flat`` plan is rebuilt by offsetting each row's
    index columns -- exact integer arithmetic, so carving it back up
    (or padding it) reproduces the inputs bit for bit.  Used by the
    equivalence tests and the shared-memory transport; the batch driver
    plans the concatenation directly instead.
    """
    counts = np.array([p.n_slots for p in plans], dtype=np.intp)
    seg_counts = np.array([p.n_segments for p in plans], dtype=np.intp)
    seg_off = np.concatenate(([0], np.cumsum(seg_counts))).astype(np.intp)
    flat = TraceArrays(
        duration=np.concatenate([p.duration for p in plans]),
        i_load=np.concatenate([p.i_load for p in plans]),
        kind=np.concatenate([p.kind for p in plans]),
        phase_duration=None,
        phase_demand=None,
        slot_bounds=np.concatenate(
            [np.zeros(1, dtype=np.intp)]
            + [p.slot_bounds[1:] + off for p, off in zip(plans, seg_off[:-1])]
        ),
        active_start=np.concatenate(
            [p.active_start + off for p, off in zip(plans, seg_off[:-1])]
        ),
        slept=np.concatenate([p.slept for p in plans]),
        aborted=np.concatenate([p.aborted for p in plans]),
    )
    return _stack_from_flat(flat, counts)


# -- batched storage recurrence ----------------------------------------------


def clamped_cumsum_batch(
    deltas: np.ndarray,
    n_valid: np.ndarray,
    initial: float,
    capacity: float,
    bled: float = 0.0,
    deficit: float = 0.0,
    max_rescans: int = _MAX_RESCANS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-stacked :func:`~repro.sim.vectorized.clamped_cumsum`.

    ``deltas`` is ``(rows, segments)`` with ragged rows zero-padded past
    ``n_valid[row]``; every row starts from the same ``initial`` level
    and clamp ledgers (a batch of freshly reset storages).  Returns
    ``(charges, bled, deficit)`` where ``charges[r, :n_valid[r] + 1]``
    and the per-row ledgers are bit-identical to the 1D recurrence on
    row ``r``'s valid prefix.  Charge columns past ``n_valid[row]`` are
    unspecified.

    Strategy mirrors the 1D kernel: whole-row seeded cumsums between
    clamp events (``axis=1`` cumsum is strictly sequential per row, and
    the zero prefix before each row's resume column is bit-neutral),
    the scalar clamp arithmetic applied at each row's first violation,
    and a density heuristic -- rows whose unclamped trajectory violates
    the bounds more times than the rescan budget, or that exhaust it,
    finish in a column-sequential tail vectorized *across* rows.  The
    heuristic only changes speed, never values.
    """
    deltas = np.asarray(deltas, dtype=float)
    rows, width = deltas.shape
    n_valid = np.asarray(n_valid, dtype=np.intp)
    charges = np.empty((rows, width + 1), dtype=float)
    charges[:, 0] = initial
    cur = np.full(rows, float(initial))
    bled_a = np.full(rows, float(bled))
    deficit_a = np.full(rows, float(deficit))
    start = np.zeros(rows, dtype=np.intp)
    pending = n_valid > 0
    cols = np.arange(width)
    rescans = 0
    while rescans < max_rescans:
        idx = np.flatnonzero(pending)
        if not idx.size:
            break
        st = start[idx]
        nv = n_valid[idx]
        live = (cols[None, :] >= st[:, None]) & (cols[None, :] < nv[:, None])
        work = np.where(live, deltas[idx], 0.0)
        # Seed each row's resume column with its carried level: the
        # zero prefix then contributes exact +0.0 terms, so the row
        # cumsum replays the scalar += sequence bit for bit.
        work[np.arange(idx.size), st] += cur[idx]
        np.cumsum(work, axis=1, out=work)
        bad = ((work > capacity) | (work < 0.0)) & live
        has_bad = bad.any(axis=1)
        nbad = np.count_nonzero(bad, axis=1)
        # First violating column per row (nv for clean rows): commit
        # the clean prefix [st, k) for every row in one masked store.
        k = np.where(has_bad, np.argmax(bad, axis=1), nv)
        ch = charges[idx]
        ch1 = ch[:, 1:]
        commit = live & (cols[None, :] < k[:, None])
        ch1[commit] = work[commit]
        if np.any(has_bad):
            sub = np.flatnonzero(has_bad)
            kb = k[sub]
            newv = work[sub, kb]
            over = newv > capacity
            # The scalar applies exactly one branch; the masked adds
            # contribute exact +0.0 on the other (ledgers are >= 0).
            bled_a[idx[sub]] += np.where(over, newv - capacity, 0.0)
            deficit_a[idx[sub]] += np.where(over, 0.0, -newv)
            pinned = np.where(over, capacity, 0.0)
            cur[idx[sub]] = pinned
            ch1[sub, kb] = pinned
            start[idx[sub]] = kb + 1
        charges[idx] = ch
        done = idx[~has_bad]
        pending[done] = False
        pending[idx] &= start[idx] < n_valid[idx]
        # Clamp-dense rows (more violations left than rescan budget)
        # drop straight to the sequential tail, as the 1D kernel does.
        dense = nbad > max_rescans - rescans
        pending_now = pending[idx] & ~dense
        if not np.any(pending_now):
            pending[idx] = pending[idx] & dense & (start[idx] < n_valid[idx])
            if np.any(dense):
                break
        rescans += 1
    idx = np.flatnonzero(pending & (start < n_valid))
    if idx.size:
        st = start[idx]
        nv = n_valid[idx]
        d_sub = deltas[idx]
        ch = charges[idx]
        cur_t = cur[idx]
        bl = bled_a[idx]
        df = deficit_a[idx]
        for j in range(int(st.min()), int(nv.max())):
            act = (j >= st) & (j < nv)
            new = cur_t + d_sub[:, j]
            over = act & (new > capacity)
            under = act & (new < 0.0)
            ok = act & ~over & ~under
            bl += np.where(over, new - capacity, 0.0)
            df += np.where(under, -new, 0.0)
            cur_t = np.where(
                over, capacity, np.where(under, 0.0, np.where(ok, new, cur_t))
            )
            ch[:, j + 1] = np.where(act, cur_t, ch[:, j + 1])
        charges[idx] = ch
        bled_a[idx] = bl
        deficit_a[idx] = df
    return charges, bled_a, deficit_a


# -- stacked kernel passes ----------------------------------------------------


@dataclass(frozen=True)
class _StackedRun:
    """Raw outputs of one stacked pass, flat + per-row reductions."""

    fuel_flat: np.ndarray  #: per-segment fuel, row-major flat
    delivered_flat: np.ndarray  #: per-segment delivered charge, flat
    i_f_flat: np.ndarray | None  #: realized output per segment (None = const)
    charges: np.ndarray  #: (R, S+1), padded past each row's last segment
    bled: np.ndarray  #: (R,)
    deficit: np.ndarray  #: (R,)
    recharging: np.ndarray | None  #: (R,) final ASAP mode, or None
    const_i_f: float | None = None


def _run_const_stacked(
    manager: "PowerManager", sp: StackedPlans, cmd0: float
) -> _StackedRun:
    """Stacked pass for constant-command controllers (conv-dpm, static).

    Exactly ``_run_from_plan``'s constant branch, broadcast across rows:
    one realize + fuel-map evaluation, elementwise deltas, and the
    batched storage recurrence.
    """
    source = manager.source
    fc = source.fc
    storage = source.storage
    model = fc.model
    if fc.allow_zero_output and cmd0 == 0.0:
        r0 = 0.0
    else:
        r0 = min(max(cmd0, model.if_min), model.if_max)
    i_fc = 0.0 if r0 == 0.0 else model.fc_current(r0)
    fuel_flat = i_fc * sp.flat.duration
    delivered_flat = r0 * sp.flat.duration
    deltas = _storage_deltas(storage, r0, sp.i_load, sp.duration)
    charges, bled, deficit = clamped_cumsum_batch(
        deltas,
        sp.n_seg,
        storage.charge,
        storage.capacity,
        bled=storage.bled_charge,
        deficit=storage.deficit_charge,
    )
    return _StackedRun(
        fuel_flat=fuel_flat,
        delivered_flat=delivered_flat,
        i_f_flat=None,
        charges=charges,
        bled=bled,
        deficit=deficit,
        recharging=None,
        const_i_f=r0,
    )


def _run_asap_stacked(manager: "PowerManager", sp: StackedPlans) -> _StackedRun:
    """Stacked pass for ASAP-DPM's storage-coupled recharge hysteresis.

    Both candidate modes precompute elementwise (on the flat columns for
    assembly, padded 2D for integration); one column loop then plays the
    per-segment hysteresis and the storage clamp for every row at once
    -- the same ``soc``-before-integration ordering and clamp arithmetic
    as the scalar controller, with ``np.where`` selecting each row's
    branch.  Requires a bottomless tank (stacked eligibility).
    """
    controller = manager.controller
    source = manager.source
    fc = source.fc
    storage = source.storage
    model = fc.model
    flat = sp.flat

    cmd_follow = np.minimum(np.maximum(flat.i_load, model.if_min), model.if_max)
    real_follow = _realize_commands(fc, cmd_follow)
    ifc_follow = _fuel_currents(fc, real_follow)
    fuel_follow = ifc_follow * flat.duration
    real_follow2d = _pad_rows(real_follow, sp.valid_seg)
    delta_follow2d = _storage_deltas(storage, real_follow2d, sp.i_load, sp.duration)

    cmd_re = model.if_max
    if cmd_re == 0.0 and fc.allow_zero_output:
        real_re = 0.0
    else:
        real_re = min(max(cmd_re, model.if_min), model.if_max)
    ifc_re = 0.0 if real_re == 0.0 else model.fc_current(real_re)
    fuel_re = ifc_re * flat.duration
    delta_re2d = _storage_deltas(storage, real_re, sp.i_load, sp.duration)

    rows, width = sp.duration.shape
    threshold = controller.recharge_threshold
    full_level = controller.full_level
    cap = storage.capacity
    has_cap = cap > 0
    recharging = np.full(rows, controller.recharging, dtype=bool)
    cur = np.full(rows, storage.charge)
    bled = np.full(rows, storage.bled_charge)
    deficit = np.full(rows, storage.deficit_charge)
    charges = np.empty((rows, width + 1), dtype=float)
    charges[:, 0] = cur
    mode2d = np.empty((rows, width), dtype=bool)
    valid = sp.valid_seg

    for j in range(width):
        act = valid[:, j]
        if has_cap:
            # Hysteresis *before* the segment integrates, exactly as
            # ASAPDPMController.output reads the pre-step soc.
            soc = cur / cap
            rech = np.where(soc < threshold, True, np.where(soc >= full_level, False, recharging))
            recharging = np.where(act, rech, recharging)
        delta = np.where(recharging, delta_re2d[:, j], delta_follow2d[:, j])
        new = cur + delta
        over = act & (new > cap)
        under = act & (new < 0.0)
        ok = act & ~over & ~under
        bled += np.where(over, new - cap, 0.0)
        deficit += np.where(under, -new, 0.0)
        cur = np.where(over, cap, np.where(under, 0.0, np.where(ok, new, cur)))
        charges[:, j + 1] = cur
        mode2d[:, j] = recharging

    mode_flat = mode2d[valid]
    i_f_flat = np.where(mode_flat, real_re, real_follow)
    fuel_flat = np.where(mode_flat, fuel_re, fuel_follow)
    delivered_flat = i_f_flat * flat.duration
    return _StackedRun(
        fuel_flat=fuel_flat,
        delivered_flat=delivered_flat,
        i_f_flat=i_f_flat,
        charges=charges,
        bled=bled,
        deficit=deficit,
        recharging=recharging,
    )


def _run_fc_stacked(
    manager: "PowerManager",
    sp: StackedPlans,
    slots: _BatchSlots,
    seeds: tuple[float, float],
    idle_scan: tuple | None,
    active_scan: tuple,
) -> tuple[_StackedRun, dict]:
    """Lockstep stacked pass for FC-DPM's storage-coupled slot solves.

    The per-row sequential loop (``vectorized._run_fc``) cannot batch
    along the segment axis -- each slot's ``SlotProblem`` takes the live
    storage level as ``c_ini`` -- but it *can* batch across rows: every
    row poses its slot-``k`` problem from state that only depends on its
    own first ``k`` slots.  So this pass transposes the iteration:
    advance all rows in lockstep, one slot column at a time.  At step
    ``k`` it assembles per-row problem columns (predictor columns from
    the batched Eq. 14/15 scans, the active-current running mean as a
    masked fold, ``c_ini`` live from the previous step's storage
    integration), solves them in a single
    :func:`~repro.core.optimizer_array.solve_slot_array` call, and
    integrates the column's idle/active segments with the
    storage-saturation guard, clamp ledger, and Section-4.2 active
    re-plan as vectorized mask arithmetic over all rows.

    Bit-exactness: every expression replays ``_run_fc``'s scalar op
    order (the solver by construction; the guard/realize/fuel/delta
    arithmetic via the shared ``_realize_commands`` /
    ``_fuel_currents`` / ``_storage_deltas`` helpers; phase folds as
    masked sequential accumulation), so per-segment outputs, ledgers,
    and controller end-state inputs equal the per-row pass bit for bit.
    Rows shorter than the batch width go inert past their last slot:
    their lanes still compute (the scan columns hold each row's frozen
    estimate, so the dead solves stay in-range) but every commit is
    masked by validity.  Requires stacked eligibility (bottomless tank:
    no depletion aborts; exact controller/model types).

    Returns the generic :class:`_StackedRun` (the driver's shared
    assembly machinery consumes it like any other pass) plus the
    FC-specific end-state columns the exit commit needs: per-row
    solution fields, guard counts, running active-current sums, last
    commands, and the active-plan flag.
    """
    controller = manager.controller
    source = manager.source
    fc = source.fc
    storage = source.storage
    model = controller.model
    device = manager.device
    flat = sp.flat

    rows_n = sp.n_rows
    valid = slots.valid
    width_s = valid.shape[1]
    rows_idx = np.arange(rows_n)

    est_idle0, est_active0 = seeds
    # Problem columns, floored exactly as the scalar pass floors them.
    if idle_scan is None:
        ti2d = None
        ti_const = np.full(rows_n, max(est_idle0, 1e-6))
    else:
        ti2d = np.maximum(idle_scan[0], 1e-6)
        ti_const = None
    ta2d = np.maximum(active_scan[0], 1e-6)

    slept2d = _pad_rows(flat.slept, valid).astype(bool)
    i_idle2d = np.where(slept2d, device.i_slp, device.i_sdb)
    ov = controller._overheads(True)
    t_wu2d = np.where(slept2d, ov.get("t_wu", 0.0), 0.0)
    t_pd2d = np.where(slept2d, ov.get("t_pd", 0.0), 0.0)
    i_wu2d = np.where(slept2d, ov.get("i_wu", 0.0), 0.0)
    i_pd2d = np.where(slept2d, ov.get("i_pd", 0.0), 0.0)
    i_active2d = _pad_rows(slots.i_active, valid)

    # start_run happens at the exit commit; its inputs are the fresh
    # manager's storage state, read here without mutating anything.
    c_target = storage.charge
    c_max_col = np.full(rows_n, storage.capacity)
    c_end_col = np.full(rows_n, c_target)
    est_fixed = controller.active_current_estimate
    fallback = controller.fallback_active_current
    acn0 = controller._active_current_n

    cap = storage.capacity
    hi_guard = 0.999 * cap
    lo_guard = 0.001 * cap
    if_min = model.if_min
    if_max = model.if_max

    # Global segment indices of each (row, slot): idle spans
    # [bstart, astart), active spans [astart, end).
    g_bounds = flat.slot_bounds
    bstart2d = np.zeros((rows_n, width_s), dtype=np.intp)
    astart2d = np.zeros((rows_n, width_s), dtype=np.intp)
    end2d = np.zeros((rows_n, width_s), dtype=np.intp)
    bstart2d[valid] = g_bounds[:-1]
    astart2d[valid] = flat.active_start
    end2d[valid] = g_bounds[1:]
    icnt2d = astart2d - bstart2d
    acnt2d = end2d - astart2d
    seg_base = sp.seg_offsets[:-1]

    durs = flat.duration
    loads = flat.i_load
    i_f_flat = np.zeros(durs.shape[0])
    fuel_flat = np.zeros(durs.shape[0])
    charges = np.zeros((rows_n, sp.width + 1))
    cur = np.full(rows_n, storage.charge)
    charges[:, 0] = cur
    bled = np.full(rows_n, storage.bled_charge)
    deficit = np.full(rows_n, storage.deficit_charge)

    guards = np.zeros(rows_n, dtype=np.intp)
    acs = np.full(rows_n, controller._active_current_sum)
    if_idle_last = np.full(rows_n, controller._if_idle)
    if_active_last = np.full(rows_n, controller._if_active)
    planned = np.full(rows_n, controller._active_planned, dtype=bool)

    sol2d = {
        name: np.zeros((rows_n, width_s), dtype=dtype)
        for name, dtype in _SOL_FIELDS
    }

    def integrate(active_mask, g_idx, r_vals, ifc_vals):
        """One segment column: fuel, storage clamp, per-segment scatter."""
        nonlocal cur, bled, deficit
        gs = np.where(active_mask, g_idx, 0)
        d = durs[gs]
        i_l = loads[gs]
        fuel_j = ifc_vals * d
        delta = _storage_deltas(storage, r_vals, i_l, d)
        new = cur + delta
        over = active_mask & (new > cap)
        under = active_mask & (new < 0.0)
        ok = active_mask & ~over & ~under
        bled = bled + np.where(over, new - cap, 0.0)
        deficit = deficit + np.where(under, -new, 0.0)
        cur = np.where(over, cap, np.where(under, 0.0, np.where(ok, new, cur)))
        g_act = g_idx[active_mask]
        i_f_flat[g_act] = r_vals[active_mask]
        fuel_flat[g_act] = fuel_j[active_mask]
        charges[rows_idx[active_mask], g_act - seg_base[active_mask] + 1] = cur[
            active_mask
        ]

    with np.errstate(divide="ignore", invalid="ignore"):
        for k in range(width_s):
            vk = valid[:, k]
            # Active-current estimate: est / fallback / running mean,
            # exactly the scalar priority (acn0 + k is the same python
            # int the scalar divides by).
            if est_fixed is not None:
                i_est = np.full(rows_n, est_fixed)
            elif acn0 + k == 0:
                i_est = np.full(rows_n, fallback)
            else:
                i_est = acs / (acn0 + k)
            probs = SlotProblemColumns(
                t_idle=ti_const if ti2d is None else ti2d[:, k],
                t_active=ta2d[:, k],
                i_idle=i_idle2d[:, k],
                i_active=i_est,
                c_ini=cur,
                c_end=c_end_col,
                c_max=c_max_col,
                sleeping=slept2d[:, k],
                t_wu=t_wu2d[:, k],
                t_pd=t_pd2d[:, k],
                i_wu=i_wu2d[:, k],
                i_pd=i_pd2d[:, k],
            )
            sol = solve_slot_array(probs, model)
            for name, _ in _SOL_FIELDS:
                sol2d[name][:, k] = getattr(sol, name)
            if_idle = sol.if_idle
            if_idle_last = np.where(vk, if_idle, if_idle_last)
            if_active_last = np.where(vk, sol.if_active, if_active_last)

            # Idle segments: guard + realize per segment column.
            icnt = icnt2d[:, k]
            for j in range(int(icnt[vk].max(initial=0))):
                act = vk & (j < icnt)
                gs = np.where(act, bstart2d[:, k] + j, 0)
                i_l = loads[gs]
                guard = ((cur >= hi_guard) & (if_idle > i_l)) | (
                    (cur <= lo_guard) & (if_idle < i_l)
                )
                guards += guard & act
                cmd = np.where(
                    guard,
                    np.minimum(np.maximum(i_l, if_min), if_max),
                    if_idle,
                )
                r = _realize_commands(fc, cmd)
                integrate(act, bstart2d[:, k] + j, r, _fuel_currents(fc, r))

            # Active phase: sequential rem/dem folds, one held command.
            acnt = acnt2d[:, k]
            n_active = int(acnt[vk].max(initial=0))
            rem = np.zeros(rows_n)
            dem = np.zeros(rows_n)
            for j in range(n_active):
                aj = vk & (j < acnt)
                gs = np.where(aj, astart2d[:, k] + j, 0)
                d = durs[gs]
                rem = np.where(aj, rem + d, rem)
                dem = np.where(aj, dem + d * loads[gs], dem)
            has_a = vk & (acnt > 0)
            if_a = np.where(has_a, (dem + c_target - cur) / rem, if_min)
            cmd_a = np.minimum(np.maximum(if_a, if_min), if_max)
            if_active_last = np.where(has_a, cmd_a, if_active_last)
            planned = np.where(vk, acnt > 0, planned)
            r_a = _realize_commands(fc, cmd_a)
            ifc_a = _fuel_currents(fc, r_a)
            for j in range(n_active):
                aj = vk & (j < acnt)
                integrate(aj, astart2d[:, k] + j, r_a, ifc_a)

            acs = np.where(vk, acs + i_active2d[:, k], acs)

    run = _StackedRun(
        fuel_flat=fuel_flat,
        delivered_flat=i_f_flat * durs,
        i_f_flat=i_f_flat,
        charges=charges,
        bled=bled,
        deficit=deficit,
        recharging=None,
    )
    state = {
        "sol2d": sol2d,
        "guards": guards,
        "acs": acs,
        "acn0": acn0,
        "if_idle_last": if_idle_last,
        "if_active_last": if_active_last,
        "planned": planned,
    }
    return run, state


#: SlotSolution fields in declaration order, with their column dtypes.
_SOL_FIELDS = tuple(
    (f.name, bool if f.name in ("range_clamped", "capacity_limited") else float)
    for f in dataclasses.fields(SlotSolution)
)


def _fc_row_solutions(sol2d: dict, row: int, n: int) -> list:
    """Row ``row``'s first ``n`` solved slots as scalar ``SlotSolution``s."""
    cols = SlotSolutionColumns(**{name: arr[row] for name, arr in sol2d.items()})
    return [cols.row(k) for k in range(n)]


# -- batch driver -------------------------------------------------------------


def _row_totals(flat_values: np.ndarray, sp: StackedPlans) -> np.ndarray:
    """Per-row sequential totals of a flat per-segment column.

    Pads into the 2D layout and cumsums along axis 1: the zero padding
    contributes exact ``+0.0`` terms (all integrated quantities are
    non-negative), so each row total equals the 1D seeded cumsum.
    """
    if not sp.width:
        return np.zeros(sp.n_rows)
    return np.cumsum(_pad_rows(flat_values, sp.valid_seg), axis=1)[:, -1]


def _slot_sums_flat(sp: StackedPlans, values_flat: np.ndarray) -> np.ndarray:
    """Per-slot sums across the whole batch, in scalar accumulation order."""
    out = np.zeros(sp.flat.n_slots)
    if out.shape[0] and values_flat.shape[0]:
        np.add.at(out, sp.flat.slot_index, values_flat)
    return out


def simulate_batch_stacked(
    scenario: "Scenario",
    seed_list: list[int],
    specs: list[str],
    managers: dict[str, "PowerManager"],
    *,
    max_deficit_fraction: float,
    traces: dict | None,
    span,
) -> dict[int, dict[str, SimulationResult]]:
    """Run a whole (seeds x policies) batch through the stacked kernel.

    Every spec in ``managers`` must already have passed
    :func:`stacked_batch_ineligibility`.  Results, raised errors, and
    manager end state are bit-identical to ``simulate_batch``'s serial
    loop over the same seeds and specs.
    """
    t_plan0 = time.perf_counter()
    rows_n = len(seed_list)
    slots = _gather_batch_slots(scenario, seed_list, traces)

    # Device-side sleep decisions: one batched predictor scan, exactly
    # PredictiveShutdownPolicy.decisions_array per row.  As in the
    # serial loop, the first spec's (fresh) policy is the probe whose
    # decisions every spec shares; its end-state commit is deferred to
    # the batch exit row.
    probe = managers[specs[0]]
    policy = probe.policy
    predictor = policy.predictor
    preds2d, idle_finals = exponential_average_scan_batch(
        predictor.factor, predictor.estimate, slots.t_idle2d, slots.counts
    )
    fit_threshold = policy.params.t_pd + policy.params.t_wu
    sleep2d = (preds2d >= policy.threshold) & (preds2d >= fit_threshold)
    sleep_flat = sleep2d[slots.valid]

    # One planner call over the concatenated slots: every layout rule in
    # plan_slot_arrays is slot-local, so carving the result back into
    # rows reproduces per-seed planning bit for bit.
    flat = TraceArrays(
        **plan_slot_arrays(
            probe.device,
            slots.t_idle,
            slots.t_active,
            slots.i_active,
            sleep_flat,
            np.zeros(sleep_flat.shape[0]),
            phase_context=False,
        )
    )
    sp = _stack_from_flat(flat, slots.counts)
    plan_seconds = time.perf_counter() - t_plan0

    # Shared per-row reductions (policy-independent, zero-seeded --
    # fresh managers start every ledger at 0.0).
    dur_rows = _row_totals(flat.duration, sp)
    load_seg = flat.load_charge_seg
    load_rows = _row_totals(load_seg, sp)
    slot_loads = _slot_sums_flat(sp, load_seg)
    slot_row_idx = np.repeat(np.arange(rows_n), slots.counts)
    sleeps_rows = np.bincount(
        slot_row_idx, weights=flat.slept, minlength=rows_n
    ).astype(np.intp)
    aborted_rows = np.bincount(
        slot_row_idx, weights=flat.aborted, minlength=rows_n
    ).astype(np.intp)
    # Flat gather indices: each slot's last charge column per row.
    g_bounds = flat.slot_bounds
    seg_base = np.repeat(sp.seg_offsets[:-1], slots.counts)
    ends_local = g_bounds[1:] - seg_base
    astart_local = flat.active_start - seg_base
    charge_cols = sp.width + 1
    flat_end_idx = slot_row_idx * charge_cols + ends_local

    # Whole-batch Python lists, converted once: per-row list slices are
    # pointer copies, far cheaper than one ndarray.tolist() per row.
    counts_l = slots.counts.tolist()
    n_seg_l = sp.n_seg.tolist()
    slot_off_l = sp.slot_offsets.tolist()
    slept_l = flat.slept.tolist()
    aborted_l = flat.aborted.tolist()
    slot_loads_l = slot_loads.tolist()
    sleeps_l = sleeps_rows.tolist()
    aborted_rows_l = aborted_rows.tolist()

    # Per-spec stacked passes.  FC-DPM batches its predictor scans and
    # then sweeps all rows in lockstep, one slot column per step.
    runs: dict[str, _StackedRun] = {}
    fc_specs: dict[str, dict] = {}
    initial_charge: dict[str, float] = {}
    for spec in specs:
        mgr = managers[spec]
        controller = mgr.controller
        initial_charge[spec] = mgr.source.storage.charge
        ctype = type(controller)
        if ctype is ASAPDPMController:
            runs[spec] = _run_asap_stacked(mgr, sp)
        elif ctype is FCDPMController:
            seeds0 = _fc_scan_seeds(mgr)
            feeds = getattr(mgr.policy, "predictor", None) is (
                controller.idle_length_predictor
            )
            idle_scan = None
            if controller.observes_idle or feeds:
                ipred = controller.idle_length_predictor
                if (
                    ipred.factor == predictor.factor
                    and ipred.estimate == predictor.estimate
                ):
                    # Standard wiring shares the probe policy's filter
                    # configuration -- reuse the decision scan rows.
                    idle_scan = (preds2d, idle_finals)
                else:
                    idle_scan = exponential_average_scan_batch(
                        ipred.factor, ipred.estimate, slots.t_idle2d, slots.counts
                    )
            apred = controller.active_length_predictor
            active_scan = exponential_average_scan_batch(
                apred.factor, seeds0[1], slots.t_active2d, slots.counts
            )
            runs[spec], state = _run_fc_stacked(
                mgr, sp, slots, seeds0, idle_scan, active_scan
            )
            fc_specs[spec] = {
                "seeds": seeds0,
                "feeds": feeds,
                "idle_scan": idle_scan,
                "active_scan": active_scan,
                "state": state,
            }
        else:
            cmd0 = (
                controller.model.if_max
                if ctype is ConvDPMController
                else controller.i_f
            )
            runs[spec] = _run_const_stacked(mgr, sp, float(cmd0))

    # Finish each run's assembly columns (totals + slot gathers,
    # per-slot columns converted to Python lists whole).
    finals: dict[str, dict] = {}
    for spec, run in runs.items():
        entry = {
            "fuel_rows": _row_totals(run.fuel_flat, sp),
            "delivered_rows": _row_totals(run.delivered_flat, sp),
            "slot_fuel": _slot_sums_flat(sp, run.fuel_flat).tolist(),
            "storage_end": run.charges.ravel()[flat_end_idx].tolist(),
        }
        if run.i_f_flat is not None:
            g_starts = g_bounds[:-1] - seg_base
            entry["if_idle"] = np.where(
                astart_local > g_starts,
                run.i_f_flat[np.maximum(flat.active_start - 1, 0)],
                0.0,
            ).tolist()
            entry["if_active"] = np.where(
                ends_local > astart_local, run.i_f_flat[g_bounds[1:] - 1], 0.0
            ).tolist()
        finals[spec] = entry

    if OBS.enabled:
        OBS.metrics.counter("sim.route", path="fast").inc(rows_n * len(specs))
        OBS.metrics.counter("sim.batch_rows_completed").inc(rows_n)
    if span is not None:
        total_cells = rows_n * sp.width if sp.width else 0
        padded = 1.0 - (int(sp.n_seg.sum()) / total_cells) if total_cells else 0.0
        span.set(
            route="stacked",
            rows=rows_n,
            padded_fraction=round(padded, 4),
            plan_stack_seconds=round(plan_seconds, 6),
            fallback_rows=0,
        )
        if OBS.enabled:
            OBS.metrics.counter("sim.batch_route", path="stacked").inc()
            OBS.metrics.gauge("sim.batch_padded_fraction").set(padded)
            OBS.metrics.histogram("sim.batch_plan_stack_s").observe(plan_seconds)

    def commit_probe_policy(row: int) -> None:
        """Leave the probe policy exactly as replaying ``row`` would."""
        n = counts_l[row]
        lo = int(slots.offsets[row])
        obs_row = slots.t_idle[lo : lo + n]
        preds_row = preds2d[row, :n]
        policy.predictor.commit_scan(obs_row, preds_row, float(idle_finals[row]))
        policy.last_prediction = float(preds_row[-1])
        policy._last_slept = bool(sleep2d[row, n - 1])
        policy.n_decisions += n
        policy.n_sleep_decisions += int(np.count_nonzero(sleep2d[row, :n]))

    def commit_manager(spec: str, row: int) -> None:
        """Commit one spec's manager to its state after ``row``."""
        mgr = managers[spec]
        run = runs[spec]
        entry = finals[spec]
        source = mgr.source
        fc = source.fc
        storage = source.storage
        n = n_seg_l[row]
        if n:
            if run.const_i_f is not None:
                fc._i_f = run.const_i_f
            else:
                last = int(sp.seg_offsets[row]) + n - 1
                fc._i_f = float(run.i_f_flat[last])
        total_fuel = float(entry["fuel_rows"][row])
        fc.tank._consumed = total_fuel
        storage._charge = float(run.charges[row, n])
        storage.bled_charge = float(run.bled[row])
        storage.deficit_charge = float(run.deficit[row])
        source.total_fuel = total_fuel
        source.total_load_charge = float(load_rows[row])
        source.total_time = float(dur_rows[row])
        source.total_delivered_charge = float(entry["delivered_rows"][row])
        if run.recharging is not None:
            mgr.controller._recharging = bool(run.recharging[row])

    def commit_fc_controller(spec: str, row: int) -> None:
        """Leave an FC controller exactly as replaying ``row`` would.

        ``mgr.reset`` wipes the shared probe-policy predictor when this
        spec owns it, so callers must run :func:`commit_probe_policy`
        *after* every FC commit.
        """
        info = fc_specs[spec]
        st = info["state"]
        mgr = managers[spec]
        mgr.reset(initial_charge[spec])
        controller = mgr.controller
        controller.start_run(mgr.source.storage.charge, mgr.source.storage.capacity)
        n = counts_l[row]
        lo = int(slots.offsets[row])
        ap2d, a_fin = info["active_scan"]
        idle_scan = info["idle_scan"]
        controller.commit_kernel_run(
            n,
            if_idle=float(st["if_idle_last"][row]),
            if_active=float(st["if_active_last"][row]),
            active_planned=bool(st["planned"][row]),
            active_current_sum=float(st["acs"][row]),
            active_current_n=st["acn0"] + n,
            solutions=_fc_row_solutions(st["sol2d"], row, n),
            n_guards=int(st["guards"][row]),
            active_commit=(
                slots.t_active[lo : lo + n],
                ap2d[row, :n],
                float(a_fin[row]),
            ),
            idle_commit=(
                (
                    slots.t_idle[lo : lo + n],
                    idle_scan[0][row, :n],
                    float(idle_scan[1][row]),
                )
                if controller.observes_idle
                else None
            ),
            frozen_idle_estimate=None if info["feeds"] else info["seeds"][0],
        )

    def commit_exit(row: int, raising_index: int | None) -> None:
        """Deferred end-state commits at the batch exit point.

        On success (``raising_index`` None) every spec gets ``row``.  On
        a deficit raise at (row, spec j), the serial loop had already
        run specs ``<= j`` on that row and specs ``> j`` only up to the
        previous one.
        """
        for i, spec in enumerate(specs):
            target = row if raising_index is None or i <= raising_index else row - 1
            if target < 0:
                continue  # fresh manager, untouched so far
            if spec in fc_specs:
                commit_fc_controller(spec, target)
            commit_manager(spec, target)
        commit_probe_policy(row)

    mdf = max_deficit_fraction
    results: dict[int, dict[str, SimulationResult]] = {}
    for r, seed in enumerate(seed_list):
        per_policy: dict[str, SimulationResult] = {}
        n_slots_r = counts_l[r]
        slo = slot_off_l[r]
        shi = slo + n_slots_r
        for i, spec in enumerate(specs):
            mgr = managers[spec]
            run = runs[spec]
            entry = finals[spec]
            deficit_r = float(run.deficit[r])
            load_r = float(load_rows[r])
            if deficit_r > load_r * mdf:
                commit_exit(r, i)
                raise SimulationError(
                    f"{mgr.name}: storage deficit "
                    f"{deficit_r:.2f} A-s exceeds "
                    f"{100 * mdf:.0f}% of load -- "
                    "the source is undersized for this workload"
                )
            if run.const_i_f is not None:
                if_idle_l = [run.const_i_f] * n_slots_r
                if_active_l = if_idle_l
            else:
                if_idle_l = entry["if_idle"][slo:shi]
                if_active_l = entry["if_active"][slo:shi]
            slot_results = list(
                map(
                    tuple.__new__,
                    _repeat(SlotResult),
                    zip(
                        range(n_slots_r),
                        slept_l[slo:shi],
                        aborted_l[slo:shi],
                        entry["slot_fuel"][slo:shi],
                        slot_loads_l[slo:shi],
                        if_idle_l,
                        if_active_l,
                        entry["storage_end"][slo:shi],
                    ),
                )
            )
            per_policy[mgr.name] = SimulationResult(
                name=mgr.name,
                fuel=float(entry["fuel_rows"][r]),
                load_charge=load_r,
                delivered_charge=float(entry["delivered_rows"][r]),
                duration=float(dur_rows[r]),
                bled=float(run.bled[r]),
                deficit=deficit_r,
                n_slots=n_slots_r,
                n_sleeps=sleeps_l[r],
                n_aborted_sleeps=aborted_rows_l[r],
                wakeup_latency=sleeps_l[r] * mgr.device.t_wu,
                slots=slot_results,
                recorder=None,
            )
        results[seed] = per_policy
    commit_exit(rows_n - 1, None)
    return results
