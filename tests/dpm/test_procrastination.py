"""Idle-aggregation (procrastination) tests."""

import pytest

from repro.core.manager import PowerManager
from repro.devices.camcorder import randomized_device_params
from repro.dpm.procrastination import procrastinate
from repro.errors import ConfigurationError
from repro.sim.slotsim import SlotSimulator
from repro.workload.trace import LoadTrace, TaskSlot


@pytest.fixture
def choppy_trace() -> LoadTrace:
    """Many small idle gaps, all below the Exp-2 break-even time."""
    return LoadTrace([TaskSlot(4.0, 2.0, 1.1)] * 24, name="choppy")


class TestTransformation:
    def test_preserves_totals(self, choppy_trace):
        merged, report = procrastinate(choppy_trace, max_defer=12.0)
        assert merged.active_time == pytest.approx(choppy_trace.active_time)
        assert merged.idle_time == pytest.approx(choppy_trace.idle_time)
        assert merged.duration == pytest.approx(choppy_trace.duration)

    def test_preserves_active_charge(self, choppy_trace):
        merged, _ = procrastinate(choppy_trace, max_defer=12.0)
        original = sum(s.active_charge for s in choppy_trace)
        assert sum(s.active_charge for s in merged) == pytest.approx(original)

    def test_merges_slots(self, choppy_trace):
        merged, report = procrastinate(choppy_trace, max_defer=12.0)
        assert len(merged) < len(choppy_trace)
        assert report.aggregation_factor > 1.5

    def test_zero_budget_is_identity(self, choppy_trace):
        merged, report = procrastinate(choppy_trace, max_defer=0.0)
        assert merged == choppy_trace
        assert report.aggregation_factor == pytest.approx(1.0)

    def test_budget_respected(self, choppy_trace):
        # With a 12 s budget, at most floor(12/4)+1 = 4 slots can merge.
        merged, _ = procrastinate(choppy_trace, max_defer=12.0)
        assert max(s.t_idle for s in merged) <= 16.0 + 1e-9

    def test_mixed_currents_averaged_correctly(self):
        trace = LoadTrace(
            [TaskSlot(3.0, 2.0, 1.0), TaskSlot(3.0, 4.0, 0.7)], name="mix"
        )
        merged, _ = procrastinate(trace, max_defer=10.0)
        assert len(merged) == 1
        slot = merged[0]
        assert slot.t_active == pytest.approx(6.0)
        assert slot.active_charge == pytest.approx(1.0 * 2 + 0.7 * 4)

    def test_rejects_negative_budget(self, choppy_trace):
        with pytest.raises(ConfigurationError):
            procrastinate(choppy_trace, max_defer=-1.0)

    def test_report_counts(self, choppy_trace):
        _, report = procrastinate(choppy_trace, max_defer=8.0)
        assert report.original_slots == 24
        assert report.merged_slots < 24


class TestFuelEffect:
    def test_aggregation_enables_sleep_and_saves_fuel(self, choppy_trace):
        """Refs [6, 7]'s point: merged idles clear the break-even time.

        The Exp-2 device (Tbe = 10 s) cannot sleep on 4 s gaps; after
        merging three-plus slots the 12+ s gaps host profitable sleeps
        and the whole-system fuel drops.
        """
        dev = randomized_device_params()

        def run(trace):
            mgr = PowerManager.fc_dpm(
                dev, storage_capacity=6.0, storage_initial=3.0,
                active_current_estimate=1.2,
            )
            return SlotSimulator(mgr).run(trace)

        baseline = run(choppy_trace)
        merged, _ = procrastinate(choppy_trace, max_defer=16.0)
        improved = run(merged)

        assert baseline.n_sleeps == 0            # gaps below break-even
        assert improved.n_sleeps > 0             # merged gaps clear it
        assert improved.fuel < baseline.fuel
