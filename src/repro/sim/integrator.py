"""Shared per-segment integration core for both trace simulators.

The slot-level simulator (:mod:`repro.sim.slotsim`) and the event-driven
simulator (:mod:`repro.sim.eventsim`) schedule work completely
differently -- closed-form slot iteration vs a calendar-queue engine --
and that independence is deliberate: their agreeing fuel totals is the
repository's strongest internal cross-check.  What they must *not* do is
re-implement the ledger math.  This module owns the single copy of

* the segment layout rules (how an idle period decomposes into
  standby / power-down / sleep / wake-up segments, and how STANDBY<->RUN
  overheads are absorbed into the active period -- the timeline
  convention documented in DESIGN.md), and
* the per-segment integration step (build the
  :class:`~repro.core.baselines.SegmentContext`, ask the controller for
  an output current, command the :class:`~repro.power.source.PowerSource`,
  integrate one interval, feed the recorder).

Each simulator decides *when* a segment executes; the
:class:`SegmentIntegrator` decides what executing it means.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from ..core.baselines import SegmentContext
from .recorder import Recorder, Sample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.manager import PowerManager
    from ..devices.device import DeviceParams
    from ..power.source import SourceStep
    from ..workload.trace import TaskSlot


#: Integer codes for :class:`Segment` kinds, shared with the vectorized
#: kernels (``repro.sim.vectorized`` / ``repro.sim.stacked``) so plan
#: columns round-trip through shared memory without string arrays.
KIND_CODES = {"standby": 0, "pd": 1, "sleep": 2, "wu": 3, "run": 4}
KIND_NAMES = ("standby", "pd", "sleep", "wu", "run")


class Segment(NamedTuple):
    """One constant-load interval of the simulated timeline.

    A ``NamedTuple`` rather than a frozen dataclass: simulators create
    one per planned segment (hundreds per trace), and tuple construction
    is several times cheaper than ``object.__setattr__``-based frozen
    init -- it is the planners' hottest allocation.
    """

    #: Segment length (s).
    duration: float
    #: Load current during the segment (A).
    i_load: float
    #: 'standby' | 'pd' | 'sleep' | 'wu' | 'run'.
    kind: str


# -- segment layout ---------------------------------------------------------


def plan_idle_segments(
    device: "DeviceParams", t_idle: float, sleep: bool, sleep_after: float
) -> tuple[list[Segment], bool, bool]:
    """Lay out one idle period; returns ``(segments, slept, aborted)``.

    A sleeping idle period is ``[standby dwell][power-down][sleep]
    [wake-up]`` summing to ``t_idle``; an idle period too short to host
    the committed sleep stays in STANDBY and counts as an aborted sleep.
    """
    if not sleep:
        return [Segment(t_idle, device.i_sdb, "standby")], False, False
    overhead = sleep_after + device.t_pd + device.t_wu
    if t_idle < overhead:
        # The idle period cannot host the committed sleep: the device
        # stays in STANDBY (counted as an aborted sleep).
        return [Segment(t_idle, device.i_sdb, "standby")], False, True
    segments = []
    if sleep_after > 0:
        segments.append(Segment(sleep_after, device.i_sdb, "standby"))
    segments.append(Segment(device.t_pd, device.i_pd, "pd"))
    dwell = t_idle - overhead
    if dwell > 0:
        segments.append(Segment(dwell, device.i_slp, "sleep"))
    segments.append(Segment(device.t_wu, device.i_wu, "wu"))
    return segments, True, False


def plan_active_segments(device: "DeviceParams", slot: "TaskSlot") -> list[Segment]:
    """The active period with STANDBY<->RUN overheads absorbed.

    The transitions run at the slot's active current, as the paper does
    (Section 3.3.2, assumption 2).
    """
    duration = device.t_sdb_to_run + slot.t_active + device.t_run_to_sdb
    return [Segment(duration, slot.i_active, "run")]


def chunk_segments(
    segments: list[Segment],
    max_segment: float | None,
    rel_tol: float = 1e-12,
) -> list[Segment]:
    """Split long segments into equal re-decision chunks (if configured).

    A duration within ``rel_tol`` (relative) of ``max_segment`` passes
    through unsplit: a duration a few ULP above the limit -- e.g. one
    produced by accumulated float arithmetic on a nominally equal slot
    -- would otherwise split into two chunks, one of them re-deciding
    after ~nothing.  No emitted chunk ever exceeds
    ``max_segment * (1 + rel_tol)``.
    """
    if max_segment is None:
        return segments
    limit = max_segment * (1.0 + rel_tol)
    out: list[Segment] = []
    for seg in segments:
        if seg.duration <= limit:
            out.append(seg)
            continue
        n = math.ceil(seg.duration / max_segment)
        chunk = seg.duration / n
        out.extend(Segment(chunk, seg.i_load, seg.kind) for _ in range(n))
    return out


def phase_totals(segments: list[Segment]) -> tuple[float, float]:
    """``(duration, load charge)`` of a phase -- the controller's lookahead."""
    return (
        sum(s.duration for s in segments),
        sum(s.duration * s.i_load for s in segments),
    )


def plan_slot_arrays(
    device: "DeviceParams",
    t_idle: np.ndarray,
    t_active: np.ndarray,
    i_active: np.ndarray,
    sleep: np.ndarray,
    sleep_after: np.ndarray,
    *,
    phase_context: bool = False,
) -> dict[str, "np.ndarray | None"]:
    """Array-native segment layout: all slots at once, one device.

    The vectorized twin of :func:`plan_idle_segments` /
    :func:`plan_active_segments` -- the layout rules live here so the
    scalar planners above and every array planner stay single-sourced.
    Emits exactly the rows the scalar planners produce: per-slot segment
    counts give the bounds by cumsum, each segment class (standby, pd,
    sleep dwell, wu, run) scatters into its column positions with one
    fancy assignment, and (when ``phase_context`` is set) the
    phase-lookahead columns come from masked running sums replaying the
    scalar's left-to-right accumulation order per slot, bit for bit.

    The slots need not come from one trace: ``simulate_batch``'s stacked
    route concatenates every seed's slots and plans the whole batch in
    one call -- the layout is slot-local, so per-seed plans are slices
    of the returned columns.

    Returns a dict with keys ``duration``, ``i_load``, ``kind``,
    ``phase_duration``, ``phase_demand`` (``None`` unless
    ``phase_context``), ``slot_bounds``, ``active_start``, ``slept``,
    ``aborted``.
    """
    n_slots = t_idle.shape[0]
    if n_slots == 0:
        empty = np.empty(0, dtype=float)
        return {
            "duration": empty,
            "i_load": empty.copy(),
            "kind": np.empty(0, dtype=np.int8),
            "phase_duration": empty.copy() if phase_context else None,
            "phase_demand": empty.copy() if phase_context else None,
            "slot_bounds": np.zeros(1, dtype=np.intp),
            "active_start": np.empty(0, dtype=np.intp),
            "slept": np.empty(0, dtype=bool),
            "aborted": np.empty(0, dtype=bool),
        }

    # Same left-assoc sum as plan_idle_segments' ``overhead``.
    overhead = (sleep_after + device.t_pd) + device.t_wu
    aborted = sleep & (t_idle < overhead)
    slept = sleep & ~aborted
    dwell = t_idle - overhead
    has_sa = slept & (sleep_after > 0)
    has_dwell = slept & (dwell > 0)
    sa_off = has_sa.astype(np.intp)

    # Sleeping idle: [standby?][pd][sleep?][wu]; otherwise one standby.
    n_idle = np.where(slept, (2 + sa_off) + has_dwell.astype(np.intp), 1)
    slot_bounds = np.empty(n_slots + 1, dtype=np.intp)
    slot_bounds[0] = 0
    np.cumsum(n_idle + 1, out=slot_bounds[1:])
    starts = slot_bounds[:-1]
    active_start = starts + n_idle
    n_total = int(slot_bounds[-1])

    duration = np.empty(n_total, dtype=float)
    i_load = np.empty(n_total, dtype=float)
    kind = np.empty(n_total, dtype=np.int8)

    standby = ~slept
    sb_idx = starts[standby]
    duration[sb_idx] = t_idle[standby]
    i_load[sb_idx] = device.i_sdb
    kind[sb_idx] = KIND_CODES["standby"]

    sa_idx = starts[has_sa]
    duration[sa_idx] = sleep_after[has_sa]
    i_load[sa_idx] = device.i_sdb
    kind[sa_idx] = KIND_CODES["standby"]

    pd_pos = starts + sa_off
    pd_idx = pd_pos[slept]
    duration[pd_idx] = device.t_pd
    i_load[pd_idx] = device.i_pd
    kind[pd_idx] = KIND_CODES["pd"]

    dw_idx = (pd_pos + 1)[has_dwell]
    duration[dw_idx] = dwell[has_dwell]
    i_load[dw_idx] = device.i_slp
    kind[dw_idx] = KIND_CODES["sleep"]

    wu_pos = active_start - 1
    wu_idx = wu_pos[slept]
    duration[wu_idx] = device.t_wu
    i_load[wu_idx] = device.i_wu
    kind[wu_idx] = KIND_CODES["wu"]

    run_dur = (device.t_sdb_to_run + t_active) + device.t_run_to_sdb
    duration[active_start] = run_dur
    i_load[active_start] = i_active
    kind[active_start] = KIND_CODES["run"]

    phase_dur = phase_dem = None
    if phase_context:
        phase_dur = np.empty(n_total, dtype=float)
        phase_dem = np.empty(n_total, dtype=float)
        # Single-segment phases: the lookahead is the segment itself.
        phase_dur[active_start] = run_dur
        phase_dem[active_start] = run_dur * i_active
        phase_dur[sb_idx] = t_idle[standby]
        phase_dem[sb_idx] = t_idle[standby] * device.i_sdb
        # Sleeping idle phases: masked running sums in component order
        # reproduce each slot's sequential accumulation exactly (the
        # fold only touches slots where the component is present, so
        # every per-slot partial matches the scalar's += sequence).
        components = (
            (has_sa, sleep_after, device.i_sdb, starts),
            (slept, device.t_pd, device.i_pd, pd_pos),
            (has_dwell, dwell, device.i_slp, pd_pos + 1),
            (slept, device.t_wu, device.i_wu, wu_pos),
        )
        total_d = 0.0
        total_q = 0.0
        for present, dur_c, load_c, _ in components:
            total_d = np.where(present, total_d + dur_c, total_d)
            total_q = np.where(present, total_q + dur_c * load_c, total_q)
        remaining = total_d
        demand = total_q
        for present, dur_c, load_c, positions in components:
            idx = positions[present]
            phase_dur[idx] = remaining[present]
            phase_dem[idx] = demand[present]
            remaining = np.where(present, remaining - dur_c, remaining)
            demand = np.where(present, demand - load_c * dur_c, demand)

    return {
        "duration": duration,
        "i_load": i_load,
        "kind": kind,
        "phase_duration": phase_dur,
        "phase_demand": phase_dem,
        "slot_bounds": slot_bounds,
        "active_start": active_start,
        "slept": slept,
        "aborted": aborted,
    }


# -- integration ------------------------------------------------------------


class SegmentIntegrator:
    """Executes segments against one manager's controller + power source.

    Owns the simulation clock (``t_now``), the optional
    :class:`~repro.sim.recorder.Recorder`, and the one copy of the
    controller-query / source-step sequence.  Simulators call
    :meth:`integrate` per segment in whatever order their scheduling
    produces; :meth:`run_phase` is the convenience loop for schedulers
    that execute a whole phase back to back.
    """

    def __init__(self, manager: "PowerManager", recorder: Recorder | None = None) -> None:
        self.manager = manager
        self.recorder = recorder
        self.t_now = 0.0

    def start_run(self) -> None:
        """Announce the run to the controller (records ``Cini(1)``)."""
        source = self.manager.source
        self.manager.controller.start_run(
            source.storage.charge, source.storage.capacity
        )

    def integrate(
        self,
        slot_index: int,
        phase: str,
        segment: Segment,
        phase_duration: float,
        phase_demand: float,
    ) -> "SourceStep":
        """Execute one segment: query the controller, step the source.

        ``phase_duration`` / ``phase_demand`` are the remaining time and
        load charge of the current phase *including* this segment.
        """
        mgr = self.manager
        source = mgr.source
        ctx = SegmentContext(
            slot_index=slot_index,
            phase=phase,
            kind=segment.kind,
            duration=segment.duration,
            i_load=segment.i_load,
            storage_charge=source.storage.charge,
            storage_capacity=source.storage.capacity,
            phase_duration=phase_duration,
            phase_demand=phase_demand,
        )
        source.set_fc_output(mgr.controller.output(ctx))
        step = source.step(segment.i_load, segment.duration)
        if self.recorder is not None:
            self.recorder.add(
                Sample(
                    t=self.t_now,
                    dt=segment.duration,
                    i_load=segment.i_load,
                    i_f=step.i_f,
                    i_fc=step.i_fc,
                    storage_charge=source.storage.charge,
                    fuel_cumulative=source.total_fuel,
                    kind=segment.kind,
                    source_kind=step.source_kind,
                    stack_currents=step.stack_currents,
                )
            )
        self.t_now += segment.duration
        return step

    def run_phase(
        self, slot_index: int, phase: str, segments: list[Segment]
    ) -> list["SourceStep"]:
        """Execute a whole phase back to back; returns the step records."""
        remaining, demand = phase_totals(segments)
        steps = []
        for seg in segments:
            steps.append(self.integrate(slot_index, phase, seg, remaining, demand))
            remaining -= seg.duration
            demand -= seg.i_load * seg.duration
        return steps
