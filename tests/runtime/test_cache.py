"""Unit tests for the on-disk result cache: key stability + invalidation."""

import pickle

from repro.runtime.cache import ResultCache, cache_key, code_fingerprint


class TestCacheKey:
    def test_stable_across_calls(self):
        assert cache_key("t2", {"seed": 1}) == cache_key("t2", {"seed": 1})

    def test_dict_order_does_not_matter(self):
        assert cache_key("x", {"a": 1, "b": 2}) == cache_key("x", {"b": 2, "a": 1})

    def test_config_change_invalidates(self):
        base = cache_key("table2", {"seed": 2007, "capacity": 6.0})
        assert cache_key("table2", {"seed": 2008, "capacity": 6.0}) != base
        assert cache_key("table2", {"seed": 2007, "capacity": 12.0}) != base

    def test_namespace_separates(self):
        assert cache_key("table2", {"seed": 1}) != cache_key("table3", {"seed": 1})

    def test_code_version_invalidates(self):
        real = cache_key("t", {"s": 1})
        other = cache_key("t", {"s": 1}, fingerprint="0" * 16)
        assert real != other

    def test_fingerprint_is_cached_and_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_fingerprint_covers_whole_tree(self, tmp_path):
        # Any added module under the root must change the fingerprint --
        # the "code version" invalidation covers the full package tree.
        pkg = tmp_path / "pkg"
        (pkg / "sub").mkdir(parents=True)
        (pkg / "a.py").write_text("A = 1\n")
        (pkg / "sub" / "b.py").write_text("B = 2\n")
        base = code_fingerprint(root=pkg)
        assert code_fingerprint(root=pkg) == base

        (pkg / "sub" / "c.py").write_text("C = 3\n")
        added = code_fingerprint(root=pkg)
        assert added != base

        (pkg / "sub" / "b.py").write_text("B = 99\n")
        assert code_fingerprint(root=pkg) != added

    def test_explicit_root_does_not_poison_default_cache(self, tmp_path):
        default = code_fingerprint()
        (tmp_path / "x.py").write_text("X = 1\n")
        assert code_fingerprint(root=tmp_path) != default
        assert code_fingerprint() == default


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", {"answer": 42})
        assert cache.get("k") == {"answer": 42}
        assert cache.contains("k")

    def test_miss_returns_default(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get("absent", default="nope") == "nope"
        assert cache.misses == 1

    def test_cached_computes_once(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return [1.0, 2.0]

        assert cache.cached("exp", {"seed": 0}, compute) == [1.0, 2.0]
        assert cache.cached("exp", {"seed": 0}, compute) == [1.0, 2.0]
        assert len(calls) == 1

    def test_cached_recomputes_on_param_change(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        calls = []
        for seed in (0, 1):
            cache.cached("exp", {"seed": seed}, lambda: calls.append(1) or seed)
        assert len(calls) == 2

    def test_disabled_cache_always_recomputes(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        calls = []
        for _ in range(2):
            cache.cached("exp", {}, lambda: calls.append(1) or 7)
        assert len(calls) == 2
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", 1)
        next(tmp_path.glob("*.pkl")).write_bytes(b"not a pickle")
        assert cache.get("k", default="fallback") == "fallback"

    def test_unwritable_root_is_silent(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        cache = ResultCache(root=target)
        cache.put("k", 1)  # must not raise
        assert cache.get("k") is None

    def test_unpicklable_value_is_silent(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", lambda: None)  # lambdas don't pickle; must not raise
        assert cache.get("k") is None

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert not cache.contains("a")
        assert cache.clear() == 0

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", list(range(1000)))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_values_survive_new_instance(self, tmp_path):
        ResultCache(root=tmp_path).put("k", "persisted")
        assert ResultCache(root=tmp_path).get("k") == "persisted"

    def test_entry_is_plain_pickle(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", {"v": 3})
        path = next(tmp_path.glob("*.pkl"))
        with path.open("rb") as fh:
            assert pickle.load(fh) == {"v": 3}
