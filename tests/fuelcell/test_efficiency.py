"""System-efficiency model tests: the paper's Eq. 1-4 layer."""

import numpy as np
import pytest

from repro.config import FCSystemConstants
from repro.errors import ConfigurationError, RangeError
from repro.fuelcell.controller import OnOffFanController, ProportionalFanController
from repro.fuelcell.efficiency import (
    ComposedSystemEfficiency,
    ConstantSystemEfficiency,
    LinearSystemEfficiency,
    StackEfficiency,
    TabulatedSystemEfficiency,
)
from repro.power.converter import PWMConverter, PWMPFMConverter


@pytest.fixture
def lin() -> LinearSystemEfficiency:
    return LinearSystemEfficiency()


class TestLinearModel:
    def test_paper_efficiency_values(self, lin):
        assert lin.efficiency(0.0) == pytest.approx(0.45)
        assert lin.efficiency(1.0) == pytest.approx(0.32)
        assert lin.efficiency(1.2) == pytest.approx(0.294)

    def test_k_fuel(self, lin):
        assert lin.k_fuel == pytest.approx(0.32)

    def test_fc_current_paper_examples(self, lin):
        # Section 3.2: IF = 0.2 -> Ifc ~ 0.15; IF = 1.2 -> Ifc ~ 1.3;
        # IF = 0.533 -> Ifc = 0.448.
        assert lin.fc_current(0.2) == pytest.approx(0.1509, abs=1e-3)
        assert lin.fc_current(1.2) == pytest.approx(1.306, abs=1e-2)
        assert lin.fc_current(16 / 30) == pytest.approx(0.448, abs=1e-3)

    def test_fc_current_zero(self, lin):
        assert lin.fc_current(0.0) == 0.0

    def test_fc_current_convex(self, lin):
        # Strict convexity: midpoint value below the chord.
        a, b = 0.2, 1.2
        mid = lin.fc_current((a + b) / 2)
        chord = (lin.fc_current(a) + lin.fc_current(b)) / 2
        assert mid < chord

    def test_fc_current_strictly_increasing(self, lin):
        grid = np.linspace(0.01, 1.2, 50)
        vals = [lin.fc_current(float(x)) for x in grid]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_derivative_matches_finite_difference(self, lin):
        for i_f in (0.15, 0.5, 1.1):
            h = 1e-7
            fd = (lin.fc_current(i_f + h) - lin.fc_current(i_f - h)) / (2 * h)
            assert lin.fc_current_derivative(i_f) == pytest.approx(fd, rel=1e-5)

    def test_inverse_roundtrip(self, lin):
        for i_f in (0.1, 0.53, 1.2):
            assert lin.inverse_fc_current(lin.fc_current(i_f)) == pytest.approx(i_f)

    def test_pole_rejected(self, lin):
        with pytest.raises(RangeError):
            lin.fc_current(0.45 / 0.13)  # alpha/beta pole

    def test_negative_rejected(self, lin):
        with pytest.raises(RangeError):
            lin.fc_current(-0.1)
        with pytest.raises(RangeError):
            lin.efficiency(-0.1)

    def test_clamp(self, lin):
        assert lin.clamp(0.01) == 0.1
        assert lin.clamp(2.0) == 1.2
        assert lin.clamp(0.7) == 0.7

    def test_in_range(self, lin):
        assert lin.in_range(0.1) and lin.in_range(1.2)
        assert not lin.in_range(0.09) and not lin.in_range(1.21)

    def test_fuel_charge(self, lin):
        assert lin.fuel_charge(16 / 30, 30.0) == pytest.approx(13.45, abs=0.01)

    def test_fuel_charge_rejects_negative_duration(self, lin):
        with pytest.raises(RangeError):
            lin.fuel_charge(0.5, -1.0)

    def test_from_constants(self):
        m = LinearSystemEfficiency.from_constants(FCSystemConstants())
        assert (m.alpha, m.beta) == (0.45, 0.13)
        assert (m.if_min, m.if_max) == (0.1, 1.2)

    def test_rejects_negative_efficiency_over_range(self):
        with pytest.raises(ConfigurationError):
            LinearSystemEfficiency(alpha=0.1, beta=0.13, if_max=1.2)

    def test_beta_zero_allowed(self):
        m = LinearSystemEfficiency(alpha=0.4, beta=0.0)
        # Linear fuel map: Ifc proportional to IF.
        assert m.fc_current(1.0) == pytest.approx(2 * m.fc_current(0.5))


class TestConstantModel:
    def test_flat(self):
        m = ConstantSystemEfficiency(eta=0.33)
        assert m.efficiency(0.1) == m.efficiency(1.2) == 0.33

    def test_fuel_map_is_linear(self):
        m = ConstantSystemEfficiency(eta=0.33)
        assert m.fc_current(1.0) == pytest.approx(2 * m.fc_current(0.5))

    def test_rejects_bad_eta(self):
        with pytest.raises(ConfigurationError):
            ConstantSystemEfficiency(eta=0.0)
        with pytest.raises(ConfigurationError):
            ConstantSystemEfficiency(eta=1.0)


class TestTabulatedModel:
    def test_interpolates(self):
        m = TabulatedSystemEfficiency([0.1, 1.2], [0.44, 0.29])
        assert m.efficiency(0.65) == pytest.approx((0.44 + 0.29) / 2)

    def test_clamps_outside_samples(self):
        m = TabulatedSystemEfficiency([0.1, 1.2], [0.44, 0.29])
        assert m.efficiency(0.05) == pytest.approx(0.44)
        assert m.efficiency(1.3) == pytest.approx(0.29)

    def test_rejects_decreasing_currents(self):
        with pytest.raises(ConfigurationError):
            TabulatedSystemEfficiency([1.2, 0.1], [0.3, 0.4])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            TabulatedSystemEfficiency([0.1, 0.5, 1.2], [0.4, 0.3])

    def test_rejects_out_of_unit_efficiency(self):
        with pytest.raises(ConfigurationError):
            TabulatedSystemEfficiency([0.1, 1.2], [0.4, 1.2])


class TestComposedModel:
    def test_decreasing_over_range(self):
        m = ComposedSystemEfficiency()
        etas = [m.efficiency(i) for i in (0.1, 0.4, 0.8, 1.2)]
        assert etas == sorted(etas, reverse=True)

    def test_fit_matches_paper_calibration(self):
        # The physically composed model should fit close to the paper's
        # measured alpha = 0.45, beta = 0.13.
        fit = ComposedSystemEfficiency().fit_linear()
        assert fit.alpha == pytest.approx(0.45, abs=0.04)
        assert fit.beta == pytest.approx(0.13, abs=0.04)

    def test_onoff_fan_flatter_than_proportional(self):
        # Fig. 3(c) is roughly constant; Fig. 3(b) has a clear slope.
        _, beta_prop = ComposedSystemEfficiency(
            converter=PWMPFMConverter(), controller=ProportionalFanController()
        ).fit_linear_coefficients()
        _, beta_onoff = ComposedSystemEfficiency(
            converter=PWMConverter(), controller=OnOffFanController()
        ).fit_linear_coefficients()
        assert beta_prop > abs(beta_onoff)

    def test_proportional_beats_onoff_at_light_load(self):
        prop = ComposedSystemEfficiency(
            converter=PWMPFMConverter(), controller=ProportionalFanController()
        )
        onoff = ComposedSystemEfficiency(
            converter=PWMConverter(), controller=OnOffFanController()
        )
        assert prop.efficiency(0.15) > onoff.efficiency(0.15)

    def test_zero_output(self):
        m = ComposedSystemEfficiency()
        assert m.efficiency(0.0) == 0.0

    def test_fc_current_increasing(self):
        m = ComposedSystemEfficiency()
        grid = np.linspace(0.1, 1.2, 12)
        vals = [m.fc_current(float(x)) for x in grid]
        assert all(b > a for a, b in zip(vals, vals[1:]))


class TestStackEfficiencyCurve:
    def test_above_system_efficiency(self):
        composed = ComposedSystemEfficiency()
        stack = StackEfficiency(composed)
        for i in (0.2, 0.6, 1.1):
            assert stack.efficiency(i) > composed.efficiency(i)

    def test_sweep_shape(self):
        composed = ComposedSystemEfficiency()
        i, eta = StackEfficiency(composed).sweep(n_points=30)
        assert len(i) == len(eta) == 30
        assert np.all(eta > 0)
