"""Hwang-Wu exponential-average predictor (paper ref [1], Eq. 14/15).

The paper's FC-DPM uses this filter for both the idle period,

    T'_i(k) = rho * T'_i(k-1) + (1 - rho) * T_i(k-1),

and (with factor ``sigma``) the active period.  It is the classic
single-pole low-pass estimator: cheap, smooth, and biased toward recent
history as the factor shrinks.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import Predictor


class ExponentialAveragePredictor(Predictor):
    """Single-pole exponential average of period lengths.

    Parameters
    ----------
    factor:
        Smoothing factor (``rho`` for idle, ``sigma`` for active in the
        paper; both 0.5 in the experiments).  ``factor = 0`` degenerates
        to last-value prediction, ``factor -> 1`` to a frozen estimate.
    initial:
        Prediction before any observation (``T'(0)``).
    """

    def __init__(self, factor: float = 0.5, initial: float = 0.0) -> None:
        super().__init__()
        if not 0 <= factor < 1:
            raise ConfigurationError("smoothing factor must be in [0, 1)")
        if initial < 0:
            raise ConfigurationError("initial estimate cannot be negative")
        self.factor = factor
        self._estimate = initial
        self._initial = initial

    @property
    def estimate(self) -> float:
        """Current internal estimate ``T'`` (s)."""
        return self._estimate

    def predict(self) -> float:
        return self._remember(self._estimate)

    def _update(self, actual: float) -> None:
        self._estimate = self.factor * self._estimate + (1 - self.factor) * actual

    def reset(self) -> None:
        super().reset()
        self._estimate = self._initial
