# Convenience targets for the FC-DPM reproduction.

PYTHON ?= python3

.PHONY: install test bench report export examples all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro.cli report

export:
	$(PYTHON) -m repro.cli export artifacts/

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

all: test bench examples
