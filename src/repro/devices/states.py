"""Power-state machine for DPM-enabled devices (paper Fig. 6, Table 1).

A DPM device exposes a small set of power states (the paper uses RUN,
STANDBY, SLEEP) connected by transitions that cost both time and energy.
The classic DPM quantity derived from these costs is the **break-even
time** ``Tbe``: the minimum idle-period length for which entering the
low-power state saves energy (Benini et al., paper ref [4]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigurationError, RangeError


class PowerState(Enum):
    """The paper's three device power modes."""

    RUN = "run"
    STANDBY = "standby"
    SLEEP = "sleep"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Transition:
    """A directed state transition with time and current overheads.

    Attributes
    ----------
    source, target:
        Endpoint states.
    delay:
        Transition latency (s) during which the device is unavailable.
    current:
        Load current drawn during the transition (A) on the 12 V rail.
    """

    source: PowerState
    target: PowerState
    delay: float
    current: float

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ConfigurationError("a transition must change state")
        if self.delay < 0 or self.current < 0:
            raise ConfigurationError("transition overheads must be non-negative")

    @property
    def charge(self) -> float:
        """Charge consumed by the transition (A-s)."""
        return self.current * self.delay


@dataclass
class PowerStateMachine:
    """States, their load currents, and the legal transitions.

    Parameters
    ----------
    state_currents:
        Load current (A) of each state.  RUN current is workload
        dependent; the value stored here is a default that task slots may
        override.
    transitions:
        Legal directed transitions.
    initial:
        Starting state.
    """

    state_currents: dict[PowerState, float]
    transitions: list[Transition] = field(default_factory=list)
    initial: PowerState = PowerState.STANDBY

    def __post_init__(self) -> None:
        for state, current in self.state_currents.items():
            if current < 0:
                raise ConfigurationError(f"{state} current cannot be negative")
        if self.initial not in self.state_currents:
            raise ConfigurationError("initial state must have a defined current")
        self._table: dict[tuple[PowerState, PowerState], Transition] = {}
        for t in self.transitions:
            key = (t.source, t.target)
            if key in self._table:
                raise ConfigurationError(f"duplicate transition {key}")
            if t.source not in self.state_currents or t.target not in self.state_currents:
                raise ConfigurationError(f"transition {key} references unknown state")
            self._table[key] = t
        self.state = self.initial

    # -- queries -----------------------------------------------------------

    def current_of(self, state: PowerState) -> float:
        """Steady-state load current (A) of ``state``."""
        try:
            return self.state_currents[state]
        except KeyError:
            raise RangeError(f"state {state} not defined") from None

    def transition(self, source: PowerState, target: PowerState) -> Transition:
        """The transition record from ``source`` to ``target``."""
        try:
            return self._table[(source, target)]
        except KeyError:
            raise RangeError(f"no transition {source} -> {target}") from None

    def can_transition(self, source: PowerState, target: PowerState) -> bool:
        """True if the machine defines a ``source -> target`` edge."""
        return (source, target) in self._table

    # -- dynamics -----------------------------------------------------------

    def move_to(self, target: PowerState) -> Transition:
        """Execute a transition from the present state; returns its record."""
        t = self.transition(self.state, target)
        self.state = target
        return t

    def reset(self) -> None:
        """Return to the initial state."""
        self.state = self.initial


def break_even_time(
    t_pd: float,
    t_wu: float,
    i_pd: float,
    i_wu: float,
    i_high: float,
    i_low: float,
) -> float:
    """DPM break-even time ``Tbe`` (Benini et al., ref [4]).

    The idle length at which sleeping (paying the power-down / wake-up
    overheads to sit at ``i_low``) costs exactly as much charge as
    staying at ``i_high``:

        Tbe = max(t_pd + t_wu,
                  (t_pd*(i_pd - i_low) + t_wu*(i_wu - i_low))
                  / (i_high - i_low))

    The first term enforces feasibility: an idle period shorter than the
    combined transition latency cannot host a sleep at all.  The paper
    uses the simplified ``Tbe = t_pd + t_wu`` when the transition current
    matches the standby current (Experiment 1) and quotes ``Tbe = 10 s``
    for Experiment 2's heavier overheads.
    """
    if min(t_pd, t_wu, i_pd, i_wu, i_high, i_low) < 0:
        raise ConfigurationError("break-even inputs must be non-negative")
    if i_high <= i_low:
        raise ConfigurationError(
            "high-power state must draw more than the low-power state"
        )
    latency_floor = t_pd + t_wu
    overhead_charge = t_pd * (i_pd - i_low) + t_wu * (i_wu - i_low)
    energy_floor = overhead_charge / (i_high - i_low)
    return max(latency_floor, energy_floor)
