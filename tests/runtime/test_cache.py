"""Unit tests for the on-disk result cache: key stability + invalidation."""

import pickle

from repro.runtime.cache import ResultCache, cache_key, code_fingerprint


class TestCacheKey:
    def test_stable_across_calls(self):
        assert cache_key("t2", {"seed": 1}) == cache_key("t2", {"seed": 1})

    def test_dict_order_does_not_matter(self):
        assert cache_key("x", {"a": 1, "b": 2}) == cache_key("x", {"b": 2, "a": 1})

    def test_config_change_invalidates(self):
        base = cache_key("table2", {"seed": 2007, "capacity": 6.0})
        assert cache_key("table2", {"seed": 2008, "capacity": 6.0}) != base
        assert cache_key("table2", {"seed": 2007, "capacity": 12.0}) != base

    def test_namespace_separates(self):
        assert cache_key("table2", {"seed": 1}) != cache_key("table3", {"seed": 1})

    def test_code_version_invalidates(self):
        real = cache_key("t", {"s": 1})
        other = cache_key("t", {"s": 1}, fingerprint="0" * 16)
        assert real != other

    def test_fingerprint_is_cached_and_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_fingerprint_covers_whole_tree(self, tmp_path):
        # Any added module under the root must change the fingerprint --
        # the "code version" invalidation covers the full package tree.
        pkg = tmp_path / "pkg"
        (pkg / "sub").mkdir(parents=True)
        (pkg / "a.py").write_text("A = 1\n")
        (pkg / "sub" / "b.py").write_text("B = 2\n")
        base = code_fingerprint(root=pkg)
        assert code_fingerprint(root=pkg) == base

        (pkg / "sub" / "c.py").write_text("C = 3\n")
        added = code_fingerprint(root=pkg)
        assert added != base

        (pkg / "sub" / "b.py").write_text("B = 99\n")
        assert code_fingerprint(root=pkg) != added

    def test_explicit_root_does_not_poison_default_cache(self, tmp_path):
        default = code_fingerprint()
        (tmp_path / "x.py").write_text("X = 1\n")
        assert code_fingerprint(root=tmp_path) != default
        assert code_fingerprint() == default


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", {"answer": 42})
        assert cache.get("k") == {"answer": 42}
        assert cache.contains("k")

    def test_miss_returns_default(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get("absent", default="nope") == "nope"
        assert cache.misses == 1

    def test_cached_computes_once(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return [1.0, 2.0]

        assert cache.cached("exp", {"seed": 0}, compute) == [1.0, 2.0]
        assert cache.cached("exp", {"seed": 0}, compute) == [1.0, 2.0]
        assert len(calls) == 1

    def test_cached_recomputes_on_param_change(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        calls = []
        for seed in (0, 1):
            cache.cached("exp", {"seed": seed}, lambda: calls.append(1) or seed)
        assert len(calls) == 2

    def test_disabled_cache_always_recomputes(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        calls = []
        for _ in range(2):
            cache.cached("exp", {}, lambda: calls.append(1) or 7)
        assert len(calls) == 2
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", 1)
        next(tmp_path.glob("*.pkl")).write_bytes(b"not a pickle")
        assert cache.get("k", default="fallback") == "fallback"

    def test_unwritable_root_is_silent(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        cache = ResultCache(root=target)
        cache.put("k", 1)  # must not raise
        assert cache.get("k") is None

    def test_unpicklable_value_is_silent(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", lambda: None)  # lambdas don't pickle; must not raise
        assert cache.get("k") is None

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert not cache.contains("a")
        assert cache.clear() == 0

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", list(range(1000)))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_values_survive_new_instance(self, tmp_path):
        ResultCache(root=tmp_path).put("k", "persisted")
        assert ResultCache(root=tmp_path).get("k") == "persisted"

    def test_entry_is_plain_pickle(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put("k", {"v": 3})
        path = next(tmp_path.glob("*.pkl"))
        with path.open("rb") as fh:
            assert pickle.load(fh) == {"v": 3}


class TestStore:
    def test_store_then_cached_hits(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.store("ns", {"seed": 1}, {"fuel": 2.0}, wall_s=0.5)
        assert cache.contains(key)
        # cached() must serve the stored value without recomputing.
        value = cache.cached("ns", {"seed": 1}, lambda: pytest_fail())
        assert value == {"fuel": 2.0}

    def test_store_writes_provenance_manifest(self, tmp_path):
        import json

        cache = ResultCache(root=tmp_path)
        key = cache.store("ns", {"seed": 1}, 42)
        manifest = json.loads((tmp_path / f"{key}.manifest.json").read_text())
        assert manifest["name"] == "ns"
        assert manifest["params"] == {"seed": 1}

    def test_disabled_store_returns_key_without_writing(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        key = cache.store("ns", {"seed": 1}, 42)
        assert key
        assert not any(tmp_path.glob("*.pkl"))


def pytest_fail():  # pragma: no cover - called only on a cache bug
    raise AssertionError("compute ran despite a stored value")


class TestStatsAndSelectiveClear:
    def _fill(self, cache):
        cache.store("exp/scenario", {"seed": 0}, {"fuel": 1.0})
        cache.store("exp/scenario", {"seed": 1}, {"fuel": 2.0})
        cache.store("sweep/beta", {"seed": 0}, 0.5)

    def test_stats_breaks_down_by_namespace(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        self._fill(cache)
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.bytes > 0
        assert stats.namespaces["exp/scenario"].entries == 2
        assert stats.namespaces["sweep/beta"].entries == 1
        assert stats.sidecar_files > 0
        assert stats.total_bytes == stats.bytes + stats.sidecar_bytes

    def test_stats_on_empty_cache(self, tmp_path):
        stats = ResultCache(root=tmp_path / "none").stats()
        assert stats.entries == 0 and stats.namespaces == {}

    def test_manifestless_entries_group_as_unknown(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.store("ns", {"seed": 1}, 42)
        (tmp_path / f"{key}.manifest.json").unlink()
        stats = cache.stats()
        assert stats.namespaces == {"(unknown)": stats.namespaces["(unknown)"]}

    def test_clear_namespace_leaves_others(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        self._fill(cache)
        removed = cache.clear(namespace="exp/scenario")
        assert removed == 2
        stats = cache.stats()
        assert "exp/scenario" not in stats.namespaces
        assert stats.namespaces["sweep/beta"].entries == 1

    def test_clear_namespace_removes_sidecars_too(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        self._fill(cache)
        cache.clear(namespace="exp/scenario")
        # No orphaned manifests: every remaining manifest has its pickle.
        for manifest in tmp_path.glob("*.manifest.json"):
            stem = manifest.name[: -len(".manifest.json")]
            assert (tmp_path / f"{stem}.pkl").exists()

    def test_full_clear_sweeps_orphans_and_tmp(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        self._fill(cache)
        # Orphan one manifest by deleting its pickle by hand, and drop a
        # stray temp file -- the historical leak cases.
        victim = next(tmp_path.glob("*.pkl"))
        victim.unlink()
        (tmp_path / "stray.tmp").write_text("x")
        cache.clear()
        assert list(tmp_path.glob("*.manifest.json")) == []
        assert list(tmp_path.glob("*.fp")) == []
        assert list(tmp_path.glob("*.tmp")) == []
