"""Battery-vs-FC load-shaping contrast tests (Section-1 claim)."""

import pytest

from repro.analysis.battery_contrast import (
    battery_shaping_cost,
    fc_shaping_cost,
    shaping_contrast,
)
from repro.errors import ConfigurationError
from repro.fuelcell.efficiency import ConstantSystemEfficiency


class TestBatteryShaping:
    def test_pulsed_wins_with_strong_recovery(self):
        cost = battery_shaping_cost(avg_current=0.6, duty=0.4)
        assert cost.prefers_pulsed

    def test_flat_at_rated_current_is_lossless(self):
        # Average at/below the rated current: flat pays no penalty.
        cost = battery_shaping_cost(avg_current=0.4, duty=0.5)
        assert cost.flat == pytest.approx(1.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            battery_shaping_cost(avg_current=0.6, duty=1.0)
        with pytest.raises(ConfigurationError):
            battery_shaping_cost(avg_current=0.0)


class TestFCShaping:
    def test_flat_always_wins(self):
        # Jensen on the convex fuel map: pulsing never helps the FC.
        for avg in (0.3, 0.6, 0.9):
            for duty in (0.3, 0.5, 0.7):
                cost = fc_shaping_cost(avg_current=avg, duty=duty)
                assert not cost.prefers_pulsed, (avg, duty)

    def test_constant_efficiency_makes_shaping_irrelevant(self):
        # With a flat efficiency law the fuel map is linear: costs equal
        # up to the range clamp.
        m = ConstantSystemEfficiency(eta=0.33)
        cost = fc_shaping_cost(avg_current=0.5, duty=0.5, model=m)
        assert cost.pulsed == pytest.approx(cost.flat, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fc_shaping_cost(avg_current=-1.0)
        with pytest.raises(ConfigurationError):
            fc_shaping_cost(avg_current=0.5, duty=0.0)


class TestHeadlineContrast:
    def test_preference_flips_between_sources(self):
        """The paper's Section-1 claim, quantified: the schedule a
        battery-aware policy produces is the one the FC punishes."""
        contrast = shaping_contrast()
        assert contrast["battery"].prefers_pulsed
        assert not contrast["fc"].prefers_pulsed
