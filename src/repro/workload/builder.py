"""Fluent trace construction for tests, examples and custom studies.

``LoadTrace`` is immutable by design; :class:`TraceBuilder` is the
ergonomic way to compose one: chain slot-appending calls, repeat blocks,
splice whole traces, then ``build()``.

Example::

    trace = (TraceBuilder("session")
             .slot(idle=12.0, active=3.0, current=1.2)
             .repeat(5)
             .burst(n=4, idle=2.0, active=1.0, current=0.9)
             .quiet(60.0)
             .build())
"""

from __future__ import annotations

from ..errors import ConfigurationError, TraceError
from .trace import LoadTrace, TaskSlot


class TraceBuilder:
    """Chainable builder of :class:`~repro.workload.trace.LoadTrace`."""

    def __init__(self, name: str = "built") -> None:
        self.name = name
        self._slots: list[TaskSlot] = []
        self._pending_idle = 0.0

    # -- composition -----------------------------------------------------------

    def slot(self, idle: float, active: float, current: float) -> "TraceBuilder":
        """Append one task slot (any pending quiet time extends its idle)."""
        self._slots.append(
            TaskSlot(idle + self._pending_idle, active, current)
        )
        self._pending_idle = 0.0
        return self

    def burst(
        self, n: int, idle: float, active: float, current: float
    ) -> "TraceBuilder":
        """Append ``n`` identical closely spaced slots."""
        if n < 1:
            raise ConfigurationError("burst needs at least one slot")
        for _ in range(n):
            self.slot(idle, active, current)
        return self

    def quiet(self, duration: float) -> "TraceBuilder":
        """Insert request-free time, absorbed into the next slot's idle."""
        if duration < 0:
            raise ConfigurationError("quiet time cannot be negative")
        self._pending_idle += duration
        return self

    def repeat(self, times: int) -> "TraceBuilder":
        """Repeat everything built so far ``times`` times total."""
        if times < 1:
            raise ConfigurationError("repeat count must be >= 1")
        if self._pending_idle:
            raise ConfigurationError("cannot repeat with pending quiet time")
        self._slots = self._slots * times
        return self

    def splice(self, trace: LoadTrace) -> "TraceBuilder":
        """Append every slot of an existing trace."""
        for s in trace:
            self.slot(s.t_idle, s.t_active, s.i_active)
        return self

    # -- finalization -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def build(self) -> LoadTrace:
        """Materialize the trace (pending quiet time is an error)."""
        if self._pending_idle:
            raise TraceError(
                "trailing quiet time has no following slot to attach to"
            )
        return LoadTrace(self._slots, name=self.name)
