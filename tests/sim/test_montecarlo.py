"""Monte-Carlo runner tests."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.montecarlo import SeedSummary, run_seeds, summarize


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize("x", [1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.n == 3
        assert s.stdev == pytest.approx(1.0)

    def test_single_sample(self):
        s = summarize("x", [5.0])
        assert s.stdev == 0.0
        assert s.ci95_halfwidth == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize("x", [])

    def test_ci_uses_t_distribution(self):
        s = summarize("x", [1.0, 2.0, 3.0])
        # n=3 -> df=2 -> t=4.303; halfwidth = 4.303 * 1 / sqrt(3).
        assert s.ci95_halfwidth == pytest.approx(4.303 / 3**0.5, rel=1e-3)
        lo, hi = s.ci95
        assert lo < s.mean < hi

    def test_large_n_falls_back_to_normal(self):
        s = summarize("x", [float(k % 7) for k in range(100)])
        assert s.ci95_halfwidth == pytest.approx(
            1.96 * s.stdev / 10.0, rel=1e-6
        )


class TestRunSeeds:
    def test_collects_metrics_across_seeds(self):
        def experiment(seed: int) -> dict[str, float]:
            return {"a": float(seed), "b": 2.0 * seed}

        out = run_seeds(experiment, [1, 2, 3])
        assert out["a"].mean == pytest.approx(2.0)
        assert out["b"].mean == pytest.approx(4.0)
        assert isinstance(out["a"], SeedSummary)

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            run_seeds(lambda s: {"a": 1.0}, [])

    def test_rejects_inconsistent_metrics(self):
        def experiment(seed: int) -> dict[str, float]:
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ConfigurationError):
            run_seeds(experiment, [0, 1])

    def test_metric_order_follows_first_run(self):
        """Summaries come back in the first run's insertion order."""

        def experiment(seed: int) -> dict[str, float]:
            return {"zeta": 1.0, "alpha": 2.0, "mid": float(seed)}

        out = run_seeds(experiment, [3, 1, 2])
        assert list(out) == ["zeta", "alpha", "mid"]

    def test_same_keys_in_different_order_accepted(self):
        def experiment(seed: int) -> dict[str, float]:
            if seed % 2:
                return {"b": 1.0, "a": 0.0}
            return {"a": 0.0, "b": 1.0}

        out = run_seeds(experiment, [0, 1, 2])
        assert list(out) == ["a", "b"]
        assert out["b"].n == 3


class TestTable2Stability:
    def test_headline_stable_across_seeds(self):
        """The key ordering must hold with tight spread over seeds."""
        from repro.sim.montecarlo import table2_metrics

        out = run_seeds(table2_metrics, range(4))
        assert out["fc-dpm"].maximum < out["asap-dpm"].minimum
        assert out["fc-dpm"].stdev < 0.02
        assert out["fc_saving_vs_asap"].minimum > 0.08
