"""Clairvoyant DPM policy: the offline lower bound.

Knows each idle period's true length (primed by the simulator) and
sleeps exactly when sleeping saves charge.  No online policy can beat it
on device energy, which makes it the reference point for predictor
ablations.
"""

from __future__ import annotations

from ..devices.device import DeviceParams
from ..errors import ConfigurationError
from .breakeven import sleep_saving
from .policy import DPMPolicy, IdleDecision


class OraclePolicy(DPMPolicy):
    """Sleeps iff the (revealed) idle period makes sleeping profitable."""

    def __init__(self, params: DeviceParams) -> None:
        super().__init__(params)
        self._next_idle: float | None = None

    def prime(self, t_idle: float) -> None:
        """Reveal the true length of the coming idle period."""
        if t_idle < 0:
            raise ConfigurationError("idle length cannot be negative")
        self._next_idle = t_idle

    def on_idle_start(self) -> IdleDecision:
        if self._next_idle is None:
            raise ConfigurationError("OraclePolicy.on_idle_start before prime()")
        t = self._next_idle
        self._next_idle = None
        return self._count(IdleDecision(sleep=sleep_saving(self.params, t) > 0))
