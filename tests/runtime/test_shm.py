"""Shared-memory array transport: lifecycle, fallback, and hygiene."""

import glob

import numpy as np
import pytest

from repro.runtime import shm as shm_mod
from repro.runtime.shm import (
    SHM_PREFIX,
    GroupHandle,
    SharedArrayStore,
    attach_group,
)


def _groups():
    return {
        "a": {
            "x": np.arange(5, dtype=float),
            "flags": np.array([True, False, True]),
        },
        "b": {"y": np.linspace(0.0, 1.0, 7)},
    }


def _assert_round_trip(handles):
    for key, group in _groups().items():
        attached = attach_group(handles[key])
        assert set(attached) == set(group)
        for name, arr in group.items():
            got = attached[name]
            assert got.dtype == arr.dtype
            assert got.shape == arr.shape
            assert np.array_equal(got, arr)


class TestSharedArrayStore:
    def test_round_trip_bytes_identical(self):
        store = SharedArrayStore.create(_groups())
        try:
            _assert_round_trip(store.handles)
        finally:
            store.dispose()

    def test_handles_pickle_small(self):
        import pickle

        store = SharedArrayStore.create(_groups())
        try:
            for handle in store.handles.values():
                if handle.segment is not None:
                    # The whole point: a handle is a name + spec table,
                    # orders of magnitude under the arrays it points at.
                    assert len(pickle.dumps(handle)) < 500
                    payload = pickle.loads(pickle.dumps(handle))
                    assert payload.segment == handle.segment
        finally:
            store.dispose()

    def test_shared_views_are_read_only(self):
        store = SharedArrayStore.create(_groups())
        try:
            handle = store.handles["a"]
            if handle.segment is None:
                pytest.skip("no shared memory on this host")
            attached = attach_group(handle)
            with pytest.raises((ValueError, RuntimeError)):
                attached["x"][0] = 99.0
        finally:
            store.dispose()

    def test_dispose_unlinks_segment(self):
        store = SharedArrayStore.create(_groups())
        names = {
            h.segment for h in store.handles.values() if h.segment is not None
        }
        store.dispose()
        for name in names:
            assert not glob.glob(f"/dev/shm/{name}")

    def test_dispose_is_idempotent(self):
        store = SharedArrayStore.create(_groups())
        store.dispose()
        store.dispose()

    def test_empty_groups(self):
        store = SharedArrayStore.create({})
        assert store.handles == {}
        store.dispose()

    def test_inline_fallback_when_shm_unavailable(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "_shared_memory", None)
        store = SharedArrayStore.create(_groups())
        try:
            assert all(h.segment is None for h in store.handles.values())
            assert all(h.inline is not None for h in store.handles.values())
            _assert_round_trip(store.handles)
        finally:
            store.dispose()

    def test_inline_fallback_on_segment_creation_failure(self, monkeypatch):
        class Exploding:
            def SharedMemory(self, *args, **kwargs):
                raise OSError("no /dev/shm here")

        monkeypatch.setattr(shm_mod, "_shared_memory", Exploding())
        store = SharedArrayStore.create(_groups())
        try:
            assert all(h.segment is None for h in store.handles.values())
            _assert_round_trip(store.handles)
        finally:
            store.dispose()

    def test_inline_handle_round_trip(self):
        arrays = {"z": np.arange(4, dtype=float)}
        handle = GroupHandle(None, None, dict(arrays))
        attached = attach_group(handle)
        assert np.array_equal(attached["z"], arrays["z"])

    def test_no_stale_segments_after_store_lifecycle(self):
        before = set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))
        for _ in range(3):
            store = SharedArrayStore.create(_groups())
            for handle in store.handles.values():
                attach_group(handle)
            store.dispose()
        assert set(glob.glob(f"/dev/shm/{SHM_PREFIX}*")) == before
