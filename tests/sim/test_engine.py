"""Discrete-event engine tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        e = Engine()
        log = []
        e.schedule(5.0, lambda: log.append("b"))
        e.schedule(1.0, lambda: log.append("a"))
        e.schedule(9.0, lambda: log.append("c"))
        e.run()
        assert log == ["a", "b", "c"]
        assert e.now == 9.0

    def test_priority_breaks_ties(self):
        e = Engine()
        log = []
        e.schedule(1.0, lambda: log.append("low"), priority=5)
        e.schedule(1.0, lambda: log.append("high"), priority=0)
        e.run()
        assert log == ["high", "low"]

    def test_fifo_among_equal_priority(self):
        e = Engine()
        log = []
        e.schedule(1.0, lambda: log.append(1))
        e.schedule(1.0, lambda: log.append(2))
        e.run()
        assert log == [1, 2]

    def test_schedule_from_action(self):
        e = Engine()
        log = []

        def first():
            log.append(("first", e.now))
            e.schedule(2.0, lambda: log.append(("second", e.now)))

        e.schedule(1.0, first)
        e.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_schedule_at_absolute(self):
        e = Engine()
        hits = []
        e.schedule_at(4.0, lambda: hits.append(e.now))
        e.run()
        assert hits == [4.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)


class TestRunControl:
    def test_run_until_stops_early(self):
        e = Engine()
        hits = []
        e.schedule(1.0, lambda: hits.append(1))
        e.schedule(10.0, lambda: hits.append(2))
        e.run(until=5.0)
        assert hits == [1]
        assert e.now == 5.0
        assert e.pending == 1

    def test_resume_after_until(self):
        e = Engine()
        hits = []
        e.schedule(10.0, lambda: hits.append(1))
        e.run(until=5.0)
        e.run()
        assert hits == [1]

    def test_cancelled_events_skipped(self):
        e = Engine()
        hits = []
        handle = e.schedule(1.0, lambda: hits.append(1))
        handle.cancel()
        e.run()
        assert hits == []
        assert e.n_dispatched == 0

    def test_peek_skips_cancelled(self):
        e = Engine()
        h = e.schedule(1.0, lambda: None)
        e.schedule(2.0, lambda: None)
        h.cancel()
        assert e.peek() == 2.0

    def test_peek_empty(self):
        assert Engine().peek() is None

    def test_reentrant_run_rejected(self):
        e = Engine()

        def recurse():
            e.run()

        e.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            e.run()

    def test_dispatch_count(self):
        e = Engine()
        for k in range(5):
            e.schedule(float(k), lambda: None)
        e.run()
        assert e.n_dispatched == 5
