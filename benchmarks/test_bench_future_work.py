"""Future-work benches: receding-horizon control and the battery contrast.

The DAC'07 paper plans one slot at a time and asserts (Section 1) that
battery-aware shaping does not transfer to FCs; these benches quantify
both statements.
"""

from repro.analysis.battery_contrast import shaping_contrast
from repro.analysis.experiments import mpc_comparison
from repro.analysis.report import format_table


def test_bench_receding_horizon(benchmark, emit):
    fuels = benchmark.pedantic(
        mpc_comparison, kwargs={"horizons": (1, 2, 4)}, rounds=1, iterations=1
    )
    rows = [["controller", "fuel (A-s)", "vs fc-dpm (%)"]]
    base = fuels["fc-dpm"]
    for name, fuel in fuels.items():
        rows.append([name, f"{fuel:.2f}", f"{100 * (fuel / base - 1):+.2f}"])
    emit(
        "future_mpc",
        "EXTENSION -- receding-horizon FC control vs per-slot FC-DPM\n"
        + format_table(rows)
        + "\nreading: relaxing the per-slot Cend = Cini constraint buys "
        "~1-2% fuel; the paper's simple policy is near-optimal.",
    )
    for h in (1, 2, 4):
        assert fuels[f"mpc-h{h}"] <= base * 1.01


def test_bench_battery_contrast(benchmark, emit):
    contrast = benchmark(shaping_contrast)
    rows = [["source", "flat cost", "pulsed cost", "prefers"]]
    for name, cost in contrast.items():
        rows.append(
            [name, f"{cost.flat:.3f}", f"{cost.pulsed:.3f}",
             "pulsed" if cost.prefers_pulsed else "flat"]
        )
    emit(
        "future_battery",
        "CLAIM CHECK -- battery-aware load shaping does not transfer to FCs\n"
        + format_table(rows)
        + "\nreading: recovery makes the battery prefer pulsed discharge; "
        "the FC's convex fuel map punishes exactly that schedule (paper "
        "Section 1's argument, quantified).",
    )
    assert contrast["battery"].prefers_pulsed
    assert not contrast["fc"].prefers_pulsed
