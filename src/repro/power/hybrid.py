"""The hybrid power source of paper Fig. 1: FC system + charge storage.

The charge storage element buffers the difference between the FC system
output ``IF`` and the embedded-system load ``Ild``:

* ``Ild < IF``  -- the surplus ``Ichg = IF - Ild`` charges the storage;
  if the storage is full the excess is dissipated in the bleeder by-pass
  (paper Section 3.3.1, "limited charge capacity" extreme case);
* ``Ild > IF``  -- the shortfall ``Idis = Ild - IF`` is discharged from
  the storage; an empty storage means the load is not met, which the
  simulator records as a brown-out deficit (a policy bug if it happens).

The class keeps a full ledger -- fuel burned, energy delivered, charge
bled, deficits -- so policies can be compared on exactly the quantities
the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import RangeError
from .storage import ChargeStorage, SuperCapacitor

if TYPE_CHECKING:  # avoid a circular import with repro.fuelcell at runtime
    from ..fuelcell.system import FCSystem


@dataclass(frozen=True)
class HybridStep:
    """Record of one constant-current interval of hybrid operation."""

    #: Interval length (s).
    dt: float
    #: Embedded-system load current (A).
    i_load: float
    #: FC system output current (A).
    i_f: float
    #: FC stack current (A) -- the fuel rate.
    i_fc: float
    #: Fuel consumed this interval (stack A-s).
    fuel: float
    #: Signed storage charge change actually applied (A-s).
    storage_delta: float
    #: Charge dissipated in the bleeder this interval (A-s).
    bled: float
    #: Unmet load charge this interval (A-s); nonzero means brown-out.
    deficit: float
    #: Storage charge after the interval (A-s).
    storage_charge: float


class HybridPowerSource:
    """FC system + charge storage, with conservation bookkeeping."""

    def __init__(
        self,
        fc: "FCSystem | None" = None,
        storage: ChargeStorage | None = None,
    ) -> None:
        if fc is None:
            from ..fuelcell.system import FCSystem

            fc = FCSystem.paper_system()
        self.fc = fc
        self.storage = (
            storage if storage is not None else SuperCapacitor(capacity=6.0)
        )
        self.total_fuel = 0.0
        self.total_load_charge = 0.0
        self.total_time = 0.0
        self.history: list[HybridStep] = []
        self.record_history = True

    # -- control -------------------------------------------------------------

    def set_fc_output(self, i_f: float, *, clamp: bool = True) -> float:
        """Command the FC system output current (delegates to the FC)."""
        return self.fc.set_output(i_f, clamp=clamp)

    # -- dynamics ------------------------------------------------------------

    def step(self, i_load: float, dt: float, *, strict_fuel: bool = True) -> HybridStep:
        """Advance ``dt`` seconds with constant load ``i_load`` (A).

        The FC holds its commanded output; the storage absorbs/sources
        the difference.  Returns the step ledger entry.
        """
        if i_load < 0:
            raise RangeError("load current cannot be negative")
        if dt < 0:
            raise RangeError("dt cannot be negative")

        i_f = self.fc.output_current
        i_fc = self.fc.fc_current()
        fuel = self.fc.run(dt, strict_fuel=strict_fuel)

        bled_before = self.storage.bled_charge
        deficit_before = self.storage.deficit_charge
        delta = self.storage.step(i_f - i_load, dt)
        bled = self.storage.bled_charge - bled_before
        deficit = self.storage.deficit_charge - deficit_before

        self.total_fuel += fuel
        self.total_load_charge += i_load * dt
        self.total_time += dt

        record = HybridStep(
            dt=dt,
            i_load=i_load,
            i_f=i_f,
            i_fc=i_fc,
            fuel=fuel,
            storage_delta=delta,
            bled=bled,
            deficit=deficit,
            storage_charge=self.storage.charge,
        )
        if self.record_history:
            self.history.append(record)
        return record

    # -- reporting -----------------------------------------------------------

    @property
    def delivered_energy(self) -> float:
        """Energy delivered to the load so far (J) at the regulated rail."""
        return self.fc.v_out * self.total_load_charge

    @property
    def average_fuel_rate(self) -> float:
        """Mean stack current over the run (A)."""
        if self.total_time == 0:
            return 0.0
        return self.total_fuel / self.total_time

    def reset(self, storage_charge: float = 0.0) -> None:
        """Reset ledgers, fuel tank and storage for a fresh run."""
        self.total_fuel = 0.0
        self.total_load_charge = 0.0
        self.total_time = 0.0
        self.history.clear()
        self.storage.reset(storage_charge)
        self.fc.tank.reset()
