"""Export every regenerated figure/table as CSV for external plotting.

``fcdpm export <directory>`` (or :func:`export_all`) writes one CSV per
paper artifact so any plotting tool can re-render the figures without
touching Python.
"""

from __future__ import annotations

import csv
import io
import pathlib

from ..errors import ConfigurationError
from .figures import (
    fig2_stack_iv_curve,
    fig3_efficiency_curves,
    fig4_motivational,
    fig7_current_profiles,
)
from .tables import table2, table3


def _write_csv(path: pathlib.Path, header: list[str], rows) -> None:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(header)
    for row in rows:
        writer.writerow(row)
    path.write_text(buf.getvalue())


def export_fig2(directory: pathlib.Path) -> pathlib.Path:
    """Fig 2 series: current, voltage, power."""
    data = fig2_stack_iv_curve()
    path = directory / "fig2_stack_iv.csv"
    _write_csv(
        path,
        ["i_fc_a", "v_fc_v", "p_w"],
        zip(data["current"], data["voltage"], data["power"]),
    )
    return path


def export_fig3(directory: pathlib.Path) -> pathlib.Path:
    """Fig 3 series: the three efficiency curves plus the linear fit."""
    data = fig3_efficiency_curves()
    path = directory / "fig3_efficiency.csv"
    _write_csv(
        path,
        ["i_f_a", "eta_stack", "eta_proportional", "eta_onoff", "eta_linear_fit"],
        zip(
            data["current"],
            data["stack"],
            data["proportional"],
            data["onoff"],
            data["linear_fit"],
        ),
    )
    return path


def export_fig4(directory: pathlib.Path) -> pathlib.Path:
    """Fig 4: the three schedules as stepwise segments."""
    result = fig4_motivational()
    path = directory / "fig4_settings.csv"
    rows = []
    for name, plan in result.plans.items():
        t = 0.0
        for seg in plan:
            rows.append([name, t, t + seg.duration, seg.i_f, seg.i_load])
            t += seg.duration
    _write_csv(path, ["setting", "t_start_s", "t_end_s", "i_f_a", "i_load_a"], rows)
    return path


def export_fig7(directory: pathlib.Path, seed: int = 2007) -> pathlib.Path:
    """Fig 7: step series of the three current profiles (first 300 s)."""
    profiles = fig7_current_profiles(seed=seed)
    path = directory / "fig7_profiles.csv"
    rows = []
    for key in ("load", "asap-dpm", "fc-dpm"):
        times, values = profiles[key]
        for k, value in enumerate(values):
            rows.append([key, times[k], times[k + 1], value])
    _write_csv(path, ["series", "t_start_s", "t_end_s", "current_a"], rows)
    return path


def export_tables(directory: pathlib.Path, seed: int = 2007) -> pathlib.Path:
    """Tables 2 and 3: measured vs paper normalized fuel."""
    path = directory / "tables_2_3.csv"
    rows = []
    for result in (table2(seed=seed), table3(seed=seed)):
        for policy in ("conv-dpm", "asap-dpm", "fc-dpm"):
            rows.append(
                [result.name, policy, result.normalized[policy],
                 result.paper[policy]]
            )
    _write_csv(path, ["table", "policy", "measured", "paper"], rows)
    return path


def export_manifest(
    directory: pathlib.Path, paths: list[pathlib.Path], seed: int, wall_s: float
) -> pathlib.Path:
    """Provenance manifest for an export run: code version, seed, files."""
    from ..obs import OBS, build_manifest

    manifest = build_manifest(
        "export",
        scenario=None,
        params={"files": sorted(p.name for p in paths), "seed": seed},
        seeds=[seed],
        workers=1,
        route="export",
        wall_s=wall_s,
        cpu_s=0.0,
        metrics=OBS.metrics.snapshot() if OBS.enabled else {},
    )
    return manifest.write(directory / "manifest.json")


def export_all(directory, seed: int = 2007) -> list[pathlib.Path]:
    """Write every artifact CSV into ``directory`` (created if needed).

    A ``manifest.json`` provenance record (code fingerprint, seed, file
    list) rides along so an export directory is self-describing.
    """
    import time

    out = pathlib.Path(directory)
    if out.exists() and not out.is_dir():
        raise ConfigurationError(f"{out} exists and is not a directory")
    out.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()
    paths = [
        export_fig2(out),
        export_fig3(out),
        export_fig4(out),
        export_fig7(out, seed=seed),
        export_tables(out, seed=seed),
    ]
    paths.append(
        export_manifest(out, paths, seed, time.perf_counter() - t0)
    )
    return paths
