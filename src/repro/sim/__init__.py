"""Simulation substrate: slot-level and event-driven trace simulators."""

from .recorder import Recorder, Sample
from .integrator import (
    Segment,
    SegmentIntegrator,
    chunk_segments,
    plan_active_segments,
    plan_idle_segments,
)
from .metrics import (
    RunMetrics,
    normalized_fuel,
    lifetime_extension,
    fuel_saving,
    compare,
)
from .slotsim import SlotSimulator, SimulationResult, SlotResult, simulate_policies
from .engine import Engine, Event
from .eventsim import EventDrivenSimulator
from .montecarlo import (
    SeedSummary,
    run_seeds,
    scenario_metrics,
    summarize,
    table2_metrics,
)
from .faults import DegradedEfficiency, FadedStorage, NoisyPredictor
from .lifetime import LifetimeResult, lifetime_comparison, run_until_empty
from .vectorized import (
    TraceArrays,
    clamped_cumsum,
    fast_path_ineligibility,
    plan_trace_arrays,
    simulate_batch,
    simulate_fast,
)

__all__ = [
    "Recorder",
    "Sample",
    "Segment",
    "SegmentIntegrator",
    "chunk_segments",
    "plan_active_segments",
    "plan_idle_segments",
    "RunMetrics",
    "normalized_fuel",
    "lifetime_extension",
    "fuel_saving",
    "compare",
    "SlotSimulator",
    "SimulationResult",
    "SlotResult",
    "simulate_policies",
    "Engine",
    "Event",
    "EventDrivenSimulator",
    "SeedSummary",
    "run_seeds",
    "scenario_metrics",
    "summarize",
    "table2_metrics",
    "DegradedEfficiency",
    "FadedStorage",
    "NoisyPredictor",
    "LifetimeResult",
    "lifetime_comparison",
    "run_until_empty",
    "TraceArrays",
    "clamped_cumsum",
    "fast_path_ineligibility",
    "plan_trace_arrays",
    "simulate_batch",
    "simulate_fast",
]
