"""FC balance-of-plant controller models.

The FC system's controller (paper Section 2.1) comprises a cathode air
blow fan, a cooling fan, a purge-valve solenoid, and a microcontroller,
all powered from the 12 V rail.  Its current draw ``Ictrl`` is overhead:
the useful system output is ``IF = Idc - Ictrl``.

Two configurations appear in the paper:

* **on-off (constant-speed) fan** -- the configuration of the authors'
  earlier DVS work [10, 11]; the cooling fan switches on above a load
  threshold, producing the step in Fig. 3(c) and a roughly *constant*
  system efficiency over the load-following range.
* **proportional (variable-speed) fan** -- this paper's configuration;
  fan speed (and hence controller current) scales with the load current,
  giving the higher, gently *decreasing* efficiency of Fig. 3(b) that
  the linear law ``eta_s = alpha - beta*IF`` captures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigurationError, RangeError


class FanController(ABC):
    """Controller current draw as a function of the system output current."""

    @abstractmethod
    def current(self, i_f: float) -> float:
        """Controller current ``Ictrl`` (A) at system output ``IF`` (A)."""


@dataclass(frozen=True)
class OnOffFanController(FanController):
    """Constant-speed fan switched on above a load threshold.

    Attributes
    ----------
    i_base:
        Always-on draw: microcontroller + air-blow fan (A).
    i_fan:
        Cooling-fan draw when on (A).
    threshold:
        System output current above which the cooling fan runs (A).
    """

    i_base: float = 0.055
    i_fan: float = 0.14
    threshold: float = 0.55

    def __post_init__(self) -> None:
        if min(self.i_base, self.i_fan, self.threshold) < 0:
            raise ConfigurationError("controller currents must be non-negative")

    def current(self, i_f: float) -> float:
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        return self.i_base + (self.i_fan if i_f > self.threshold else 0.0)


@dataclass(frozen=True)
class ProportionalFanController(FanController):
    """Variable-speed fan: fan *speed* tracks the load current.

    ``Ictrl = i_base + coeff * IF ** exponent``.  The paper drives fan
    speed proportionally to load current; aerodynamic fan power scales
    with the cube of speed, so the electrical draw is ~cubic in ``IF``.
    That is what makes this configuration nearly free at light load
    (Fig. 3(b) beats Fig. 3(c) most at low currents) while still paying a
    substantial overhead at full load.
    """

    i_base: float = 0.003
    coeff: float = 0.165
    exponent: float = 3.0

    def __post_init__(self) -> None:
        if min(self.i_base, self.coeff) < 0:
            raise ConfigurationError("controller parameters must be non-negative")
        if self.exponent < 1:
            raise ConfigurationError("fan-power exponent must be >= 1")

    def current(self, i_f: float) -> float:
        if i_f < 0:
            raise RangeError("system output current cannot be negative")
        return self.i_base + self.coeff * i_f**self.exponent
