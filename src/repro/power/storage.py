"""Charge-storage elements for the hybrid power source.

The hybrid source (paper Fig. 1) buffers the difference between the FC
system output ``IF`` and the embedded-system load ``Ild`` in a charge
storage element -- "either a Li-ion battery or a super capacitor".  The
paper's optimization assumes a lossless buffer (Section 3.3 assumption
2); :class:`SuperCapacitor` defaults to that ideal behaviour and exposes
loss knobs (coulombic efficiency, leakage) for ablation studies.
:class:`LiIonBattery` additionally models the rate-capacity effect and
charge recovery, the two non-linearities that battery-aware DPM work
exploits and that FCs lack (paper Section 1).

Sign convention: ``step(current, dt)`` with positive ``current`` charges
the element, negative discharges it.  All charge is in ampere-seconds
(coulombs) on the 12 V rail.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigurationError, StorageError
from ..obs import OBS


class ChargeStorage(ABC):
    """Abstract charge buffer with bounded capacity.

    Parameters
    ----------
    capacity:
        Usable charge capacity ``Cmax`` (A-s).
    initial_charge:
        Starting level ``Cini`` (A-s); defaults to empty.
    """

    def __init__(self, capacity: float, initial_charge: float = 0.0) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if not 0 <= initial_charge <= capacity:
            raise ConfigurationError("initial charge must lie in [0, capacity]")
        self.capacity = capacity
        self._charge = initial_charge
        #: Charge dissipated in the bleeder by-pass (overflow), A-s.
        self.bled_charge = 0.0
        #: Charge demanded but not available (underflow), A-s.
        self.deficit_charge = 0.0

    # -- state ----------------------------------------------------------------

    @property
    def charge(self) -> float:
        """Current stored charge (A-s)."""
        return self._charge

    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return self._charge / self.capacity

    @property
    def headroom(self) -> float:
        """Charge that can still be accepted (A-s)."""
        return self.capacity - self._charge

    def reset(self, charge: float = 0.0) -> None:
        """Reset to a given level and clear overflow/underflow counters."""
        if not 0 <= charge <= self.capacity:
            raise StorageError("reset level must lie in [0, capacity]")
        self._charge = charge
        self.bled_charge = 0.0
        self.deficit_charge = 0.0

    # -- dynamics ---------------------------------------------------------------

    @abstractmethod
    def step(self, current: float, dt: float, *, strict: bool = False) -> float:
        """Apply ``current`` (A, +charge / -discharge) for ``dt`` seconds.

        Returns the signed charge actually absorbed (+) or delivered (-).
        With ``strict=True`` overflow raises :class:`StorageError` (the
        paper instead dissipates excess in the bleeder by-pass, which is
        the default behaviour) and underflow always raises.
        """

    def _apply(self, delta: float, *, strict: bool) -> float:
        """Shared bounded-bucket bookkeeping used by concrete models.

        Clamp events (overflow -> bleed, underflow -> deficit) are the
        interesting telemetry; the in-bounds path stays instrumentation
        free so long unclamped runs pay nothing.
        """
        new = self._charge + delta
        if new > self.capacity:
            overflow = new - self.capacity
            if strict:
                raise StorageError(
                    f"overflow of {overflow:.4f} A-s (capacity {self.capacity} A-s)"
                )
            self.bled_charge += overflow
            absorbed = delta - overflow
            self._charge = self.capacity
            if OBS.enabled:
                OBS.metrics.counter("power.storage.clamps", kind="bleed").inc()
                OBS.metrics.counter("power.storage.bled_charge").inc(overflow)
            return absorbed
        if new < 0:
            shortfall = -new
            if strict:
                raise StorageError(
                    f"underflow of {shortfall:.4f} A-s (had {self._charge:.4f} A-s)"
                )
            self.deficit_charge += shortfall
            delivered = delta + shortfall  # = -self._charge
            self._charge = 0.0
            if OBS.enabled:
                OBS.metrics.counter("power.storage.clamps", kind="deficit").inc()
                OBS.metrics.counter("power.storage.deficit_charge").inc(shortfall)
            return delivered
        self._charge = new
        return delta


class IdealStorage(ChargeStorage):
    """Unbounded-in-practice lossless buffer (capacity set huge).

    Used by the unconstrained optimizer tests and as the "unlimited
    capacity" assumption of paper Section 3.3.1's first derivation.
    """

    def __init__(self, initial_charge: float = 0.0) -> None:
        super().__init__(capacity=1e12, initial_charge=initial_charge)

    def step(self, current: float, dt: float, *, strict: bool = False) -> float:
        if dt < 0:
            raise StorageError("dt cannot be negative")
        return self._apply(current * dt, strict=strict)


class SuperCapacitor(ChargeStorage):
    """Supercapacitor buffer (paper Exp. 1: 1 F ~ 100 mA-min @ 12 V).

    Defaults to the paper's lossless assumption.  Optional knobs:

    * ``coulombic_efficiency`` -- fraction of incoming charge retained;
    * ``leakage_current`` -- constant self-discharge (A).
    """

    def __init__(
        self,
        capacity: float,
        initial_charge: float = 0.0,
        coulombic_efficiency: float = 1.0,
        leakage_current: float = 0.0,
    ) -> None:
        super().__init__(capacity, initial_charge)
        if not 0 < coulombic_efficiency <= 1:
            raise ConfigurationError("coulombic efficiency must be in (0, 1]")
        if leakage_current < 0:
            raise ConfigurationError("leakage current cannot be negative")
        self.coulombic_efficiency = coulombic_efficiency
        self.leakage_current = leakage_current

    def step(self, current: float, dt: float, *, strict: bool = False) -> float:
        if dt < 0:
            raise StorageError("dt cannot be negative")
        delta = current * dt
        if delta > 0:
            delta *= self.coulombic_efficiency
        delta -= self.leakage_current * dt
        return self._apply(delta, strict=strict)


class LiIonBattery(ChargeStorage):
    """Li-ion buffer with rate-capacity and recovery effects.

    * **Rate-capacity** (Peukert-like): discharging at a rate above the
      nominal ``rated_current`` wastes charge -- delivering ``I*dt`` to
      the load removes ``(I / rated_current)**(peukert - 1)`` times more
      from the store.
    * **Recovery**: a fraction of that wasted charge is recoverable and
      trickles back during idle (zero-current or charging) intervals with
      time constant ``recovery_tau``.

    These are exactly the non-linearities the paper notes that fuel cells
    *lack* ("FCs have no recovery effect"), included so that
    battery-aware baselines can be compared against FC-aware ones.
    """

    def __init__(
        self,
        capacity: float,
        initial_charge: float = 0.0,
        rated_current: float = 0.5,
        peukert: float = 1.1,
        recovery_fraction: float = 0.5,
        recovery_tau: float = 60.0,
    ) -> None:
        super().__init__(capacity, initial_charge)
        if rated_current <= 0:
            raise ConfigurationError("rated current must be positive")
        if peukert < 1:
            raise ConfigurationError("Peukert exponent must be >= 1")
        if not 0 <= recovery_fraction <= 1:
            raise ConfigurationError("recovery fraction must be in [0, 1]")
        if recovery_tau <= 0:
            raise ConfigurationError("recovery time constant must be positive")
        self.rated_current = rated_current
        self.peukert = peukert
        self.recovery_fraction = recovery_fraction
        self.recovery_tau = recovery_tau
        self._recoverable = 0.0

    @property
    def recoverable_charge(self) -> float:
        """Charge parked in the recoverable pool (A-s)."""
        return self._recoverable

    def step(self, current: float, dt: float, *, strict: bool = False) -> float:
        import math

        if dt < 0:
            raise StorageError("dt cannot be negative")
        if current < 0:
            rate = -current
            factor = (
                (rate / self.rated_current) ** (self.peukert - 1.0)
                if rate > self.rated_current
                else 1.0
            )
            demanded = rate * dt
            drawn = demanded * factor
            wasted = drawn - demanded
            self._recoverable += wasted * self.recovery_fraction
            return self._apply(-drawn, strict=strict)
        # Idle or charging: part of the recoverable pool returns.
        if self._recoverable > 0:
            recovered = self._recoverable * (1.0 - math.exp(-dt / self.recovery_tau))
            self._recoverable -= recovered
            self._apply(recovered, strict=False)
        return self._apply(current * dt, strict=strict)
