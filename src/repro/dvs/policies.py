"""DVS speed-selection policies.

Three policies spanning the prior work's argument:

* :class:`NoDVSPolicy` -- full speed, race-to-idle.
* :class:`EnergyMinimalDVS` -- classic DVS: minimize the *device*
  charge of each frame (slowest feasible level under a convex power
  model).
* :class:`FuelAwareDVS` -- ref [10]'s message: minimize the *fuel* of
  each frame, accounting for the hybrid source (fuel-optimal FC setting
  with the real, finite storage).  With ample storage this provably
  coincides with :class:`EnergyMinimalDVS` (Jensen equality through the
  flat FC optimum); with a small buffer, peaky schedules get
  capacity-limited FC settings and the two diverge -- the test suite
  demonstrates both regimes.
* :class:`JointLevelDVS` -- ref [11]: the FC offers only discrete
  output levels; jointly pick the CPU level and the FC level pair.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..core.multilevel import solve_slot_discrete
from ..core.optimizer import solve_slot
from ..core.setting import SlotProblem, SlotSolution
from ..errors import ConfigurationError, InfeasibleError
from ..fuelcell.efficiency import SystemEfficiencyModel
from .cpu import CPULevel, CPUModel
from .tasks import Frame


@dataclass(frozen=True)
class FrameDecision:
    """Chosen operating point and FC plan for one frame."""

    level: CPULevel
    t_run: float
    t_idle: float
    i_run: float
    i_idle: float
    #: FC setting for the frame (None for device-only policies, filled
    #: by the simulator using the fuel-optimal setting).
    fc_plan: SlotSolution | None = None


class DVSPolicy(ABC):
    """Per-frame speed selection."""

    def __init__(self, cpu: CPUModel) -> None:
        self.cpu = cpu

    @abstractmethod
    def decide(self, frame: Frame, c_ini: float, c_target: float,
               c_max: float) -> FrameDecision:
        """Pick the operating point for ``frame`` given storage state."""

    def _decision(self, frame: Frame, level: CPULevel) -> FrameDecision:
        t_run = self.cpu.execution_time(frame.cycles, level)
        return FrameDecision(
            level=level,
            t_run=t_run,
            t_idle=frame.deadline - t_run,
            i_run=self.cpu.run_current(level),
            i_idle=self.cpu.idle_current,
        )

    def _feasible(self, frame: Frame) -> list[CPULevel]:
        levels = self.cpu.feasible_levels(frame.cycles, frame.deadline)
        if not levels:
            raise InfeasibleError(
                f"frame of {frame.cycles:.3f} Gcycles misses its "
                f"{frame.deadline:.3f} s deadline even at "
                f"{self.cpu.f_max:.2f} GHz"
            )
        return levels


class NoDVSPolicy(DVSPolicy):
    """Always full speed (race-to-idle)."""

    def decide(self, frame, c_ini, c_target, c_max) -> FrameDecision:
        return self._decision(frame, self._feasible(frame)[-1])


class EnergyMinimalDVS(DVSPolicy):
    """Minimize the frame's device charge (classic DVS objective)."""

    def decide(self, frame, c_ini, c_target, c_max) -> FrameDecision:
        best = min(
            self._feasible(frame),
            key=lambda lv: self.cpu.frame_charge(frame.cycles, frame.deadline, lv),
        )
        return self._decision(frame, best)


class FuelAwareDVS(DVSPolicy):
    """Minimize the frame's *fuel* under the hybrid source (ref [10]).

    For every feasible CPU level the policy solves the Section-3 slot
    problem (run period = active, slack = idle) against the real
    storage state and picks the level with the least fuel.  The
    difference from :class:`EnergyMinimalDVS` is precisely the storage
    capacity term: with ``c_max = inf`` the two always agree.
    """

    def __init__(self, cpu: CPUModel, model: SystemEfficiencyModel) -> None:
        super().__init__(cpu)
        self.model = model

    def _fc_problem(self, frame: Frame, level: CPULevel, c_ini: float,
                    c_target: float, c_max: float) -> SlotProblem:
        t_run = self.cpu.execution_time(frame.cycles, level)
        t_idle = frame.deadline - t_run
        return SlotProblem(
            t_idle=max(t_idle, 0.0),
            t_active=t_run,
            i_idle=self.cpu.idle_current,
            i_active=self.cpu.run_current(level),
            c_ini=c_ini,
            c_end=c_target,
            c_max=c_max,
        )

    def decide(self, frame, c_ini, c_target, c_max) -> FrameDecision:
        best_level: CPULevel | None = None
        best_plan: SlotSolution | None = None
        best_cost = float("inf")
        for level in self._feasible(frame):
            plan = solve_slot(
                self._fc_problem(frame, level, c_ini, c_target, c_max), self.model
            )
            # Deficits mean the source cannot carry this level: hard-reject.
            cost = plan.fuel if plan.deficit == 0 else float("inf")
            if cost < best_cost:
                best_cost = cost
                best_level = level
                best_plan = plan
        if best_level is None:
            raise InfeasibleError("no CPU level is feasible for the source")
        decision = self._decision(frame, best_level)
        return FrameDecision(
            level=decision.level,
            t_run=decision.t_run,
            t_idle=decision.t_idle,
            i_run=decision.i_run,
            i_idle=decision.i_idle,
            fc_plan=best_plan,
        )


class JointLevelDVS(FuelAwareDVS):
    """Joint CPU level + discrete FC level choice (ref [11]).

    Same search as :class:`FuelAwareDVS`, but the FC setting is
    restricted to a finite level lattice.
    """

    def __init__(
        self,
        cpu: CPUModel,
        model: SystemEfficiencyModel,
        fc_levels: tuple[float, ...],
    ) -> None:
        super().__init__(cpu, model)
        if len(fc_levels) < 2:
            raise ConfigurationError("need at least two FC levels")
        self.fc_levels = tuple(sorted(fc_levels))

    def decide(self, frame, c_ini, c_target, c_max) -> FrameDecision:
        best_level: CPULevel | None = None
        best_plan: SlotSolution | None = None
        best_cost = float("inf")
        for level in self._feasible(frame):
            problem = self._fc_problem(frame, level, c_ini, c_target, c_max)
            try:
                discrete = solve_slot_discrete(problem, self.model, self.fc_levels)
            except InfeasibleError:
                continue
            if discrete.solution.fuel < best_cost:
                best_cost = discrete.solution.fuel
                best_level = level
                best_plan = discrete.solution
        if best_level is None:
            raise InfeasibleError(
                "no (CPU level, FC level) combination carries this frame"
            )
        decision = self._decision(frame, best_level)
        return FrameDecision(
            level=decision.level,
            t_run=decision.t_run,
            t_idle=decision.t_idle,
            i_run=decision.i_run,
            i_idle=decision.i_idle,
            fc_plan=best_plan,
        )
