"""Predictor-protocol and trivial predictor tests."""

import pytest

from repro.errors import ConfigurationError, RangeError
from repro.prediction.base import (
    ConstantPredictor,
    LastValuePredictor,
    PerfectPredictor,
)


class TestConstantPredictor:
    def test_always_predicts_value(self):
        p = ConstantPredictor(1.2)
        p.observe(99.0)
        assert p.predict() == 1.2

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantPredictor(-1.0)

    def test_error_accounting(self):
        p = ConstantPredictor(10.0)
        p.predict()
        p.observe(8.0)
        p.predict()
        p.observe(14.0)
        assert p.n_scored == 2
        assert p.mean_absolute_error == pytest.approx(3.0)
        assert p.bias == pytest.approx(-1.0)

    def test_observe_without_predict_not_scored(self):
        p = ConstantPredictor(10.0)
        p.observe(5.0)
        assert p.n_scored == 0

    def test_observe_rejects_negative(self):
        with pytest.raises(RangeError):
            ConstantPredictor(1.0).observe(-1.0)

    def test_reset_clears_accounting(self):
        p = ConstantPredictor(10.0)
        p.predict()
        p.observe(5.0)
        p.reset()
        assert p.n_scored == 0
        assert p.mean_absolute_error == 0.0


class TestLastValuePredictor:
    def test_tracks_last_observation(self):
        p = LastValuePredictor(initial=3.0)
        assert p.predict() == 3.0
        p.observe(7.0)
        assert p.predict() == 7.0
        p.observe(2.0)
        assert p.predict() == 2.0

    def test_rejects_negative_initial(self):
        with pytest.raises(ConfigurationError):
            LastValuePredictor(initial=-1.0)


class TestPerfectPredictor:
    def test_predicts_primed_value(self):
        p = PerfectPredictor()
        p.prime(12.5)
        assert p.predict() == 12.5

    def test_predict_without_prime_rejected(self):
        with pytest.raises(ConfigurationError):
            PerfectPredictor().predict()

    def test_prime_consumed_by_observe(self):
        p = PerfectPredictor()
        p.prime(5.0)
        p.predict()
        p.observe(5.0)
        with pytest.raises(ConfigurationError):
            p.predict()

    def test_zero_error(self):
        p = PerfectPredictor()
        for v in (3.0, 8.0, 1.0):
            p.prime(v)
            p.predict()
            p.observe(v)
        assert p.mean_absolute_error == 0.0

    def test_prime_rejects_negative(self):
        with pytest.raises(RangeError):
            PerfectPredictor().prime(-1.0)
