"""Multi-device task-ordering tests (ref [7])."""

import pytest

from repro.devices.device import DeviceParams
from repro.devices.multidevice import (
    MultiDeviceTask,
    cluster_order,
    compare_orderings,
    evaluate_schedule,
)
from repro.errors import ConfigurationError, TraceError


def device(i_run=1.0, i_sdb=0.4, i_slp=0.05, t_pd=0.5, t_wu=0.5) -> DeviceParams:
    return DeviceParams(
        i_run=i_run, i_sdb=i_sdb, i_slp=i_slp, t_pd=t_pd, t_wu=t_wu,
        i_pd=i_sdb, i_wu=i_sdb,
    )


def task(name: str, duration: float, *devices: str) -> MultiDeviceTask:
    return MultiDeviceTask(name=name, duration=duration,
                           devices=frozenset(devices))


@pytest.fixture
def two_devices():
    return {"disk": device(), "net": device()}


#: Interleaved A/B usage: the worst case for idle aggregation.
INTERLEAVED = [
    task("a1", 3.0, "disk"),
    task("b1", 3.0, "net"),
    task("a2", 3.0, "disk"),
    task("b2", 3.0, "net"),
    task("a3", 3.0, "disk"),
    task("b3", 3.0, "net"),
]


class TestTaskValidation:
    def test_rejects_zero_duration(self):
        with pytest.raises(TraceError):
            task("x", 0.0, "disk")

    def test_rejects_empty_device_set(self):
        with pytest.raises(TraceError):
            MultiDeviceTask("x", 1.0, frozenset())


class TestClusterOrder:
    def test_groups_same_device_tasks(self):
        ordered = cluster_order(INTERLEAVED)
        names = [t.name for t in ordered]
        disk_positions = [i for i, n in enumerate(names) if n.startswith("a")]
        net_positions = [i for i, n in enumerate(names) if n.startswith("b")]
        # Each device's tasks must be contiguous.
        assert disk_positions == list(
            range(min(disk_positions), max(disk_positions) + 1)
        )
        assert net_positions == list(
            range(min(net_positions), max(net_positions) + 1)
        )

    def test_preserves_task_multiset(self):
        ordered = cluster_order(INTERLEAVED)
        assert sorted(t.name for t in ordered) == sorted(
            t.name for t in INTERLEAVED
        )

    def test_deterministic(self):
        assert [t.name for t in cluster_order(INTERLEAVED)] == [
            t.name for t in cluster_order(INTERLEAVED)
        ]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            cluster_order([])


class TestEvaluateSchedule:
    def test_busy_time_accounted(self, two_devices):
        result = evaluate_schedule(INTERLEAVED, two_devices)
        assert result.per_device["disk"].busy_time == pytest.approx(9.0)
        assert result.per_device["disk"].idle_time == pytest.approx(9.0)

    def test_unknown_device_rejected(self, two_devices):
        with pytest.raises(ConfigurationError):
            evaluate_schedule([task("x", 1.0, "gpu")], two_devices)

    def test_interleaving_fragments_idle(self, two_devices):
        fifo = evaluate_schedule(INTERLEAVED, two_devices)
        clustered = evaluate_schedule(cluster_order(INTERLEAVED), two_devices)
        assert (
            clustered.per_device["disk"].n_idle_gaps
            < fifo.per_device["disk"].n_idle_gaps
        )

    def test_shared_device_tasks(self):
        devices = {"disk": device(), "net": device()}
        tasks = [task("both", 4.0, "disk", "net"), task("d", 2.0, "disk")]
        result = evaluate_schedule(tasks, devices)
        assert result.per_device["disk"].busy_time == pytest.approx(6.0)
        assert result.per_device["net"].busy_time == pytest.approx(4.0)


class TestOrderingComparison:
    def test_clustering_saves_charge(self, two_devices):
        """Ref [7]'s result: clustered ordering merges 3 s gaps (below
        the ~1.5 s break-even they still sleep, but transition charge
        dominates) into one 9 s gap per device."""
        results = compare_orderings(INTERLEAVED, two_devices)
        assert results["clustered"].total_charge < results["fifo"].total_charge

    def test_clustering_increases_sleep_quality(self):
        # Use heavy transition overheads so short gaps cannot sleep.
        heavy = {"disk": device(t_pd=2.0, t_wu=2.0), "net": device(t_pd=2.0, t_wu=2.0)}
        results = compare_orderings(INTERLEAVED, heavy)
        fifo_sleeps = results["fifo"].total_sleeps
        clustered_sleeps = results["clustered"].total_sleeps
        assert clustered_sleeps >= fifo_sleeps
        assert clustered_sleeps > 0
        assert results["clustered"].total_charge < results["fifo"].total_charge

    def test_single_device_ordering_irrelevant(self):
        devices = {"disk": device()}
        tasks = [task("a", 2.0, "disk"), task("b", 3.0, "disk")]
        results = compare_orderings(tasks, devices)
        assert results["fifo"].total_charge == pytest.approx(
            results["clustered"].total_charge
        )
