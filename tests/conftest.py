"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import FCSystemConstants
from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params, randomized_device_params
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.workload.trace import LoadTrace, TaskSlot


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep the on-disk result cache out of the user's home during tests."""
    monkeypatch.setenv("FCDPM_CACHE_DIR", str(tmp_path / "fcdpm-cache"))


@pytest.fixture
def linear_model() -> LinearSystemEfficiency:
    """The paper's calibrated efficiency model (alpha=0.45, beta=0.13)."""
    return LinearSystemEfficiency.from_constants(FCSystemConstants())


@pytest.fixture
def camcorder_params():
    """Experiment-1 DVD camcorder device parameters."""
    return camcorder_device_params()


@pytest.fixture
def exp2_params():
    """Experiment-2 randomized-system device parameters."""
    return randomized_device_params()


@pytest.fixture
def small_trace() -> LoadTrace:
    """A tiny deterministic trace for fast policy tests."""
    return LoadTrace(
        [
            TaskSlot(t_idle=12.0, t_active=3.0, i_active=1.2),
            TaskSlot(t_idle=9.0, t_active=3.0, i_active=1.1),
            TaskSlot(t_idle=15.0, t_active=3.0, i_active=1.2),
            TaskSlot(t_idle=10.0, t_active=3.0, i_active=1.0),
            TaskSlot(t_idle=18.0, t_active=3.0, i_active=1.2),
        ],
        name="small",
    )


@pytest.fixture
def managers(camcorder_params):
    """The paper's three policy configurations over a 6 A-s supercap."""
    kwargs = {"storage_capacity": 6.0, "storage_initial": 3.0}
    return [
        PowerManager.conv_dpm(camcorder_params, **kwargs),
        PowerManager.asap_dpm(camcorder_params, **kwargs),
        PowerManager.fc_dpm(camcorder_params, **kwargs),
    ]
