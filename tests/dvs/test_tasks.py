"""Frame task-set tests."""

import pytest

from repro.dvs.tasks import Frame, FrameTaskSet, constant_frames, mpeg_frames
from repro.errors import ConfigurationError, TraceError


class TestFrame:
    def test_utilization(self):
        f = Frame(cycles=0.3, deadline=1.0)
        assert f.utilization(f_max=1.0) == pytest.approx(0.3)
        assert f.utilization(f_max=0.6) == pytest.approx(0.5)

    def test_rejects_bad_values(self):
        with pytest.raises(TraceError):
            Frame(cycles=0.0, deadline=1.0)
        with pytest.raises(TraceError):
            Frame(cycles=0.3, deadline=0.0)
        with pytest.raises(TraceError):
            Frame(cycles=0.3, deadline=1.0).utilization(0.0)


class TestFrameTaskSet:
    def test_sequence_protocol(self):
        frames = constant_frames(5, utilization=0.4)
        assert len(frames) == 5
        assert frames[0].cycles == pytest.approx(0.2)
        assert isinstance(frames[:2], FrameTaskSet)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            FrameTaskSet([])

    def test_duration(self):
        frames = constant_frames(4, utilization=0.4, deadline=0.5)
        assert frames.duration == pytest.approx(2.0)

    def test_feasibility(self):
        frames = constant_frames(3, utilization=0.9)
        assert frames.is_feasible(f_max=1.0)
        assert not frames.is_feasible(f_max=0.5)

    def test_equality(self):
        assert constant_frames(3, 0.4) == constant_frames(3, 0.4)


class TestMpegFrames:
    def test_deterministic(self):
        assert mpeg_frames(seed=1) == mpeg_frames(seed=1)
        assert mpeg_frames(seed=1) != mpeg_frames(seed=2)

    def test_all_feasible_at_full_speed(self):
        frames = mpeg_frames(n_frames=300, seed=3)
        assert frames.is_feasible(f_max=1.0)

    def test_mean_utilization_near_target(self):
        frames = mpeg_frames(n_frames=2000, mean_utilization=0.45, seed=4)
        utils = [f.utilization(1.0) for f in frames]
        mean = sum(utils) / len(utils)
        assert mean == pytest.approx(0.45, rel=0.15)

    def test_spread_exists(self):
        frames = mpeg_frames(n_frames=300, seed=5)
        utils = [f.utilization(1.0) for f in frames]
        assert max(utils) > 1.3 * min(utils)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            mpeg_frames(n_frames=0)
        with pytest.raises(ConfigurationError):
            mpeg_frames(mean_utilization=1.5)
        with pytest.raises(ConfigurationError):
            constant_frames(3, utilization=0.0)
