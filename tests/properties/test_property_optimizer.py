"""Property-based tests of the optimization framework (hypothesis)."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.optimizer import optimal_flat_current, solve_slot
from repro.core.setting import SlotProblem
from repro.fuelcell.efficiency import LinearSystemEfficiency

MODEL = LinearSystemEfficiency()

durations = st.floats(min_value=0.5, max_value=100.0, allow_nan=False)
currents = st.floats(min_value=0.0, max_value=1.4, allow_nan=False)
charges = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@st.composite
def slot_problems(draw):
    c_max = draw(st.floats(min_value=1.0, max_value=100.0))
    c_ini = draw(st.floats(min_value=0.0, max_value=1.0)) * c_max
    c_end = draw(st.floats(min_value=0.0, max_value=1.0)) * c_max
    return SlotProblem(
        t_idle=draw(durations),
        t_active=draw(durations),
        i_idle=draw(st.floats(min_value=0.0, max_value=0.6)),
        i_active=draw(currents),
        c_ini=c_ini,
        c_end=c_end,
        c_max=c_max,
    )


@st.composite
def balanced_in_range_problems(draw):
    """Self-balanced slots (Cend = Cini) with in-range load currents."""
    c_max = draw(st.floats(min_value=1.0, max_value=100.0))
    c_ini = draw(st.floats(min_value=0.0, max_value=1.0)) * c_max
    return SlotProblem(
        t_idle=draw(durations),
        t_active=draw(durations),
        i_idle=draw(st.floats(min_value=MODEL.if_min, max_value=0.6)),
        i_active=draw(st.floats(min_value=MODEL.if_min, max_value=MODEL.if_max)),
        c_ini=c_ini,
        c_end=c_ini,
        c_max=c_max,
    )


class TestFlatOptimum:
    @given(slot_problems())
    @settings(max_examples=200, deadline=None)
    def test_flat_value_non_negative(self, problem):
        assert optimal_flat_current(problem) >= 0.0

    @given(slot_problems())
    @settings(max_examples=200, deadline=None)
    def test_flat_satisfies_charge_balance(self, problem):
        flat = optimal_flat_current(problem)
        assume(flat > 0)
        supplied = flat * problem.total_time
        needed = problem.total_demand + problem.c_end - problem.c_ini
        assert supplied == pytest.approx(max(needed, 0.0), rel=1e-9, abs=1e-9)


class TestSolveSlotInvariants:
    @given(slot_problems())
    @settings(max_examples=200, deadline=None)
    def test_outputs_within_load_following_range(self, problem):
        s = solve_slot(problem, MODEL)
        assert MODEL.if_min - 1e-9 <= s.if_idle <= MODEL.if_max + 1e-9
        assert MODEL.if_min - 1e-9 <= s.if_active <= MODEL.if_max + 1e-9

    @given(slot_problems())
    @settings(max_examples=200, deadline=None)
    def test_storage_levels_physical(self, problem):
        s = solve_slot(problem, MODEL)
        assert -1e-6 <= s.c_after_slot <= problem.c_max + 1e-6
        assert s.bled >= 0 and s.deficit >= 0

    @given(slot_problems())
    @settings(max_examples=200, deadline=None)
    def test_fuel_positive_and_finite(self, problem):
        s = solve_slot(problem, MODEL)
        assert 0 < s.fuel < 1e6

    @given(balanced_in_range_problems())
    @settings(max_examples=150, deadline=None)
    def test_fuel_at_most_asap(self, problem):
        """The optimum never burns more than naive load-following.

        ASAP holds IF = Ild in each period; with a self-balanced slot
        (Cend = Cini) and in-range loads, ASAP is a feasible point of
        the same constraint set, so the optimum cannot be worse.
        """
        s = solve_slot(problem, MODEL)
        asap = (
            MODEL.fc_current(problem.i_idle) * problem.t_idle
            + MODEL.fc_current(problem.i_active) * problem.t_active_eff
        )
        assert s.fuel <= asap + 1e-6

    @given(slot_problems(), st.floats(min_value=1.01, max_value=3.0))
    @settings(max_examples=100, deadline=None)
    def test_fuel_monotone_in_capacity(self, problem, factor):
        """Loosening the storage capacity can only help.

        Only comparable when both solutions actually serve the load and
        meet the target: a range-clamped solution with a deficit delivers
        *less* charge and may spuriously burn less fuel.
        """
        import dataclasses

        tight = solve_slot(problem, MODEL)
        c_max = problem.c_max * factor
        loose_problem = dataclasses.replace(problem, c_max=c_max)
        loose = solve_slot(loose_problem, MODEL)
        assume(tight.deficit == 0 and loose.deficit == 0)
        assume(tight.bled == 0 and loose.bled == 0)
        assume(abs(tight.c_after_slot - problem.c_end) < 1e-6)
        assume(abs(loose.c_after_slot - problem.c_end) < 1e-6)
        assert loose.fuel <= tight.fuel + 1e-6

    @given(slot_problems())
    @settings(max_examples=200, deadline=None)
    def test_unconstrained_solution_is_flat(self, problem):
        flat = optimal_flat_current(problem)
        assume(MODEL.if_min <= flat <= MODEL.if_max)
        # And the idle surplus must fit the storage.
        c_mid = problem.c_ini + (flat - problem.i_idle) * problem.t_idle
        assume(0 <= c_mid <= problem.c_max)
        s = solve_slot(problem, MODEL)
        assert s.is_flat
