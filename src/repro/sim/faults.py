"""Failure injection: degrade components and watch policies cope.

Three fault families the hybrid source can realistically develop, each
implemented as a wrapper that the standard simulators accept unchanged:

* :class:`DegradedEfficiency` -- FC stack aging: the whole efficiency
  curve scales down by a health factor (membrane degradation,
  catalyst loss);
* :class:`FadedStorage` -- supercapacitor capacity fade: usable
  capacity shrinks mid-run at a configured time;
* :class:`NoisyPredictor` -- sensing corruption: observed period
  lengths reach the predictor with multiplicative noise and dropouts.

The fault-injection tests assert *graceful degradation*: fuel rises
smoothly with damage, conservation still holds, and FC-DPM keeps
beating the baselines under every fault.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..fuelcell.efficiency import SystemEfficiencyModel
from ..power.storage import ChargeStorage
from ..prediction.base import Predictor


class DegradedEfficiency(SystemEfficiencyModel):
    """Scale a base efficiency model by a health factor in (0, 1]."""

    def __init__(self, base: SystemEfficiencyModel, health: float) -> None:
        if not 0 < health <= 1:
            raise ConfigurationError("health must be in (0, 1]")
        super().__init__(
            v_out=base.v_out,
            zeta=base.zeta,
            if_min=base.if_min,
            if_max=base.if_max,
        )
        self.base = base
        self.health = health

    def efficiency(self, i_f: float) -> float:
        return self.health * self.base.efficiency(i_f)


class FadedStorage(ChargeStorage):
    """Storage whose capacity collapses to a fraction at ``fade_time``.

    Wraps any :class:`ChargeStorage`; before ``fade_time`` (measured in
    cumulative stepped seconds) behaves identically, after it the
    capacity is ``fade_factor * capacity`` and any excess charge is
    bled.
    """

    def __init__(
        self,
        inner: ChargeStorage,
        fade_time: float,
        fade_factor: float,
    ) -> None:
        if fade_time < 0:
            raise ConfigurationError("fade time cannot be negative")
        if not 0 < fade_factor <= 1:
            raise ConfigurationError("fade factor must be in (0, 1]")
        super().__init__(capacity=inner.capacity, initial_charge=inner.charge)
        self.inner = inner
        self.fade_time = fade_time
        self.fade_factor = fade_factor
        self._elapsed = 0.0
        self._faded = False

    def _maybe_fade(self) -> None:
        if not self._faded and self._elapsed >= self.fade_time:
            self._faded = True
            new_cap = self.inner.capacity * self.fade_factor
            if self.inner.charge > new_cap:
                self.inner.bled_charge += self.inner.charge - new_cap
                self.inner._charge = new_cap
            self.inner.capacity = new_cap
            self.capacity = new_cap

    def step(self, current: float, dt: float, *, strict: bool = False) -> float:
        self._elapsed += dt
        self._maybe_fade()
        delta = self.inner.step(current, dt, strict=strict)
        self._charge = self.inner.charge
        self.bled_charge = self.inner.bled_charge
        self.deficit_charge = self.inner.deficit_charge
        return delta

    @property
    def has_faded(self) -> bool:
        """True once the fade event fired."""
        return self._faded

    def reset(self, charge: float = 0.0) -> None:
        self.inner.reset(charge)
        super().reset(min(charge, self.capacity))
        self._elapsed = 0.0


class NoisyPredictor(Predictor):
    """Corrupt the observations feeding a base predictor.

    Each observed length is scaled by lognormal noise; with probability
    ``dropout`` the observation is lost entirely (the predictor never
    hears about that period).  Predictions pass through untouched --
    this models sensing/instrumentation faults, not estimator bugs.
    """

    def __init__(
        self,
        base: Predictor,
        sigma: float = 0.3,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if sigma < 0:
            raise ConfigurationError("noise sigma cannot be negative")
        if not 0 <= dropout < 1:
            raise ConfigurationError("dropout must be in [0, 1)")
        self.base = base
        self.sigma = sigma
        self.dropout = dropout
        self._rng = np.random.default_rng(seed)

    def predict(self) -> float:
        return self._remember(self.base.predict())

    def _update(self, actual: float) -> None:
        if self.dropout and self._rng.random() < self.dropout:
            return
        noisy = actual * float(np.exp(self._rng.normal(0.0, self.sigma)))
        self.base.observe(noisy)

    def reset(self) -> None:
        super().reset()
        self.base.reset()
