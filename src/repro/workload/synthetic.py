"""Synthetic slot generators: Experiment 2 and extra workload families.

Experiment 2 (paper Section 5.2) randomizes the camcorder profile:
idle ~ U[5, 25] s, active ~ U[2, 4] s, active power ~ U[12, 16] W.
The additional exponential / Pareto / bursty families are used by the
ablation and robustness studies (they stress the predictor in ways the
uniform workload cannot).
"""

from __future__ import annotations

import numpy as np

from ..config import Experiment2Constants
from ..errors import ConfigurationError
from .trace import LoadTrace, TaskSlot


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def uniform_slots(
    n_slots: int,
    idle_range: tuple[float, float],
    active_range: tuple[float, float],
    current_range: tuple[float, float],
    seed=0,
    name: str = "uniform",
) -> LoadTrace:
    """Slots with independently uniform idle/active lengths and currents."""
    if n_slots < 1:
        raise ConfigurationError("need at least one slot")
    for lo, hi in (idle_range, active_range, current_range):
        if not 0 <= lo <= hi:
            raise ConfigurationError("ranges must satisfy 0 <= low <= high")
    rng = _rng(seed)
    slots = [
        TaskSlot(
            t_idle=float(rng.uniform(*idle_range)),
            t_active=float(rng.uniform(*active_range)),
            i_active=float(rng.uniform(*current_range)),
        )
        for _ in range(n_slots)
    ]
    return LoadTrace(slots, name=name)


#: Extra SeedSequence word that keys the per-device fleet-jitter draw.
#: A dedicated stream (``[seed, _FLEET_STREAM]``) keeps the jitter
#: factor from consuming the slot stream: a fleet device's slots are
#: the same uniform draws as its homogeneous twin, just rescaled.
_FLEET_STREAM = 0x666C6565  # "flee"


def _fleet_scale(seed: int, jitter: float) -> float:
    """Deterministic per-device workload scale in ``[1-jitter, 1+jitter]``."""
    if jitter == 0.0:
        return 1.0
    u = np.random.default_rng([int(seed), _FLEET_STREAM]).uniform(-jitter, jitter)
    return 1.0 + float(u)


def uniform_slot_arrays(
    n_slots: int,
    idle_range: tuple[float, float],
    active_range: tuple[float, float],
    current_range: tuple[float, float],
    seeds,
    range_scales=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Multi-seed :func:`uniform_slots` as ``(rows, n_slots)`` value arrays.

    Returns ``(t_idle, t_active, i_active)``, row ``r`` bit-identical
    to the slot values of ``uniform_slots(..., seed=seeds[r])``: one
    bulk ``Generator.random`` call per seed replaces ``3 * n_slots``
    scalar ``uniform`` calls (``uniform(lo, hi)`` draws exactly
    ``lo + (hi - lo) * random()``, and the per-slot interleaving maps to
    stride-3 columns of the raw stream), then one vectorized affine
    transform per column family covers the whole batch.  This is the
    synthesis kernel behind ``Scenario.build_traces`` -- trace synthesis
    is the dominant per-seed cost of a batched sweep.

    ``range_scales`` (optional, one float per seed) scales all range
    bounds per row -- heterogeneous-fleet workloads; row ``r`` then
    matches ``uniform_slots`` called with every range bound multiplied
    by ``range_scales[r]``.
    """
    if n_slots < 1:
        raise ConfigurationError("need at least one slot")
    seed_list = [int(s) for s in seeds]
    rows = len(seed_list)
    if rows == 0:
        raise ConfigurationError("need at least one seed")
    scales = None
    if range_scales is not None:
        scales = np.asarray(range_scales, dtype=float)
        if scales.shape != (rows,):
            raise ConfigurationError("need one range scale per seed")
    for lo, hi in (idle_range, active_range, current_range):
        if not 0 <= lo <= hi:
            raise ConfigurationError("ranges must satisfy 0 <= low <= high")
        if scales is not None and (
            float((lo * scales).min()) < 0
            or bool((lo * scales > hi * scales).any())
        ):
            raise ConfigurationError("ranges must satisfy 0 <= low <= high")
    raw = np.empty((rows, 3 * n_slots), dtype=float)
    for r, seed in enumerate(seed_list):
        np.random.default_rng(seed).random(out=raw[r])
    out = []
    for k, (lo, hi) in enumerate((idle_range, active_range, current_range)):
        if scales is not None:
            lo = (lo * scales)[:, None]
            hi = (hi * scales)[:, None]
        out.append(lo + (hi - lo) * raw[:, k::3])
    return out[0], out[1], out[2]


def uniform_slots_batch(
    n_slots: int,
    idle_range: tuple[float, float],
    active_range: tuple[float, float],
    current_range: tuple[float, float],
    seeds,
    name: str = "uniform",
    range_scales=None,
) -> dict[int, LoadTrace]:
    """Multi-seed :func:`uniform_slots`: ``{seed: LoadTrace}`` in one pass.

    Values come from :func:`uniform_slot_arrays`, so every trace equals
    its per-seed ``uniform_slots`` twin exactly.
    """
    seed_list = [int(s) for s in seeds]
    t_idle, t_active, i_active = uniform_slot_arrays(
        n_slots, idle_range, active_range, current_range, seed_list,
        range_scales=range_scales,
    )
    traces: dict[int, LoadTrace] = {}
    for r, seed in enumerate(seed_list):
        slots = [
            TaskSlot(t_idle=ti, t_active=ta, i_active=ia)
            for ti, ta, ia in zip(
                t_idle[r].tolist(), t_active[r].tolist(), i_active[r].tolist()
            )
        ]
        traces[seed] = LoadTrace(slots, name=name)
    return traces


def experiment2_trace(
    constants: Experiment2Constants | None = None,
    seed: int = 2007,
    n_slots: int | None = None,
    v_rail: float = 12.0,
) -> LoadTrace:
    """The paper's Experiment-2 randomized workload.

    Idle U[5, 25] s, active U[2, 4] s, active power U[12, 16] W on the
    12 V rail (currents 1.0-1.333 A).
    """
    e = constants if constants is not None else Experiment2Constants()
    n = e.n_slots if n_slots is None else n_slots
    return uniform_slots(
        n_slots=n,
        idle_range=(e.idle_low, e.idle_high),
        active_range=(e.active_low, e.active_high),
        current_range=(e.p_active_low / v_rail, e.p_active_high / v_rail),
        seed=seed,
        name="experiment2",
    )


def experiment2_slot_arrays(
    seeds,
    constants: Experiment2Constants | None = None,
    n_slots: int | None = None,
    v_rail: float = 12.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`experiment2_trace` slot values (see
    :func:`uniform_slot_arrays`); row ``r`` equals the slots of
    ``experiment2_trace(seed=seeds[r])`` bit for bit."""
    e = constants if constants is not None else Experiment2Constants()
    n = e.n_slots if n_slots is None else n_slots
    return uniform_slot_arrays(
        n_slots=n,
        idle_range=(e.idle_low, e.idle_high),
        active_range=(e.active_low, e.active_high),
        current_range=(e.p_active_low / v_rail, e.p_active_high / v_rail),
        seeds=seeds,
    )


def fleet_slot_arrays(
    seeds,
    constants: Experiment2Constants | None = None,
    n_slots: int | None = None,
    v_rail: float = 12.0,
    jitter: float = 0.25,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`fleet_trace` slot values; row ``r`` equals the
    slots of ``fleet_trace(seed=seeds[r], jitter=jitter)`` bit for bit."""
    if not 0 <= jitter < 1:
        raise ConfigurationError("fleet jitter must be in [0, 1)")
    e = constants if constants is not None else Experiment2Constants()
    n = e.n_slots if n_slots is None else n_slots
    scales = np.array([_fleet_scale(s, jitter) for s in seeds], dtype=float)
    return uniform_slot_arrays(
        n_slots=n,
        idle_range=(e.idle_low, e.idle_high),
        active_range=(e.active_low, e.active_high),
        current_range=(e.p_active_low / v_rail, e.p_active_high / v_rail),
        seeds=seeds,
        range_scales=scales,
    )


def fleet_trace(
    constants: Experiment2Constants | None = None,
    seed: int = 2007,
    n_slots: int | None = None,
    v_rail: float = 12.0,
    jitter: float = 0.25,
) -> LoadTrace:
    """One heterogeneous-fleet device: jittered Experiment-2 workload.

    A fleet device is the Experiment-2 randomized camcorder with every
    range bound scaled by a deterministic per-device factor in
    ``[1 - jitter, 1 + jitter]`` (drawn from a dedicated seed-offset
    stream, so the slot draws themselves stay aligned with the
    homogeneous workload).  Devices with small factors are light,
    bursty loads; large factors are heavy ones -- the spread the fleet
    aggregate fuel/deficit distributions measure.
    """
    if not 0 <= jitter < 1:
        raise ConfigurationError("fleet jitter must be in [0, 1)")
    e = constants if constants is not None else Experiment2Constants()
    n = e.n_slots if n_slots is None else n_slots
    f = _fleet_scale(seed, jitter)
    return uniform_slots(
        n_slots=n,
        idle_range=(e.idle_low * f, e.idle_high * f),
        active_range=(e.active_low * f, e.active_high * f),
        current_range=(e.p_active_low / v_rail * f, e.p_active_high / v_rail * f),
        seed=seed,
        name="fleet",
    )


def exponential_slots(
    n_slots: int,
    mean_idle: float,
    mean_active: float,
    i_active: float,
    min_active: float = 0.1,
    seed=0,
    name: str = "exponential",
) -> LoadTrace:
    """Memoryless (Poisson-arrival-like) idle and active periods.

    The exponential-average predictor is unbiased but high-variance on
    this family -- a classic DPM stress case.
    """
    if min(mean_idle, mean_active, i_active) <= 0:
        raise ConfigurationError("means and current must be positive")
    rng = _rng(seed)
    slots = [
        TaskSlot(
            t_idle=float(rng.exponential(mean_idle)),
            t_active=float(max(rng.exponential(mean_active), min_active)),
            i_active=i_active,
        )
        for _ in range(n_slots)
    ]
    return LoadTrace(slots, name=name)


def pareto_slots(
    n_slots: int,
    idle_scale: float,
    idle_shape: float,
    t_active: float,
    i_active: float,
    idle_cap: float | None = None,
    seed=0,
    name: str = "pareto",
) -> LoadTrace:
    """Heavy-tailed idle periods (Pareto), fixed active periods.

    Heavy tails reward aggressive sleeping on the long idles while
    punishing mispredicted short ones.
    """
    if idle_shape <= 0 or idle_scale <= 0:
        raise ConfigurationError("Pareto scale and shape must be positive")
    if t_active <= 0 or i_active < 0:
        raise ConfigurationError("bad active parameters")
    rng = _rng(seed)
    slots = []
    for _ in range(n_slots):
        t_idle = idle_scale * float(1.0 + rng.pareto(idle_shape))
        if idle_cap is not None:
            t_idle = min(t_idle, idle_cap)
        slots.append(TaskSlot(t_idle, t_active, i_active))
    return LoadTrace(slots, name=name)


def bursty_slots(
    n_bursts: int,
    burst_length: int,
    idle_in_burst: float,
    idle_between_bursts: float,
    t_active: float,
    i_active: float,
    jitter: float = 0.1,
    seed=0,
    name: str = "bursty",
) -> LoadTrace:
    """Alternating dense bursts and long quiet gaps.

    Models interactive devices: rapid task arrivals during use, long
    idle stretches between sessions.  Exercises the aggregation
    argument of DPM refs [6, 7].
    """
    if n_bursts < 1 or burst_length < 1:
        raise ConfigurationError("need at least one burst with one slot")
    if min(idle_in_burst, idle_between_bursts, t_active) <= 0 or i_active < 0:
        raise ConfigurationError("bad burst parameters")
    if not 0 <= jitter < 1:
        raise ConfigurationError("jitter must be in [0, 1)")
    rng = _rng(seed)

    def jittered(x: float) -> float:
        return float(x * (1.0 + rng.uniform(-jitter, jitter)))

    slots = []
    for b in range(n_bursts):
        for k in range(burst_length):
            first = b > 0 and k == 0
            base = idle_between_bursts if first else idle_in_burst
            slots.append(TaskSlot(jittered(base), jittered(t_active), i_active))
    return LoadTrace(slots, name=name)
