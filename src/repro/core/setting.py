"""Problem/solution records for the FC output-setting optimization.

:class:`SlotProblem` captures one task slot exactly as Section 3 of the
paper poses it -- idle and active durations, load currents, storage
state and target, optional sleep-transition overheads.
:class:`SlotSolution` is the solver's answer with full diagnostics.
:class:`FCOutputPlan` is a piecewise-constant FC output schedule usable
directly by figures and fuel accounting (paper Fig. 4 / Fig. 7 material).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..fuelcell.efficiency import SystemEfficiencyModel


@dataclass(frozen=True)
class SlotProblem:
    """One task slot's fuel-optimal output-setting problem (Section 3.3).

    Attributes
    ----------
    t_idle, t_active:
        Idle / active period lengths ``Ti``, ``Ta`` (s).
    i_idle, i_active:
        Load currents ``Ild,i``, ``Ild,a`` (A).  ``i_idle`` is ``Isdb``
        or ``Islp`` depending on the DPM decision.
    c_ini:
        Storage charge at slot start (A-s).
    c_end:
        Target storage charge at slot end (A-s); the paper keeps
        ``Cend = Cini(1)`` for stability (Section 3.3.1).
    c_max:
        Storage capacity (A-s); ``inf`` recovers the unconstrained case.
    sleeping:
        The binary ``delta`` of Section 3.3.2 -- whether this idle
        period hosts a SLEEP (adds the wake-up overhead) and the next
        power-down is pre-paid (conservative assumption of the paper).
    t_wu, t_pd, i_wu, i_pd:
        Sleep-transition overheads; only used when ``sleeping``.
    """

    t_idle: float
    t_active: float
    i_idle: float
    i_active: float
    c_ini: float = 0.0
    c_end: float = 0.0
    c_max: float = float("inf")
    sleeping: bool = False
    t_wu: float = 0.0
    t_pd: float = 0.0
    i_wu: float = 0.0
    i_pd: float = 0.0

    def __post_init__(self) -> None:
        if self.t_idle < 0 or self.t_active <= 0:
            raise ConfigurationError("need t_idle >= 0 and t_active > 0")
        if min(self.i_idle, self.i_active, self.i_wu, self.i_pd) < 0:
            raise ConfigurationError("currents must be non-negative")
        if self.t_wu < 0 or self.t_pd < 0:
            raise ConfigurationError("transition delays must be non-negative")
        if self.c_max <= 0:
            raise ConfigurationError("storage capacity must be positive")
        if not 0 <= self.c_ini <= self.c_max:
            raise ConfigurationError("c_ini must lie in [0, c_max]")
        if not 0 <= self.c_end <= self.c_max:
            raise ConfigurationError("c_end must lie in [0, c_max]")

    # -- derived quantities (Section 3.3.2 bookkeeping) ---------------------

    @property
    def delta(self) -> int:
        """The paper's binary sleep indicator."""
        return 1 if self.sleeping else 0

    @property
    def t_active_eff(self) -> float:
        """Extended active length ``Ta + delta*tau_WU + tau_PD`` (s).

        The paper absorbs the wake-up of this slot and (conservatively)
        the power-down opening the *next* idle period into the active
        period.  When not sleeping both vanish.
        """
        if not self.sleeping:
            return self.t_active
        return self.t_active + self.t_wu + self.t_pd

    @property
    def idle_demand(self) -> float:
        """Load charge demanded during the idle period (A-s)."""
        return self.i_idle * self.t_idle

    @property
    def active_demand(self) -> float:
        """Load charge demanded during the (extended) active period (A-s).

        Includes the transition charges ``delta*IWU*tauWU + IPD*tauPD``
        exactly as in the Section 3.3.2 constraint.
        """
        base = self.i_active * self.t_active
        if not self.sleeping:
            return base
        return base + self.i_wu * self.t_wu + self.i_pd * self.t_pd

    @property
    def total_demand(self) -> float:
        """Whole-slot load charge (A-s)."""
        return self.idle_demand + self.active_demand

    @property
    def total_time(self) -> float:
        """Whole-slot duration ``Ti + Ta_eff`` (s)."""
        return self.t_idle + self.t_active_eff


@dataclass(frozen=True)
class SlotSolution:
    """Solver output for one slot.

    ``fuel`` is the objective value: stack charge
    ``Ifc,i*Ti + Ifc,a*Ta_eff`` (A-s).  The diagnostic flags record which
    constraints were active; ``bled`` / ``deficit`` are nonzero only when
    the load-following range forces charge to be wasted or the storage
    cannot cover the shortfall.
    """

    if_idle: float
    if_active: float
    ifc_idle: float
    ifc_active: float
    fuel: float
    c_after_idle: float
    c_after_slot: float
    range_clamped: bool = False
    capacity_limited: bool = False
    bled: float = 0.0
    deficit: float = 0.0

    @property
    def is_flat(self) -> bool:
        """True when idle and active outputs coincide (the ideal optimum)."""
        return abs(self.if_idle - self.if_active) < 1e-9


@dataclass(frozen=True)
class PlanSegment:
    """One constant-output interval of an FC schedule."""

    duration: float
    i_f: float
    i_load: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError("segment duration cannot be negative")
        if self.i_f < 0 or self.i_load < 0:
            raise ConfigurationError("segment currents must be non-negative")


@dataclass
class FCOutputPlan:
    """A piecewise-constant FC output schedule with fuel accounting."""

    segments: list[PlanSegment] = field(default_factory=list)

    def append(
        self, duration: float, i_f: float, i_load: float = 0.0, label: str = ""
    ) -> None:
        """Add a constant-output interval to the end of the plan."""
        self.segments.append(PlanSegment(duration, i_f, i_load, label))

    def extend(self, segments: Iterable[PlanSegment]) -> None:
        """Append several segments."""
        for s in segments:
            self.segments.append(s)

    def __iter__(self) -> Iterator[PlanSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def duration(self) -> float:
        """Total schedule length (s)."""
        return sum(s.duration for s in self.segments)

    def fuel(self, model: SystemEfficiencyModel) -> float:
        """Total stack charge of the schedule (A-s) under ``model``."""
        return sum(model.fuel_charge(s.i_f, s.duration) for s in self.segments)

    def delivered_charge(self) -> float:
        """Total FC output charge (A-s)."""
        return sum(s.i_f * s.duration for s in self.segments)

    def load_charge(self) -> float:
        """Total load charge (A-s)."""
        return sum(s.i_load * s.duration for s in self.segments)

    def storage_trajectory(self, c_ini: float = 0.0) -> list[float]:
        """Storage level after each segment, ignoring capacity bounds."""
        levels = []
        c = c_ini
        for s in self.segments:
            c += (s.i_f - s.i_load) * s.duration
            levels.append(c)
        return levels

    def series(self, t0: float = 0.0):
        """Step-plot arrays ``(times, i_f, i_load)`` for figures.

        Times have ``len(segments) + 1`` entries (segment boundaries);
        the current arrays have one entry per segment.
        """
        times = [t0]
        i_f = []
        i_load = []
        for s in self.segments:
            times.append(times[-1] + s.duration)
            i_f.append(s.i_f)
            i_load.append(s.i_load)
        return times, i_f, i_load
