"""MetricsRegistry: instrument semantics, label keys, snapshot/merge."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry, _key


def test_counter_increments():
    reg = MetricsRegistry()
    reg.counter("hits").inc()
    reg.counter("hits").inc(2.5)
    assert reg.snapshot()["hits"] == {"type": "counter", "value": 3.5}


def test_gauge_overwrites():
    reg = MetricsRegistry()
    reg.gauge("level").set(1.0)
    reg.gauge("level").set(0.25)
    assert reg.snapshot()["level"]["value"] == 0.25


def test_histogram_stats_and_percentiles():
    reg = MetricsRegistry()
    hist = reg.histogram("lat")
    for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
        hist.observe(v)
    data = reg.snapshot()["lat"]
    assert data["count"] == 5
    assert data["sum"] == 110.0
    assert data["min"] == 1.0
    assert data["max"] == 100.0
    assert data["mean"] == 22.0
    # Nearest-rank over 5 samples: p50 -> 3rd value, p95 -> 5th.
    assert data["p50"] == 3.0
    assert data["p95"] == 100.0


def test_empty_histogram_is_well_defined():
    reg = MetricsRegistry()
    data = reg.histogram("empty").to_dict()
    assert data["count"] == 0
    assert data["min"] == 0.0 and data["max"] == 0.0
    assert data["mean"] == 0.0 and data["p50"] == 0.0


def test_label_keys_are_sorted_and_distinct():
    assert _key("sim.route", {"path": "fast"}) == "sim.route{path=fast}"
    assert _key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"
    reg = MetricsRegistry()
    reg.counter("sim.route", path="fast").inc()
    reg.counter("sim.route", path="scalar").inc(3)
    snap = reg.snapshot()
    assert snap["sim.route{path=fast}"]["value"] == 1
    assert snap["sim.route{path=scalar}"]["value"] == 3


def test_instrument_kind_collision_raises():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_snapshot_sorted_and_detached():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.counter("a").inc()
    snap = reg.snapshot()
    assert list(snap) == ["a", "z"]
    snap["a"]["value"] = 99
    assert reg.snapshot()["a"]["value"] == 1


def test_merge_folds_worker_snapshot():
    worker = MetricsRegistry()
    worker.counter("hits", kind="memo").inc(5)
    worker.gauge("level").set(0.7)
    worker.histogram("lat").observe(2.0)
    worker.histogram("lat").observe(8.0)

    coordinator = MetricsRegistry()
    coordinator.counter("hits", kind="memo").inc(2)
    coordinator.histogram("lat").observe(1.0)
    coordinator.merge(worker.snapshot())

    snap = coordinator.snapshot()
    assert snap["hits{kind=memo}"]["value"] == 7  # counters add
    assert snap["level"]["value"] == 0.7  # gauges take incoming
    assert snap["lat"]["count"] == 3  # histograms merge count/sum/min/max
    assert snap["lat"]["sum"] == 11.0
    assert snap["lat"]["min"] == 1.0
    assert snap["lat"]["max"] == 8.0


class TestSnapshotUnderConcurrency:
    """The live flusher snapshots while hot paths mutate -- the registry
    lock must make every snapshot a consistent point-in-time cut."""

    def test_snapshot_never_tears_a_histogram(self):
        # A histogram observing a constant must always satisfy
        # sum == count * constant in *every* snapshot; a snapshot taken
        # between the count bump and the sum add would violate it.
        reg = MetricsRegistry()
        stop = threading.Event()

        def hammer():
            hist = reg.histogram("lat")
            counter = reg.counter("ticks")
            while not stop.is_set():
                hist.observe(2.5)
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = reg.snapshot()
                if "lat" in snap:
                    data = snap["lat"]
                    assert data["sum"] == pytest.approx(data["count"] * 2.5)
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_no_lost_increments_across_threads(self):
        reg = MetricsRegistry()
        n, per_thread = 4, 5000

        def bump():
            counter = reg.counter("hits")
            hist = reg.histogram("lat")
            for _ in range(per_thread):
                counter.inc()
                hist.observe(1.0)

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["hits"]["value"] == n * per_thread
        assert snap["lat"]["count"] == n * per_thread
        assert snap["lat"]["sum"] == float(n * per_thread)

    def test_registry_instruments_share_one_lock(self):
        reg = MetricsRegistry()
        counter = reg.counter("a")
        gauge = reg.gauge("b")
        hist = reg.histogram("c")
        assert counter._lock is reg._lock
        assert gauge._lock is reg._lock
        assert hist._lock is reg._lock

    def test_standalone_instruments_get_their_own_lock(self):
        from repro.obs.metrics import Counter, Gauge, Histogram

        for cls in (Counter, Gauge, Histogram):
            inst = cls()
            assert inst._lock is not None


def test_reset_drops_everything():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.histogram("y").observe(1.0)
    assert len(reg) == 2
    reg.reset()
    assert len(reg) == 0
    assert reg.snapshot() == {}
