"""Live telemetry: heartbeat schema/atomicity, stall detection, flusher."""

import json
import threading

import pytest

from repro.obs.live import (
    DEFAULT_LIVE_INTERVAL,
    HEARTBEAT_SCHEMA_VERSION,
    Heartbeat,
    LiveFlusher,
    LiveProgress,
    exposition_path,
    heartbeat_age,
    heartbeat_path,
    is_stalled,
    iter_heartbeats,
    live_interval,
    validate_heartbeat,
    write_atomic_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import validate_exposition


def make_heartbeat(**overrides) -> Heartbeat:
    defaults = dict(
        name="demo",
        pid=123,
        host="testhost",
        started=1000.0,
        updated=1010.0,
        interval_s=0.5,
        phase="dispatch",
        tasks_done=3,
        tasks_failed=1,
        tasks_total=8,
        task_rate=0.4,
        eta_s=10.0,
    )
    defaults.update(overrides)
    return Heartbeat(**defaults)


class TestLiveInterval:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("FCDPM_LIVE_INTERVAL", raising=False)
        assert live_interval(None) is None

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("FCDPM_LIVE_INTERVAL", "0.25")
        assert live_interval(None) == 0.25

    def test_bad_or_nonpositive_env_stays_off(self, monkeypatch):
        for raw in ("nope", "0", "-1", ""):
            monkeypatch.setenv("FCDPM_LIVE_INTERVAL", raw)
            assert live_interval(None) is None

    def test_true_means_default_cadence(self):
        assert live_interval(True) == DEFAULT_LIVE_INTERVAL

    def test_false_forces_off_even_with_env(self, monkeypatch):
        monkeypatch.setenv("FCDPM_LIVE_INTERVAL", "1.0")
        assert live_interval(False) is None

    def test_explicit_number_wins(self, monkeypatch):
        monkeypatch.setenv("FCDPM_LIVE_INTERVAL", "9")
        assert live_interval(0.2) == 0.2


class TestHeartbeatSchema:
    def test_round_trip(self):
        hb = make_heartbeat(shard="1/2")
        data = hb.to_dict()
        assert data["schema_version"] == HEARTBEAT_SCHEMA_VERSION
        assert Heartbeat.from_dict(data) == hb

    def test_valid_heartbeat_passes(self):
        assert validate_heartbeat(make_heartbeat().to_dict()) == []

    def test_non_dict_rejected(self):
        assert validate_heartbeat([1, 2]) != []

    def test_missing_field_flagged(self):
        data = make_heartbeat().to_dict()
        del data["tasks_done"]
        assert any("tasks_done" in p for p in validate_heartbeat(data))

    def test_type_error_flagged(self):
        data = make_heartbeat().to_dict()
        data["tasks_done"] = "three"
        assert validate_heartbeat(data)

    def test_done_plus_failed_beyond_total_flagged(self):
        data = make_heartbeat(tasks_done=7, tasks_failed=2).to_dict()
        assert any("exceeds total" in p for p in validate_heartbeat(data))

    def test_updated_before_started_flagged(self):
        data = make_heartbeat(updated=999.0).to_dict()
        assert any("predates" in p for p in validate_heartbeat(data))

    def test_nonpositive_interval_flagged(self):
        data = make_heartbeat(interval_s=0.0).to_dict()
        assert any("interval_s" in p for p in validate_heartbeat(data))

    def test_newer_schema_version_flagged(self):
        data = make_heartbeat().to_dict()
        data["schema_version"] = HEARTBEAT_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_heartbeat(data))


class TestPaths:
    def test_unsharded(self, tmp_path):
        assert heartbeat_path(tmp_path).name == "heartbeat.json"
        assert exposition_path(tmp_path).name == "metrics.prom"

    def test_sharded_tuple_and_string(self, tmp_path):
        assert (
            heartbeat_path(tmp_path, (2, 4)).name
            == "heartbeat.shard-2-of-4.json"
        )
        assert (
            exposition_path(tmp_path, "2/4").name == "metrics.shard-2-of-4.prom"
        )


class TestAtomicJson:
    def test_reader_never_sees_partial_json(self, tmp_path):
        """Hammer writes while a reader loads: every read parses clean."""
        target = tmp_path / "heartbeat.json"
        write_atomic_json(target, {"n": -1, "pad": "x" * 4096})
        stop = threading.Event()
        failures: list[Exception] = []

        def writer():
            n = 0
            while not stop.is_set():
                write_atomic_json(target, {"n": n, "pad": "x" * 4096})
                n += 1

        def reader():
            while not stop.is_set():
                try:
                    data = json.loads(target.read_text())
                    assert "n" in data
                except Exception as exc:  # noqa: BLE001 - collected
                    failures.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        threading.Event().wait(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert failures == []

    def test_no_temp_litter(self, tmp_path):
        write_atomic_json(tmp_path / "hb.json", {"a": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["hb.json"]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_atomic_json(tmp_path / "a" / "b" / "hb.json", {})
        assert path.exists()


class TestStallDetection:
    def test_fresh_heartbeat_not_stalled(self):
        data = make_heartbeat(updated=1000.0).to_dict()
        assert not is_stalled(data, now=1000.5)

    def test_age_beyond_factor_times_interval_is_stalled(self):
        # interval 0.5s, factor 3 -> threshold 1.5s.
        data = make_heartbeat(updated=1000.0).to_dict()
        assert not is_stalled(data, now=1001.4)
        assert is_stalled(data, now=1001.6)

    def test_custom_factor(self):
        data = make_heartbeat(updated=1000.0).to_dict()
        assert is_stalled(data, now=1000.6, factor=1.0)
        assert not is_stalled(data, now=1000.6, factor=10.0)

    def test_final_heartbeat_never_stalls(self):
        data = make_heartbeat(final=True, updated=1000.0).to_dict()
        assert not is_stalled(data, now=99999.0)

    def test_age_clamped_nonnegative(self):
        data = make_heartbeat(updated=1000.0).to_dict()
        assert heartbeat_age(data, now=999.0) == 0.0


class TestIterHeartbeats:
    def test_orders_unsharded_then_shards(self, tmp_path):
        write_atomic_json(
            tmp_path / "heartbeat.shard-2-of-2.json",
            make_heartbeat(shard="2/2").to_dict(),
        )
        write_atomic_json(
            tmp_path / "heartbeat.shard-1-of-2.json",
            make_heartbeat(shard="1/2").to_dict(),
        )
        write_atomic_json(
            tmp_path / "heartbeat.json", make_heartbeat().to_dict()
        )
        labels = [label for label, _ in iter_heartbeats(tmp_path)]
        assert labels == [None, "1/2", "2/2"]

    def test_skips_torn_and_foreign_files(self, tmp_path):
        (tmp_path / "heartbeat.json").write_text("{not json")
        (tmp_path / "heartbeat.backup.json").write_text("{}")
        write_atomic_json(
            tmp_path / "heartbeat.shard-1-of-2.json",
            make_heartbeat(shard="1/2").to_dict(),
        )
        assert [label for label, _ in iter_heartbeats(tmp_path)] == ["1/2"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert iter_heartbeats(tmp_path / "nope") == []


class TestLiveProgress:
    def test_counters_and_phase(self):
        progress = LiveProgress(total=10, phase="scan")
        progress.add_done()
        progress.add_done(2)
        progress.add_failed()
        progress.set_phase("dispatch")
        assert progress.snapshot() == (3, 1, 10, "dispatch")

    def test_thread_safety_no_lost_updates(self):
        progress = LiveProgress(total=4000)

        def bump():
            for _ in range(1000):
                progress.add_done()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert progress.snapshot()[0] == 4000


class TestLiveFlusher:
    def _flusher(self, tmp_path, **kwargs) -> LiveFlusher:
        registry = kwargs.pop("registry", MetricsRegistry())
        progress = kwargs.pop("progress", LiveProgress(total=4))
        return LiveFlusher(
            tmp_path,
            "demo",
            progress=progress,
            registry=registry,
            **kwargs,
        )

    def test_flush_writes_valid_heartbeat_and_exposition(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("sim.route", path="fast").inc(4)
        flusher = self._flusher(tmp_path, registry=registry, interval=0.1)
        flusher.progress.add_done(2)
        flusher.flush()
        hb = json.loads(heartbeat_path(tmp_path).read_text())
        assert validate_heartbeat(hb) == []
        assert hb["tasks_done"] == 2
        assert hb["tasks_total"] == 4
        assert not hb["final"]
        text = exposition_path(tmp_path).read_text()
        assert validate_exposition(text) == []
        assert 'sim_route_total{path="fast"} 4' in text

    def test_sharded_filenames(self, tmp_path):
        flusher = self._flusher(tmp_path, shard=(2, 3), interval=0.1)
        flusher.flush()
        assert heartbeat_path(tmp_path, (2, 3)).exists()
        assert exposition_path(tmp_path, (2, 3)).exists()
        hb = json.loads(heartbeat_path(tmp_path, (2, 3)).read_text())
        assert hb["shard"] == "2/3"

    def test_background_loop_flushes_until_stopped(self, tmp_path):
        flusher = self._flusher(tmp_path, interval=0.05)
        flusher.start()
        deadline = threading.Event()
        for _ in range(100):
            if flusher.flushes >= 3:
                break
            deadline.wait(0.05)
        flusher.stop(final=True)
        assert flusher.flushes >= 3
        assert not flusher.is_alive()
        hb = json.loads(heartbeat_path(tmp_path).read_text())
        assert hb["final"] is True

    def test_stop_final_false_leaves_nonfinal_heartbeat(self, tmp_path):
        flusher = self._flusher(tmp_path, interval=0.05)
        flusher.start()
        flusher.stop(final=False)
        hb = json.loads(heartbeat_path(tmp_path).read_text())
        assert hb["final"] is False
        # ... which is exactly what goes stale and trips the detector.
        assert is_stalled(hb, now=hb["updated"] + 10.0)

    def test_cache_hit_ratio_from_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runtime.cache.hits").inc(3)
        registry.counter("runtime.cache.misses").inc(1)
        flusher = self._flusher(tmp_path, registry=registry, interval=0.1)
        assert flusher.build_heartbeat().cache_hit_ratio == pytest.approx(0.75)

    def test_no_cache_traffic_means_null_ratio(self, tmp_path):
        flusher = self._flusher(tmp_path, interval=0.1)
        assert flusher.build_heartbeat().cache_hit_ratio is None

    def test_eta_projects_remaining_work(self, tmp_path):
        flusher = self._flusher(tmp_path, interval=0.1)
        flusher.progress.add_done(2)
        hb = flusher.build_heartbeat()
        assert hb.task_rate > 0
        assert hb.eta_s == pytest.approx(2 / hb.task_rate)

    def test_write_errors_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        flusher = LiveFlusher(
            blocker / "sub",
            "demo",
            progress=LiveProgress(total=1),
            registry=MetricsRegistry(),
            interval=0.1,
        )
        flusher.flush()
        assert flusher.write_errors == 1
        assert flusher.flushes == 0

    def test_nonpositive_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            self._flusher(tmp_path, interval=0.0)

    def test_context_manager_marks_final_on_clean_exit(self, tmp_path):
        with self._flusher(tmp_path, interval=5.0) as flusher:
            flusher.progress.add_done()
        hb = json.loads(heartbeat_path(tmp_path).read_text())
        assert hb["final"] is True and hb["tasks_done"] == 1

    def test_context_manager_nonfinal_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with self._flusher(tmp_path, interval=5.0):
                raise RuntimeError("boom")
        hb = json.loads(heartbeat_path(tmp_path).read_text())
        assert hb["final"] is False
