# Convenience targets for the FC-DPM reproduction.

PYTHON ?= python3

.PHONY: install test lint bench bench-smoke bench-vector report export examples all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Static checks: ruff if available, byte-compilation always.
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed (pip install -e '.[lint]'); skipping ruff"; \
	fi
	$(PYTHON) -m compileall -q src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Runtime smoke bench: parallel-vs-serial run_seeds, memoized solver,
# sizing-curve fan-out, vectorized-kernel speedup gates.  Fast enough
# for CI; writes benchmarks/out/ (.txt reports + .json measurements).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_bench_microbench.py -s \
		-k "parallel or cached or vectorized"

# Just the vectorized-kernel gates: single-trace >= 4x, batch >= 10x,
# bit-exact equality with the scalar simulator.
bench-vector:
	$(PYTHON) -m pytest benchmarks/test_bench_microbench.py -s \
		-k "vectorized"

report:
	$(PYTHON) -m repro.cli report

export:
	$(PYTHON) -m repro.cli export artifacts/

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

all: test bench examples
