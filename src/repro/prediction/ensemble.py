"""Ensemble predictor: online expert weighting over base predictors.

A robustness extension for FC-DPM's prediction layer: run several base
predictors in parallel and combine them with multiplicative-weights
(exponentiated-gradient) updates on their recent absolute errors.  On
workloads where one family dominates (scene-correlated vs heavy-tailed)
the ensemble tracks the best expert without knowing it in advance.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from .base import Predictor


class EnsemblePredictor(Predictor):
    """Multiplicative-weights combination of base predictors.

    Parameters
    ----------
    experts:
        The base predictors (at least two).
    learning_rate:
        Weight-update aggressiveness ``eta``: weights scale by
        ``exp(-eta * |error| / scale)`` after each observation.
    error_scale:
        Normalization for errors (s); roughly the workload's idle
        scale.  Adapted online to the running mean observation when
        ``None``.
    weight_floor:
        Minimum weight of any expert, as a fraction of the current
        maximum (the fixed-share idea): keeps a written-off expert able
        to recover after a workload regime change.
    """

    def __init__(
        self,
        experts: list[Predictor],
        learning_rate: float = 0.5,
        error_scale: float | None = None,
        weight_floor: float = 1e-3,
    ) -> None:
        super().__init__()
        if len(experts) < 2:
            raise ConfigurationError("an ensemble needs at least two experts")
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        if error_scale is not None and error_scale <= 0:
            raise ConfigurationError("error scale must be positive")
        if not 0 <= weight_floor < 1:
            raise ConfigurationError("weight floor must be in [0, 1)")
        self.experts = list(experts)
        self.learning_rate = learning_rate
        self.error_scale = error_scale
        self.weight_floor = weight_floor
        self._weights = [1.0] * len(experts)
        self._last_expert_predictions: list[float] | None = None
        self._running_mean = 0.0
        self._n_obs = 0

    @property
    def weights(self) -> tuple[float, ...]:
        """Normalized expert weights."""
        total = sum(self._weights)
        return tuple(w / total for w in self._weights)

    @property
    def best_expert(self) -> Predictor:
        """The currently highest-weighted base predictor."""
        k = max(range(len(self.experts)), key=lambda i: self._weights[i])
        return self.experts[k]

    def predict(self) -> float:
        self._last_expert_predictions = [e.predict() for e in self.experts]
        weights = self.weights
        value = sum(
            w * p for w, p in zip(weights, self._last_expert_predictions)
        )
        return self._remember(value)

    def _update(self, actual: float) -> None:
        self._n_obs += 1
        self._running_mean += (actual - self._running_mean) / self._n_obs
        scale = (
            self.error_scale
            if self.error_scale is not None
            else max(self._running_mean, 1e-6)
        )
        if self._last_expert_predictions is not None:
            for k, predicted in enumerate(self._last_expert_predictions):
                loss = min(abs(predicted - actual) / scale, 10.0)
                self._weights[k] *= math.exp(-self.learning_rate * loss)
            # Renormalize and apply the recovery floor.
            top = max(self._weights)
            if top <= 0:
                self._weights = [1.0] * len(self.experts)
            else:
                self._weights = [
                    max(w / top, self.weight_floor) for w in self._weights
                ]
            self._last_expert_predictions = None
        for expert in self.experts:
            expert.observe(actual)

    def reset(self) -> None:
        super().reset()
        self._weights = [1.0] * len(self.experts)
        self._last_expert_predictions = None
        self._running_mean = 0.0
        self._n_obs = 0
        for expert in self.experts:
            expert.reset()
