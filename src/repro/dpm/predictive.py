"""Predictive shutdown (Hwang-Wu, paper ref [1]) -- the policy FC-DPM builds on.

At each idle-period start the predictor estimates ``T'_i``; if the
estimate exceeds the break-even time the device powers down
*immediately* (no timeout dwell).  The paper's Eq. 14 filter is the
default predictor, but any :class:`~repro.prediction.base.Predictor`
plugs in -- that is the predictor-ablation axis of the benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..devices.device import DeviceParams
from ..obs import OBS
from ..prediction.base import Predictor
from ..prediction.exponential import (
    ExponentialAveragePredictor,
    exponential_average_scan,
)
from .policy import DPMPolicy, IdleDecision, SLEEP_NOW, STAY_AWAKE


class PredictiveShutdownPolicy(DPMPolicy):
    """Sleep immediately iff the predicted idle length exceeds ``Tbe``.

    Parameters
    ----------
    params:
        Device parameters (supplies the break-even threshold).
    predictor:
        Idle-length predictor; defaults to the paper's exponential
        average with ``rho = 0.5``.
    threshold:
        Override of the sleep threshold (defaults to ``params.break_even``).
    """

    def __init__(
        self,
        params: DeviceParams,
        predictor: Predictor | None = None,
        threshold: float | None = None,
    ) -> None:
        super().__init__(params)
        self.predictor = (
            predictor
            if predictor is not None
            else ExponentialAveragePredictor(factor=0.5)
        )
        self.threshold = params.break_even if threshold is None else threshold
        self.last_prediction: float | None = None
        self._last_slept: bool | None = None

    def on_idle_start(self) -> IdleDecision:
        predicted = self.predictor.predict()
        self.last_prediction = predicted
        # A sleep also needs to physically fit the transitions.
        fits = predicted >= self.params.t_pd + self.params.t_wu
        sleep = predicted >= self.threshold and fits
        self._last_slept = sleep
        return self._count(SLEEP_NOW if sleep else STAY_AWAKE)

    def decisions_array(self, idle_lengths) -> list[IdleDecision] | None:
        """Whole-trace decisions via the predictor scan, or None.

        The scan replaces the per-slot predict/observe loop only when
        it is provably bit-exact: exact policy and predictor types (a
        subclass may override any step), and OBS disabled (the
        sequential path emits per-slot misprediction metrics the scan
        does not replicate).  On success the policy and predictor are
        left in the exact end state the sequential loop produces.
        """
        if (
            type(self) is not PredictiveShutdownPolicy
            or type(self.predictor) is not ExponentialAveragePredictor
            or OBS.enabled
        ):
            return None
        predictions, final_estimate = exponential_average_scan(
            self.predictor.factor, self.predictor.estimate, idle_lengths
        )
        fit_threshold = self.params.t_pd + self.params.t_wu
        sleep = (predictions >= self.threshold) & (predictions >= fit_threshold)
        decisions = [SLEEP_NOW if s else STAY_AWAKE for s in sleep.tolist()]
        self.predictor.commit_scan(idle_lengths, predictions, final_estimate)
        if decisions:
            self.last_prediction = float(predictions[-1])
            self._last_slept = decisions[-1].sleep
            self.n_decisions += len(decisions)
            self.n_sleep_decisions += int(np.count_nonzero(sleep))
        return decisions

    def on_idle_end(self, t_idle: float) -> None:
        if OBS.enabled and self._last_slept is not None:
            # A misprediction is a decision the actual idle length
            # contradicts: slept but the period was shorter than the
            # threshold (wasted transition), or stayed awake through a
            # period that warranted sleeping (missed saving).
            should_sleep = t_idle >= self.threshold
            if self._last_slept != should_sleep:
                OBS.metrics.counter(
                    "dpm.mispredictions",
                    kind="overpredict" if self._last_slept else "underpredict",
                ).inc()
            if self.last_prediction is not None:
                OBS.metrics.histogram("dpm.prediction_error_s").observe(
                    self.last_prediction - t_idle
                )
        self.predictor.observe(t_idle)

    def reset(self) -> None:
        super().reset()
        self.predictor.reset()
        self.last_prediction = None
        self._last_slept = None
